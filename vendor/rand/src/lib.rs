//! Offline shim for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`], [`Rng::gen_bool`] and [`seq::SliceRandom`].
//!
//! The generator is xoshiro256++ seeded through splitmix64 — deterministic
//! across platforms and statistically sound for simulation workloads. The
//! streams differ from upstream `StdRng` (ChaCha12); nothing in the
//! workspace depends on upstream's exact streams, only on determinism.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`]. `T` is the sampled value type,
/// kept as a trait parameter (not an associated type) so call-site usage
/// can drive inference, e.g. `v[rng.gen_range(0..3)]` infers `usize`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.next_u64() as u128 % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value whose type implements [`Standard`].
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(43);
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_interval_samples() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes_and_choose_hits() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
