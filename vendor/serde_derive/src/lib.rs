//! Offline no-op `#[derive(Serialize, Deserialize)]` macros.
//!
//! The workspace derives serde traits on its data types for downstream
//! consumers, but nothing in-tree serializes (there is no serde_json in
//! the image). The shim accepts the derive syntax — including `#[serde]`
//! attributes — and emits no impls.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
