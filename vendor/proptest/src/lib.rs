//! Offline shim for `proptest`.
//!
//! Implements the subset the workspace tests use: the [`proptest!`] macro
//! with an optional `#![proptest_config(...)]` header, range/tuple/map/
//! collection strategies, `any::<T>()` for `u64` and
//! [`prop::sample::Index`], and the `prop_assert*` / `prop_assume!`
//! macros. Differences from upstream: no shrinking (a failing case panics
//! with the plain assertion message) and per-test deterministic seeding
//! (derived from the test name, overridable via `PROPTEST_RNG_SEED`).
//! Case counts honor `PROPTEST_CASES` when set.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Runner configuration and the deterministic case RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's runner configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }

        /// Effective case count: `PROPTEST_CASES` env override, else the
        /// configured value.
        pub fn effective_cases(&self) -> u32 {
            std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(self.cases)
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic RNG driving value generation for one test.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeds from the test name (stable across runs and platforms),
        /// or from `PROPTEST_RNG_SEED` when set.
        pub fn deterministic(test_name: &str) -> Self {
            let seed = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| fnv1a(test_name.as_bytes()));
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw from `[0, n)`; `n` must be positive.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty draw range");
            self.next_u64() % n
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies (no shrinking in the shim).

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u64 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident/$i:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
    }

    /// Types with a canonical strategy, usable via [`any`].
    pub trait Arbitrary {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::prop::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            crate::prop::sample::Index::from_raw(rng.next_u64())
        }
    }

    /// The canonical strategy for `T` (see [`Arbitrary`]).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod prop {
    //! The `prop::` namespace mirrored from upstream.

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy for `Vec<S::Value>` with a length drawn from a range.
        #[derive(Clone, Debug)]
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max_exclusive: usize,
        }

        /// `Vec` strategy with length in `len` and elements from `elem`.
        pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy {
                elem,
                min: len.start,
                max_exclusive: len.end,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.max_exclusive - self.min) as u64;
                let n = self.min + rng.below(span.max(1)) as usize;
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }
    }

    pub mod sample {
        //! Index-style sampling helpers.

        /// An index into a collection whose size is only known at use
        /// time: `index(len)` maps the raw draw uniformly into `0..len`.
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        pub struct Index(u64);

        impl Index {
            /// Wraps a raw 64-bit draw.
            pub fn from_raw(raw: u64) -> Self {
                Index(raw)
            }

            /// Maps the draw into `0..size`. Panics when `size == 0`.
            pub fn index(&self, size: usize) -> usize {
                assert!(size > 0, "cannot index into an empty collection");
                ((self.0 as u128 * size as u128) >> 64) as usize
            }
        }
    }
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude::*`.

    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.effective_cases() {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)*
                let run = move || $body;
                let guard = $crate::CaseContext::enter(case, stringify!($name));
                run();
                guard.pass();
            }
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

/// Prints the failing case number when a case body panics, since the
/// shim has no shrinker to replay inputs.
pub struct CaseContext {
    case: u32,
    name: &'static str,
    passed: bool,
}

impl CaseContext {
    /// Marks entry into a generated case.
    pub fn enter(case: u32, name: &'static str) -> Self {
        CaseContext {
            case,
            name,
            passed: false,
        }
    }

    /// Marks the case as passed (suppresses the drop report).
    pub fn pass(mut self) {
        self.passed = true;
    }
}

impl Drop for CaseContext {
    fn drop(&mut self) {
        if !self.passed {
            eprintln!(
                "proptest shim: test {} failed at generated case #{}",
                self.name, self.case
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0..1.0f64, n in 3u32..9, i in 0usize..5) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((3..9).contains(&n));
            prop_assert!(i < 5);
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..10, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn index_maps_into_collection(idx in any::<prop::sample::Index>()) {
            let i = idx.index(13);
            prop_assert!(i < 13);
        }

        #[test]
        fn prop_map_applies(p in (0.0..1.0f64, 0.0..1.0f64).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn assume_skips_without_failing(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let s = 0.0..1.0f64;
        let va: Vec<f64> = (0..16).map(|_| s.new_value(&mut a)).collect();
        let vb: Vec<f64> = (0..16).map(|_| s.new_value(&mut b)).collect();
        assert_eq!(va, vb);
    }
}
