//! Offline shim for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` harness entry
//! points, `Criterion::bench_function`, benchmark groups, `Bencher::iter`
//! and `Bencher::iter_batched`, with real wall-clock measurement. Each
//! benchmark reports min/median/mean nanoseconds per iteration on stdout;
//! when `CRITERION_JSON` names a file, a JSON line per benchmark is
//! appended there (used to commit bench summaries like `BENCH_PR1.json`).
//!
//! Tuning knobs (environment):
//! - `CRITERION_SAMPLES` — target sample count (default: group sample
//!   size, itself defaulting to 20);
//! - `CRITERION_MAX_MS` — per-benchmark measurement budget in
//!   milliseconds (default 2000).

#![forbid(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (shim: ignored, every sample
/// reruns setup outside the timed section).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Measurement statistics for one benchmark.
#[derive(Clone, Debug)]
pub struct Sampled {
    /// Benchmark identifier (`group/name` when grouped).
    pub id: String,
    /// Number of timed samples.
    pub samples: usize,
    /// Fastest sample, nanoseconds.
    pub min_ns: f64,
    /// Median sample, nanoseconds.
    pub median_ns: f64,
    /// Mean sample, nanoseconds.
    pub mean_ns: f64,
}

fn max_measure_budget() -> Duration {
    let ms = std::env::var("CRITERION_MAX_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000u64);
    Duration::from_millis(ms)
}

fn target_samples(group_default: usize) -> usize {
    std::env::var("CRITERION_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(group_default)
        .max(1)
}

/// Times one closure invocation per sample until the sample target or
/// the time budget is reached; always takes at least one sample.
pub struct Bencher {
    samples_ns: Vec<f64>,
    target: usize,
    budget: Duration,
}

impl Bencher {
    fn new(target: usize, budget: Duration) -> Self {
        Bencher {
            samples_ns: Vec::new(),
            target,
            budget,
        }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup call (untimed) to populate caches/allocators.
        black_box(routine());
        let started = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
            if self.samples_ns.len() >= self.target || started.elapsed() > self.budget {
                break;
            }
        }
    }

    /// Measures `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let started = Instant::now();
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
            if self.samples_ns.len() >= self.target || started.elapsed() > self.budget {
                break;
            }
        }
    }

    fn finish(self, id: &str) -> Sampled {
        let mut s = self.samples_ns;
        assert!(!s.is_empty(), "benchmark {id} took no samples");
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = s[0];
        let median = if s.len() % 2 == 1 {
            s[s.len() / 2]
        } else {
            (s[s.len() / 2 - 1] + s[s.len() / 2]) / 2.0
        };
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        Sampled {
            id: id.to_owned(),
            samples: s.len(),
            min_ns: min,
            median_ns: median,
            mean_ns: mean,
        }
    }
}

fn report(r: &Sampled) {
    println!(
        "bench {:<48} samples {:>4}  min {:>12.0} ns  median {:>12.0} ns  mean {:>12.0} ns",
        r.id, r.samples, r.min_ns, r.median_ns, r.mean_ns
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                f,
                "{{\"id\":\"{}\",\"samples\":{},\"min_ns\":{:.0},\"median_ns\":{:.0},\"mean_ns\":{:.0}}}",
                r.id.replace('"', "'"),
                r.samples,
                r.min_ns,
                r.median_ns,
                r.mean_ns
            );
        }
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(target_samples(20), max_measure_budget());
        f(&mut b);
        report(&b.finish(id));
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            sample_size: 20,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time (shim: ignored; use `CRITERION_MAX_MS`).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(target_samples(self.sample_size), max_measure_budget());
        f(&mut b);
        report(&b.finish(&format!("{}/{}", self.name, id)));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default();
        std::env::remove_var("CRITERION_JSON");
        c.bench_function("shim_smoke", |b| b.iter(|| black_box(3u64 * 7)));
    }

    #[test]
    fn grouped_iter_batched_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
