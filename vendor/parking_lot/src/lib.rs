//! Offline shim for `parking_lot`: a [`Mutex`]/[`RwLock`] with the
//! parking_lot calling convention (no poisoning, `lock()` returns the
//! guard directly), backed by `std::sync`.

#![forbid(unsafe_code)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion with parking_lot's panic-transparent API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, returning the guard. A poisoned lock (a holder
    /// panicked) is entered anyway, matching parking_lot's behavior of
    /// not tracking poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader-writer lock with the parking_lot calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
