//! Offline shim for `serde`: marker traits plus the no-op derive macros
//! from the vendored `serde_derive`. Nothing in this workspace actually
//! serializes (no serde_json in the image); the traits exist so type
//! declarations keep the upstream-compatible shape.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize` (no methods in the shim).
pub trait Deserialize<'de>: Sized {}
