//! Offline shim for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` are provided, built
//! directly on `std::thread::scope` (stable since Rust 1.63, which makes
//! the real crossbeam scope machinery unnecessary here). The spawned
//! closure receives a placeholder scope handle — the workspace never
//! spawns nested threads from inside a worker.

#![forbid(unsafe_code)]

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;

    /// Handle passed to spawned closures. Nested spawning is not
    /// supported by this shim (the workspace never uses it).
    #[derive(Clone, Copy, Debug)]
    pub struct NestedScope;

    /// A scope within which threads can borrow from the caller's stack.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure's argument is a
        /// placeholder (crossbeam passes the scope for nested spawns).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(NestedScope)),
            }
        }
    }

    /// Creates a scope; all threads spawned within are joined before it
    /// returns. Always `Ok`: panics in workers propagate on `join`, and a
    /// panicking un-joined worker propagates out of `scope` itself
    /// (matching std semantics rather than crossbeam's collected error).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                handles.push(s.spawn(move |_| chunk.iter().sum::<u64>()));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .sum::<u64>()
        })
        .expect("scope");
        assert_eq!(total, 10);
    }

    #[test]
    fn worker_panic_surfaces_on_join() {
        let r = crate::thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .expect("scope itself succeeds");
        assert!(r.is_err());
    }
}
