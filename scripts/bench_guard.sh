#!/usr/bin/env sh
# Bench guard: re-runs the committed-baseline benchmarks and fails when a
# guarded median regresses more than BENCH_TOLERANCE (fraction, default
# 0.05) against its committed baseline:
#
#   - BENCH_PR4.json / pr4_spatial — the end-to-end `sharded_engine`
#     centralized placement at the paper scale (2000 points);
#   - BENCH_PR6.json / pr6_scale — the hierarchical-core area-failure
#     restoration at the smallest sweep size (PR6_MAX_POINTS=2000 keeps
#     the guard run seconds-fast; the larger sizes are perf-tracked via
#     the committed sweep, not gated per-push);
#   - BENCH_PR8.json / pr8_throughput — the scenario-matrix runner's
#     64-run batch (PR8_RUNS=200 shrinks the ungated saturation phase;
#     the full 10k-run saturation check runs when the bench is invoked
#     without the cap);
#   - BENCH_PR9.json / pr8_throughput — the same batch against the
#     worker-arena baseline (the post-PR9 number; PR8's entry stays as
#     the historical pre-arena reference and its guard is trivially
#     green, this one is the binding gate).
#
# The committed baselines were measured on the reference machine, so the
# 5% default is meant for local runs per EXPERIMENTS.md; CI sets a
# looser tolerance (absolute-hardware noise, not a regression signal).
#
#   scripts/bench_guard.sh                 # 5% gate vs both baselines
#   BENCH_TOLERANCE=0.50 scripts/bench_guard.sh
set -eu
cd "$(dirname "$0")/.."

tol=${BENCH_TOLERANCE:-0.05}
out=$(mktemp)
trap 'rm -f "$out"' EXIT

# guard <baseline.json> <bench-target> <bench-id>
# Re-runs <bench-target>, extracts <bench-id>'s median from the fresh run
# and the committed baseline, and fails beyond the tolerance.
guard() {
    baseline=$1
    bench=$2
    bench_id=$3
    [ -f "$baseline" ] || { echo "bench_guard: missing $baseline" >&2; exit 1; }

    : > "$out"
    CRITERION_JSON="$out" \
    CRITERION_SAMPLES="${CRITERION_SAMPLES:-20}" \
        cargo bench -q -p decor-bench --bench "$bench" >&2

    old=$(awk -F'"median_ns":' -v id="$bench_id" \
        'index($0, "\"" id "\"") { split($2, a, /[,}]/); print a[1] }' "$baseline")
    new=$(awk -F'"median_ns":' -v id="$bench_id" \
        'index($0, "\"" id "\"") { split($2, a, /[,}]/); print a[1] }' "$out")
    [ -n "$old" ] || { echo "bench_guard: $bench_id missing from $baseline" >&2; exit 1; }
    [ -n "$new" ] || { echo "bench_guard: $bench_id missing from fresh run" >&2; exit 1; }

    awk -v old="$old" -v new="$new" -v tol="$tol" -v id="$bench_id" 'BEGIN {
        ratio = new / old
        printf "bench_guard: %s median %d ns vs baseline %d ns (%+.1f%%, tolerance %.0f%%)\n", \
            id, new, old, (ratio - 1) * 100, tol * 100
        if (ratio > 1 + tol) {
            print "bench_guard: REGRESSION beyond tolerance" > "/dev/stderr"
            exit 1
        }
    }'
}

guard BENCH_PR4.json pr4_spatial "pr4/centralized_greedy_k2_2000pts/sharded_engine"
PR6_MAX_POINTS=2000 guard BENCH_PR6.json pr6_scale "pr6/restore_area_r24/n2000"
PR8_RUNS=200 guard BENCH_PR8.json pr8_throughput "pr8/matrix/serve_batch_64"
PR8_RUNS=200 guard BENCH_PR9.json pr8_throughput "pr8/matrix/serve_batch_64"

# pr9_alloc self-asserts against ALLOC_BUDGET.json (allocation counts are
# deterministic — no tolerance). Running it here pins the rotation code
# to the committed steady-state budget alongside the timing gates.
echo "bench_guard: pr9_alloc vs ALLOC_BUDGET.json"
cargo bench -q -p decor-bench --features alloc-counter --bench pr9_alloc >&2
