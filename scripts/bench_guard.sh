#!/usr/bin/env sh
# Bench guard: re-runs the pr4_spatial suite (which includes the
# end-to-end `sharded_engine` placement benchmark) and fails when the
# sharded_engine median regresses more than BENCH_TOLERANCE (fraction,
# default 0.05) against the committed BENCH_PR4.json baseline.
#
# The committed baseline was measured on the reference machine, so the
# 5% default is meant for local runs per EXPERIMENTS.md; CI sets a
# looser tolerance (absolute-hardware noise, not a regression signal).
#
#   scripts/bench_guard.sh                 # 5% gate vs BENCH_PR4.json
#   BENCH_TOLERANCE=0.50 scripts/bench_guard.sh
set -eu
cd "$(dirname "$0")/.."

tol=${BENCH_TOLERANCE:-0.05}
baseline=BENCH_PR4.json
[ -f "$baseline" ] || { echo "bench_guard: missing $baseline" >&2; exit 1; }

out=$(mktemp)
trap 'rm -f "$out"' EXIT
CRITERION_JSON="$out" \
CRITERION_SAMPLES="${CRITERION_SAMPLES:-20}" \
    cargo bench -q -p decor-bench --bench pr4_spatial >&2

bench_id="pr4/centralized_greedy_k2_2000pts/sharded_engine"
old=$(awk -F'"median_ns":' -v id="$bench_id" \
    'index($0, "\"" id "\"") { split($2, a, /[,}]/); print a[1] }' "$baseline")
new=$(awk -F'"median_ns":' -v id="$bench_id" \
    'index($0, "\"" id "\"") { split($2, a, /[,}]/); print a[1] }' "$out")
[ -n "$old" ] || { echo "bench_guard: $bench_id missing from $baseline" >&2; exit 1; }
[ -n "$new" ] || { echo "bench_guard: $bench_id missing from fresh run" >&2; exit 1; }

awk -v old="$old" -v new="$new" -v tol="$tol" -v id="$bench_id" 'BEGIN {
    ratio = new / old
    printf "bench_guard: %s median %d ns vs baseline %d ns (%+.1f%%, tolerance %.0f%%)\n", \
        id, new, old, (ratio - 1) * 100, tol * 100
    if (ratio > 1 + tol) {
        print "bench_guard: REGRESSION beyond tolerance" > "/dev/stderr"
        exit 1
    }
}'
