//! Wildfire scenario (the paper's motivating application #1).
//!
//! ```text
//! cargo run --release --example wildfire_restoration
//! ```
//!
//! A temperature-sensing network monitors a forest with 3-coverage. A fire
//! front (disc-shaped disaster) burns through, destroying every sensor it
//! touches. Surviving neighbors notice the silence through the heartbeat
//! protocol (period Tc); DECOR's Voronoi scheme then restores coverage,
//! expanding from the burn scar's rim inward.

use decor::core::restore::fail_and_restore;
use decor::core::{CentralizedGreedy, CoverageMap, DeploymentConfig, Placer, VoronoiDecor};
use decor::geom::{Aabb, Disk, Point};
use decor::lds::halton_points;
use decor::net::{FailurePlan, HeartbeatConfig};

fn main() {
    let field = Aabb::square(100.0);
    let cfg = DeploymentConfig {
        k: 3,
        ..DeploymentConfig::default()
    };

    // 1. Initial deployment: full 3-coverage via the centralized planner
    //    (deployment time — a global view is available before the fire).
    let mut map = CoverageMap::new(halton_points(2000, &field), &field, &cfg);
    let deployed = CentralizedGreedy.place(&mut map, &cfg);
    println!(
        "deployed {} sensors for {}-coverage of the forest",
        deployed.total_sensors(),
        cfg.k
    );

    // 2. The fire: a disc of radius 24 (≈17% of the area) at (40, 60).
    let fire = Disk::new(Point::new(40.0, 60.0), 24.0);
    let plan = FailurePlan::Area { disk: fire };

    // 3. Detection through heartbeats, then in-network restoration with
    //    the Voronoi DECOR scheme (no central authority survives a fire).
    let restorer = VoronoiDecor { rc: 8.0 };
    let hb = HeartbeatConfig {
        period: 1_000, // Tc = 1s in ms ticks
        timeout_periods: 3,
        seed: 7,
    };
    let report = fail_and_restore(&mut map, &restorer, &cfg, &plan, Some(hb));

    println!(
        "fire destroyed {} sensors; {}/{} failures detected by heartbeat silence",
        report.victims, report.detected, report.victims
    );
    if let Some(lat) = report.detection_latency {
        println!(
            "worst detection latency: {:.1} heartbeat periods",
            lat as f64 / 1000.0
        );
    }
    println!(
        "coverage after fire: {:.1}% of points still {}-covered",
        report.coverage_after_failure * 100.0,
        cfg.k
    );
    println!(
        "restoration placed {} new sensors ({} rounds), coverage back to {:.1}%",
        report.extra_nodes,
        report.outcome.rounds,
        report.coverage_after_restore * 100.0
    );
    assert_eq!(report.coverage_after_restore, 1.0);
    println!("forest fully re-covered — early-warning capability restored.");
}
