//! Sleep scheduling: turning k-coverage into network lifetime.
//!
//! ```text
//! cargo run --release --example sleep_scheduling
//! ```
//!
//! The paper's third motivation for k-coverage (§1): with k sensors on
//! every point, most of them can sleep. This example deploys for
//! k = 1..4, splits each deployment into disjoint 1-covering shifts, and
//! duty-cycles them against a battery model, printing the measured
//! lifetime extension.

use decor::core::{CentralizedGreedy, CoverageMap, DeploymentConfig, Placer};
use decor::geom::{Aabb, Point};
use decor::lds::halton_points;
use decor::net::{Network, SleepScheduler};

fn main() {
    let field = Aabb::square(100.0);
    println!("k-coverage as an energy budget — battery 60, awake cost 1/period, sleep cost 0.02/period\n");
    println!(
        "{:>3} {:>8} {:>8} {:>16} {:>16} {:>11}",
        "k", "sensors", "shifts", "duty-cycled", "all-awake", "extension"
    );
    for k in 1..=4u32 {
        let cfg = DeploymentConfig {
            k,
            ..DeploymentConfig::default()
        };
        let mut map = CoverageMap::new(halton_points(2000, &field), &field, &cfg);
        let out = CentralizedGreedy.place(&mut map, &cfg);
        assert!(out.fully_covered);

        let mut net = Network::new(field);
        for (_, pos) in map.active_sensors() {
            net.add_node(pos, cfg.rs, cfg.rc);
        }
        let pts: Vec<Point> = map.points().to_vec();
        let report = SleepScheduler::new(1).simulate_lifetime(&net, &pts, 60.0, 1.0, 0.02);
        println!(
            "{:>3} {:>8} {:>8} {:>9} periods {:>9} periods {:>10.2}x",
            k,
            map.n_active_sensors(),
            report.shifts,
            report.periods_covered,
            report.baseline_periods,
            report.extension_factor
        );
    }
    println!("\na tight greedy deployment decomposes into roughly k/2 disjoint shifts");
    println!("(splitting a point's exactly-k coverers into k covers is a hard domatic-");
    println!("partition instance), so the measured extension is a floor on the paper's");
    println!("qualitative claim: higher k still buys fault tolerance AND lifetime.");
}
