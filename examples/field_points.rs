//! Figure 4 — render the low-discrepancy approximation of the field and
//! compare generators quantitatively.
//!
//! ```text
//! cargo run --release --example field_points
//! ```

use decor::exp::{fig04, ExpParams};

fn main() {
    let params = ExpParams::paper();
    println!("Fig. 4 — the 100x100 field approximated with 2000 Halton points:\n");
    println!("{}", fig04::render(&params));
    let t = fig04::run(&params);
    println!("{}", t.to_ascii());
    println!("generators: 0=Halton 1=Hammersley 2=Sobol 3=Random 4=Jittered");
    println!("(lower is better on both metrics — the LDS premise of §3.2)");
}
