//! Figures 5 and 6 — render a DECOR deployment and the hole a disaster
//! tears into it.
//!
//! ```text
//! cargo run --release --example deployment_map
//! ```

use decor::exp::{fig05_06, ExpParams};

fn main() {
    let params = ExpParams::paper();
    println!("Fig. 5 — resulting DECOR deployment (grid, small cell, k=1):");
    println!("('O' = sensor, '.' = approximation point)\n");
    println!("{}", fig05_06::render_deployment(&params));
    println!("{}", fig05_06::run_deployment(&params).to_ascii());

    println!("\nFig. 6 — after a disaster (disc radius 24 at the center):");
    println!("('O' = surviving sensor, '.' = still-covered point; the hole is blank)\n");
    println!("{}", fig05_06::render_disaster(&params));
    println!("{}", fig05_06::run_disaster(&params).to_ascii());
}
