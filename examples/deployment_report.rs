//! Deployment report: diagnostics across all six algorithms, with an
//! SVG dump of each resulting field.
//!
//! ```text
//! cargo run --release --example deployment_report
//! # SVGs land in target/deployment-report/
//! ```
//!
//! The downstream-user view of the library: run every placement
//! algorithm on the same damaged field, compare their quality metrics
//! (efficiency vs the disc-packing lower bound, redundancy, load
//! balance), and render the deployments.

use decor::core::{DeploymentDiagnostics, SchemeKind};
use decor::exp::common::{deploy, ExpParams};
use decor::exp::svg::{render_svg, Layer};
use decor::geom::Point;

fn main() {
    let params = ExpParams {
        n_points: 1000,
        initial_nodes: 100,
        seeds: 1,
        ..ExpParams::paper()
    };
    let k = 2;
    let out_dir = "target/deployment-report";
    std::fs::create_dir_all(out_dir).expect("create output dir");

    println!("deployment report — field 100x100, k={k}, rs=4, 100 initial sensors\n");
    println!(
        "{:<22} {:>7} {:>7} {:>9} {:>8} {:>8} {:>8}",
        "scheme", "placed", "total", "redund.", "eff.", "nn-dist", "cell-cv"
    );
    for scheme in SchemeKind::ALL {
        let (mut map, out, cfg) = deploy(&params, scheme, k, 7);
        assert!(out.fully_covered);
        let diag = DeploymentDiagnostics::analyze(&mut map, cfg.k, cfg.rs);
        println!(
            "{:<22} {:>7} {:>7} {:>9} {:>7.2}x {:>8.2} {:>8.2}",
            scheme.label(),
            out.placed.len(),
            diag.sensors,
            diag.redundant,
            diag.efficiency_ratio,
            diag.mean_nearest_sensor_dist,
            diag.cell_area_cv
        );
        // Render: sensing disks + sensor dots.
        let sensors: Vec<Point> = map.active_sensors().iter().map(|&(_, p)| p).collect();
        let svg = render_svg(
            map.field(),
            &[
                Layer {
                    points: &sensors,
                    radius: cfg.rs,
                    fill: "steelblue",
                    opacity: 0.2,
                },
                Layer {
                    points: &sensors,
                    radius: 0.7,
                    fill: "navy",
                    opacity: 1.0,
                },
            ],
            800,
        );
        let file = format!(
            "{out_dir}/{}.svg",
            scheme.label().replace([' ', '(', ')'], "_")
        );
        std::fs::write(&file, svg).expect("write svg");
    }
    println!(
        "\neff. = sensors / disc-packing lower bound (1.00x is unbeatable)\n\
         cell-cv = Voronoi cell-area variation (0 = perfectly even load)\n\
         SVGs written to {out_dir}/"
    );
}
