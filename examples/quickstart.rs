//! Quickstart: restore 2-coverage of a partially monitored field.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's setup (100×100 field, 2000 Halton points, rs = 4),
//! drops 120 random sensors on it, and runs centralized greedy and both
//! DECOR schemes to restore full 2-coverage, printing the cost of each.

use decor::core::{
    redundancy::redundancy_stats, CentralizedGreedy, CoverageMap, DeploymentConfig, GridDecor,
    Placer, VoronoiDecor,
};
use decor::geom::Aabb;
use decor::lds::{halton_points, random_points};

fn main() {
    let field = Aabb::square(100.0);
    let cfg = DeploymentConfig {
        k: 2,
        ..DeploymentConfig::default()
    };

    let fresh_map = || {
        let mut map = CoverageMap::new(halton_points(2000, &field), &field, &cfg);
        for p in random_points(120, &field, 42) {
            map.add_sensor(p, cfg.rs);
        }
        map
    };

    println!(
        "DECOR quickstart — field 100x100, 2000 Halton points, rs=4, k={}",
        cfg.k
    );
    {
        let map = fresh_map();
        println!(
            "initial state: {} sensors, {:.1}% of points {}-covered\n",
            map.n_active_sensors(),
            map.fraction_k_covered(cfg.k) * 100.0,
            cfg.k
        );
    }

    let placers: Vec<Box<dyn Placer>> = vec![
        Box::new(CentralizedGreedy),
        Box::new(GridDecor { cell_size: 5.0 }),
        Box::new(VoronoiDecor { rc: 8.0 }),
    ];
    println!(
        "{:<24} {:>8} {:>8} {:>10} {:>12}",
        "algorithm", "placed", "rounds", "redundant", "msgs/cell"
    );
    for placer in placers {
        let mut map = fresh_map();
        let out = placer.place(&mut map, &cfg);
        assert!(out.fully_covered, "{} failed to cover", placer.name());
        let (red, _) = redundancy_stats(&mut map, cfg.k);
        println!(
            "{:<24} {:>8} {:>8} {:>10} {:>12.2}",
            placer.name(),
            out.placed.len(),
            out.rounds,
            red,
            out.messages.per_cell
        );
    }
    println!("\nevery algorithm restored 100% {}-coverage.", cfg.k);
}
