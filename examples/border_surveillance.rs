//! Border surveillance: breach analysis of a DECOR deployment.
//!
//! ```text
//! cargo run --release --example border_surveillance
//! ```
//!
//! The intruder-detection application viewed from the intruder's side
//! (the paper's related work [13], Meguerdichian et al.): the *maximal
//! breach path* is the left-to-right crossing that stays as far from
//! every sensor as possible. This example shows how DECOR deployment and
//! restoration shrink the breach distance — and what a disaster does
//! to it.

use decor::core::{CoverageMap, DeploymentConfig, Placer, VoronoiDecor};
use decor::geom::{maximal_breach_path, Aabb, Disk, Point};
use decor::lds::{halton_points, random_points};

fn sensor_positions(map: &CoverageMap) -> Vec<Point> {
    map.active_sensors().iter().map(|&(_, p)| p).collect()
}

fn main() {
    let field = Aabb::square(100.0);
    let cfg = DeploymentConfig {
        k: 2,
        ..DeploymentConfig::default()
    };
    let res = 128;

    // Stage 1: a thin random deployment (the paper's starting state).
    let mut map = CoverageMap::new(halton_points(2000, &field), &field, &cfg);
    for p in random_points(120, &field, 2024) {
        map.add_sensor(p, cfg.rs);
    }
    let b0 = maximal_breach_path(&sensor_positions(&map), &field, res);
    println!("border field 100x100, sensing radius {}\n", cfg.rs);
    println!(
        "stage 1 — 120 random sensors:          breach distance {:6.2}  (intruder {})",
        b0.distance,
        if b0.distance > cfg.rs {
            "slips through undetected"
        } else {
            "is detected"
        }
    );

    // Stage 2: DECOR restores 2-coverage.
    let placer = VoronoiDecor { rc: 8.0 };
    let out = placer.place(&mut map, &cfg);
    let b1 = maximal_breach_path(&sensor_positions(&map), &field, res);
    println!(
        "stage 2 — +{} DECOR sensors (k=2):     breach distance {:6.2}  (intruder {})",
        out.placed.len(),
        b1.distance,
        if b1.distance > cfg.rs {
            "slips through undetected"
        } else {
            "is detected"
        }
    );
    assert!(b1.distance <= cfg.rs, "k-coverage bounds the breach by rs");

    // Stage 3: a fire front burns a corridor clear across the border —
    // three overlapping disaster discs (a single disc cannot open a full
    // left-to-right breach in a 100-wide field).
    let front = [
        Disk::new(Point::new(15.0, 55.0), 20.0),
        Disk::new(Point::new(50.0, 55.0), 20.0),
        Disk::new(Point::new(85.0, 55.0), 20.0),
    ];
    let victims: Vec<usize> = map
        .active_sensors()
        .iter()
        .filter(|&&(_, pos)| front.iter().any(|d| d.contains(pos)))
        .map(|&(sid, _)| sid)
        .collect();
    let burned = victims.len();
    for sid in victims {
        map.deactivate_sensor(sid);
    }
    let b2 = maximal_breach_path(&sensor_positions(&map), &field, res);
    println!(
        "stage 3 — fire front burns {} sensors: breach distance {:6.2}  (intruder {})",
        burned,
        b2.distance,
        if b2.distance > cfg.rs {
            "slips through undetected"
        } else {
            "is detected"
        }
    );
    assert!(
        b2.distance > cfg.rs,
        "the burned corridor must open a breach"
    );

    // Stage 4: restoration closes the corridor.
    let out = placer.place(&mut map, &cfg);
    let b3 = maximal_breach_path(&sensor_positions(&map), &field, res);
    println!(
        "stage 4 — +{} restoration sensors:     breach distance {:6.2}  (intruder {})",
        out.placed.len(),
        b3.distance,
        if b3.distance > cfg.rs {
            "slips through undetected"
        } else {
            "is detected"
        }
    );
    assert!(b3.distance <= cfg.rs);
    println!(
        "\nk-coverage guarantees a breach distance of at most rs = {}: every crossing\n\
         passes within sensing range of (at least k) sensors.",
        cfg.rs
    );
}
