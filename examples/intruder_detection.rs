//! Intruder-detection scenario (the paper's motivating application #2).
//!
//! ```text
//! cargo run --release --example intruder_detection
//! ```
//!
//! A surveillance network must see every point with at least `k` sensors,
//! where `k` is derived from a user reliability requirement (§2.1: a point
//! stays covered with probability `1 − q^k` under i.i.d. failure rate
//! `q`). The example sizes `k` for a 99.9% detection guarantee at a 20%
//! node failure rate, deploys with grid DECOR, verifies the paper's
//! k-connectivity corollary (`rc ≥ 2·rs` + k-coverage ⇒ the survivors
//! stay connected), and simulates an intruder walk counting how many
//! sensors track it at each step.

use decor::core::{
    reliability::{coverage_reliability, required_k},
    CoverageMap, DeploymentConfig, GridDecor, Placer,
};
use decor::geom::{Aabb, Point, UnitDiskGraph};
use decor::lds::halton_points;

fn main() {
    // 1. Reliability sizing.
    let q = 0.2; // each sensor fails with 20% probability
    let target = 0.999;
    let k = required_k(target, q).expect("reachable target");
    println!(
        "failure rate q={q}, target reliability {target}: k = {k} \
         (achieves {:.5})",
        coverage_reliability(k, q)
    );

    // 2. Deploy with the distributed grid scheme.
    let field = Aabb::square(100.0);
    let cfg = DeploymentConfig {
        k,
        rc: 8.0, // = 2·rs, the connectivity condition
        ..DeploymentConfig::default()
    };
    let mut map = CoverageMap::new(halton_points(2000, &field), &field, &cfg);
    let out = GridDecor { cell_size: 5.0 }.place(&mut map, &cfg);
    println!(
        "grid DECOR deployed {} sensors in {} rounds; min coverage = {}",
        out.placed.len(),
        out.rounds,
        map.min_coverage()
    );
    assert!(map.min_coverage() >= k);

    // 3. The paper's corollary: with rc >= 2 rs and full k-coverage, the
    //    communication graph is k-connected (survives k−1 node failures).
    let positions: Vec<Point> = map.active_sensors().iter().map(|&(_, p)| p).collect();
    let graph = UnitDiskGraph::build(&positions, cfg.rc);
    println!(
        "communication graph: {} nodes, {} edges, connected = {}",
        graph.len(),
        graph.edge_count(),
        graph.is_connected()
    );
    let kc = graph.vertex_connectivity_at_least(k as usize);
    println!(
        "k-connectivity check (k = {k}): {}",
        if kc { "holds" } else { "violated" }
    );

    // 4. An intruder crosses the field; count the sensors tracking it.
    println!("\nintruder walk (diagonal crossing):");
    let mut min_trackers = usize::MAX;
    for step in 0..=20 {
        let t = step as f64 / 20.0;
        let pos = Point::new(5.0 + 90.0 * t, 95.0 - 90.0 * t);
        let trackers = map.sensors_within(pos, cfg.rs).len();
        min_trackers = min_trackers.min(trackers);
        if step % 4 == 0 {
            println!("  at {pos}: tracked by {trackers} sensors");
        }
    }
    println!("\nminimum simultaneous trackers along the walk: {min_trackers} (required: {k})");
    assert!(
        min_trackers >= k as usize,
        "k-coverage guarantees k trackers"
    );
}
