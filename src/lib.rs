//! # DECOR — Distributed, Reliable k-Coverage Restoration
//!
//! A from-scratch reproduction of *"Distributed, Reliable Restoration
//! Techniques using Wireless Sensor Devices"* (Drougas & Kalogeraki,
//! IPDPS 2007). This facade crate re-exports the workspace sub-crates:
//!
//! - [`geom`] — planar geometry: points, disks, spatial hash-grid index,
//!   local Voronoi cells, unit-disk graphs.
//! - [`lds`] — low-discrepancy point sets (Halton, Hammersley, Sobol) and
//!   discrepancy measures used to approximate the monitored area.
//! - [`net`] — a discrete-event wireless-sensor-network simulator: radio,
//!   neighbor tables, heartbeat failure detection, leader election,
//!   failure injection, message/energy accounting.
//! - [`core`] — the DECOR algorithm itself (grid-based and Voronoi-based
//!   schemes) plus the paper's two baselines (centralized greedy, random
//!   placement), coverage maps, benefit functions, redundancy analysis and
//!   the failure-restoration pipeline.
//! - [`exp`] — the experiment harness reproducing every figure of the
//!   paper's evaluation section.
//! - [`trace`] — structured simulation tracing: typed events, pluggable
//!   sinks, canonical JSONL serialization and a trace differ backing the
//!   golden-trace regression suite.
//!
//! ## Quickstart
//!
//! ```
//! use decor::core::{CoverageMap, DeploymentConfig, centralized::CentralizedGreedy, Placer};
//! use decor::geom::Aabb;
//! use decor::lds::halton_points;
//!
//! // The paper's field: 100 x 100, approximated with 2000 Halton points,
//! // sensing radius rs = 4, coverage requirement k = 2.
//! let field = Aabb::square(100.0);
//! let points = halton_points(2000, &field);
//! let cfg = DeploymentConfig { rs: 4.0, k: 2, ..DeploymentConfig::default() };
//! let mut map = CoverageMap::new(points, &field, &cfg);
//! let outcome = CentralizedGreedy.place(&mut map, &cfg);
//! assert!(outcome.fully_covered);
//! assert_eq!(map.fraction_k_covered(2), 1.0);
//! assert!(!outcome.placed.is_empty());
//! ```

pub use decor_core as core;
pub use decor_exp as exp;
pub use decor_geom as geom;
pub use decor_lds as lds;
pub use decor_net as net;
pub use decor_trace as trace;
