//! Property tests for the DECOR core: coverage invariants shared by every
//! placement algorithm, redundancy soundness, and reliability math.

use decor_core::{
    redundancy::redundant_mask, reliability::coverage_reliability, CentralizedGreedy, CoverageMap,
    DeploymentConfig, GridDecor, Placer, RandomPlacement, VoronoiDecor,
};
use decor_geom::{Aabb, Point};
use decor_lds::halton_points;
use proptest::prelude::*;

fn small_map(k: u32, n_pts: usize, sensors: &[(f64, f64)]) -> (CoverageMap, DeploymentConfig) {
    let field = Aabb::square(100.0);
    let cfg = DeploymentConfig {
        k,
        ..DeploymentConfig::default()
    };
    let mut map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
    for &(x, y) in sensors {
        map.add_sensor(Point::new(x, y), cfg.rs);
    }
    (map, cfg)
}

fn placers(seed: u64) -> Vec<Box<dyn Placer>> {
    vec![
        Box::new(CentralizedGreedy),
        Box::new(RandomPlacement { seed }),
        Box::new(GridDecor { cell_size: 10.0 }),
        Box::new(VoronoiDecor { rc: 8.0 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every placer, on every random initial deployment: terminates,
    /// fully covers, places only inside the field, and reports a
    /// consistent outcome.
    #[test]
    fn placer_postconditions(
        sensors in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..40),
        k in 1u32..3,
        seed in any::<u64>(),
    ) {
        for placer in placers(seed) {
            let (mut map, cfg) = small_map(k, 250, &sensors);
            let before = map.n_active_sensors();
            let out = placer.place(&mut map, &cfg);
            prop_assert!(out.fully_covered, "{}", placer.name());
            prop_assert_eq!(map.count_below(k), 0, "{}", placer.name());
            prop_assert_eq!(out.initial_sensors, before, "{}", placer.name());
            prop_assert_eq!(
                map.n_active_sensors(),
                before + out.placed.len(),
                "{}",
                placer.name()
            );
            let field = Aabb::square(100.0);
            for p in &out.placed {
                prop_assert!(field.contains(*p), "{} left the field", placer.name());
            }
            map.verify_consistency();
        }
    }

    /// Redundancy elimination is sound for arbitrary deployments: after
    /// removing the masked sensors the map still meets the requirement it
    /// met before (if it did).
    #[test]
    fn redundancy_mask_sound(
        sensors in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..80),
        k in 1u32..3,
    ) {
        let (mut map, _) = small_map(k, 200, &sensors);
        let met_before = map.count_below(k) == 0;
        let mask = redundant_mask(&mut map, k);
        // Mask never flags inactive sensors and never flags all coverers
        // of a weakly-covered point.
        for (sid, &flag) in mask.iter().enumerate() {
            if flag {
                map.deactivate_sensor(sid);
            }
        }
        if met_before {
            prop_assert_eq!(map.count_below(k), 0, "coverage lost by elimination");
        }
        map.verify_consistency();
    }

    /// Reliability is monotone in k and antitone in q.
    #[test]
    fn reliability_monotonicity(k in 1u32..10, q in 0.01..0.99f64) {
        let r = coverage_reliability(k, q);
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!(coverage_reliability(k + 1, q) >= r);
        prop_assert!(coverage_reliability(k, q + 0.009) <= r + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Deactivating a random subset of sensors then reactivating them
    /// restores the exact coverage state (failure experiments rely on
    /// this for their clone-free what-if scans).
    #[test]
    fn deactivate_reactivate_roundtrip(
        sensors in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..60),
        kills in prop::collection::vec(any::<prop::sample::Index>(), 1..30),
    ) {
        let (mut map, _) = small_map(1, 150, &sensors);
        let before: Vec<u32> = (0..map.n_points()).map(|i| map.coverage(i)).collect();
        let mut killed = std::collections::BTreeSet::new();
        for sel in &kills {
            let sid = sel.index(sensors.len());
            if map.deactivate_sensor(sid) {
                killed.insert(sid);
            }
        }
        for &sid in &killed {
            prop_assert!(map.reactivate_sensor(sid));
        }
        let after: Vec<u32> = (0..map.n_points()).map(|i| map.coverage(i)).collect();
        prop_assert_eq!(before, after);
    }

    /// More initial sensors never increase the number of *new* nodes the
    /// centralized greedy needs (superset coverage dominance).
    #[test]
    fn more_initials_never_hurt_centralized(
        base in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 0..20),
        extra in prop::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..10),
    ) {
        let (mut m1, cfg) = small_map(1, 200, &base);
        let n1 = CentralizedGreedy.place(&mut m1, &cfg).placed.len();
        let mut both = base.clone();
        both.extend(extra.iter().copied());
        let (mut m2, _) = small_map(1, 200, &both);
        let n2 = CentralizedGreedy.place(&mut m2, &cfg).placed.len();
        prop_assert!(n2 <= n1, "superset start used more new nodes: {n2} > {n1}");
    }
}
