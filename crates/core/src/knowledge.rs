//! Per-viewer sensor knowledge under unreliable placement notices.
//!
//! The distributed schemes estimate coverage from *local knowledge*: a
//! viewer (a Voronoi agent, or a grid cell's leadership) knows the sensors
//! it can hear plus the placements it was notified about (§3.2–3.3). On a
//! perfect medium that knowledge matches the geometric model the schemes
//! already use. On a lossy medium a placement notice can exhaust its retry
//! budget and *never* arrive — the intended recipient then keeps planning
//! as if the new sensor did not exist, which is exactly the border
//! desynchronization the reliable transport bounds.
//!
//! [`NeighborKnowledge`] tracks only the *failure* side of that ledger: the
//! sensors a given viewer provably was not told about. Everything else is
//! known by default, which keeps the lossless path bit-identical to the
//! geometric knowledge model (the empty ledger hides nothing).

use std::collections::{BTreeMap, BTreeSet};

/// Sensors hidden from specific viewers by failed notice deliveries.
///
/// `Viewer` keys are scheme-defined: the Voronoi scheme uses the observing
/// agent's sensor id, the grid scheme the observing cell's index (cell
/// members share a blackboard — whoever leads the cell next round inherits
/// what the cell was told).
#[derive(Clone, Debug, Default)]
pub struct NeighborKnowledge {
    hidden: BTreeMap<usize, BTreeSet<usize>>,
}

impl NeighborKnowledge {
    /// An empty ledger: everyone knows everything.
    pub fn new() -> Self {
        NeighborKnowledge::default()
    }

    /// Records that `viewer` never learned of sensor `sid` (its placement
    /// notice gave up).
    pub fn hide(&mut self, viewer: usize, sid: usize) {
        self.hidden.entry(viewer).or_default().insert(sid);
    }

    /// Reveals `sid` to `viewer` (e.g. a later notice about the same
    /// border got through and carried the state across).
    pub fn reveal(&mut self, viewer: usize, sid: usize) {
        if let Some(set) = self.hidden.get_mut(&viewer) {
            set.remove(&sid);
            if set.is_empty() {
                self.hidden.remove(&viewer);
            }
        }
    }

    /// Does `viewer` know about sensor `sid`? Defaults to `true`.
    pub fn knows(&self, viewer: usize, sid: usize) -> bool {
        self.hidden
            .get(&viewer)
            .is_none_or(|set| !set.contains(&sid))
    }

    /// The set of sensors hidden from `viewer`, if any.
    pub fn hidden_from(&self, viewer: usize) -> Option<&BTreeSet<usize>> {
        self.hidden.get(&viewer)
    }

    /// True when no viewer is missing anything — the lossless fast path.
    pub fn is_empty(&self) -> bool {
        self.hidden.is_empty()
    }

    /// Total number of (viewer, sensor) blind spots.
    pub fn blind_spots(&self) -> usize {
        self.hidden.values().map(BTreeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_knows_everything() {
        let k = NeighborKnowledge::new();
        assert!(k.knows(0, 0));
        assert!(k.knows(7, 99));
        assert!(k.is_empty());
        assert_eq!(k.blind_spots(), 0);
    }

    #[test]
    fn hide_and_reveal_round_trip() {
        let mut k = NeighborKnowledge::new();
        k.hide(3, 10);
        k.hide(3, 11);
        k.hide(5, 10);
        assert!(!k.knows(3, 10));
        assert!(!k.knows(5, 10));
        assert!(k.knows(5, 11), "hiding is per-viewer");
        assert_eq!(k.blind_spots(), 3);
        assert_eq!(k.hidden_from(3).unwrap().len(), 2);
        k.reveal(3, 10);
        assert!(k.knows(3, 10));
        k.reveal(3, 11);
        k.reveal(5, 10);
        assert!(k.is_empty(), "empty sets are pruned");
    }

    #[test]
    fn reveal_of_unknown_pair_is_a_no_op() {
        let mut k = NeighborKnowledge::new();
        k.reveal(1, 2);
        assert!(k.is_empty());
    }
}
