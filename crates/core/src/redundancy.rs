//! Redundant-node identification (the metric of Fig. 9).
//!
//! "A node is considered to be redundant if it does not contribute to the
//! coverage of the area. By eliminating this node, we would still achieve
//! k-coverage. Redundant nodes are identified at the end of the algorithm
//! execution."
//!
//! The scan is sequential and order-dependent (as any such elimination
//! must be — two mutually redundant sensors cannot both be removed): a
//! sensor is removed if every approximation point it covers stays at
//! coverage ≥ `k` without it, then the scan proceeds against the reduced
//! deployment. We scan newest-first, matching the intuition that the most
//! recently placed sensors are the marginal ones.

use crate::coverage::CoverageMap;
use crate::SensorId;

/// Marks redundant sensors. Returns a mask over sensor ids (`true` =
/// redundant) of length `map.n_sensors()`; inactive sensors are never
/// marked. The map is left exactly as it was found (removals are rolled
/// back).
///
/// `k` is the coverage requirement the deployment must keep satisfying.
pub fn redundant_mask(map: &mut CoverageMap, k: u32) -> Vec<bool> {
    let n = map.n_sensors();
    let mut redundant = vec![false; n];
    let mut removed: Vec<SensorId> = Vec::new();
    // Newest-first scan.
    for sid in (0..n).rev() {
        if !map.sensor_active(sid) {
            continue;
        }
        let pos = map.sensor_pos(sid);
        let rs = map.sensor_rs(sid);
        // Removing this sensor drops every covered point by one, so the
        // sensor is needed iff any covered point sits at exactly `k` (or
        // below). Early-exit at the first such point; the outcome is a
        // disjunction, so scan order is irrelevant.
        let needed = !map.for_each_point_within_while(pos, rs, |pid, _| map.coverage(pid) > k);
        if !needed {
            map.deactivate_sensor(sid);
            removed.push(sid);
            redundant[sid] = true;
        }
    }
    // Roll back.
    for sid in removed {
        map.reactivate_sensor(sid);
    }
    redundant
}

/// Convenience: the number and fraction of redundant sensors among the
/// *active* ones. Returns `(count, fraction)`; fraction is 0 for an empty
/// deployment.
pub fn redundancy_stats(map: &mut CoverageMap, k: u32) -> (usize, f64) {
    let mask = redundant_mask(map, k);
    let count = mask.iter().filter(|&&r| r).count();
    let active = map.n_active_sensors();
    let frac = if active == 0 {
        0.0
    } else {
        count as f64 / active as f64
    };
    (count, frac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedGreedy;
    use crate::config::DeploymentConfig;
    use crate::random_place::RandomPlacement;
    use crate::Placer;
    use decor_geom::{Aabb, Point};
    use decor_lds::halton_points;

    fn fresh_map(n_pts: usize, cfg: &DeploymentConfig) -> CoverageMap {
        let field = Aabb::square(100.0);
        CoverageMap::new(halton_points(n_pts, &field), &field, cfg)
    }

    #[test]
    fn lone_necessary_sensor_is_not_redundant() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(200, &cfg);
        map.add_sensor(Point::new(50.0, 50.0), 4.0);
        let mask = redundant_mask(&mut map, 1);
        assert_eq!(mask, vec![false]);
    }

    #[test]
    fn duplicate_sensor_is_redundant() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(200, &cfg);
        map.add_sensor(Point::new(50.0, 50.0), 4.0);
        map.add_sensor(Point::new(50.0, 50.0), 4.0);
        let mask = redundant_mask(&mut map, 1);
        // Exactly one of the twins is redundant (newest-first: id 1).
        assert_eq!(mask, vec![false, true]);
    }

    #[test]
    fn sensor_covering_no_points_is_redundant() {
        let cfg = DeploymentConfig::with_k(1);
        let field = Aabb::square(100.0);
        // Single point far from the sensor.
        let mut map = CoverageMap::new(vec![Point::new(10.0, 10.0)], &field, &cfg);
        map.add_sensor(Point::new(90.0, 90.0), 4.0);
        let mask = redundant_mask(&mut map, 1);
        assert_eq!(mask, vec![true]);
    }

    #[test]
    fn mask_leaves_map_unchanged() {
        let cfg = DeploymentConfig::with_k(2);
        let mut map = fresh_map(300, &cfg);
        for i in 0..30 {
            map.add_sensor(Point::new(3.0 * i as f64 + 2.0, 50.0), cfg.rs);
        }
        let before: Vec<u32> = (0..map.n_points()).map(|i| map.coverage(i)).collect();
        let active_before = map.n_active_sensors();
        let _ = redundant_mask(&mut map, 2);
        let after: Vec<u32> = (0..map.n_points()).map(|i| map.coverage(i)).collect();
        assert_eq!(before, after);
        assert_eq!(map.n_active_sensors(), active_before);
        map.verify_consistency();
    }

    #[test]
    fn removing_all_redundant_keeps_k_coverage() {
        let cfg = DeploymentConfig::with_k(2);
        let mut map = fresh_map(500, &cfg);
        RandomPlacement { seed: 3 }.place(&mut map, &cfg);
        assert_eq!(map.count_below(2), 0);
        let mask = redundant_mask(&mut map, 2);
        for (sid, &r) in mask.iter().enumerate() {
            if r {
                map.deactivate_sensor(sid);
            }
        }
        assert_eq!(
            map.count_below(2),
            0,
            "k-coverage must survive removing every redundant sensor"
        );
    }

    #[test]
    fn random_has_far_more_redundancy_than_greedy() {
        // Fig. 9's headline: random is catastrophically wasteful,
        // centralized greedy nearly waste-free.
        let cfg = DeploymentConfig::with_k(2);
        let mut m1 = fresh_map(600, &cfg);
        CentralizedGreedy.place(&mut m1, &cfg);
        let (_, greedy_frac) = redundancy_stats(&mut m1, 2);
        let mut m2 = fresh_map(600, &cfg);
        RandomPlacement { seed: 5 }.place(&mut m2, &cfg);
        let (_, random_frac) = redundancy_stats(&mut m2, 2);
        assert!(
            random_frac > 3.0 * greedy_frac.max(0.01),
            "random {random_frac} vs greedy {greedy_frac}"
        );
        assert!(
            greedy_frac < 0.1,
            "greedy should waste <10%, got {greedy_frac}"
        );
    }

    #[test]
    fn inactive_sensors_are_ignored() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(200, &cfg);
        let a = map.add_sensor(Point::new(50.0, 50.0), 4.0);
        let b = map.add_sensor(Point::new(50.0, 50.0), 4.0);
        map.deactivate_sensor(a);
        let mask = redundant_mask(&mut map, 1);
        assert!(!mask[a], "inactive sensor is not counted as redundant");
        assert!(!mask[b], "b is now the sole coverer");
    }

    #[test]
    fn stats_fraction_is_over_active_sensors() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(200, &cfg);
        map.add_sensor(Point::new(50.0, 50.0), 4.0);
        map.add_sensor(Point::new(50.0, 50.0), 4.0);
        let (count, frac) = redundancy_stats(&mut map, 1);
        assert_eq!(count, 1);
        assert!((frac - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_deployment_has_zero_stats() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(100, &cfg);
        let (count, frac) = redundancy_stats(&mut map, 1);
        assert_eq!(count, 0);
        assert_eq!(frac, 0.0);
    }
}
