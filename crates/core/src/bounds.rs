//! Analytical bounds on the node count needed for k-coverage.
//!
//! The paper never states them, but they anchor every Fig. 7/8 sanity
//! check in this reproduction: no algorithm can k-cover a field with
//! fewer sensors than `k · area / (π rs²)` (each sensor contributes at
//! most one disk of coverage mass), and a regular lattice achieves full
//! coverage with `≈ area / (rs²·3√3/2)`-ish nodes per layer (hexagonal
//! covering density `2π/√27 ≈ 1.209`).

use decor_geom::Aabb;

/// Hexagonal covering density: the area-overhead factor of the optimal
/// covering of the plane by equal disks (Kershner 1939).
pub const HEX_COVERING_DENSITY: f64 = 1.2091995761561452; // 2π/√27

/// Information-theoretic lower bound: no placement of `n` sensors of
/// radius `rs` can k-cover `field` if `n < k·area/(π rs²)`.
///
/// ```
/// use decor_core::bounds::coverage_lower_bound;
/// use decor_geom::Aabb;
///
/// // The paper's field at k = 4: at least 796 sensors, matching the
/// // centralized greedy's reported 788 within greedy overhead.
/// let field = Aabb::square(100.0);
/// assert_eq!(coverage_lower_bound(&field, 4.0, 4), 796);
/// ```
pub fn coverage_lower_bound(field: &Aabb, rs: f64, k: u32) -> usize {
    assert!(rs > 0.0, "sensing radius must be positive");
    let per_disk = std::f64::consts::PI * rs * rs;
    (k as f64 * field.area() / per_disk).ceil() as usize
}

/// Achievable estimate: the node count of `k` stacked optimal hexagonal
/// coverings (ignoring boundary overheads, which add a few percent).
pub fn hexagonal_cover_estimate(field: &Aabb, rs: f64, k: u32) -> usize {
    assert!(rs > 0.0, "sensing radius must be positive");
    let per_disk = std::f64::consts::PI * rs * rs;
    (k as f64 * field.area() * HEX_COVERING_DENSITY / per_disk).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedGreedy;
    use crate::config::DeploymentConfig;
    use crate::coverage::CoverageMap;
    use crate::Placer;
    use decor_lds::halton_points;

    #[test]
    fn paper_field_bounds() {
        let field = Aabb::square(100.0);
        // k=1: 10000/(π·16) ≈ 199; k=4: ≈ 796.
        assert_eq!(coverage_lower_bound(&field, 4.0, 1), 199);
        assert_eq!(coverage_lower_bound(&field, 4.0, 4), 796);
        let hex1 = hexagonal_cover_estimate(&field, 4.0, 1);
        assert!((240..=242).contains(&hex1), "hex estimate {hex1}");
    }

    #[test]
    fn bounds_order() {
        let field = Aabb::square(100.0);
        for k in 1..=5 {
            assert!(
                coverage_lower_bound(&field, 4.0, k) < hexagonal_cover_estimate(&field, 4.0, k)
            );
        }
    }

    #[test]
    fn centralized_greedy_lands_between_bound_and_3x() {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(2);
        let mut map = CoverageMap::new(halton_points(2000, &field), &field, &cfg);
        let placed = CentralizedGreedy.place(&mut map, &cfg).placed.len();
        let lb = coverage_lower_bound(&field, cfg.rs, cfg.k);
        assert!(placed >= lb, "impossible: {placed} below lower bound {lb}");
        assert!(
            placed < 3 * lb,
            "greedy too wasteful: {placed} vs bound {lb}"
        );
    }

    #[test]
    fn bound_scales_linearly_in_k() {
        let field = Aabb::square(50.0);
        let b1 = coverage_lower_bound(&field, 4.0, 1);
        let b5 = coverage_lower_bound(&field, 4.0, 5);
        assert!((b5 as f64 - 5.0 * b1 as f64).abs() < 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_radius_panics() {
        let _ = coverage_lower_bound(&Aabb::square(10.0), 0.0, 1);
    }
}
