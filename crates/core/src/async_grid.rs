//! Event-driven (asynchronous) grid DECOR.
//!
//! The paper stresses that "the nodes do not need to be synchronized",
//! yet any round-based simulation (our [`crate::GridDecor`]) quietly
//! synchronizes the leaders' decisions. This implementation runs the grid
//! scheme on the discrete-event engine of `decor-net` instead:
//!
//! - every populated cell's leader wakes on its own timer (period
//!   `work_period`, random initial phase — *unsynchronized*);
//! - on waking it places at most one sensor at its cell's best point,
//!   judged against its **local view** of coverage;
//! - placement notices to overlapping neighbor cells arrive only after
//!   `notice_latency` ticks; until then the neighbors' views are stale
//!   and they may redundantly cover the shared border.
//!
//! The knowledge model is therefore sharper than the synchronous one: a
//! leader knows (a) the initial sensors overlapping its cell (hello
//! exchange at time 0), (b) its own placements immediately, and (c)
//! neighbors' placements once the notice lands. The `latency /
//! work_period` ratio directly controls how much duplicated border
//! coverage asynchrony costs — measured by the `ext_async` experiment.

use crate::config::DeploymentConfig;
use crate::coverage::CoverageMap;
use crate::grid_scheme::Cells;
use crate::metrics::{MessageStats, PlacementOutcome, TracePoint};
use crate::Placer;
use decor_geom::Disk;
use decor_net::{EventQueue, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asynchronous grid DECOR.
#[derive(Clone, Copy, Debug)]
pub struct AsyncGridDecor {
    /// Cell edge length (5 = the paper's small cell, 10 = big).
    pub cell_size: f64,
    /// Ticks between a leader's consecutive wake-ups.
    pub work_period: Time,
    /// Ticks a placement notice needs to reach a neighbor leader.
    pub notice_latency: Time,
    /// Seed for the leaders' initial phases.
    pub seed: u64,
}

impl Default for AsyncGridDecor {
    fn default() -> Self {
        AsyncGridDecor {
            cell_size: 5.0,
            work_period: 1_000,
            notice_latency: 100,
            seed: 0,
        }
    }
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// A cell's leader wakes to inspect its cell.
    Wake(usize),
    /// A placement notice arrives at a cell: a sensor was placed at the
    /// position with the given approximation-point id.
    Notice { cell: usize, pid: usize },
}

impl AsyncGridDecor {
    /// Benefit of candidate `pid` for cell `ci`, judged against the
    /// *estimated* coverage `est` (the leader's local view).
    fn est_cell_benefit(
        map: &CoverageMap,
        cells: &Cells,
        est: &[u32],
        ci: usize,
        pid: usize,
        cfg: &DeploymentConfig,
    ) -> u64 {
        let c = map.points()[pid];
        let mut b = 0u64;
        // Frozen-index radius query filtered to the cell's own points;
        // order-independent integer sum, identical to a scan of the cell.
        map.for_each_point_within_unordered(c, cfg.rs, |qid, _| {
            if cells.cell_of_pid[qid] == ci as u32 && est[qid] < cfg.k {
                b += (cfg.k - est[qid]) as u64;
            }
        });
        b
    }

    fn best_est_candidate(
        map: &CoverageMap,
        cells: &Cells,
        est: &[u32],
        ci: usize,
        cfg: &DeploymentConfig,
    ) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for &pid in &cells.points[ci] {
            if est[pid] >= cfg.k {
                continue;
            }
            let b = Self::est_cell_benefit(map, cells, est, ci, pid, cfg);
            if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                best = Some((pid, b));
            }
        }
        best
    }
}

impl Placer for AsyncGridDecor {
    fn name(&self) -> String {
        format!(
            "AsyncGrid ({}x{}, L/T={:.2})",
            self.cell_size,
            self.cell_size,
            self.notice_latency as f64 / self.work_period as f64
        )
    }

    fn place(&self, map: &mut CoverageMap, cfg: &DeploymentConfig) -> PlacementOutcome {
        cfg.validate();
        assert!(self.work_period > 0, "work period must be positive");
        let field = *map.field();
        let mut cells = Cells::new(&field, self.cell_size, map);
        for (sid, pos) in map.active_sensors() {
            let ci = cells.index_of(pos);
            cells.members[ci].push(sid);
        }
        let initial = map.n_active_sensors();
        let mut out = PlacementOutcome {
            initial_sensors: initial,
            ..PlacementOutcome::default()
        };
        out.trace.push(TracePoint {
            total_sensors: initial,
            fraction_k_covered: map.fraction_k_covered(cfg.k),
        });

        // Local views: est[pid] = coverage the owning cell's leader knows
        // of. Initial sensors are known everywhere (hello flood at t=0).
        let mut est: Vec<u32> = (0..map.n_points()).map(|pid| map.coverage(pid)).collect();

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut q: EventQueue<Ev> = EventQueue::new();
        for ci in 0..cells.len() {
            if !cells.members[ci].is_empty() {
                q.schedule(rng.gen_range(0..self.work_period), Ev::Wake(ci));
            }
        }

        let mut notices_sent: u64 = 0;
        let mut last_placement: Time = 0;
        let mut wakes: u64 = 0;
        let quiet_window = 2 * (self.notice_latency + 2 * self.work_period);
        let max_time: Time = self.work_period.saturating_mul(1_000_000);

        while let Some((now, ev)) = q.pop() {
            if now > max_time {
                break;
            }
            match ev {
                Ev::Notice { cell, pid } => {
                    // The notice carries the new sensor's position; the
                    // receiving leader refreshes its view of its own
                    // points inside that sensor's disk.
                    let pos = map.points()[pid];
                    map.for_each_point_within_unordered(pos, cfg.rs, |qid, _| {
                        if cells.cell_of_pid[qid] == cell as u32 {
                            est[qid] += 1;
                        }
                    });
                }
                Ev::Wake(ci) => {
                    wakes += 1;
                    if cells.members[ci].is_empty() {
                        continue; // leaderless (can only happen via races)
                    }
                    let mut acted = false;
                    if out.placed.len() < cfg.max_new_nodes {
                        let decision = Self::best_est_candidate(map, &cells, &est, ci, cfg)
                            .map(|(pid, _)| (ci, pid))
                            .or_else(|| {
                                // Own cell looks covered: adopt one empty
                                // neighboring cell that is truly deficient
                                // (the empty cell has no local view to
                                // consult — base-station knowledge).
                                cells.neighbors(ci).into_iter().find_map(|nc| {
                                    if !cells.members[nc].is_empty() {
                                        return None;
                                    }
                                    crate::grid_scheme::GridDecor::best_candidate_for(
                                        map, &cells, nc, cfg,
                                    )
                                    .map(|(pid, _)| (nc, pid))
                                })
                            });
                        if let Some((target_cell, pid)) = decision {
                            let pos = map.points()[pid];
                            let sid = map.add_sensor(pos, cfg.rs);
                            let home = cells.index_of(pos);
                            cells.members[home].push(sid);
                            out.placed.push(pos);
                            last_placement = now;
                            acted = true;
                            // The placer's own view updates instantly for
                            // the *acting* cell; everyone else overlapping
                            // the disk waits for the notice.
                            map.for_each_point_within_unordered(pos, cfg.rs, |qid, _| {
                                if cells.cell_of_pid[qid] == target_cell as u32 {
                                    est[qid] += 1;
                                }
                            });
                            let disk = Disk::new(pos, cfg.rs);
                            for nc in cells.neighbors(target_cell) {
                                if disk.intersects_aabb(&cells.rect(nc)) {
                                    notices_sent += 1;
                                    if !cells.members[nc].is_empty() || nc == ci {
                                        q.schedule(
                                            now + self.notice_latency,
                                            Ev::Notice { cell: nc, pid },
                                        );
                                    }
                                }
                            }
                            // Cross-adoption: the acting cell also tells
                            // itself when seeding elsewhere.
                            if target_cell != ci && disk.intersects_aabb(&cells.rect(ci)) {
                                q.schedule(now + self.notice_latency, Ev::Notice { cell: ci, pid });
                                notices_sent += 1;
                            }
                            out.trace.push(TracePoint {
                                total_sensors: initial + out.placed.len(),
                                fraction_k_covered: map.fraction_k_covered(cfg.k),
                            });
                        }
                    }
                    let _ = acted;
                    // Quiescence: nothing placed network-wide for a full
                    // quiet window. Progress can only restart through a
                    // notice (at most `notice_latency` in flight) or a
                    // wake (every `work_period`), so a silent window of
                    // `2·(latency + 2·periods)` proves a fixed point —
                    // whether or not the ground truth is covered (the
                    // synchronous rescue below handles any leftovers,
                    // e.g. deficient cells with no populated neighbor).
                    let quiet = now.saturating_sub(last_placement) > quiet_window;
                    if quiet {
                        break;
                    }
                    q.schedule(now + self.work_period, Ev::Wake(ci));
                }
            }
        }

        // Rescue any deficiency the asynchronous run could not reach
        // (e.g. deficient points in cells with no populated neighbor):
        // fall back to the synchronous seeding logic.
        if map.count_below(cfg.k) > 0 && out.placed.len() < cfg.max_new_nodes {
            let sync = crate::grid_scheme::GridDecor {
                cell_size: self.cell_size,
            };
            let rescue_cfg = DeploymentConfig {
                max_new_nodes: cfg.max_new_nodes - out.placed.len(),
                ..cfg.clone()
            };
            let rescue = sync.place(map, &rescue_cfg);
            out.placed.extend(rescue.placed);
            notices_sent += rescue.messages.protocol_total;
        }

        out.rounds = wakes as usize;
        out.fully_covered = map.count_below(cfg.k) == 0;
        let populated = cells
            .members
            .iter()
            .filter(|m| !m.is_empty())
            .count()
            .max(1);
        let total_members: usize = cells.members.iter().map(Vec::len).sum();
        out.messages = MessageStats {
            protocol_total: notices_sent,
            cells: populated,
            per_cell: notices_sent as f64 / populated as f64,
            per_node_rotated: notices_sent as f64 / total_members.max(1) as f64,
            ..MessageStats::default()
        };
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::Aabb;
    use decor_lds::{halton_points, random_points};

    fn setup(k: u32, n_pts: usize, initial: usize, seed: u64) -> (CoverageMap, DeploymentConfig) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(k);
        let mut map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
        for p in random_points(initial, &field, seed) {
            map.add_sensor(p, cfg.rs);
        }
        (map, cfg)
    }

    fn async_placer(latency: Time) -> AsyncGridDecor {
        AsyncGridDecor {
            cell_size: 5.0,
            work_period: 1_000,
            notice_latency: latency,
            seed: 3,
        }
    }

    #[test]
    fn reaches_full_coverage() {
        let (mut map, cfg) = setup(1, 500, 50, 1);
        let out = async_placer(100).place(&mut map, &cfg);
        assert!(out.fully_covered, "uncovered: {}", map.count_below(1));
        assert!(out.rounds > 0);
        map.verify_consistency();
    }

    #[test]
    fn reaches_full_coverage_k2() {
        let (mut map, cfg) = setup(2, 500, 60, 2);
        let out = async_placer(200).place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert!(map.min_coverage() >= 2);
    }

    #[test]
    fn latency_costs_nodes() {
        // The asynchrony thesis: higher notice latency (relative to the
        // work period) means staler views and more duplicated border
        // coverage. Compare near-zero latency with latency of several
        // work periods.
        let totals = |latency: Time| {
            let (mut map, cfg) = setup(2, 600, 80, 5);
            async_placer(latency).place(&mut map, &cfg).placed.len()
        };
        let fast = totals(10);
        let slow = totals(5_000);
        assert!(
            slow >= fast,
            "stale views cannot help: latency 5000 -> {slow}, latency 10 -> {fast}"
        );
    }

    #[test]
    fn near_zero_latency_close_to_synchronous_cost() {
        use crate::grid_scheme::GridDecor;
        let (mut m1, cfg) = setup(2, 500, 60, 7);
        let sync = GridDecor { cell_size: 5.0 }
            .place(&mut m1, &cfg)
            .placed
            .len();
        let (mut m2, _) = setup(2, 500, 60, 7);
        let async_n = async_placer(10).place(&mut m2, &cfg).placed.len();
        let ratio = async_n as f64 / sync as f64;
        assert!(
            (0.6..=1.6).contains(&ratio),
            "async {async_n} vs sync {sync} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let run = |seed| {
            let (mut map, cfg) = setup(1, 400, 40, 9);
            AsyncGridDecor {
                cell_size: 5.0,
                work_period: 500,
                notice_latency: 100,
                seed,
            }
            .place(&mut map, &cfg)
            .placed
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn counts_notices_as_messages() {
        let (mut map, cfg) = setup(1, 400, 50, 11);
        let out = async_placer(100).place(&mut map, &cfg);
        assert!(out.messages.protocol_total > 0);
        assert!(out.messages.per_cell > 0.0);
    }

    #[test]
    fn respects_max_new_nodes() {
        let cfg = DeploymentConfig {
            max_new_nodes: 6,
            ..DeploymentConfig::with_k(2)
        };
        let field = Aabb::square(100.0);
        let mut map = CoverageMap::new(halton_points(300, &field), &field, &cfg);
        map.add_sensor(decor_geom::Point::new(50.0, 50.0), cfg.rs);
        let out = async_placer(100).place(&mut map, &cfg);
        assert!(out.placed.len() <= 6);
        assert!(!out.fully_covered);
    }
}
