//! Parallel execution helpers (crossbeam scoped threads).
//!
//! The paper averages every figure over 5 random fields. Replicas are
//! embarrassingly parallel, so [`run_replicas`] fans them out over scoped
//! threads — one per replica up to the hardware parallelism — with
//! deterministic per-replica seeds derived by splitmix64, guaranteeing
//! sequential and parallel execution produce identical results.
//!
//! [`par_best_candidate`] additionally parallelizes the inner benefit
//! argmax scan; it exists for the ablation benches (the incremental
//! [`crate::BenefitTable`] usually beats brute-force parallelism, which is
//! the point the ablation makes).

use crate::benefit::benefit_at;
use crate::coverage::CoverageMap;
use decor_lds::vdc::splitmix64;

/// Derives the seed for replica `i` from a base seed.
///
/// Mixing (rather than `base + i`) keeps replica RNG streams statistically
/// independent even for adjacent indices.
pub fn replica_seed(base: u64, i: usize) -> u64 {
    splitmix64(base ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15))
}

/// Parses a `DECOR_THREADS`-style override: a positive integer, with
/// surrounding whitespace tolerated. Anything else (empty, `0`, garbage)
/// is rejected so a typo falls back to the hardware default instead of
/// silently serializing the run.
pub fn parse_thread_override(value: &str) -> Option<usize> {
    value.trim().parse::<usize>().ok().filter(|&n| n >= 1)
}

/// The worker count [`run_replicas`] (and the experiment matrix runner)
/// uses: the `DECOR_THREADS` environment override when set to a positive
/// integer, else the hardware parallelism. Bench boxes and CI runners pin
/// worker counts with the env var; because every parallel helper in this
/// crate is deterministic in its inputs, the setting can only change wall
/// time, never results.
pub fn default_threads() -> usize {
    std::env::var("DECOR_THREADS")
        .ok()
        .and_then(|v| parse_thread_override(&v))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// Runs `f(replica_index, replica_seed)` for `n` replicas in parallel and
/// returns the results in replica order.
///
/// `f` must be deterministic in its arguments; the output is then
/// identical to the sequential loop regardless of thread scheduling. The
/// worker count is the hardware parallelism unless `DECOR_THREADS`
/// overrides it (see [`default_threads`]).
pub fn run_replicas<T, F>(n: usize, base_seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    run_replicas_with_threads(n, base_seed, default_threads(), f)
}

/// [`run_replicas`] with an explicit worker count instead of the hardware
/// parallelism. The results must be identical for every `threads >= 1` —
/// the determinism suite pins this by comparing traces across counts.
pub fn run_replicas_with_threads<T, F>(n: usize, base_seed: u64, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        return (0..n).map(|i| f(i, replica_seed(base_seed, i))).collect();
    }
    // Work-stealing over an atomic index; each worker accumulates its own
    // `(index, result)` pairs and the results are scattered into their
    // slots after the joins — disjoint per-slot storage, no shared lock on
    // the hot path.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<T>> = (0..n).map(|_| None).collect();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|_| {
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(i, replica_seed(base_seed, i))));
                }
                local
            }));
        }
        for h in handles {
            for (i, out) in h.join().expect("replica worker panicked") {
                debug_assert!(results[i].is_none(), "replica {i} computed twice");
                results[i] = Some(out);
            }
        }
    })
    .expect("replica scope failed");
    results
        .into_iter()
        .map(|o| o.expect("every replica filled"))
        .collect()
}

/// Parallel argmax of the benefit function over candidate point ids.
///
/// Returns `(point_id, benefit)` of the best candidate with positive
/// benefit (ties to the lowest id — same contract as
/// [`crate::BenefitTable::best`]), or `None` when all benefits are zero.
pub fn par_best_candidate(
    map: &CoverageMap,
    cands: &[usize],
    rs: f64,
    k: u32,
) -> Option<(usize, u64)> {
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(cands.len().max(1));
    if threads <= 1 || cands.len() < 256 {
        return best_in_slice(map, cands, rs, k);
    }
    let chunk = cands.len().div_ceil(threads);
    let best = crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for part in cands.chunks(chunk) {
            handles.push(scope.spawn(move |_| best_in_slice(map, part, rs, k)));
        }
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("benefit scan panicked"))
            .min_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)))
    })
    .expect("scope failed");
    best
}

fn best_in_slice(map: &CoverageMap, cands: &[usize], rs: f64, k: u32) -> Option<(usize, u64)> {
    let mut best: Option<(usize, u64)> = None;
    for &pid in cands {
        let b = benefit_at(map, map.points()[pid], rs, k);
        if b > 0 {
            match best {
                Some((bp, bb)) if bb > b || (bb == b && bp < pid) => {}
                _ => best = Some((pid, b)),
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeploymentConfig;
    use decor_geom::Aabb;
    use decor_lds::halton_points;

    #[test]
    fn replica_seeds_are_distinct_and_stable() {
        let s: Vec<u64> = (0..16).map(|i| replica_seed(42, i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 16);
        assert_eq!(replica_seed(42, 3), s[3]);
    }

    #[test]
    fn run_replicas_matches_sequential() {
        let par = run_replicas(8, 7, |i, seed| (i, seed, (i as u64).wrapping_mul(seed)));
        let seq: Vec<_> = (0..8)
            .map(|i| {
                let seed = replica_seed(7, i);
                (i, seed, (i as u64).wrapping_mul(seed))
            })
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn thread_override_parsing() {
        assert_eq!(parse_thread_override("4"), Some(4));
        assert_eq!(parse_thread_override(" 16 "), Some(16));
        assert_eq!(parse_thread_override("0"), None, "zero workers is absurd");
        assert_eq!(parse_thread_override(""), None);
        assert_eq!(parse_thread_override("four"), None);
        assert_eq!(parse_thread_override("-2"), None);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn decor_threads_env_pins_workers_without_changing_results() {
        // Results are a pure function of (n, base_seed), so every
        // DECOR_THREADS setting must reproduce the reference exactly.
        // (Other tests in this binary may race reads of the var; that is
        // harmless for the same reason.)
        let reference: Vec<_> = (0..20).map(|i| (i, replica_seed(5, i))).collect();
        for setting in ["1", "2", "7", "64"] {
            std::env::set_var("DECOR_THREADS", setting);
            assert_eq!(
                default_threads(),
                setting.parse::<usize>().unwrap(),
                "override must be honored"
            );
            let got = run_replicas(20, 5, |i, seed| (i, seed));
            assert_eq!(got, reference, "DECOR_THREADS={setting}");
        }
        std::env::remove_var("DECOR_THREADS");
        assert_eq!(run_replicas(20, 5, |i, seed| (i, seed)), reference);
    }

    #[test]
    fn run_replicas_zero_is_empty() {
        let v: Vec<u32> = run_replicas(0, 1, |_, _| 0);
        assert!(v.is_empty());
    }

    #[test]
    fn explicit_thread_counts_agree() {
        let reference: Vec<_> = (0..12).map(|i| (i, replica_seed(11, i))).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = run_replicas_with_threads(12, 11, threads, |i, seed| (i, seed));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn run_replicas_heavier_than_threads() {
        // More replicas than cores exercises the work-stealing loop.
        let v = run_replicas(64, 3, |i, _| i * i);
        assert_eq!(v.len(), 64);
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i * i);
        }
    }

    #[test]
    fn par_best_matches_sequential_table() {
        use crate::benefit::BenefitTable;
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(2);
        let mut map = CoverageMap::new(halton_points(600, &field), &field, &cfg);
        // A few sensors to create variation.
        for i in 0..10 {
            map.add_sensor(decor_geom::Point::new(10.0 * i as f64 + 5.0, 40.0), cfg.rs);
        }
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let table = BenefitTable::new(&map, cands.clone(), cfg.rs, cfg.k);
        let (slot, pid, _, b) = table.best().unwrap();
        assert_eq!(slot, pid);
        let par = par_best_candidate(&map, &cands, cfg.rs, cfg.k).unwrap();
        assert_eq!(par, (pid, b));
    }

    #[test]
    fn par_best_none_when_covered() {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(1);
        let mut map = CoverageMap::new(halton_points(300, &field), &field, &cfg);
        map.add_sensor(decor_geom::Point::new(50.0, 50.0), 200.0);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        assert!(par_best_candidate(&map, &cands, cfg.rs, cfg.k).is_none());
    }

    #[test]
    fn small_candidate_sets_use_sequential_path() {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(1);
        let map = CoverageMap::new(halton_points(100, &field), &field, &cfg);
        let cands = vec![5usize, 10, 20];
        let best = par_best_candidate(&map, &cands, cfg.rs, cfg.k).unwrap();
        assert!(cands.contains(&best.0));
    }
}
