//! The full failure-and-restoration pipeline (§4.2, Figs. 11–14).
//!
//! A deployed network suffers failures (random or area), surviving
//! neighbors detect them through the heartbeat protocol, and a placement
//! algorithm restores `k`-coverage. [`fail_and_restore`] wires the pieces
//! together: `decor-net` failure injection and detection on one side,
//! `decor-core` placement on the other, with the coverage map as the
//! shared ground truth.

use crate::config::DeploymentConfig;
use crate::coverage::CoverageMap;
use crate::metrics::PlacementOutcome;
use crate::Placer;
use decor_net::{
    FailurePlan, HeartbeatConfig, HeartbeatSim, Network, NodeId, ShiftSchedule, SleepScheduler,
    Time,
};
use decor_trace::TraceEvent;

/// Outcome of one failure-and-restoration episode.
#[derive(Clone, Debug)]
pub struct RestorationReport {
    /// Sensors killed by the failure plan.
    pub victims: usize,
    /// Victims detected by the heartbeat protocol (equals `victims` when
    /// detection is skipped — failures are then assumed known).
    pub detected: usize,
    /// Worst-case detection latency in ticks (None when detection was
    /// skipped or nothing was detected).
    pub detection_latency: Option<Time>,
    /// Fraction of points still `k`-covered right after the failure
    /// (the y-axis of Figs. 11 and 13).
    pub coverage_after_failure: f64,
    /// New sensors the restoration placed (the y-axis of Fig. 14).
    pub extra_nodes: usize,
    /// Fraction of points `k`-covered after restoration.
    pub coverage_after_restore: f64,
    /// Alive nodes the detector suspected dead anyway (false alarms that
    /// would have triggered pointless restorations). With rotation
    /// enabled this must stay zero for scheduled sleepers: the pipeline
    /// consults the sleep schedule before declaring anyone dead.
    pub false_restorations: usize,
    /// Timeouts that crossed while the silent neighbor was scheduled
    /// asleep — each one a restoration the three-state lifecycle
    /// prevented. Always 0 without `DeploymentConfig::rotation`.
    pub sleeping_suppressed: u64,
    /// The raw placement outcome of the restoration run.
    pub outcome: PlacementOutcome,
}

/// Fails sensors per `plan`, optionally runs heartbeat detection, then
/// restores `k`-coverage with `placer`.
///
/// When `heartbeat` is `Some`, a detection simulation runs first: the
/// failure fires at tick `4 × period` and detection gets `40` periods to
/// conclude; its latency lands in the report. Restoration proceeds for all
/// victims regardless (undetected isolated victims are eventually noticed
/// as coverage holes — the paper's uncovered-region estimation).
///
/// Restoration is output-sensitive: the deactivations mark the damaged
/// tiles of the coverage map's summary layer, and every placer works from
/// that deficient-tile set — the centralized baseline restricts its
/// candidate pool to the damaged tiles plus an `rs` ring, grid DECOR
/// builds its engine over the damaged cells only, and the Voronoi scheme's
/// ownership worklist re-examines (after one initial pass) only the points
/// each round's placements disturbed. Cost scales with the damaged area,
/// not the field; placements are identical to the full-field sweeps
/// (differential tests pin this).
pub fn fail_and_restore(
    map: &mut CoverageMap,
    placer: &dyn Placer,
    cfg: &DeploymentConfig,
    plan: &FailurePlan,
    heartbeat: Option<HeartbeatConfig>,
) -> RestorationReport {
    cfg.validate();
    // Mirror the active sensors into a network for failure selection and
    // detection. Network node i corresponds to sensors[i] below. The
    // configured link loss applies here too, so heartbeat detection runs
    // over the same medium the restoration placer will use.
    let sensors = map.active_sensors();
    let mut net = Network::new(*map.field());
    cfg.link.apply(&mut net);
    net.set_trace(cfg.trace.clone());
    for &(_, pos) in &sensors {
        net.add_node(pos, cfg.rs, cfg.rc);
    }
    let victims_net = plan.victims(&net);

    // With rotation configured, detection must run against the sleep
    // schedule: a node whose shift is off duty is Asleep, not Dead, and
    // its silence must never be declared a failure. The schedule is the
    // canonical set-k-cover partition of the pre-failure deployment —
    // exactly what the in-network agreement (`crate::rotation`) lands on.
    let schedule: Option<ShiftSchedule> = cfg.rotation.as_ref().and_then(|rot| {
        rot.validate();
        let shifts = SleepScheduler::new(rot.target_coverage).shifts(&net, map.points());
        let n = net.len();
        (shifts.len() > 1).then(|| ShiftSchedule::new(shifts, rot.period, n))
    });

    let (detected, latency, false_restorations, sleeping_suppressed) = match heartbeat {
        Some(hb) => {
            let sim = HeartbeatSim::new(hb);
            let fail_at = 4 * hb.period;
            let horizon = fail_at + 40 * hb.period;
            let report = match &schedule {
                Some(sched) => sim.run_scheduled(&mut net, &victims_net, fail_at, horizon, sched),
                None => sim.run(&mut net, &victims_net, fail_at, horizon),
            };
            cfg.trace.set_time(fail_at);
            for &v in &victims_net {
                cfg.trace.emit(TraceEvent::NodeFailed { node: v as u64 });
            }
            // Detections in (time, victim) order so the trace timeline
            // stays monotone.
            let mut detections: Vec<(Time, NodeId, NodeId)> = report
                .first_detection
                .iter()
                .map(|(&victim, &(t, observer))| (t, victim, observer))
                .collect();
            detections.sort_unstable();
            for (t, victim, observer) in detections {
                cfg.trace.set_time(t);
                cfg.trace.emit(TraceEvent::HeartbeatMiss {
                    observer: observer as u64,
                    node: victim as u64,
                });
            }
            (
                report.first_detection.len(),
                report.max_latency(fail_at),
                report.false_positives.len(),
                report.sleeping_suppressed,
            )
        }
        None => {
            for &v in &victims_net {
                net.fail_node(v);
                cfg.trace.emit(TraceEvent::NodeFailed { node: v as u64 });
            }
            (victims_net.len(), None, 0, 0)
        }
    };

    // Kill the same sensors in the coverage map.
    for &v in &victims_net {
        let (sid, _) = sensors[v];
        map.deactivate_sensor(sid);
    }
    let coverage_after_failure = map.fraction_k_covered(cfg.k);

    let outcome = placer.place(map, cfg);
    RestorationReport {
        victims: victims_net.len(),
        detected,
        detection_latency: latency,
        coverage_after_failure,
        extra_nodes: outcome.placed.len(),
        coverage_after_restore: map.fraction_k_covered(cfg.k),
        false_restorations,
        sleeping_suppressed,
        outcome,
    }
}

/// Fails an exact fraction of sensors and reports only the surviving
/// coverage — the Fig. 11/12 measurement (no restoration). Leaves the map
/// failed; callers clone or rebuild.
pub fn coverage_after_failure(
    map: &mut CoverageMap,
    cfg: &DeploymentConfig,
    plan: &FailurePlan,
    k_measure: u32,
) -> f64 {
    let sensors = map.active_sensors();
    let mut net = Network::new(*map.field());
    for &(_, pos) in &sensors {
        net.add_node(pos, cfg.rs, cfg.rc);
    }
    let victims = plan.victims(&net);
    for &v in &victims {
        map.deactivate_sensor(sensors[v].0);
    }
    map.fraction_k_covered(k_measure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedGreedy;
    use decor_geom::{Aabb, Disk, Point};
    use decor_lds::halton_points;

    fn covered_map(k: u32, n_pts: usize) -> (CoverageMap, DeploymentConfig) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(k);
        let mut map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
        CentralizedGreedy.place(&mut map, &cfg);
        assert_eq!(map.count_below(k), 0);
        (map, cfg)
    }

    #[test]
    fn area_failure_then_restore_recovers_coverage() {
        let (mut map, cfg) = covered_map(1, 600);
        let plan = FailurePlan::Area {
            disk: Disk::new(Point::new(50.0, 50.0), 24.0),
        };
        let report = fail_and_restore(&mut map, &CentralizedGreedy, &cfg, &plan, None);
        assert!(report.victims > 0);
        assert!(report.coverage_after_failure < 1.0);
        assert!(report.extra_nodes > 0);
        assert_eq!(report.coverage_after_restore, 1.0);
        assert_eq!(map.count_below(1), 0);
    }

    #[test]
    fn area_failure_drops_roughly_the_disc_share() {
        let (mut map, cfg) = covered_map(1, 1000);
        let plan = FailurePlan::Area {
            disk: Disk::new(Point::new(50.0, 50.0), 24.0),
        };
        let cov = coverage_after_failure(&mut map, &cfg, &plan, 1);
        // Disc is ~18% of the field; sensors just outside still cover the
        // fringe, so the covered share stays within a band around 82%.
        assert!((0.70..=0.95).contains(&cov), "coverage {cov}");
    }

    #[test]
    fn random_fraction_failure_degrades_gracefully() {
        let (mut map, cfg) = covered_map(3, 800);
        let plan = FailurePlan::Fraction {
            frac: 0.15,
            seed: 2,
        };
        let cov3 = coverage_after_failure(&mut map, &cfg, &plan, 3);
        assert!(cov3 < 1.0, "some 3-coverage must be lost");
        // 1-coverage survives much better than 3-coverage.
        let cov1 = map.fraction_k_covered(1);
        assert!(cov1 > cov3);
        assert!(cov1 > 0.95, "1-coverage should barely notice 15% failures");
    }

    #[test]
    fn detection_reports_latency_and_counts() {
        let (mut map, cfg) = covered_map(1, 400);
        let plan = FailurePlan::Fraction { frac: 0.1, seed: 3 };
        let hb = HeartbeatConfig {
            period: 100,
            timeout_periods: 3,
            seed: 4,
        };
        let report = fail_and_restore(&mut map, &CentralizedGreedy, &cfg, &plan, Some(hb));
        assert!(report.victims > 0);
        assert!(report.detected > 0);
        assert!(report.detected <= report.victims);
        let lat = report.detection_latency.expect("something detected");
        assert!((200..=1000).contains(&lat), "latency {lat}");
        assert_eq!(report.coverage_after_restore, 1.0);
    }

    #[test]
    fn detection_emits_failure_and_miss_events() {
        let (mut map, mut cfg) = covered_map(1, 400);
        cfg.trace = decor_trace::TraceHandle::counting();
        let plan = FailurePlan::Fraction { frac: 0.1, seed: 3 };
        let hb = HeartbeatConfig {
            period: 100,
            timeout_periods: 3,
            seed: 4,
        };
        let placer = crate::grid_scheme::GridDecor { cell_size: 10.0 };
        let report = fail_and_restore(&mut map, &placer, &cfg, &plan, Some(hb));
        let counts = cfg.trace.counts().expect("counting sink attached");
        let get = |k: &str| counts.get(k).copied().unwrap_or(0);
        assert_eq!(get("node_failed"), report.victims as u64);
        assert_eq!(get("heartbeat_miss"), report.detected as u64);
        assert_eq!(get("sensor_placed"), report.extra_nodes as u64);
    }

    #[test]
    fn no_failures_means_no_restoration() {
        let (mut map, cfg) = covered_map(1, 300);
        let plan = FailurePlan::Fraction { frac: 0.0, seed: 5 };
        let report = fail_and_restore(&mut map, &CentralizedGreedy, &cfg, &plan, None);
        assert_eq!(report.victims, 0);
        assert_eq!(report.extra_nodes, 0);
        assert_eq!(report.coverage_after_failure, 1.0);
    }

    #[test]
    fn sleeping_nodes_cause_zero_false_restorations() {
        // Regression for the three-state lifecycle: rotation puts whole
        // shifts to sleep for 4 heartbeat periods — past the 3-period
        // timeout — so a schedule-blind detector would suspect every
        // sleeper and trigger restorations for nodes that are fine. The
        // pipeline must consult the schedule instead: zero false
        // restorations, and a non-zero suppression count proving the
        // timeouts genuinely crossed while the nodes slept.
        let (mut map, mut cfg) = covered_map(3, 500);
        cfg.rotation = Some(decor_net::RotationConfig {
            target_coverage: 1,
            period: 400,
            ..decor_net::RotationConfig::default()
        });
        let plan = FailurePlan::Fraction { frac: 0.0, seed: 0 };
        let hb = HeartbeatConfig {
            period: 100,
            timeout_periods: 3,
            seed: 8,
        };
        let report = fail_and_restore(&mut map, &CentralizedGreedy, &cfg, &plan, Some(hb));
        assert_eq!(report.victims, 0);
        assert_eq!(
            report.false_restorations, 0,
            "a scheduled sleeper was declared dead"
        );
        assert!(
            report.sleeping_suppressed > 0,
            "rotation never crossed a timeout — the regression is untested"
        );
        assert_eq!(report.extra_nodes, 0, "nothing failed, nothing to place");
    }

    #[test]
    fn real_failures_still_restored_under_rotation() {
        let (mut map, mut cfg) = covered_map(3, 500);
        cfg.rotation = Some(decor_net::RotationConfig {
            target_coverage: 1,
            period: 400,
            ..decor_net::RotationConfig::default()
        });
        let plan = FailurePlan::Fraction {
            frac: 0.15,
            seed: 2,
        };
        let hb = HeartbeatConfig {
            period: 100,
            timeout_periods: 3,
            seed: 9,
        };
        let report = fail_and_restore(&mut map, &CentralizedGreedy, &cfg, &plan, Some(hb));
        assert!(report.victims > 0);
        assert_eq!(report.false_restorations, 0);
        assert_eq!(
            report.coverage_after_restore, 1.0,
            "rotation must not block healing"
        );
    }

    #[test]
    fn higher_k_tolerates_more_failures() {
        // The Fig. 12 mechanism in miniature: a k=3 deployment keeps far
        // more 1-coverage under 30% failures than a k=1 deployment.
        let survive = |k: u32| {
            let (mut map, cfg) = covered_map(k, 600);
            let plan = FailurePlan::Fraction { frac: 0.3, seed: 6 };
            coverage_after_failure(&mut map, &cfg, &plan, 1)
        };
        let k1 = survive(1);
        let k3 = survive(3);
        assert!(k3 > k1, "k=3 ({k3}) must beat k=1 ({k1})");
        assert!(k3 > 0.9, "k=3 should keep >90% 1-coverage, got {k3}");
    }
}
