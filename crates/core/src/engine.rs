//! The sharded, incrementally-maintained placement engine.
//!
//! [`crate::BenefitTable`] answers `best()` with a linear scan over all
//! candidates and reacts to placements by *recomputing* every affected
//! benefit from the map. Both costs are paid on every placement step, and
//! the centralized baseline takes hundreds of steps per run. This engine
//! replaces both:
//!
//! - **Exact delta maintenance.** A sensor landing at `q` changes the
//!   coverage of exactly the points within its radius; each such point
//!   whose deficit actually moved contributes **±1** to the benefit of
//!   every candidate within `rs` of it (benefits are integers, so the
//!   deltas are exact — placement sequences stay bit-identical to the
//!   recompute-from-scratch path).
//! - **Spatial shards with lazy maxima.** Candidates are bucketed into
//!   spatial shards; each shard caches its best `(slot, benefit)` and is
//!   invalidated only when one of its candidates changes. `best()` then
//!   refreshes the dirty shards (a scan over their few slots — no
//!   geometry) and reduces over the per-shard maxima instead of all
//!   candidates.
//! - **Parallel shard recomputation.** Building (or wholesale rebuilding)
//!   the benefit vector evaluates Equation 1 once per candidate; those
//!   evaluations fan out over crossbeam scoped threads with the same
//!   chunking pattern as [`crate::parallel::par_best_candidate`].
//!
//! Two scoring modes cover all three placement schemes:
//!
//! - [`ShardedBenefitEngine::global`] — Equation 1 over the whole map,
//!   shards are square tiles (centralized greedy);
//! - [`ShardedBenefitEngine::cells`] — benefit truncated to the shard's
//!   own points and candidates must themselves be deficient, shards are
//!   the caller's partition (grid DECOR's cells).
//!
//! Tie-breaking contract: maximum benefit, ties to the lowest slot —
//! identical to [`crate::BenefitTable::best`] (global mode) and to grid
//! DECOR's keep-first cell scan (cells mode).

use crate::benefit::benefit_at;
use crate::coverage::CoverageMap;
use decor_geom::{query_bucket_edge, FrozenGridIndex, Point};

/// Below this many candidates the initial benefit build stays sequential
/// (same spirit as the 256-candidate floor in `par_best_candidate`).
const PAR_BUILD_THRESHOLD: usize = 1024;

struct Shard {
    /// Member slot indices, ascending (so a keep-first max scan breaks
    /// ties to the lowest slot).
    slots: Vec<usize>,
    /// Cached best `(slot, benefit)` with positive benefit; valid only
    /// when `dirty` is false.
    best: Option<(usize, u64)>,
    dirty: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Equation 1 over the whole map; candidates are spatially indexed so
    /// a changed point can find the candidates it contributes to. The
    /// candidate set is fixed at build time, so the index is frozen CSR.
    Global,
    /// Benefit truncated to the shard's own points (grid DECOR's leader
    /// horizon); a candidate is eligible only while itself deficient.
    Cells,
}

/// Sharded benefit engine over a fixed candidate set. See the module docs.
///
/// Every constructor routes through the capacity-preserving
/// [`ShardedBenefitEngine::reset_global`] / [`ShardedBenefitEngine::reset_cells`]
/// rebuild paths, so a warm engine reused across runs produces state
/// bit-identical to a freshly built one.
pub struct ShardedBenefitEngine {
    rs: f64,
    k: u32,
    /// Candidate point ids, indexed by slot.
    slot_pid: Vec<usize>,
    slot_pos: Vec<Point>,
    benefits: Vec<u64>,
    shard_of_slot: Vec<u32>,
    shards: Vec<Shard>,
    mode: Mode,
    /// Global mode's candidate index. Kept as a field (not an enum
    /// payload) so its slabs survive a mode switch and resets reuse them.
    cand_index: FrozenGridIndex,
    /// Cells mode's point id -> shard map (`u32::MAX` for points outside
    /// the partition). Empty in global mode, capacity retained.
    shard_of_pid: Vec<u32>,
    /// Scratch for the changed-point set of `apply_coverage_delta`,
    /// reused across placements so the hot path stays allocation-free.
    changed_scratch: Vec<(usize, Point)>,
}

impl ShardedBenefitEngine {
    /// Builds a global-benefit engine (Equation 1) over candidate point
    /// ids of `map`, sharded into square tiles sized to the influence
    /// diameter `2·rs` (clamped so huge radii degenerate to one shard and
    /// tiny radii to at most a 64×64 tiling).
    pub fn global(map: &CoverageMap, cand_pids: Vec<usize>, rs: f64, k: u32) -> Self {
        let mut engine = Self::empty();
        let mut cands = cand_pids;
        engine.reset_global(map, &mut cands, rs, k);
        engine
    }

    /// An engine with no candidates and no shards. The useful starting
    /// state for a pooled engine: the first `reset_*` sizes the slabs and
    /// later resets reuse them.
    pub fn empty() -> Self {
        ShardedBenefitEngine {
            rs: 0.0,
            k: 0,
            slot_pid: Vec::new(),
            slot_pos: Vec::new(),
            benefits: Vec::new(),
            shard_of_slot: Vec::new(),
            shards: Vec::new(),
            mode: Mode::Global,
            cand_index: FrozenGridIndex::empty(),
            shard_of_pid: Vec::new(),
            changed_scratch: Vec::new(),
        }
    }

    /// Rebuilds `self` as a global-benefit engine over `cand_pids`,
    /// reusing every slab already owned. `cand_pids` is *swapped* into
    /// the engine (the caller gets the previous candidate buffer back,
    /// contents unspecified) so round-tripping through an arena never
    /// reallocates the candidate list. State is bit-identical to
    /// [`ShardedBenefitEngine::global`].
    pub fn reset_global(&mut self, map: &CoverageMap, cand_pids: &mut Vec<usize>, rs: f64, k: u32) {
        self.rs = rs;
        self.k = k;
        self.mode = Mode::Global;
        std::mem::swap(&mut self.slot_pid, cand_pids);
        self.shard_of_pid.clear();
        let field = map.field();
        let (w, h) = (field.width(), field.height());
        let tile = (2.0 * rs).max(w.max(h) / 64.0);
        let nx = (w / tile).ceil().max(1.0) as usize;
        let ny = (h / tile).ceil().max(1.0) as usize;
        let bucket = query_bucket_edge(rs, w.min(h), self.slot_pid.len().max(1));
        let origin = field.min;
        self.slot_pos.clear();
        self.shard_of_slot.clear();
        for sh in &mut self.shards {
            sh.slots.clear();
            sh.best = None;
            sh.dirty = false;
        }
        self.shards.resize_with(nx * ny, || Shard {
            slots: Vec::new(),
            best: None,
            dirty: false,
        });
        for (slot, &pid) in self.slot_pid.iter().enumerate() {
            let pos = map.points()[pid];
            let tx = (((pos.x - origin.x) / tile).floor().max(0.0) as usize).min(nx - 1);
            let ty = (((pos.y - origin.y) / tile).floor().max(0.0) as usize).min(ny - 1);
            let si = ty * nx + tx;
            self.shards[si].slots.push(slot);
            self.shards[si].dirty = true;
            self.shard_of_slot.push(si as u32);
            self.slot_pos.push(pos);
        }
        self.cand_index.rebuild_from_points(
            field.min,
            (w, h),
            bucket,
            self.slot_pos.iter().copied().enumerate(),
        );
        let slot_pos = &self.slot_pos;
        par_compute_into(
            slot_pos.len(),
            &|slot: usize| benefit_at(map, slot_pos[slot], rs, k),
            &mut self.benefits,
        );
    }

    /// Builds a cell-truncated engine over `partition` (one shard per
    /// entry; entries list candidate point ids, typically a grid cell's
    /// points in ascending order). Benefit of a candidate sums the
    /// deficits of *its own shard's* points within `rs`, and `best`
    /// queries skip candidates whose own coverage already meets `k` —
    /// grid DECOR's exact leader rule.
    pub fn cells(map: &CoverageMap, partition: &[Vec<usize>], rs: f64, k: u32) -> Self {
        let mut engine = Self::empty();
        engine.reset_cells(map, partition, rs, k);
        engine
    }

    /// Rebuilds `self` as a cell-truncated engine over `partition`,
    /// reusing every slab already owned. State is bit-identical to
    /// [`ShardedBenefitEngine::cells`].
    pub fn reset_cells(&mut self, map: &CoverageMap, partition: &[Vec<usize>], rs: f64, k: u32) {
        self.rs = rs;
        self.k = k;
        self.mode = Mode::Cells;
        self.shard_of_pid.clear();
        self.shard_of_pid.resize(map.n_points(), u32::MAX);
        self.slot_pid.clear();
        self.slot_pos.clear();
        self.shard_of_slot.clear();
        for sh in &mut self.shards {
            sh.slots.clear();
            sh.best = None;
            sh.dirty = true;
        }
        self.shards.resize_with(partition.len(), || Shard {
            slots: Vec::new(),
            best: None,
            dirty: true,
        });
        for (si, pids) in partition.iter().enumerate() {
            for &pid in pids {
                debug_assert_eq!(
                    self.shard_of_pid[pid],
                    u32::MAX,
                    "partition entries must be disjoint"
                );
                self.shard_of_pid[pid] = si as u32;
                self.shards[si].slots.push(self.slot_pid.len());
                self.shard_of_slot.push(si as u32);
                self.slot_pid.push(pid);
                self.slot_pos.push(map.points()[pid]);
            }
        }
        let shards_ref = &self.shards;
        let shard_of_slot_ref = &self.shard_of_slot;
        let slot_pos_ref = &self.slot_pos;
        let slot_pid_ref = &self.slot_pid;
        par_compute_into(
            slot_pid_ref.len(),
            &move |slot: usize| {
                let c = slot_pos_ref[slot];
                let sh = &shards_ref[shard_of_slot_ref[slot] as usize];
                let mut b = 0u64;
                for &other in &sh.slots {
                    if slot_pos_ref[other].in_disk(c, rs) {
                        let kp = map.coverage(slot_pid_ref[other]);
                        if kp < k {
                            b += (k - kp) as u64;
                        }
                    }
                }
                b
            },
            &mut self.benefits,
        );
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.slot_pid.len()
    }

    /// True when the candidate set is empty.
    pub fn is_empty(&self) -> bool {
        self.slot_pid.is_empty()
    }

    /// Current benefit of candidate slot `slot`.
    pub fn benefit(&self, slot: usize) -> u64 {
        self.benefits[slot]
    }

    /// The globally best candidate: `(slot, point_id, position, benefit)`
    /// with maximum benefit, ties to the lowest slot; `None` when every
    /// (eligible) candidate has zero benefit. Refreshes dirty shards
    /// first, then reduces over the per-shard cached maxima.
    pub fn best(&mut self, map: &CoverageMap) -> Option<(usize, usize, Point, u64)> {
        for si in 0..self.shards.len() {
            self.refresh_shard(map, si);
        }
        let mut best: Option<(usize, u64)> = None;
        for sh in &self.shards {
            if let Some((slot, b)) = sh.best {
                if best.is_none_or(|(bs, bb)| b > bb || (b == bb && slot < bs)) {
                    best = Some((slot, b));
                }
            }
        }
        best.map(|(slot, b)| (slot, self.slot_pid[slot], self.slot_pos[slot], b))
    }

    /// The best candidate of shard `si` alone: `(point_id, benefit)` or
    /// `None`. This is grid DECOR's per-cell query.
    pub fn best_in_shard(&mut self, map: &CoverageMap, si: usize) -> Option<(usize, u64)> {
        self.refresh_shard(map, si);
        self.shards[si]
            .best
            .map(|(slot, b)| (self.slot_pid[slot], b))
    }

    /// Number of shards (equals the partition length in cells mode).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    fn refresh_shard(&mut self, map: &CoverageMap, si: usize) {
        if !self.shards[si].dirty {
            return;
        }
        let cells_mode = self.mode == Mode::Cells;
        let mut best: Option<(usize, u64)> = None;
        for &slot in &self.shards[si].slots {
            if cells_mode && map.coverage(self.slot_pid[slot]) >= self.k {
                continue;
            }
            let b = self.benefits[slot];
            if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                best = Some((slot, b));
            }
        }
        self.shards[si].best = best;
        self.shards[si].dirty = false;
    }

    /// Notifies the engine that a sensor of radius `rs_new` landed at `q`,
    /// *after* the map was updated. O(changed points × local candidates).
    pub fn on_sensor_added(&mut self, map: &CoverageMap, q: Point, rs_new: f64) {
        self.apply_coverage_delta(map, q, rs_new, true);
    }

    /// Notifies the engine that the sensor of radius `rs_old` at `q` was
    /// deactivated, *after* the map was updated.
    pub fn on_sensor_removed(&mut self, map: &CoverageMap, q: Point, rs_old: f64) {
        self.apply_coverage_delta(map, q, rs_old, false);
    }

    fn apply_coverage_delta(&mut self, map: &CoverageMap, q: Point, r: f64, added: bool) {
        // Coverage changed for exactly the points within `r` of `q`. The
        // deficit of such a point moved by 1 iff the step crossed the `k`
        // boundary: post-coverage <= k after an add (pre < k), post < k
        // after a removal. The same predicate captures every eligibility
        // flip in cells mode (a candidate's own crossing of `k`).
        let k = self.k;
        let mut changed = std::mem::take(&mut self.changed_scratch);
        changed.clear();
        map.for_each_point_within_unordered(q, r, |pid, ppos| {
            let c = map.coverage(pid);
            let crossed = if added { c <= k } else { c < k };
            if crossed {
                changed.push((pid, ppos));
            }
        });
        match self.mode {
            Mode::Global => {
                let cand_index = &self.cand_index;
                let benefits = &mut self.benefits;
                let shards = &mut self.shards;
                let shard_of_slot = &self.shard_of_slot;
                for &(_, ppos) in &changed {
                    cand_index.for_each_within(ppos, self.rs, |slot, _| {
                        if added {
                            benefits[slot] -= 1;
                        } else {
                            benefits[slot] += 1;
                        }
                        shards[shard_of_slot[slot] as usize].dirty = true;
                    });
                }
            }
            Mode::Cells => {
                let rs = self.rs;
                for &(pid, ppos) in &changed {
                    let si = self.shard_of_pid[pid];
                    if si == u32::MAX {
                        continue;
                    }
                    let sh = &mut self.shards[si as usize];
                    sh.dirty = true;
                    for &slot in &sh.slots {
                        if self.slot_pos[slot].in_disk(ppos, rs) {
                            if added {
                                self.benefits[slot] -= 1;
                            } else {
                                self.benefits[slot] += 1;
                            }
                        }
                    }
                }
            }
        }
        self.changed_scratch = changed;
    }

    /// Recomputes every benefit from the map (parallel, chunked) and marks
    /// all shards dirty. An O(n·deg) escape hatch after bulk coverage
    /// changes where per-event deltas would be slower.
    pub fn rebuild(&mut self, map: &CoverageMap) {
        let rs = self.rs;
        let k = self.k;
        match self.mode {
            Mode::Global => {
                let slot_pos = &self.slot_pos;
                par_compute_into(
                    slot_pos.len(),
                    &move |slot: usize| benefit_at(map, slot_pos[slot], rs, k),
                    &mut self.benefits,
                );
            }
            Mode::Cells => {
                let shards = &self.shards;
                let shard_of_slot = &self.shard_of_slot;
                let slot_pos = &self.slot_pos;
                let slot_pid = &self.slot_pid;
                par_compute_into(
                    slot_pid.len(),
                    &move |slot: usize| {
                        let c = slot_pos[slot];
                        let sh = &shards[shard_of_slot[slot] as usize];
                        let mut b = 0u64;
                        for &other in &sh.slots {
                            if slot_pos[other].in_disk(c, rs) {
                                let kp = map.coverage(slot_pid[other]);
                                if kp < k {
                                    b += (k - kp) as u64;
                                }
                            }
                        }
                        b
                    },
                    &mut self.benefits,
                );
            }
        }
        for sh in &mut self.shards {
            sh.dirty = true;
        }
    }
}

/// Evaluates `f(0..n)` into `out` (cleared first), fanning chunks out
/// over crossbeam scoped threads when `n` is large enough to amortize
/// thread spawn — the chunking pattern of
/// [`crate::parallel::par_best_candidate`]. Workers write disjoint
/// `chunks_mut` slabs of `out` directly, so a warm buffer makes the
/// whole evaluation allocation-free; `f` is deterministic per index, so
/// the result is identical either way.
fn par_compute_into<F>(n: usize, f: &F, out: &mut Vec<u64>)
where
    F: Fn(usize) -> u64 + Sync,
{
    out.clear();
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 || n < PAR_BUILD_THRESHOLD {
        out.extend((0..n).map(f));
        return;
    }
    out.resize(n, 0);
    let chunk = n.div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (i, slab) in out.chunks_mut(chunk).enumerate() {
            let start = i * chunk;
            scope.spawn(move |_| {
                for (j, b) in slab.iter_mut().enumerate() {
                    *b = f(start + j);
                }
            });
        }
    })
    .expect("scope failed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benefit::BenefitTable;
    use crate::config::DeploymentConfig;
    use decor_geom::Aabb;
    use decor_lds::halton_points;

    fn setup(n_pts: usize, k: u32) -> (CoverageMap, DeploymentConfig) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(k);
        let map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
        (map, cfg)
    }

    #[test]
    fn global_matches_benefit_table_initially() {
        let (map, cfg) = setup(500, 2);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let table = BenefitTable::new(&map, cands.clone(), cfg.rs, cfg.k);
        let engine = ShardedBenefitEngine::global(&map, cands, cfg.rs, cfg.k);
        assert_eq!(engine.len(), table.len());
        for slot in 0..table.len() {
            assert_eq!(engine.benefit(slot), table.benefit(slot), "slot {slot}");
        }
    }

    #[test]
    fn global_best_matches_benefit_table_under_placements() {
        let (mut map, cfg) = setup(600, 3);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let mut table = BenefitTable::new(&map, cands.clone(), cfg.rs, cfg.k);
        let mut engine = ShardedBenefitEngine::global(&map, cands, cfg.rs, cfg.k);
        for step in 0..60usize {
            assert_eq!(engine.best(&map), table.best(), "step {step}");
            let Some((_, _, pos, _)) = table.best() else {
                break;
            };
            map.add_sensor(pos, cfg.rs);
            table.on_sensor_added(&map, pos, cfg.rs);
            engine.on_sensor_added(&map, pos, cfg.rs);
        }
    }

    #[test]
    fn boundary_points_at_exactly_rs_count_in_every_path() {
        // A point sitting exactly on a sensing-disk boundary (d == rs)
        // must be covered in the naive scan, the incremental map
        // counters, both engine scorings, and the direct benefit
        // evaluation alike — the predicate is single-sourced in
        // `Point::in_disk` and this pins the inclusive boundary.
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(1); // rs = 4.0
        let pts = vec![
            decor_geom::Point::new(50.0, 50.0),
            decor_geom::Point::new(54.0, 50.0), // exactly rs east
            decor_geom::Point::new(50.0, 46.0), // exactly rs south
            decor_geom::Point::new(46.0, 50.0), // exactly rs west
            decor_geom::Point::new(53.0, 53.0), // sqrt(18) > rs: outside
        ];
        let mut map = CoverageMap::new(pts, &field, &cfg);
        let cands: Vec<usize> = (0..map.n_points()).collect();

        // The center candidate's benefit counts all three boundary
        // points (plus itself) in every evaluator.
        assert_eq!(benefit_at(&map, map.points()[0], cfg.rs, cfg.k), 4);
        let global = ShardedBenefitEngine::global(&map, cands.clone(), cfg.rs, cfg.k);
        assert_eq!(global.benefit(0), 4);
        let partition = vec![cands.clone()];
        let cells = ShardedBenefitEngine::cells(&map, &partition, cfg.rs, cfg.k);
        assert_eq!(cells.benefit(0), 4);

        // Placing at the center covers the boundary points inclusively.
        map.add_sensor(map.points()[0], cfg.rs);
        for pid in 0..4 {
            assert_eq!(map.coverage(pid), 1, "point {pid} sits on/within rs");
            assert_eq!(map.sensors_covering(map.points()[pid]).len(), 1);
        }
        assert_eq!(map.coverage(4), 0, "outside point untouched");
        map.verify_consistency();
    }

    #[test]
    fn global_delta_handles_heterogeneous_radii() {
        let (mut map, cfg) = setup(400, 2);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let mut engine = ShardedBenefitEngine::global(&map, cands.clone(), cfg.rs, cfg.k);
        for (step, &factor) in [0.5, 1.5, 1.0, 2.5, 0.75].iter().enumerate() {
            let q = map.points()[(step * 83) % map.n_points()];
            let rs_new = cfg.rs * factor;
            map.add_sensor(q, rs_new);
            engine.on_sensor_added(&map, q, rs_new);
        }
        for (slot, &pid) in cands.iter().enumerate() {
            assert_eq!(
                engine.benefit(slot),
                benefit_at(&map, map.points()[pid], cfg.rs, cfg.k),
                "slot {slot} drifted"
            );
        }
    }

    #[test]
    fn global_delta_survives_removal_churn() {
        let (mut map, cfg) = setup(400, 2);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let mut engine = ShardedBenefitEngine::global(&map, cands.clone(), cfg.rs, cfg.k);
        let mut sids = Vec::new();
        for step in 0..20usize {
            let q = map.points()[(step * 61) % map.n_points()];
            sids.push((map.add_sensor(q, cfg.rs), q));
            engine.on_sensor_added(&map, q, cfg.rs);
        }
        for &(sid, q) in sids.iter().step_by(2) {
            assert!(map.deactivate_sensor(sid));
            engine.on_sensor_removed(&map, q, cfg.rs);
        }
        let (sid, q) = sids[0];
        assert!(map.reactivate_sensor(sid));
        engine.on_sensor_added(&map, q, cfg.rs);
        map.verify_consistency();
        for (slot, &pid) in cands.iter().enumerate() {
            assert_eq!(
                engine.benefit(slot),
                benefit_at(&map, map.points()[pid], cfg.rs, cfg.k),
                "slot {slot} drifted"
            );
        }
    }

    #[test]
    fn rebuild_matches_delta_maintenance() {
        let (mut map, cfg) = setup(300, 2);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let mut engine = ShardedBenefitEngine::global(&map, cands, cfg.rs, cfg.k);
        for step in 0..10usize {
            let q = map.points()[(step * 37) % map.n_points()];
            map.add_sensor(q, cfg.rs);
            engine.on_sensor_added(&map, q, cfg.rs);
        }
        let deltas: Vec<u64> = (0..engine.len()).map(|s| engine.benefit(s)).collect();
        engine.rebuild(&map);
        let rebuilt: Vec<u64> = (0..engine.len()).map(|s| engine.benefit(s)).collect();
        assert_eq!(deltas, rebuilt);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // 2000 candidates crosses PAR_BUILD_THRESHOLD; benefits must be
        // identical to slot-by-slot sequential evaluation.
        let (map, cfg) = setup(2000, 2);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let engine = ShardedBenefitEngine::global(&map, cands.clone(), cfg.rs, cfg.k);
        for (slot, &pid) in cands.iter().enumerate() {
            assert_eq!(
                engine.benefit(slot),
                benefit_at(&map, map.points()[pid], cfg.rs, cfg.k)
            );
        }
    }

    #[test]
    fn subset_candidates_keep_lowest_slot_tiebreak() {
        let (map, cfg) = setup(300, 1);
        let cands = vec![250, 3, 77, 150];
        let table = BenefitTable::new(&map, cands.clone(), cfg.rs, cfg.k);
        let mut engine = ShardedBenefitEngine::global(&map, cands, cfg.rs, cfg.k);
        assert_eq!(engine.best(&map), table.best());
    }

    #[test]
    fn best_none_when_fully_covered() {
        let (mut map, cfg) = setup(200, 2);
        for _ in 0..cfg.k {
            map.add_sensor(Point::new(50.0, 50.0), 200.0);
        }
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let mut engine = ShardedBenefitEngine::global(&map, cands, cfg.rs, cfg.k);
        assert!(engine.best(&map).is_none());
    }

    #[test]
    fn cells_mode_is_covered_by_grid_scheme_tests() {
        // Construction smoke test here; behavioural equivalence against
        // the direct per-cell scan lives in grid_scheme::tests.
        let (map, cfg) = setup(300, 1);
        let half: Vec<usize> = (0..150).collect();
        let rest: Vec<usize> = (150..300).collect();
        let mut engine = ShardedBenefitEngine::cells(&map, &[half, rest], cfg.rs, cfg.k);
        assert_eq!(engine.n_shards(), 2);
        assert!(engine.best_in_shard(&map, 0).is_some());
    }
}
