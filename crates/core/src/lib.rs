//! DECOR — DEpendable COverage Restoration (Drougas & Kalogeraki, IPDPS
//! 2007) — plus the baselines its evaluation compares against.
//!
//! The problem: given a field `A`, a coverage requirement `k`, and a
//! (possibly empty, possibly damaged) initial deployment of sensors with
//! sensing radius `rs`, place new sensors so that *every* point of `A` is
//! covered by at least `k` sensors, using as few new sensors as possible.
//!
//! DECOR's two moves:
//! 1. approximate `A` by a low-discrepancy point set (see `decor-lds`) and
//!    track per-point coverage counts ([`CoverageMap`]);
//! 2. greedily place sensors at the approximation point of maximum
//!    *benefit* `b(c) = Σ_{p : d(p,c) ≤ rs} max(k − k_p, 0)`
//!    ([`benefit`]), either globally ([`centralized`]) or cell-locally in
//!    a distributed fashion ([`grid_scheme`], [`voronoi_scheme`]).
//!
//! The crate also provides the [`redundancy`] metric of Fig. 9, the
//! reliability math of §2.1 ([`reliability`]), the failure-restoration
//! pipeline of §4.2 ([`restore`]), a crossbeam-based parallel replica
//! runner ([`parallel`]) used to average experiments over seeds, and a
//! run-time [`invariants`] checker that chaos tests attach to validate
//! the protocol's safety properties under scripted fault injection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod async_grid;
pub mod benefit;
pub mod bounds;
pub mod centralized;
pub mod config;
pub mod coverage;
pub mod diagnostics;
pub mod endurance;
pub mod engine;
pub mod grid_scheme;
pub mod hole_scheme;
pub mod invariants;
pub mod knowledge;
pub mod metrics;
pub mod parallel;
pub mod random_place;
pub mod redundancy;
pub mod reliability;
pub mod restore;
pub mod rotation;
pub mod scratch;
pub mod voronoi_scheme;

pub use async_grid::AsyncGridDecor;
pub use benefit::{benefit_at, BenefitTable};
pub use centralized::CentralizedGreedy;
pub use config::{DeploymentConfig, LinkConfig, SchemeKind};
pub use coverage::{CoverageMap, SensorId};
pub use diagnostics::DeploymentDiagnostics;
pub use endurance::{run_endurance, EnduranceConfig, EnduranceReport};
pub use engine::ShardedBenefitEngine;
pub use grid_scheme::GridDecor;
pub use hole_scheme::HoleHealing;
pub use invariants::InvariantChecker;
pub use knowledge::NeighborKnowledge;
pub use metrics::{MessageStats, PlacementOutcome, TracePoint};
pub use random_place::RandomPlacement;
pub use redundancy::redundant_mask;
pub use rotation::{agree_shifts, ShiftAgreement};
pub use scratch::SimScratch;
pub use voronoi_scheme::VoronoiDecor;

/// A placement algorithm: consumes a coverage map (which already contains
/// the surviving initial sensors) and deploys new sensors until the map is
/// `k`-covered or the algorithm gives up.
pub trait Placer {
    /// Human-readable name used by the experiment harness ("Centralized",
    /// "Grid (small cell)", ...).
    fn name(&self) -> String;

    /// Runs the algorithm, mutating `map` by adding sensors. Returns what
    /// was placed plus cost accounting.
    fn place(&self, map: &mut CoverageMap, cfg: &DeploymentConfig) -> PlacementOutcome;

    /// Like [`Placer::place`], but threads a pooled [`SimScratch`] so a
    /// warm caller reuses the engine/network/transport allocations from
    /// the previous run. The default delegates to `place` (cold path);
    /// schemes that override it must produce bit-identical outcomes
    /// either way.
    fn place_in(
        &self,
        map: &mut CoverageMap,
        cfg: &DeploymentConfig,
        _scratch: &mut SimScratch,
    ) -> PlacementOutcome {
        self.place(map, cfg)
    }
}
