//! Grid-based DECOR (§3.1–3.3).
//!
//! The field is partitioned into fixed square cells; each non-empty cell
//! elects a leader (rotated round-robin for energy fairness). Every round,
//! each leader inspects the approximation points of *its own cell* and, if
//! any is under-covered, places one new sensor at the cell point of maximum
//! benefit — where benefit is truncated to the leader's horizon (its own
//! cell's points). Leaders whose cell is fully covered adopt a nearby
//! *empty* cell with uncovered points and seed it with a leader node
//! (the paper's rule: "the leader of a neighboring cell will place a new
//! leader in the uncovered cell").
//!
//! All leaders decide simultaneously from the coverage state at the start
//! of the round; placements apply together afterwards. That concurrency is
//! the scheme's real cost: adjacent leaders double-cover their common
//! border within a round, and the truncated benefit horizon wastes the part
//! of a sensor's disk that pokes into neighboring cells. Both effects grow
//! as cells shrink, which is why the small-cell variant needs the most
//! nodes in Fig. 8.
//!
//! Message accounting (Fig. 10): after placing, a leader unicasts a
//! placement notice to the leader of every neighboring cell whose area the
//! new sensor's disk overlaps. Leaders communicate directly, which requires
//! `rc >= 2·√2·cell` (the paper's `rc = 10·√2` for 5×5 cells); the scheme
//! configures its accounting network accordingly.
//!
//! On a lossy medium (`cfg.link.loss_rate > 0`) those notices ride the
//! reliable transport (`decor_net::transport`). A notice that exhausts its
//! retry budget leaves the *cell* blind to the announced sensor
//! ([`crate::NeighborKnowledge`], keyed by cell index — cell members share
//! a blackboard, so whoever leads next round inherits the gap), and the
//! blind cell may re-cover the border redundantly. The transport bounds
//! that waste; the fire-and-forget reference path would let it grow
//! silently.

use crate::config::DeploymentConfig;
use crate::coverage::CoverageMap;
use crate::engine::ShardedBenefitEngine;
use crate::invariants::InvariantChecker;
use crate::knowledge::NeighborKnowledge;
use crate::metrics::{MessageStats, PlacementOutcome, TracePoint};
use crate::scratch::SimScratch;
use crate::Placer;
use decor_geom::{Aabb, Point};
use decor_net::{
    rotation_leader_in, ChaosEngine, DeliveryOutcome, Message, MsgId, Network, NodeId, Transport,
};
use decor_trace::TraceEvent;
use std::collections::BTreeSet;

/// Grid-based DECOR with square cells of edge `cell_size`.
#[derive(Clone, Copy, Debug)]
pub struct GridDecor {
    /// Cell edge length (paper: 5 for "small cell", 10 for "big cell").
    pub cell_size: f64,
}

/// Safety cap on synchronous rounds.
const MAX_ROUNDS: usize = 100_000;

pub(crate) struct Cells {
    pub(crate) cols: usize,
    pub(crate) rows: usize,
    pub(crate) size: f64,
    pub(crate) origin: Point,
    /// Approximation-point ids per cell.
    pub(crate) points: Vec<Vec<usize>>,
    /// Cell index of each approximation point (inverse of `points`), so
    /// radius queries can filter to one cell without scanning its list.
    pub(crate) cell_of_pid: Vec<u32>,
    /// Member sensor ids (alive network nodes) per cell.
    pub(crate) members: Vec<Vec<NodeId>>,
}

impl Cells {
    pub(crate) fn new(field: &Aabb, size: f64, map: &CoverageMap) -> Self {
        let mut cells = Cells {
            cols: 0,
            rows: 0,
            size,
            origin: field.min,
            points: Vec::new(),
            cell_of_pid: Vec::new(),
            members: Vec::new(),
        };
        cells.rebuild(field, size, map);
        cells
    }

    /// Re-derives the partition in place, preserving the allocations of a
    /// previous run — the cold constructor routes through here, so a
    /// rebuilt partition is identical to a fresh one.
    pub(crate) fn rebuild(&mut self, field: &Aabb, size: f64, map: &CoverageMap) {
        let cols = (field.width() / size).ceil().max(1.0) as usize;
        let rows = (field.height() / size).ceil().max(1.0) as usize;
        self.cols = cols;
        self.rows = rows;
        self.size = size;
        self.origin = field.min;
        for v in &mut self.points {
            v.clear();
        }
        self.points.resize_with(cols * rows, Vec::new);
        for v in &mut self.members {
            v.clear();
        }
        self.members.resize_with(cols * rows, Vec::new);
        self.cell_of_pid.clear();
        self.cell_of_pid.resize(map.n_points(), 0);
        let origin = self.origin;
        for (pid, &p) in map.points().iter().enumerate() {
            let cx = (((p.x - origin.x) / size).floor() as usize).min(cols - 1);
            let cy = (((p.y - origin.y) / size).floor() as usize).min(rows - 1);
            let ci = cy * cols + cx;
            self.points[ci].push(pid);
            self.cell_of_pid[pid] = ci as u32;
        }
    }

    pub(crate) fn index_of(&self, p: Point) -> usize {
        let cx = (((p.x - self.origin.x) / self.size).floor() as usize).min(self.cols - 1);
        let cy = (((p.y - self.origin.y) / self.size).floor() as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    pub(crate) fn len(&self) -> usize {
        self.cols * self.rows
    }

    pub(crate) fn center(&self, ci: usize) -> Point {
        let cx = ci % self.cols;
        let cy = ci / self.cols;
        Point::new(
            self.origin.x + (cx as f64 + 0.5) * self.size,
            self.origin.y + (cy as f64 + 0.5) * self.size,
        )
    }

    pub(crate) fn rect(&self, ci: usize) -> Aabb {
        let cx = ci % self.cols;
        let cy = ci / self.cols;
        let min = Point::new(
            self.origin.x + cx as f64 * self.size,
            self.origin.y + cy as f64 * self.size,
        );
        Aabb::new(min, Point::new(min.x + self.size, min.y + self.size))
    }

    /// The 8-neighborhood of cell `ci` (indices only, in-bounds).
    pub(crate) fn neighbors(&self, ci: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(8);
        self.neighbors_into(ci, &mut out);
        out
    }

    /// [`Cells::neighbors`] into a reused buffer (cleared first).
    pub(crate) fn neighbors_into(&self, ci: usize, out: &mut Vec<usize>) {
        out.clear();
        let cx = (ci % self.cols) as isize;
        let cy = (ci / self.cols) as isize;
        for dy in -1..=1 {
            for dx in -1..=1 {
                if dx == 0 && dy == 0 {
                    continue;
                }
                let nx = cx + dx;
                let ny = cy + dy;
                if nx >= 0 && ny >= 0 && (nx as usize) < self.cols && (ny as usize) < self.rows {
                    out.push(ny as usize * self.cols + nx as usize);
                }
            }
        }
    }
}

/// Grid-scheme round-loop scratch: every per-run buffer `place_impl`
/// needs, pooled inside [`SimScratch`] so warm runs reuse the capacity.
/// All state is fully re-derived per run — nothing observable leaks
/// between runs.
#[derive(Default)]
pub(crate) struct GridScratch {
    /// The cell partition, rebuilt per run via [`Cells::rebuild`].
    cells: Option<Cells>,
    /// Sensor id per network node id.
    sid_of: Vec<usize>,
    /// Shard index per cell (`u32::MAX` = no shard).
    shard_of_cell: Vec<u32>,
    /// Per-cell deficiency flags used while building the partition.
    deficient: Vec<bool>,
    /// Deficient point ids (`CoverageMap::uncovered_ids_into` target).
    uncovered: Vec<usize>,
    /// Engine partition: the points of each deficient cell.
    partition: Vec<Vec<usize>>,
    /// Engine-path adoption scan lists (shard-bearing neighbors).
    adopt_targets: Vec<Vec<usize>>,
    /// Round decisions: (acting cell, leader, target pid, benefit).
    decisions: Vec<(usize, NodeId, usize, u64)>,
    /// Empty cells claimed by adoption this round.
    claimed_empty: Vec<usize>,
    /// In-flight notices: (msg, notified cell, announced sensor).
    pending: Vec<(MsgId, usize, usize)>,
    /// Neighbor-index buffer for [`Cells::neighbors_into`].
    neigh: Vec<usize>,
    /// Election sort buffer for [`rotation_leader_in`].
    elect: Vec<NodeId>,
    /// Per-round transport conclusions ([`Transport::flush_into`] target).
    flushed: Vec<(MsgId, DeliveryOutcome)>,
    /// Active-sensor buffer for `CoverageMap::active_sensors_into`.
    sensors: Vec<(usize, Point)>,
}

/// Retires chaos-crashed nodes from the grid placer's world: the coverage
/// map deactivates the sensor (ground truth drops), the cell drops the
/// member (so rotations never elect the dead), and the invariant checker
/// learns the death. The sharded engine needs no update because chaos
/// runs disable it (see `place_impl`).
fn retire_crashed(
    crashed: Vec<NodeId>,
    map: &mut CoverageMap,
    cells: &mut Cells,
    net: &Network,
    sid_of: &[usize],
    checker: &InvariantChecker,
) {
    for nid in crashed {
        checker.note_crash(nid as u64);
        map.deactivate_sensor(sid_of[nid]);
        let ci = cells.index_of(net.node(nid).pos);
        cells.members[ci].retain(|&m| m != nid);
    }
}

impl GridDecor {
    /// Coverage of point `pid` as the cell sees it: ground truth minus the
    /// sensors whose placement notices never reached this cell.
    fn estimated_coverage(map: &CoverageMap, pid: usize, hidden: Option<&BTreeSet<usize>>) -> u32 {
        match hidden {
            None => map.coverage(pid),
            Some(h) => {
                let mut c = 0u32;
                map.for_each_sensor_covering(map.points()[pid], |sid, _| {
                    c += u32::from(!h.contains(&sid));
                });
                c
            }
        }
    }

    /// Benefit of placing at point `pid`, truncated to the points of cell
    /// `ci` — the leader's knowledge horizon (further truncated by the
    /// cell's notice blind spots, if any).
    fn cell_benefit(
        map: &CoverageMap,
        cells: &Cells,
        ci: usize,
        pid: usize,
        cfg: &DeploymentConfig,
        hidden: Option<&BTreeSet<usize>>,
    ) -> u64 {
        let c = map.points()[pid];
        let mut b = 0u64;
        // Radius query over the frozen point index, filtered to the cell's
        // own points; the sum is order-independent integer addition, so
        // the result matches the old scan over `cells.points[ci]` exactly.
        map.for_each_point_within_unordered(c, cfg.rs, |qid, _| {
            if cells.cell_of_pid[qid] == ci as u32 {
                let kp = Self::estimated_coverage(map, qid, hidden);
                if kp < cfg.k {
                    b += (cfg.k - kp) as u64;
                }
            }
        });
        b
    }

    /// The best candidate point of cell `ci`: among the cell's deficient
    /// points, the one of maximum truncated benefit (ties to lowest id).
    /// Shared with the asynchronous implementation (which runs on a perfect
    /// medium, hence no blind spots).
    pub(crate) fn best_candidate_for(
        map: &CoverageMap,
        cells: &Cells,
        ci: usize,
        cfg: &DeploymentConfig,
    ) -> Option<(usize, u64)> {
        Self::best_candidate(map, cells, ci, cfg, None)
    }

    fn best_candidate(
        map: &CoverageMap,
        cells: &Cells,
        ci: usize,
        cfg: &DeploymentConfig,
        hidden: Option<&BTreeSet<usize>>,
    ) -> Option<(usize, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for &pid in &cells.points[ci] {
            if Self::estimated_coverage(map, pid, hidden) >= cfg.k {
                continue;
            }
            let b = Self::cell_benefit(map, cells, ci, pid, cfg, hidden);
            if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                best = Some((pid, b));
            }
        }
        best
    }

    /// Per-cell best query, answered by the sharded engine when one is in
    /// use (cached per-cell maxima, delta-maintained) and by the direct
    /// O(cell²) scan otherwise. Both produce identical results — the
    /// equivalence is tested below. The engine path assumes ground-truth
    /// coverage, so `place_impl` never enables it on a lossy medium (where
    /// estimates also depend on the knowledge ledger).
    ///
    /// The engine covers only the cells that were deficient at build time
    /// (`shard_of_cell[ci] == u32::MAX` marks the rest): on the loss-free
    /// no-chaos path coverage is monotone, so a cell that starts clean can
    /// never regain a positive truncated benefit — the direct scan would
    /// answer `None` for it on every round.
    fn cell_best(
        engine: &mut Option<&mut ShardedBenefitEngine>,
        shard_of_cell: &[u32],
        map: &CoverageMap,
        cells: &Cells,
        ci: usize,
        cfg: &DeploymentConfig,
        hidden: Option<&BTreeSet<usize>>,
    ) -> Option<(usize, u64)> {
        match engine.as_mut() {
            Some(e) => {
                debug_assert!(hidden.is_none(), "engine requires ground-truth coverage");
                match shard_of_cell[ci] {
                    u32::MAX => None,
                    si => e.best_in_shard(map, si as usize),
                }
            }
            None => Self::best_candidate(map, cells, ci, cfg, hidden),
        }
    }
}

impl Placer for GridDecor {
    fn name(&self) -> String {
        format!("Grid ({}x{} cell)", self.cell_size, self.cell_size)
    }

    fn place(&self, map: &mut CoverageMap, cfg: &DeploymentConfig) -> PlacementOutcome {
        self.place_impl(map, cfg, true, true, &mut SimScratch::new())
    }

    fn place_in(
        &self,
        map: &mut CoverageMap,
        cfg: &DeploymentConfig,
        scratch: &mut SimScratch,
    ) -> PlacementOutcome {
        self.place_impl(map, cfg, true, true, scratch)
    }
}

impl GridDecor {
    /// Implementation behind [`Placer::place`]. `use_engine` switches
    /// between the sharded engine with per-cell cached maxima (production)
    /// and the direct O(cell²) per-cell scan (reference); `use_transport`
    /// between reliable ack/retry notices (production) and fire-and-forget
    /// unicasts (the pre-transport reference, valid only on a loss-free
    /// medium). Differential tests below pin the paths to identical
    /// placements.
    fn place_impl(
        &self,
        map: &mut CoverageMap,
        cfg: &DeploymentConfig,
        use_engine: bool,
        use_transport: bool,
        scratch: &mut SimScratch,
    ) -> PlacementOutcome {
        cfg.validate();
        assert!(
            self.cell_size > 0.0 && self.cell_size.is_finite(),
            "cell size must be positive"
        );
        let lossy = cfg.link.is_lossy();
        // The engine caches ground-truth per-cell maxima; under loss the
        // estimates also depend on the knowledge ledger, and under chaos
        // crashes retire sensors the cache cannot un-add — scan directly.
        let use_engine = use_engine && !lossy && cfg.chaos.is_none();
        let field = *map.field();
        // Split the scratch into its independent pools up front so the
        // round loop can borrow them side by side.
        let SimScratch {
            engine: engine_pool,
            net: net_pool,
            transport: transport_pool,
            grid:
                GridScratch {
                    cells: cells_pool,
                    sid_of,
                    shard_of_cell,
                    deficient,
                    uncovered,
                    partition,
                    adopt_targets,
                    decisions,
                    claimed_empty,
                    pending,
                    neigh,
                    elect,
                    flushed,
                    sensors,
                },
            ..
        } = scratch;
        let mut cells = match cells_pool.take() {
            Some(mut c) => {
                c.rebuild(&field, self.cell_size, map);
                c
            }
            None => Cells::new(&field, self.cell_size, map),
        };
        // Inter-leader range: diagonal of a 2-cell block (the paper's
        // 10·√2 for 5×5 cells), never below the configured rc.
        let rc_grid = (2.0 * std::f64::consts::SQRT_2 * self.cell_size).max(cfg.rc);
        // Pooled network/transport: a warm scratch hands back last run's
        // structures, reset to the same state a fresh construction yields.
        let mut net = match net_pool.take() {
            Some(mut n) => {
                n.reset(field);
                n
            }
            None => Network::new(field),
        };
        cfg.link.apply(&mut net);
        net.set_trace(cfg.trace.clone());
        let mut transport = if use_transport {
            Some(match transport_pool.take() {
                Some(mut t) => {
                    t.reset(cfg.link.transport());
                    t
                }
                None => Transport::new(cfg.link.transport()),
            })
        } else {
            None
        };
        // Chaos rides the transport clock, so the fire-and-forget
        // reference path ignores any configured plan (differential tests
        // never combine the two).
        let mut chaos = match (&transport, &cfg.chaos) {
            (Some(_), Some(plan)) => Some(ChaosEngine::borrowed(plan)),
            _ => None,
        };
        // Viewer key: cell index. Cell members share a blackboard, so a
        // missed notice blinds the whole cell across leader rotations.
        let mut knowledge = NeighborKnowledge::new();
        // Sensor id of each network node, indexed by node id (chaos crash
        // processing maps the victim back to its map sensor).
        sid_of.clear();
        map.active_sensors_into(sensors);
        for &(sid, pos) in sensors.iter() {
            let nid = net.add_node(pos, cfg.rs, rc_grid);
            debug_assert_eq!(nid, sid_of.len());
            sid_of.push(sid);
            {
                let ci_new = cells.index_of(pos);
                cells.members[ci_new].push(nid);
            }
        }
        let initial = map.n_active_sensors();
        // One shard per *deficient* cell: per-cell truncated benefits
        // delta-maintained, per-cell best cached until a placement lands in
        // the cell. Restoration runs start with most of the field healthy,
        // so the engine build (the O(points·deg) part) touches only the
        // damaged cells — `uncovered_ids` walks the coverage map's
        // deficient tiles rather than sweeping the field.
        let mut engine: Option<&mut ShardedBenefitEngine> = None;
        shard_of_cell.clear();
        if use_engine {
            shard_of_cell.resize(cells.len(), u32::MAX);
            deficient.clear();
            deficient.resize(cells.len(), false);
            map.uncovered_ids_into(cfg.k, uncovered);
            for &pid in uncovered.iter() {
                deficient[cells.cell_of_pid[pid] as usize] = true;
            }
            // Partition slots are recycled in place; only the first
            // `n_shards` entries are meaningful this run.
            let mut n_shards = 0usize;
            for ci in 0..cells.len() {
                if deficient[ci] {
                    shard_of_cell[ci] = n_shards as u32;
                    if n_shards == partition.len() {
                        partition.push(Vec::new());
                    }
                    partition[n_shards].clear();
                    partition[n_shards].extend_from_slice(&cells.points[ci]);
                    n_shards += 1;
                }
            }
            engine_pool.reset_cells(map, &partition[..n_shards], cfg.rs, cfg.k);
            engine = Some(engine_pool);
        }
        // On the engine path adoption can only land in a shard-bearing
        // neighbor (clean cells answer `None` forever), so each cell's
        // adoption scan list shrinks to those, preserving neighbor order.
        let use_adopt_targets = engine.is_some();
        if use_adopt_targets {
            for ci in 0..cells.len() {
                if ci == adopt_targets.len() {
                    adopt_targets.push(Vec::new());
                }
                cells.neighbors_into(ci, neigh);
                adopt_targets[ci].clear();
                adopt_targets[ci].extend(
                    neigh
                        .iter()
                        .copied()
                        .filter(|&nc| shard_of_cell[nc] != u32::MAX),
                );
            }
        }
        let mut out = PlacementOutcome {
            initial_sensors: initial,
            ..PlacementOutcome::default()
        };
        out.trace.push(TracePoint {
            total_sensors: initial,
            fraction_k_covered: map.fraction_k_covered(cfg.k),
        });

        let mut round: u64 = 0;
        while out.placed.len() < cfg.max_new_nodes && (round as usize) < MAX_ROUNDS {
            // Faults due by now land before any election of this round.
            if let (Some(ch), Some(tr)) = (chaos.as_mut(), transport.as_ref()) {
                ch.advance_to(&mut net, tr.now());
                retire_crashed(
                    ch.take_crashed(),
                    map,
                    &mut cells,
                    &net,
                    sid_of,
                    &cfg.invariants,
                );
            }
            if let Some(tr) = transport.as_ref() {
                cfg.trace.set_time(tr.now());
            }
            cfg.trace.emit(TraceEvent::RoundBegin {
                scheme: "grid",
                round,
            });
            // Decisions from the coverage snapshot at round start. Each
            // entry: (acting cell, leader node, target point id, benefit).
            decisions.clear();
            claimed_empty.clear();
            #[allow(clippy::needless_range_loop)] // ci indexes members + adopt_targets
            for ci in 0..cells.len() {
                if cells.members[ci].is_empty() {
                    continue;
                }
                cfg.trace.emit(TraceEvent::ElectionStart {
                    cell: ci as u64,
                    round,
                });
                let leader =
                    rotation_leader_in(&cells.members[ci], round, elect).expect("non-empty");
                cfg.trace.emit(TraceEvent::ElectionWon {
                    cell: ci as u64,
                    round,
                    leader: leader as u64,
                });
                cfg.invariants.check_election(
                    ci as u64,
                    round,
                    leader as u64,
                    net.is_alive(leader),
                );
                let hidden = knowledge.hidden_from(ci);
                if let Some((pid, b)) =
                    Self::cell_best(&mut engine, shard_of_cell, map, &cells, ci, cfg, hidden)
                {
                    if cfg.invariants.is_enabled() {
                        cfg.invariants.check_estimate(
                            pid,
                            Self::estimated_coverage(map, pid, hidden),
                            map.coverage(pid),
                        );
                    }
                    decisions.push((ci, leader, pid, b));
                    continue;
                }
                // Own cell covered: adopt one neighboring empty cell with
                // deficient points, if any (lowest index, not yet claimed
                // this round). The adopting leader judges the empty cell
                // with its own cell's knowledge. On the engine path the
                // scan list was precomputed down to shard-bearing
                // neighbors; everything else is a guaranteed `None`.
                let adoption_scan: &[usize] = if use_adopt_targets {
                    &adopt_targets[ci]
                } else {
                    cells.neighbors_into(ci, neigh);
                    neigh
                };
                for &nc in adoption_scan {
                    if !cells.members[nc].is_empty() || claimed_empty.contains(&nc) {
                        continue;
                    }
                    if let Some((pid, b)) =
                        Self::cell_best(&mut engine, shard_of_cell, map, &cells, nc, cfg, hidden)
                    {
                        if cfg.invariants.is_enabled() {
                            cfg.invariants.check_estimate(
                                pid,
                                Self::estimated_coverage(map, pid, hidden),
                                map.coverage(pid),
                            );
                        }
                        claimed_empty.push(nc);
                        decisions.push((nc, leader, pid, b));
                        break;
                    }
                }
            }

            // Stall rescue: deficient points exist but no populated cell is
            // adjacent to them. The paper waves this away ("if an entire
            // cell is empty, we can use a regular positioning of sensors");
            // we model a base-station dispatch seeding the nearest such
            // cell from the nearest populated cell (or out-of-band when no
            // cell is populated at all).
            if decisions.is_empty() {
                if map.count_below(cfg.k) == 0 {
                    // Fully covered but faults are still scheduled: a quiet
                    // run would never reach their injection times, so force
                    // the next batch and keep the protocol running.
                    if let Some(ch) = chaos.as_mut().filter(|ch| !ch.is_exhausted()) {
                        ch.advance_next_batch(&mut net);
                        retire_crashed(
                            ch.take_crashed(),
                            map,
                            &mut cells,
                            &net,
                            sid_of,
                            &cfg.invariants,
                        );
                        cfg.trace.emit(TraceEvent::RoundEnd { round, placed: 0 });
                        cfg.trace.emit(TraceEvent::CoverageDelta {
                            below_target: map.count_below(cfg.k) as u64,
                        });
                        round += 1;
                        out.trace.push(TracePoint {
                            total_sensors: initial + out.placed.len(),
                            fraction_k_covered: map.fraction_k_covered(cfg.k),
                        });
                        continue;
                    }
                    break;
                }
                // Base-station dispatch plans from ground truth (no ledger).
                let deficient_cell = (0..cells.len()).find(|&ci| {
                    Self::cell_best(&mut engine, shard_of_cell, map, &cells, ci, cfg, None)
                        .is_some()
                });
                let Some(target) = deficient_cell else { break };
                let (pid, b) =
                    Self::cell_best(&mut engine, shard_of_cell, map, &cells, target, cfg, None)
                        .unwrap();
                let seeder = (0..cells.len())
                    .filter(|&ci| !cells.members[ci].is_empty())
                    .min_by(|&a, &b| {
                        let da = cells.center(a).dist(cells.center(target));
                        let db = cells.center(b).dist(cells.center(target));
                        da.partial_cmp(&db).unwrap().then(a.cmp(&b))
                    });
                match seeder {
                    Some(ci) => {
                        let leader = rotation_leader_in(&cells.members[ci], round, elect).unwrap();
                        decisions.push((target, leader, pid, b));
                    }
                    None => {
                        // No sensors anywhere: bootstrap one out-of-band.
                        let pos = map.points()[pid];
                        let new_sid = map.add_sensor(pos, cfg.rs);
                        if let Some(e) = engine.as_mut() {
                            e.on_sensor_added(map, pos, cfg.rs);
                        }
                        let nid = net.add_node(pos, cfg.rs, rc_grid);
                        sid_of.push(new_sid);
                        {
                            let ci_new = cells.index_of(pos);
                            cells.members[ci_new].push(nid);
                        }
                        out.placed.push(pos);
                        cfg.trace.emit(TraceEvent::SensorPlaced {
                            x: pos.x,
                            y: pos.y,
                            benefit: b,
                            agent: target as u64,
                        });
                        cfg.trace.emit(TraceEvent::RoundEnd { round, placed: 1 });
                        cfg.trace.emit(TraceEvent::CoverageDelta {
                            below_target: map.count_below(cfg.k) as u64,
                        });
                        round += 1;
                        out.trace.push(TracePoint {
                            total_sensors: initial + out.placed.len(),
                            fraction_k_covered: map.fraction_k_covered(cfg.k),
                        });
                        continue;
                    }
                }
            }

            // Apply all placements simultaneously, then send notices.
            // (msg handle, notified cell, announced sensor) per transport
            // notice of this round.
            pending.clear();
            let placed_before_round = out.placed.len();
            for &(ci, leader, pid, benefit) in decisions.iter() {
                if out.placed.len() >= cfg.max_new_nodes {
                    break;
                }
                cfg.invariants
                    .check_placer_alive("grid", leader as u64, net.is_alive(leader));
                let pos = map.points()[pid];
                let new_sid = map.add_sensor(pos, cfg.rs);
                if let Some(e) = engine.as_mut() {
                    e.on_sensor_added(map, pos, cfg.rs);
                }
                let nid = net.add_node(pos, cfg.rs, rc_grid);
                sid_of.push(new_sid);
                {
                    let ci_new = cells.index_of(pos);
                    cells.members[ci_new].push(nid);
                }
                out.placed.push(pos);
                cfg.trace.emit(TraceEvent::SensorPlaced {
                    x: pos.x,
                    y: pos.y,
                    benefit,
                    agent: ci as u64,
                });
                // Placement notice to every neighboring cell whose area the
                // new disk overlaps and that currently has a leader.
                let disk = decor_geom::Disk::new(pos, cfg.rs);
                cells.neighbors_into(ci, neigh);
                for &nc in neigh.iter() {
                    if cells.members[nc].is_empty() {
                        continue;
                    }
                    if disk.intersects_aabb(&cells.rect(nc)) {
                        let nb_leader =
                            rotation_leader_in(&cells.members[nc], round, elect).unwrap();
                        match transport.as_mut() {
                            Some(tr) => {
                                let id =
                                    tr.send(leader, nb_leader, Message::PlacementNotice { pos });
                                pending.push((id, nc, new_sid));
                            }
                            None => {
                                // Best effort: range failures (exotic
                                // geometries) are modelled as multi-hop and
                                // still counted.
                                if net
                                    .unicast(leader, nb_leader, Message::PlacementNotice { pos })
                                    .is_err()
                                {
                                    net.stats.protocol_sent += 1;
                                    net.stats.total_sent += 1;
                                }
                            }
                        }
                    }
                }
            }
            if let Some(tr) = transport.as_mut() {
                // Under chaos the flush interleaves fault injection with
                // the retry clock, so crashes land between retransmissions.
                match chaos.as_mut() {
                    Some(ch) => tr.flush_chaos_into(&mut net, ch, flushed),
                    None => tr.flush_into(&mut net, flushed),
                }
                // Ids are unique, so a sorted slice answers the same
                // lookups the old per-round BTreeMap did, without its
                // node allocations.
                flushed.sort_unstable_by_key(|&(id, _)| id);
                for &(id, nc, new_sid) in pending.iter() {
                    let outcome = flushed
                        .binary_search_by_key(&id, |&(i, _)| i)
                        .ok()
                        .map(|ix| &flushed[ix].1);
                    match outcome {
                        Some(DeliveryOutcome::Delivered { .. }) => {
                            cfg.invariants.check_ledger(
                                nc as u64,
                                new_sid as u64,
                                true,
                                knowledge.knows(nc, new_sid),
                            );
                        }
                        // The peer leader is unreachable directly — exotic
                        // geometry, or a chaos crash mid-flight: modelled
                        // as multi-hop (same as the legacy path) — the
                        // notice reaches the cell, at one message's cost.
                        Some(DeliveryOutcome::PeerDown) => {
                            net.stats.protocol_sent += 1;
                            net.stats.total_sent += 1;
                            cfg.invariants.check_ledger(
                                nc as u64,
                                new_sid as u64,
                                true,
                                knowledge.knows(nc, new_sid),
                            );
                        }
                        // Retry budget exhausted (or unflushed, which
                        // cannot happen): the cell never hears of the
                        // sensor.
                        _ => {
                            knowledge.hide(nc, new_sid);
                            cfg.invariants.check_ledger(
                                nc as u64,
                                new_sid as u64,
                                false,
                                knowledge.knows(nc, new_sid),
                            );
                        }
                    }
                }
                // Crashes that fired during the flush retire their sensors
                // before the round closes.
                if let Some(ch) = chaos.as_mut() {
                    retire_crashed(
                        ch.take_crashed(),
                        map,
                        &mut cells,
                        &net,
                        sid_of,
                        &cfg.invariants,
                    );
                }
            }

            if let Some(tr) = transport.as_ref() {
                cfg.trace.set_time(tr.now());
            }
            cfg.trace.emit(TraceEvent::RoundEnd {
                round,
                placed: (out.placed.len() - placed_before_round) as u64,
            });
            cfg.trace.emit(TraceEvent::CoverageDelta {
                below_target: map.count_below(cfg.k) as u64,
            });
            round += 1;
            out.trace.push(TracePoint {
                total_sensors: initial + out.placed.len(),
                fraction_k_covered: map.fraction_k_covered(cfg.k),
            });
            if map.count_below(cfg.k) == 0 {
                // Covered, but faults still pending: force the next batch
                // rather than converging early (see the stall-branch twin).
                match chaos.as_mut().filter(|ch| !ch.is_exhausted()) {
                    Some(ch) => {
                        ch.advance_next_batch(&mut net);
                        retire_crashed(
                            ch.take_crashed(),
                            map,
                            &mut cells,
                            &net,
                            sid_of,
                            &cfg.invariants,
                        );
                    }
                    None => break,
                }
            }
        }

        out.rounds = round as usize;
        out.fully_covered = map.count_below(cfg.k) == 0;
        cfg.invariants.check_converged(
            out.fully_covered,
            chaos.as_ref().is_some_and(|ch| !ch.is_exhausted()),
            out.placed.len() >= cfg.max_new_nodes || (round as usize) >= MAX_ROUNDS,
        );
        let populated = cells.members.iter().filter(|m| !m.is_empty()).count();
        let total_members: usize = cells.members.iter().map(Vec::len).sum();
        let (retries, acks, notices_gave_up, duplicates_suppressed) = match &transport {
            Some(tr) => (
                tr.stats.retries,
                tr.stats.acks,
                tr.stats.gave_up,
                tr.stats.duplicates_suppressed,
            ),
            None => (0, 0, 0, 0),
        };
        out.messages = MessageStats {
            protocol_total: net.stats.protocol_sent,
            cells: populated.max(1),
            per_cell: net.stats.protocol_sent as f64 / populated.max(1) as f64,
            per_node_rotated: net.stats.protocol_sent as f64 / total_members.max(1) as f64,
            retries,
            acks,
            notices_gave_up,
            duplicates_suppressed,
        };
        *cells_pool = Some(cells);
        *net_pool = Some(net);
        if let Some(t) = transport {
            *transport_pool = Some(t);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_lds::{halton_points, random_points};

    fn setup(k: u32, n_pts: usize, initial: usize, seed: u64) -> (CoverageMap, DeploymentConfig) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(k);
        let mut map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
        for p in random_points(initial, &field, seed) {
            map.add_sensor(p, cfg.rs);
        }
        (map, cfg)
    }

    #[test]
    fn reaches_full_coverage_small_cell() {
        let (mut map, cfg) = setup(1, 500, 50, 1);
        let out = GridDecor { cell_size: 5.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered, "uncovered: {}", map.count_below(1));
        assert_eq!(map.count_below(1), 0);
        assert!(out.rounds > 0);
    }

    #[test]
    fn reaches_full_coverage_big_cell_k2() {
        let (mut map, cfg) = setup(2, 500, 50, 2);
        let out = GridDecor { cell_size: 10.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert!(map.min_coverage() >= 2);
    }

    #[test]
    fn bootstraps_from_empty_network() {
        let (mut map, cfg) = setup(1, 300, 0, 3);
        let out = GridDecor { cell_size: 10.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert!(!out.placed.is_empty());
    }

    #[test]
    fn places_nothing_when_already_covered() {
        let (mut map, cfg) = setup(1, 300, 0, 4);
        map.add_sensor(Point::new(50.0, 50.0), 200.0);
        let out = GridDecor { cell_size: 5.0 }.place(&mut map, &cfg);
        assert!(out.placed.is_empty());
        assert!(out.fully_covered);
    }

    #[test]
    fn uses_more_nodes_than_centralized() {
        use crate::centralized::CentralizedGreedy;
        let (mut m1, cfg) = setup(2, 800, 100, 5);
        let central = CentralizedGreedy.place(&mut m1, &cfg).placed.len();
        let (mut m2, _) = setup(2, 800, 100, 5);
        let grid = GridDecor { cell_size: 5.0 }
            .place(&mut m2, &cfg)
            .placed
            .len();
        assert!(
            grid as f64 >= central as f64,
            "grid {grid} vs centralized {central}"
        );
        assert!(
            (grid as f64) < 3.0 * central as f64,
            "grid {grid} should stay within 3x of centralized {central}"
        );
    }

    #[test]
    fn sends_placement_notices() {
        let (mut map, cfg) = setup(2, 500, 100, 6);
        let out = GridDecor { cell_size: 5.0 }.place(&mut map, &cfg);
        assert!(out.messages.protocol_total > 0);
        assert!(out.messages.per_cell > 0.0);
        assert!(out.messages.per_node_rotated <= out.messages.per_cell);
    }

    #[test]
    fn bigger_cells_send_more_messages_per_cell() {
        // Fig. 10: "the bigger the cell size, the more the messages that
        // need to be sent by a leader".
        let (mut m1, cfg) = setup(3, 800, 100, 7);
        let small = GridDecor { cell_size: 5.0 }.place(&mut m1, &cfg).messages;
        let (mut m2, _) = setup(3, 800, 100, 7);
        let big = GridDecor { cell_size: 10.0 }.place(&mut m2, &cfg).messages;
        assert!(
            big.per_cell > small.per_cell,
            "big {} vs small {}",
            big.per_cell,
            small.per_cell
        );
    }

    #[test]
    fn trace_is_monotone_in_coverage() {
        let (mut map, cfg) = setup(1, 400, 30, 8);
        let out = GridDecor { cell_size: 5.0 }.place(&mut map, &cfg);
        for w in out.trace.windows(2) {
            assert!(w[1].fraction_k_covered >= w[0].fraction_k_covered - 1e-12);
        }
        assert_eq!(out.trace.last().unwrap().fraction_k_covered, 1.0);
    }

    #[test]
    fn respects_max_new_nodes() {
        let cfg = DeploymentConfig {
            max_new_nodes: 7,
            ..DeploymentConfig::with_k(3)
        };
        let field = Aabb::square(100.0);
        let mut map = CoverageMap::new(halton_points(400, &field), &field, &cfg);
        let out = GridDecor { cell_size: 5.0 }.place(&mut map, &cfg);
        assert!(out.placed.len() <= 7);
        assert!(!out.fully_covered);
    }

    #[test]
    fn engine_path_matches_direct_scan_path() {
        // The cells-mode engine must reproduce the direct per-cell scan
        // bit-for-bit: same placements, rounds, and message counts.
        for (k, initial, cell) in [(1u32, 0usize, 5.0), (2, 50, 5.0), (3, 80, 10.0)] {
            let (mut m_engine, cfg) = setup(k, 600, initial, 11);
            let mut m_direct = m_engine.clone();
            let placer = GridDecor { cell_size: cell };
            let a = placer.place_impl(&mut m_engine, &cfg, true, true, &mut SimScratch::new());
            let b = placer.place_impl(&mut m_direct, &cfg, false, true, &mut SimScratch::new());
            assert_eq!(a.placed, b.placed, "k={k} initial={initial} cell={cell}");
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.fully_covered, b.fully_covered);
            assert_eq!(a.messages.protocol_total, b.messages.protocol_total);
        }
    }

    #[test]
    fn restoration_engine_path_matches_direct_scan_path() {
        // Restoration shape: a pre-covered field with a damage hole. The
        // engine path builds shards only over the hole's cells; the
        // direct path scans everything. Placements must stay identical.
        let cfg = DeploymentConfig::with_k(2);
        let field = Aabb::square(100.0);
        let mut map = CoverageMap::new(halton_points(800, &field), &field, &cfg);
        let mut ids = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                ids.push(map.add_sensor(
                    Point::new(2.5 + 5.0 * i as f64, 2.5 + 5.0 * j as f64),
                    cfg.rs,
                ));
            }
        }
        let hole = Point::new(35.0, 65.0);
        for &id in &ids {
            if map.sensor_pos(id).dist(hole) <= 15.0 {
                map.deactivate_sensor(id);
            }
        }
        assert!(map.count_below(cfg.k) > 0);
        let mut m_direct = map.clone();
        let placer = GridDecor { cell_size: 5.0 };
        let a = placer.place_impl(&mut map, &cfg, true, true, &mut SimScratch::new());
        let b = placer.place_impl(&mut m_direct, &cfg, false, true, &mut SimScratch::new());
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.rounds, b.rounds);
        assert!(a.fully_covered);
        map.verify_consistency();
    }

    #[test]
    fn transport_path_matches_legacy_at_zero_loss() {
        // On a loss-free medium the reliable transport must not change a
        // single placement decision; only the accounting gains ack frames.
        for (k, initial, cell) in [(1u32, 30usize, 5.0), (2, 60, 10.0)] {
            let (mut m_tr, cfg) = setup(k, 500, initial, 15);
            let mut m_legacy = m_tr.clone();
            let placer = GridDecor { cell_size: cell };
            let a = placer.place_impl(&mut m_tr, &cfg, true, true, &mut SimScratch::new());
            let b = placer.place_impl(&mut m_legacy, &cfg, true, false, &mut SimScratch::new());
            assert_eq!(a.placed, b.placed, "k={k} cell={cell}");
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.fully_covered, b.fully_covered);
            assert_eq!(a.messages.retries, 0, "no loss, no retries");
            assert_eq!(a.messages.notices_gave_up, 0);
            assert!(a.messages.acks > 0);
            assert!(a.messages.protocol_total > b.messages.protocol_total);
        }
    }

    #[test]
    fn converges_under_heavy_loss() {
        // At 10% and 30% loss the transport keeps the grid convergent:
        // full k-coverage, retry traffic growing with the loss rate, and
        // blind-spot duplicate placements bounded.
        let (mut m_ref, cfg0) = setup(2, 500, 60, 21);
        let baseline = GridDecor { cell_size: 5.0 }
            .place(&mut m_ref, &cfg0)
            .placed
            .len();
        let mut prev_retries = 0;
        for loss in [0.1, 0.3] {
            let (mut map, mut cfg) = setup(2, 500, 60, 21);
            cfg.link = crate::LinkConfig::lossy(loss, 29);
            let out = GridDecor { cell_size: 5.0 }.place(&mut map, &cfg);
            assert!(out.fully_covered, "loss={loss} left deficient points");
            assert!(map.min_coverage() >= 2);
            assert!(out.messages.retries > prev_retries, "loss={loss}");
            assert!(out.messages.acks > 0);
            assert!(
                out.placed.len() <= baseline + baseline / 2 + 5,
                "loss={loss}: {} placed vs {baseline} baseline",
                out.placed.len()
            );
            prev_retries = out.messages.retries;
        }
    }

    #[test]
    fn chaos_crashes_recover_to_full_coverage() {
        use crate::invariants::InvariantChecker;
        use decor_net::FaultPlan;
        let (mut map, mut cfg) = setup(2, 500, 60, 31);
        cfg.chaos = Some(FaultPlan::parse("0 crash 3\n2 crash 17\n40 crash 8\n").unwrap());
        cfg.invariants = InvariantChecker::enabled();
        let out = GridDecor { cell_size: 5.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered, "uncovered: {}", map.count_below(2));
        assert!(map.min_coverage() >= 2);
        assert_eq!(cfg.invariants.dead(), vec![3, 8, 17]);
        cfg.invariants.assert_green();
    }

    #[test]
    fn chaos_partition_and_blackhole_still_converge() {
        use crate::invariants::InvariantChecker;
        use decor_net::FaultPlan;
        let plan = "0 partition 0 1 2 3 4 5 6 7 8 9\n\
                    1 blackhole 10 11\n\
                    5 crash 12\n\
                    200 heal\n\
                    200 unblackhole 10 11\n";
        let (mut map, mut cfg) = setup(2, 500, 60, 33);
        cfg.chaos = Some(FaultPlan::parse(plan).unwrap());
        cfg.invariants = InvariantChecker::enabled();
        let out = GridDecor { cell_size: 5.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered);
        cfg.invariants.assert_green();
    }

    #[test]
    fn empty_chaos_plan_changes_nothing() {
        use decor_net::FaultPlan;
        let (mut m_chaos, mut cfg_chaos) = setup(2, 500, 60, 35);
        let mut m_plain = m_chaos.clone();
        let cfg_plain = cfg_chaos.clone();
        cfg_chaos.chaos = Some(FaultPlan::empty());
        cfg_chaos.invariants = crate::invariants::InvariantChecker::enabled();
        let a = GridDecor { cell_size: 5.0 }.place(&mut m_chaos, &cfg_chaos);
        let b = GridDecor { cell_size: 5.0 }.place(&mut m_plain, &cfg_plain);
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages.protocol_total, b.messages.protocol_total);
        cfg_chaos.invariants.assert_green();
    }

    #[test]
    fn chaos_requires_no_minimum_population() {
        // Crash every initial sensor: the stall rescue must rebuild from
        // nothing once the massacre ends.
        use crate::invariants::InvariantChecker;
        use decor_net::{FaultEvent, FaultKind, FaultPlan};
        let (mut map, mut cfg) = setup(1, 300, 4, 37);
        let events = (0..4)
            .map(|n| FaultEvent {
                at: 0,
                kind: FaultKind::Crash { node: n },
            })
            .collect();
        cfg.chaos = Some(FaultPlan::new(events));
        cfg.invariants = InvariantChecker::enabled();
        let out = GridDecor { cell_size: 10.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert_eq!(cfg.invariants.dead().len(), 4);
        cfg.invariants.assert_green();
    }

    #[test]
    fn cells_partition_points_exactly() {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::default();
        let map = CoverageMap::new(halton_points(700, &field), &field, &cfg);
        let cells = Cells::new(&field, 5.0, &map);
        assert_eq!(cells.len(), 400);
        let total: usize = cells.points.iter().map(Vec::len).sum();
        assert_eq!(total, 700);
        // Every point is in the cell its coordinates say.
        for ci in 0..cells.len() {
            let rect = cells.rect(ci);
            for &pid in &cells.points[ci] {
                assert!(rect.contains(map.points()[pid]));
            }
        }
    }

    #[test]
    fn neighbor_counts_are_correct() {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::default();
        let map = CoverageMap::new(halton_points(100, &field), &field, &cfg);
        let cells = Cells::new(&field, 10.0, &map); // 10x10 cells
        assert_eq!(cells.neighbors(0).len(), 3); // corner
        assert_eq!(cells.neighbors(5).len(), 5); // edge
        assert_eq!(cells.neighbors(55).len(), 8); // interior
    }
}
