//! Multi-day endurance simulation: rotation, drain, death, restoration.
//!
//! The lifetime claims of the paper's motivation #3 ("k-coverage leads to
//! significant energy savings and increases the lifetime for the
//! network") are only credible if rotation survives contact with the rest
//! of the system: batteries drain per the energy model on every real
//! message and awake period, nodes die mid-shift, the heartbeat detector
//! must tell scheduled sleep from death, and restoration must fold
//! replacements back into the rotation. [`run_endurance`] runs that whole
//! loop on one deterministic clock and reports *lifetime to first
//! unrecoverable coverage loss* — the figure of merit the endurance test
//! tier compares between rotation and always-on.
//!
//! One period of the rotation clock is one heartbeat period `Tc`; within
//! a period events happen in a fixed order (chaos, disasters, coverage
//! check, shift transitions, heartbeats, detection, restoration, idle
//! drain, re-agreement), each sub-step iterating in node-id order — the
//! run is bit-identical across process runs and worker threads.

use crate::config::DeploymentConfig;
use crate::coverage::CoverageMap;
use crate::rotation::agree_shifts;
use crate::Placer;
use decor_geom::Disk;
use decor_net::{
    silent_too_long, ChaosEngine, Message, Network, NodeId, RotationConfig, ShiftSchedule, Time,
};
use decor_trace::TraceEvent;
use std::collections::{BTreeMap, BTreeSet};

/// Endurance scenario knobs, orthogonal to [`DeploymentConfig`] (which
/// carries the rotation knobs themselves in
/// [`DeploymentConfig::rotation`]).
#[derive(Clone, Debug, PartialEq)]
pub struct EnduranceConfig {
    /// Duty-cycle the deployment (`true`) or keep every node always on
    /// (`false`, the baseline the lifetime extension is measured
    /// against). Both arms use identical energy accounting.
    pub rotate: bool,
    /// Total replacement sensors the restoration side may deploy across
    /// the whole run. 0 (the default) measures pure lifetime: deaths are
    /// detected but never healed.
    pub spare_budget: usize,
    /// Hard cap on simulated periods, so a healthy configuration cannot
    /// spin forever. A run that reaches it reports
    /// [`EnduranceReport::ended_by_horizon`].
    pub max_periods: u64,
    /// Scripted area failures: at the start of period `.0`, every alive
    /// node inside disk `.1` dies (the paper's natural disasters, §2.1).
    pub disasters: Vec<(u64, Disk)>,
    /// A neighbor is declared dead after this many silent periods (the
    /// detector's `timeout_periods`, on the same period clock).
    pub timeout_periods: u32,
}

impl Default for EnduranceConfig {
    fn default() -> Self {
        EnduranceConfig {
            rotate: true,
            spare_budget: 0,
            max_periods: 100_000,
            disasters: Vec::new(),
            timeout_periods: 3,
        }
    }
}

/// Outcome of one endurance run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EnduranceReport {
    /// Periods until the first instant where the target coverage became
    /// unrecoverable (even waking every alive node, with no spares left,
    /// some point stays under-covered). Equals `max_periods` when the
    /// horizon ended the run instead.
    pub lifetime_periods: u64,
    /// Shifts in the initial agreement (0 or 1 means always-on).
    pub shifts: usize,
    /// Heartbeats broadcast across the run.
    pub heartbeats_sent: u64,
    /// Alive nodes suspected dead — must be zero: scheduled sleepers are
    /// protected by the three-state lifecycle and this simulation runs a
    /// loss-free medium for heartbeats within a period.
    pub false_positives: u64,
    /// Timeouts that crossed while the silent neighbor was scheduled
    /// asleep (each one a false restoration that did not happen).
    pub sleeping_suppressed: u64,
    /// Nodes whose battery ran out.
    pub battery_deaths: usize,
    /// Nodes killed by scripted disasters.
    pub disaster_deaths: usize,
    /// Nodes crashed by the chaos plan.
    pub chaos_deaths: usize,
    /// Dead nodes some alive observer actually detected.
    pub detected_deaths: usize,
    /// Replacement sensors deployed.
    pub extra_nodes: usize,
    /// Periods where the schedule alone under-covered some point and the
    /// whole network was woken to compensate.
    pub emergency_periods: u64,
    /// In-network re-agreements after membership changed.
    pub reschedules: u64,
    /// Restoration episodes (placer invocations that placed something).
    pub restorations: u64,
    /// `ShiftAssign` transport messages across all agreements.
    pub assignments_sent: u64,
    /// True when the horizon, not coverage loss, ended the run.
    pub ended_by_horizon: bool,
}

impl EnduranceReport {
    /// Lifetime ratio of this run over a baseline run (typically rotation
    /// over always-on).
    pub fn extension_over(&self, baseline: &EnduranceReport) -> f64 {
        self.lifetime_periods as f64 / baseline.lifetime_periods.max(1) as f64
    }
}

/// State of the incremental per-point coverage bookkeeping.
struct CoverTable {
    /// For each map point, the node ids whose disk covers it (sorted).
    coverers: Vec<Vec<NodeId>>,
    /// For each map point, how many of its coverers are alive.
    alive: Vec<u32>,
}

impl CoverTable {
    fn build(net: &Network, map: &CoverageMap) -> CoverTable {
        let coverers: Vec<Vec<NodeId>> = map
            .points()
            .iter()
            .map(|&p| {
                (0..net.len())
                    .filter(|&id| net.node(id).covers(p))
                    .collect()
            })
            .collect();
        let alive = coverers
            .iter()
            .map(|c| c.iter().filter(|&&id| net.is_alive(id)).count() as u32)
            .collect();
        CoverTable { coverers, alive }
    }

    fn on_death(&mut self, id: NodeId) {
        for (pt, cov) in self.coverers.iter().enumerate() {
            if cov.binary_search(&id).is_ok() {
                self.alive[pt] -= 1;
            }
        }
    }

    fn on_birth(&mut self, net: &Network, id: NodeId, map: &CoverageMap) {
        for (pt, &p) in map.points().iter().enumerate() {
            if net.node(id).covers(p) {
                self.coverers[pt].push(id);
                self.alive[pt] += 1;
            }
        }
    }

    fn min_alive(&self) -> u32 {
        self.alive.iter().copied().min().unwrap_or(u32::MAX)
    }

    /// Minimum on-duty coverage over all points, where `on_duty`
    /// answers per node.
    fn min_awake(&self, on_duty: &[bool]) -> u32 {
        self.coverers
            .iter()
            .map(|cov| cov.iter().filter(|&&id| on_duty[id]).count() as u32)
            .min()
            .unwrap_or(u32::MAX)
    }
}

/// Runs the endurance loop. `cfg.rotation` supplies the rotation knobs
/// (defaults apply when `None`); `e` selects the scenario. The map is
/// mutated: deaths deactivate sensors, restorations add them.
pub fn run_endurance(
    map: &mut CoverageMap,
    placer: &dyn Placer,
    cfg: &DeploymentConfig,
    e: &EnduranceConfig,
) -> EnduranceReport {
    cfg.validate();
    let rot = cfg.rotation.unwrap_or_default();
    rot.validate();
    assert!(
        e.timeout_periods >= 2,
        "timeout must span at least 2 periods"
    );

    // Mirror the active sensors into a network; node i <-> sensor_of[i].
    let sensors = map.active_sensors();
    let mut net = Network::new(*map.field());
    cfg.link.apply(&mut net);
    net.set_trace(cfg.trace.clone());
    let mut sensor_of: Vec<crate::coverage::SensorId> = Vec::with_capacity(sensors.len());
    for &(sid, pos) in &sensors {
        net.add_node(pos, cfg.rs, cfg.rc);
        sensor_of.push(sid);
    }

    let mut report = EnduranceReport::default();
    let mut chaos = cfg.chaos.clone().map(ChaosEngine::new);
    let mut table = CoverTable::build(&net, map);

    // Initial in-network agreement (or the always-on degenerate).
    let mut epoch = 0u64;
    let mut schedule = if e.rotate {
        let agreement = agree_shifts(&mut net, map.points(), &rot, &cfg.link, epoch);
        report.assignments_sent += agreement.assignments_sent;
        agreement.schedule
    } else {
        ShiftSchedule::always_on(rot.period, net.len())
    };
    report.shifts = schedule.n_shifts();

    // Battery book-keeping: radio spend lives in net.stats, idle spend
    // here; a node dies when their sum reaches its capacity.
    let mut battery: Vec<f64> = vec![rot.battery; net.len()];
    let mut idle_spent: Vec<f64> = vec![0.0; net.len()];
    let mut spent_at_wake: Vec<f64> = vec![0.0; net.len()];
    let mut last_wake: Vec<Time> = vec![0; net.len()];

    // Watch lists from a t=0 hello exchange (everyone awake at deploy).
    let mut last_heard: BTreeMap<(NodeId, NodeId), Time> = BTreeMap::new();
    let mut watch: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for id in net.alive_ids() {
        let pos = net.node(id).pos;
        for observer in net.broadcast(id, Message::Hello { pos }) {
            last_heard.insert((observer, id), 0);
            watch.entry(observer).or_default().push(id);
        }
    }

    let mut was_awake: Vec<bool> = vec![true; net.len()];
    let mut handled_death: Vec<bool> = vec![false; net.len()];
    let mut missed: BTreeMap<(NodeId, NodeId), u32> = BTreeMap::new();
    let mut suspected: BTreeSet<NodeId> = BTreeSet::new();
    let mut membership_changed = false;
    let mut prev_shift: Option<usize> = None;
    let mut disasters = e.disasters.clone();
    disasters.sort_by_key(|&(p, _)| p);
    let mut next_disaster = 0usize;

    let mut period = 0u64;
    let target = rot.target_coverage;
    loop {
        if period >= e.max_periods {
            report.ended_by_horizon = true;
            report.lifetime_periods = e.max_periods;
            break;
        }
        let now: Time = period * rot.period;
        cfg.trace.set_time(now);

        // (a) Chaos faults due this period.
        let mut deaths: Vec<(NodeId, &'static str)> = Vec::new();
        if let Some(engine) = chaos.as_mut() {
            engine.advance_to(&mut net, now);
            for id in engine.take_crashed() {
                deaths.push((id, "chaos"));
            }
        }
        // (b) Scripted disasters.
        while next_disaster < disasters.len() && disasters[next_disaster].0 <= period {
            let disk = disasters[next_disaster].1;
            for id in net.alive_ids() {
                if disk.contains(net.node(id).pos) {
                    net.fail_node(id);
                    deaths.push((id, "disaster"));
                }
            }
            next_disaster += 1;
        }
        for &(id, kind) in &deaths {
            match kind {
                "chaos" => report.chaos_deaths += 1,
                _ => report.disaster_deaths += 1,
            }
            table.on_death(id);
            map.deactivate_sensor(sensor_of[id]);
            cfg.trace.emit(TraceEvent::NodeFailed { node: id as u64 });
        }

        // (c) Ground-truth coverage check with escalation. A node is on
        // duty when alive and its shift is scheduled (unscheduled nodes
        // are always on).
        let mut on_duty: Vec<bool> = (0..net.len())
            .map(|id| net.is_alive(id) && !schedule.is_scheduled_asleep(id, now))
            .collect();
        let mut emergency = false;
        if table.min_awake(&on_duty) < target {
            if table.min_alive() >= target {
                // The schedule alone fails but the deployment does not:
                // wake everyone for this period and re-agree after.
                report.emergency_periods += 1;
                membership_changed = true;
                emergency = true;
                for (id, duty) in on_duty.iter_mut().enumerate() {
                    *duty = net.is_alive(id);
                }
            } else {
                // Even everyone awake is not enough: heal or die.
                let healed = try_restore(
                    map,
                    placer,
                    cfg,
                    &rot,
                    &mut net,
                    &mut sensor_of,
                    &mut battery,
                    &mut idle_spent,
                    &mut spent_at_wake,
                    &mut last_wake,
                    &mut was_awake,
                    &mut handled_death,
                    &mut table,
                    &mut schedule,
                    &mut last_heard,
                    &mut watch,
                    &mut report,
                    e,
                    now,
                );
                if healed && table.min_alive() >= target {
                    membership_changed = true;
                    emergency = true;
                    report.emergency_periods += 1;
                    on_duty = (0..net.len()).map(|id| net.is_alive(id)).collect();
                } else {
                    report.lifetime_periods = period;
                    break;
                }
            }
        }

        // (d) Shift transitions: trace boundaries, flip radio flags,
        // charge the sleep-entry drain summary.
        if schedule.n_shifts() > 1 {
            let cur = schedule.scheduled_shift(now);
            if prev_shift != Some(cur) {
                if let Some(prev) = prev_shift {
                    cfg.trace.emit(TraceEvent::ShiftEnd { shift: prev as u64 });
                }
                let awake = on_duty.iter().filter(|&&a| a).count() as u64;
                cfg.trace.emit(TraceEvent::ShiftBegin {
                    shift: cur as u64,
                    awake,
                });
                prev_shift = Some(cur);
            }
        }
        for id in 0..net.len() {
            if !net.is_alive(id) {
                continue;
            }
            let spent = net.stats.energy_of(id) + idle_spent[id];
            if on_duty[id] && !was_awake[id] {
                cfg.trace.emit(TraceEvent::NodeWake { node: id as u64 });
                last_wake[id] = now;
                spent_at_wake[id] = spent;
            } else if !on_duty[id] && was_awake[id] {
                cfg.trace.emit(TraceEvent::NodeSleep { node: id as u64 });
                cfg.trace.emit(TraceEvent::BatteryDrain {
                    node: id as u64,
                    amount: spent - spent_at_wake[id],
                });
            }
            was_awake[id] = on_duty[id];
            net.set_sleeping(id, !on_duty[id]);
        }

        // (e) Heartbeats: every on-duty node beats once, in id order.
        for (id, &duty) in on_duty.iter().enumerate() {
            if net.is_alive(id) && duty {
                let pos = net.node(id).pos;
                for observer in net.broadcast(id, Message::Heartbeat { pos }) {
                    last_heard.insert((observer, id), now);
                }
                report.heartbeats_sent += 1;
            }
        }

        // (f) Detection: on-duty observers scan their watch lists.
        let mut newly_detected: Vec<(NodeId, NodeId)> = Vec::new();
        for (id, &duty) in on_duty.iter().enumerate() {
            if !net.is_alive(id) || !duty {
                continue;
            }
            let Some(neighbors) = watch.get(&id) else {
                continue;
            };
            for &nb in neighbors {
                let last = last_heard.get(&(id, nb)).copied().unwrap_or(0);
                // Was the neighbor *expected* to beat this period? Dead
                // nodes stay on their last schedule, so a dead neighbor
                // whose shift is on duty is expected — and missed.
                let expected = emergency || !schedule.is_scheduled_asleep(nb, now);
                if !expected {
                    // Scheduled asleep: silence is the plan. A naive
                    // detector would suspect here; count the suppression.
                    // Strikes neither accrue nor reset — only on-duty
                    // periods are evidence either way.
                    if silent_too_long(now, last, rot.period, e.timeout_periods) {
                        report.sleeping_suppressed += 1;
                    }
                    continue;
                }
                if last == now {
                    missed.insert((id, nb), 0);
                    continue;
                }
                let strikes = missed.entry((id, nb)).or_insert(0);
                *strikes += 1;
                if *strikes >= e.timeout_periods {
                    if net.is_alive(nb) {
                        if suspected.insert(nb) {
                            report.false_positives += 1;
                        }
                    } else if !handled_death[nb] {
                        handled_death[nb] = true;
                        newly_detected.push((id, nb));
                    }
                }
            }
        }
        for (observer, nb) in newly_detected {
            report.detected_deaths += 1;
            cfg.trace.emit(TraceEvent::HeartbeatMiss {
                observer: observer as u64,
                node: nb as u64,
            });
            // A detected real failure triggers healing when spares allow.
            let healed = try_restore(
                map,
                placer,
                cfg,
                &rot,
                &mut net,
                &mut sensor_of,
                &mut battery,
                &mut idle_spent,
                &mut spent_at_wake,
                &mut last_wake,
                &mut was_awake,
                &mut handled_death,
                &mut table,
                &mut schedule,
                &mut last_heard,
                &mut watch,
                &mut report,
                e,
                now,
            );
            if healed {
                membership_changed = true;
            }
        }
        // Replacements placed by a detection-triggered heal enter awake;
        // they start paying the awake idle cost this very period.
        on_duty.resize(net.len(), true);

        // (g) Idle drain and battery deaths. Radio spend already lives in
        // net.stats; batteries die when the sum crosses capacity.
        for id in 0..net.len() {
            if !net.is_alive(id) {
                continue;
            }
            let cost = if on_duty[id] {
                rot.awake_cost
            } else {
                rot.sleep_cost
            };
            idle_spent[id] += cost;
            let spent = net.stats.energy_of(id) + idle_spent[id];
            if spent >= battery[id] {
                cfg.trace.emit(TraceEvent::BatteryDrain {
                    node: id as u64,
                    amount: spent,
                });
                cfg.trace.emit(TraceEvent::NodeFailed { node: id as u64 });
                net.fail_node(id);
                table.on_death(id);
                map.deactivate_sensor(sensor_of[id]);
                report.battery_deaths += 1;
                // Deliberately NOT a membership change: the network must
                // *detect* the silence before it reacts.
            }
        }

        // (h) Re-agreement after membership changed (emergency or
        // restoration): wake everyone, agree afresh, rotate on.
        if membership_changed && e.rotate {
            for id in 0..net.len() {
                net.set_sleeping(id, false);
            }
            epoch += 1;
            let agreement = agree_shifts(&mut net, map.points(), &rot, &cfg.link, epoch);
            report.assignments_sent += agreement.assignments_sent;
            schedule = agreement.schedule;
            report.reschedules += 1;
            membership_changed = false;
            prev_shift = None;
        }

        period += 1;
    }
    report
}

/// Attempts one restoration episode: heals the map with `placer` under
/// the remaining spare budget and folds any new sensors into the network,
/// the battery tables, the watch lists, and the rotation. Returns whether
/// anything was placed.
#[allow(clippy::too_many_arguments)]
fn try_restore(
    map: &mut CoverageMap,
    placer: &dyn Placer,
    cfg: &DeploymentConfig,
    rot: &RotationConfig,
    net: &mut Network,
    sensor_of: &mut Vec<crate::coverage::SensorId>,
    battery: &mut Vec<f64>,
    idle_spent: &mut Vec<f64>,
    spent_at_wake: &mut Vec<f64>,
    last_wake: &mut Vec<Time>,
    was_awake: &mut Vec<bool>,
    handled_death: &mut Vec<bool>,
    table: &mut CoverTable,
    schedule: &mut ShiftSchedule,
    last_heard: &mut BTreeMap<(NodeId, NodeId), Time>,
    watch: &mut BTreeMap<NodeId, Vec<NodeId>>,
    report: &mut EnduranceReport,
    e: &EnduranceConfig,
    now: Time,
) -> bool {
    let spares_left = e.spare_budget.saturating_sub(report.extra_nodes);
    if spares_left == 0 {
        return false;
    }
    let mut rcfg = cfg.clone();
    rcfg.max_new_nodes = spares_left;
    // Heal to the deployment's own coverage requirement, not just the
    // rotation target: a hole patched to bare target coverage caps the
    // next partition at a single shift and silently collapses the whole
    // network back to always-on.
    rcfg.k = cfg.k.max(rot.target_coverage);
    let outcome = placer.place(map, &rcfg);
    if outcome.placed.is_empty() {
        return false;
    }
    report.extra_nodes += outcome.placed.len();
    report.restorations += 1;
    // The placer registered the sensors in the map; mirror each into the
    // network and every bookkeeping table, then fold it into the least
    // loaded shift so the rotation absorbs the replacement.
    let placed_sids = {
        let active = map.active_sensors();
        let known: BTreeSet<crate::coverage::SensorId> = sensor_of.iter().copied().collect();
        active
            .into_iter()
            .filter(|(sid, _)| !known.contains(sid))
            .collect::<Vec<_>>()
    };
    for (sid, pos) in placed_sids {
        let id = net.add_node(pos, cfg.rs, cfg.rc);
        sensor_of.push(sid);
        battery.push(rot.battery);
        idle_spent.push(0.0);
        spent_at_wake.push(0.0);
        last_wake.push(now);
        was_awake.push(true);
        handled_death.push(false);
        table.on_birth(net, id, map);
        if schedule.n_shifts() > 1 {
            if let Some(si) = schedule.least_loaded_shift() {
                schedule.assign(id, si);
            }
        }
        // Replacement introduces itself; hearers start watching it and
        // it starts watching them (symmetric hello).
        let heard_by = net.broadcast(id, Message::Hello { pos });
        for observer in heard_by {
            last_heard.insert((observer, id), now);
            watch.entry(observer).or_default().push(id);
            last_heard.insert((id, observer), now);
            watch.entry(id).or_default().push(observer);
        }
        cfg.trace.emit(TraceEvent::NodeWake { node: id as u64 });
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedGreedy;
    use decor_geom::{Aabb, Point};
    use decor_lds::halton_points;
    use decor_net::FaultPlan;

    fn covered_map(k: u32, n_pts: usize) -> (CoverageMap, DeploymentConfig) {
        let field = Aabb::square(60.0);
        let mut cfg = DeploymentConfig::with_k(k);
        cfg.rotation = Some(RotationConfig::default());
        let mut map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
        CentralizedGreedy.place(&mut map, &cfg);
        assert_eq!(map.count_below(k), 0);
        (map, cfg)
    }

    fn quick(rotate: bool) -> EnduranceConfig {
        EnduranceConfig {
            rotate,
            max_periods: 2_000,
            ..EnduranceConfig::default()
        }
    }

    #[test]
    fn rotation_outlives_always_on() {
        let run = |rotate: bool| {
            let (mut map, cfg) = covered_map(3, 250);
            run_endurance(&mut map, &CentralizedGreedy, &cfg, &quick(rotate))
        };
        let on = run(false);
        let rotated = run(true);
        assert!(!on.ended_by_horizon, "baseline must actually die");
        assert!(!rotated.ended_by_horizon, "rotation must actually die");
        assert!(rotated.shifts > 1, "k=3 deployment must split into shifts");
        let ext = rotated.extension_over(&on);
        assert!(
            ext >= 2.0,
            "rotation must at least double lifetime: {} vs {} ({ext:.2}x)",
            rotated.lifetime_periods,
            on.lifetime_periods
        );
    }

    #[test]
    fn no_false_positives_and_suppression_proves_sleep() {
        // With S shifts a node sleeps S-1 consecutive periods; a 2-period
        // timeout guarantees that sleep stretch crosses the would-alarm
        // threshold even for the 3-shift schedule this deployment yields.
        let (mut map, cfg) = covered_map(3, 250);
        let mut e = quick(true);
        e.timeout_periods = 2;
        let report = run_endurance(&mut map, &CentralizedGreedy, &cfg, &e);
        assert_eq!(report.false_positives, 0, "sleepers declared dead");
        assert!(
            report.sleeping_suppressed > 0,
            "no timeout ever crossed while asleep — suppression untested"
        );
    }

    #[test]
    fn always_on_never_suppresses() {
        let (mut map, cfg) = covered_map(3, 250);
        let report = run_endurance(&mut map, &CentralizedGreedy, &cfg, &quick(false));
        assert_eq!(report.shifts, 0);
        assert_eq!(report.sleeping_suppressed, 0);
        assert_eq!(report.false_positives, 0);
    }

    #[test]
    fn endurance_is_deterministic() {
        let run = || {
            let (mut map, cfg) = covered_map(3, 200);
            run_endurance(&mut map, &CentralizedGreedy, &cfg, &quick(true))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disaster_kills_and_detection_notices() {
        // The greedy stacks k co-located sensors per benefit-max point, so
        // a survivable disaster needs a dense point set (every point keeps
        // a neighboring stack within rs) and a disk small enough to take
        // one stack's worth, not a whole neighborhood.
        let (mut map, cfg) = covered_map(3, 500);
        let mut e = quick(true);
        e.disasters = vec![(3, Disk::new(Point::new(30.0, 30.0), 2.0))];
        let report = run_endurance(&mut map, &CentralizedGreedy, &cfg, &e);
        assert!(report.disaster_deaths > 0, "the disk must hit someone");
        assert!(
            report.detected_deaths > 0,
            "neighbors must notice the silence"
        );
        assert_eq!(report.false_positives, 0);
    }

    #[test]
    fn spares_heal_a_disaster_and_extend_lifetime() {
        let run = |spares: usize| {
            let (mut map, cfg) = covered_map(3, 250);
            let mut e = quick(true);
            e.spare_budget = spares;
            e.disasters = vec![(3, Disk::new(Point::new(30.0, 30.0), 14.0))];
            run_endurance(&mut map, &CentralizedGreedy, &cfg, &e)
        };
        let bare = run(0);
        let healed = run(60);
        assert!(healed.extra_nodes > 0, "spares must be spent");
        assert!(healed.restorations > 0);
        assert!(healed.reschedules > 0, "replacements re-enter the rotation");
        assert!(
            healed.lifetime_periods >= bare.lifetime_periods,
            "healing cannot shorten life: {} vs {}",
            healed.lifetime_periods,
            bare.lifetime_periods
        );
    }

    #[test]
    fn chaos_crashes_count_separately() {
        let (mut map, mut cfg) = covered_map(3, 250);
        // Crash two nodes early via the chaos plan.
        cfg.chaos = Some(FaultPlan::parse("0 crash 0\n1000 crash 7\n").unwrap());
        let report = run_endurance(&mut map, &CentralizedGreedy, &cfg, &quick(true));
        assert_eq!(report.chaos_deaths, 2);
        assert_eq!(report.false_positives, 0);
    }

    #[test]
    fn horizon_caps_an_immortal_run() {
        let (mut map, mut cfg) = covered_map(1, 150);
        // Giant batteries: nobody dies before the horizon.
        cfg.rotation = Some(RotationConfig {
            battery: 1e12,
            ..RotationConfig::default()
        });
        let e = EnduranceConfig {
            max_periods: 50,
            ..EnduranceConfig::default()
        };
        let report = run_endurance(&mut map, &CentralizedGreedy, &cfg, &e);
        assert!(report.ended_by_horizon);
        assert_eq!(report.lifetime_periods, 50);
    }
}
