//! The exact-geometry hole-healing scheme (`"holes"`).
//!
//! Where every other placer in this crate reasons about coverage through
//! the approximation-point sketch, this one closes the loop with *exact*
//! geometry: each round it runs the Voronoi hole detector
//! ([`decor_geom::detect_holes`]) over the region of interest around the
//! current deficit, and drops a sensor at the **deepest witness** of the
//! largest uncovered region — the point locally farthest from every
//! active sensor, the exact analogue of the paper's "place where coverage
//! is worst" heuristic. Once no true (0-coverage) hole remains, residual
//! `k`-deficits are drained by the same sharded greedy engine the
//! centralized baseline uses, so the tail of the run is bit-comparable to
//! [`crate::CentralizedGreedy`].
//!
//! The detector pass is *output-sensitive*: the region of interest is the
//! bounding box of the deficient approximation points (inflated by `2·rs`
//! so the surrounding Voronoi structure is complete) and only sensors
//! whose disks can reach it are gathered, so healing a small wound on a
//! large field never touches the far side of the field.
//!
//! Like the distributed schemes the placer keeps a mirror [`Network`] of
//! accounting nodes so a scripted [`ChaosEngine`] can crash sensors
//! mid-restoration on a per-round clock; crashed sensors are retired from
//! the coverage map (and reported to the invariant checker) before the
//! next decision, so the healer reacts to faults it has itself already
//! repaired around.

use std::collections::BTreeMap;

use decor_geom::{detect_holes, Aabb, Point};
use decor_net::{ChaosEngine, Network, NodeId};
use decor_trace::TraceEvent;

use crate::config::DeploymentConfig;
use crate::coverage::CoverageMap;
use crate::engine::ShardedBenefitEngine;
use crate::metrics::{PlacementOutcome, TracePoint};
use crate::Placer;

/// Round cap (loop safety; mirrors the other schemes).
const MAX_ROUNDS: usize = 100_000;

/// Exact hole detection + deepest-witness healing, engine top-up for
/// residual `k`-deficits.
#[derive(Clone, Copy, Debug, Default)]
pub struct HoleHealing;

/// Retires chaos-crashed nodes: deactivate in the map, tell the checker.
fn retire_crashed(
    crashed: Vec<NodeId>,
    map: &mut CoverageMap,
    sid_of: &BTreeMap<NodeId, usize>,
    checker: &crate::invariants::InvariantChecker,
) -> usize {
    let n = crashed.len();
    for nid in crashed {
        checker.note_crash(nid as u64);
        map.deactivate_sensor(sid_of[&nid]);
    }
    n
}

/// The exact-geometry candidate: the deepest witness of the largest true
/// hole inside the deficit's region of interest, or `None` when the
/// deficit region is fully 1-covered (residuals are then `k`-deficits the
/// greedy engine handles).
fn hole_candidate(map: &CoverageMap, cfg: &DeploymentConfig) -> Option<Point> {
    // True holes are 0-coverage regions; anchor the ROI on the points
    // that see *no* sensor. (A hole can hide between approximation
    // points, but it then borders the deficit the sketch does see — the
    // 2·rs inflation pulls it into the ROI.)
    let bare = map.uncovered_ids(1);
    if bare.is_empty() {
        return None;
    }
    let pts = map.points();
    let mut lo = pts[bare[0]];
    let mut hi = lo;
    for &pid in &bare[1..] {
        let p = pts[pid];
        lo = Point::new(lo.x.min(p.x), lo.y.min(p.y));
        hi = Point::new(hi.x.max(p.x), hi.y.max(p.y));
    }
    let roi = Aabb::new(lo, hi)
        .inflate(2.0 * cfg.rs)
        .intersection(map.field())?;
    // Every sensor whose disk reaches into the ROI lies within its
    // circumradius plus rs of the center; rs again as slack.
    let gather_r = roi.width().hypot(roi.height()) * 0.5 + 2.0 * cfg.rs;
    let sensors: Vec<Point> = map
        .sensors_within(roi.center(), gather_r)
        .into_iter()
        .map(|sid| map.sensor_pos(sid))
        .collect();
    let report = detect_holes(&sensors, cfg.rs, &roi);
    // Largest hole first (detect_holes sorts by area); its deepest
    // witness is strictly uncovered, so the placement always progresses.
    report.holes().first().map(|h| h.deepest)
}

impl Placer for HoleHealing {
    fn name(&self) -> String {
        "Holes (exact)".to_owned()
    }

    fn place(&self, map: &mut CoverageMap, cfg: &DeploymentConfig) -> PlacementOutcome {
        cfg.validate();
        let field = *map.field();
        // Accounting mirror so the chaos engine has nodes to crash. The
        // healer itself is a central authority and sends no messages.
        let mut net = Network::new(field);
        net.set_trace(cfg.trace.clone());
        let mut chaos = cfg.chaos.as_ref().map(ChaosEngine::borrowed);
        let mut sid_of: BTreeMap<NodeId, usize> = BTreeMap::new();
        for (sid, pos) in map.active_sensors() {
            let nid = net.add_node(pos, cfg.rs, cfg.rc);
            sid_of.insert(nid, sid);
        }
        let initial = map.n_active_sensors();
        let mut out = PlacementOutcome {
            initial_sensors: initial,
            ..PlacementOutcome::default()
        };
        out.trace.push(TracePoint {
            total_sensors: initial,
            fraction_k_covered: map.fraction_k_covered(cfg.k),
        });

        // Greedy engine for the residual k-deficit, built lazily the
        // first round no true hole remains and invalidated whenever a
        // crash retires coverage behind its back.
        let mut engine: Option<ShardedBenefitEngine> = None;
        let mut rounds = 0usize;
        while out.placed.len() < cfg.max_new_nodes && rounds < MAX_ROUNDS {
            let round = rounds as u64;
            // The healer has no transport; chaos rides a per-round clock
            // with the transport's backoff tick, so scripted faults land
            // between placements exactly as they do for the distributed
            // schemes.
            if let Some(ch) = chaos.as_mut() {
                let now = round * cfg.link.backoff_base;
                ch.advance_to(&mut net, now);
                if retire_crashed(ch.take_crashed(), map, &sid_of, &cfg.invariants) > 0 {
                    engine = None;
                }
                cfg.trace.set_time(now);
            }
            cfg.trace.emit(TraceEvent::RoundBegin {
                scheme: "holes",
                round,
            });

            let pos = if map.count_below(cfg.k) == 0 {
                // Fully covered but faults still scheduled: force the
                // next batch rather than converging early.
                if let Some(ch) = chaos.as_mut().filter(|ch| !ch.is_exhausted()) {
                    ch.advance_next_batch(&mut net);
                    if retire_crashed(ch.take_crashed(), map, &sid_of, &cfg.invariants) > 0 {
                        engine = None;
                    }
                    cfg.trace.emit(TraceEvent::RoundEnd { round, placed: 0 });
                    cfg.trace.emit(TraceEvent::CoverageDelta {
                        below_target: map.count_below(cfg.k) as u64,
                    });
                    rounds += 1;
                    out.trace.push(TracePoint {
                        total_sensors: initial + out.placed.len(),
                        fraction_k_covered: map.fraction_k_covered(cfg.k),
                    });
                    continue;
                }
                break;
            } else if let Some(pos) = hole_candidate(map, cfg) {
                pos
            } else {
                // No true hole left: residual deficit is k > 1 depth.
                // Same candidate policy as the centralized baseline.
                let eng = engine.get_or_insert_with(|| {
                    let cands: Vec<usize> = if cfg.k <= map.k_target() {
                        map.deficit_candidates(cfg.rs)
                    } else {
                        (0..map.n_points()).collect()
                    };
                    ShardedBenefitEngine::global(map, cands, cfg.rs, cfg.k)
                });
                let Some((_, _, pos, _)) = eng.best(map) else {
                    // A deficient point is its own positive-benefit
                    // candidate, so this is unreachable while deficit
                    // remains; bail rather than spin if it ever isn't.
                    break;
                };
                pos
            };

            // The witness benefit is scored by the same Eq. 1 the engine
            // uses, so hole placements and engine placements are
            // comparable in the trace.
            let benefit = map.deficit_within(pos, cfg.rs, cfg.k);
            let sid = map.add_sensor(pos, cfg.rs);
            if let Some(eng) = engine.as_mut() {
                eng.on_sensor_added(map, pos, cfg.rs);
            }
            let nid = net.add_node(pos, cfg.rs, cfg.rc);
            sid_of.insert(nid, sid);
            out.placed.push(pos);
            // Placed by the central healing authority, not an agent.
            cfg.trace.emit(TraceEvent::SensorPlaced {
                x: pos.x,
                y: pos.y,
                benefit,
                agent: u64::MAX,
            });
            cfg.trace.emit(TraceEvent::RoundEnd { round, placed: 1 });
            cfg.trace.emit(TraceEvent::CoverageDelta {
                below_target: map.count_below(cfg.k) as u64,
            });
            rounds += 1;
            out.trace.push(TracePoint {
                total_sensors: initial + out.placed.len(),
                fraction_k_covered: map.fraction_k_covered(cfg.k),
            });
        }

        out.rounds = rounds;
        out.fully_covered = map.count_below(cfg.k) == 0;
        cfg.invariants.check_converged(
            out.fully_covered,
            chaos.as_ref().is_some_and(|ch| !ch.is_exhausted()),
            out.placed.len() >= cfg.max_new_nodes || rounds >= MAX_ROUNDS,
        );
        // No messages: the healer is centralized (cost accounting matches
        // the centralized baseline's all-zero stats).
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::InvariantChecker;
    use decor_lds::halton_points;
    use decor_net::FaultPlan;

    fn fresh_map(n_pts: usize, cfg: &DeploymentConfig) -> CoverageMap {
        let field = Aabb::square(100.0);
        CoverageMap::new(halton_points(n_pts, &field), &field, cfg)
    }

    #[test]
    fn achieves_full_coverage_for_k1() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(300, &cfg);
        let out = HoleHealing.place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert_eq!(map.count_below(1), 0);
        assert!(!out.placed.is_empty());
    }

    #[test]
    fn achieves_full_coverage_for_k3() {
        let cfg = DeploymentConfig::with_k(3);
        let mut map = fresh_map(300, &cfg);
        let out = HoleHealing.place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert!(map.min_coverage() >= 3);
    }

    #[test]
    fn k1_field_is_geometrically_clear_after_healing() {
        // The scheme's claim over the sketch-based placers: after a k=1
        // run the *exact* uncovered area of the whole field is zero, not
        // just the sampled one.
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(500, &cfg);
        let out = HoleHealing.place(&mut map, &cfg);
        assert!(out.fully_covered);
        let sensors: Vec<Point> = map.active_sensors().into_iter().map(|(_, p)| p).collect();
        let report = detect_holes(&sensors, cfg.rs, map.field());
        // The sketch can miss slivers between approximation points, so
        // the exact residue is not zero — but the deepest-witness policy
        // keeps it to sub-percent of the field (a grid/random placer at
        // this sketch density leaves strictly more).
        let bound = 0.01 * map.field().area();
        assert!(
            report.total_area() < bound,
            "geometric residue {} >= {bound}",
            report.total_area()
        );
    }

    #[test]
    fn heals_a_punched_wound_with_few_sensors() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(900, &cfg);
        // Cover the field with a lattice, then punch a wound.
        let mut ids = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                ids.push(map.add_sensor(
                    Point::new(2.5 + 5.0 * i as f64, 2.5 + 5.0 * j as f64),
                    cfg.rs,
                ));
            }
        }
        let wound = Point::new(50.0, 50.0);
        for &id in &ids {
            if map.sensor_pos(id).dist(wound) <= 15.0 {
                map.deactivate_sensor(id);
            }
        }
        assert!(map.count_below(1) > 0);
        let out = HoleHealing.place(&mut map, &cfg);
        assert!(out.fully_covered);
        // ~28 sensors died; exact healing should need far fewer than a
        // blanket re-lattice of the wound.
        assert!(
            out.placed.len() <= 28,
            "healing used {} sensors",
            out.placed.len()
        );
        for p in &out.placed {
            assert!(
                p.dist(wound) <= 15.0 + 2.0 * cfg.rs,
                "placement {p:?} far from the wound"
            );
        }
        map.verify_consistency();
    }

    #[test]
    fn respects_existing_sensors() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(500, &cfg);
        for i in 0..13 {
            for j in 0..13 {
                map.add_sensor(Point::new(4.0 + 7.7 * i as f64, 4.0 + 7.7 * j as f64), 6.0);
            }
        }
        assert_eq!(map.count_below(1), 0);
        let out = HoleHealing.place(&mut map, &cfg);
        assert!(out.placed.is_empty(), "nothing to restore");
        assert!(out.fully_covered);
    }

    #[test]
    fn max_new_nodes_caps_the_run() {
        let cfg = DeploymentConfig {
            max_new_nodes: 5,
            ..DeploymentConfig::with_k(3)
        };
        let mut map = fresh_map(500, &cfg);
        let out = HoleHealing.place(&mut map, &cfg);
        assert_eq!(out.placed.len(), 5);
        assert!(!out.fully_covered);
    }

    #[test]
    fn exchanges_no_messages() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(300, &cfg);
        let out = HoleHealing.place(&mut map, &cfg);
        assert_eq!(out.messages.protocol_total, 0);
    }

    #[test]
    fn placement_is_deterministic() {
        let cfg = DeploymentConfig::with_k(2);
        let mut a = fresh_map(250, &cfg);
        let mut b = a.clone();
        let oa = HoleHealing.place(&mut a, &cfg);
        let ob = HoleHealing.place(&mut b, &cfg);
        assert_eq!(oa.placed, ob.placed);
        assert_eq!(oa.rounds, ob.rounds);
    }

    #[test]
    fn converges_under_chaos_with_invariants() {
        let cfg = DeploymentConfig {
            chaos: Some(FaultPlan::generate(11, 40, 600)),
            invariants: InvariantChecker::enabled(),
            ..DeploymentConfig::with_k(2)
        };
        let mut map = fresh_map(350, &cfg);
        let out = HoleHealing.place(&mut map, &cfg);
        assert!(out.fully_covered, "must out-place the fault plan");
        assert_eq!(map.count_below(2), 0);
        map.verify_consistency();
    }

    #[test]
    fn trace_rounds_are_well_formed() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(300, &cfg);
        let out = HoleHealing.place(&mut map, &cfg);
        assert!(out.rounds > 0);
        assert_eq!(out.trace.len(), out.placed.len() + 1);
        for w in out.trace.windows(2) {
            assert!(w[1].fraction_k_covered >= w[0].fraction_k_covered - 1e-12);
        }
        assert_eq!(out.trace.last().unwrap().fraction_k_covered, 1.0);
    }
}
