//! Reliability arithmetic (§2.1).
//!
//! With i.i.d. node failure probability `q`, a point covered by `k`
//! sensors stays covered with probability `1 − q^k`. DECOR's coverage
//! requirement is derived from a user-facing reliability target:
//! `k = ⌈ log(1 − target) / log(q) ⌉`.

/// Probability that a `k`-covered point remains covered when every sensor
/// fails independently with probability `q`.
///
/// Panics unless `q ∈ [0, 1]`.
pub fn coverage_reliability(k: u32, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    1.0 - q.powi(k as i32)
}

/// The smallest `k` achieving `coverage_reliability(k, q) >= target`.
///
/// ```
/// use decor_core::reliability::required_k;
///
/// // 20% node failure rate, 99.9% coverage guarantee => 5 sensors/point.
/// assert_eq!(required_k(0.999, 0.2), Some(5));
/// // Certainty is unreachable on an unreliable medium.
/// assert_eq!(required_k(1.0, 0.2), None);
/// ```
///
/// Returns `None` when the target is unreachable (`q = 1` with
/// `target > 0`). `target` must be in `[0, 1)` — a target of exactly 1 is
/// only reachable with `q = 0`, where `k = 1` suffices and is returned.
pub fn required_k(target: f64, q: f64) -> Option<u32> {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    assert!(
        (0.0..=1.0).contains(&target),
        "target must be a probability"
    );
    if q == 0.0 {
        return Some(1);
    }
    if target == 0.0 {
        return Some(1);
    }
    if q == 1.0 {
        return None;
    }
    if target == 1.0 {
        return None; // q in (0,1): no finite k reaches certainty
    }
    // 1 - q^k >= target  <=>  q^k <= 1 - target  <=>  k >= ln(1-t)/ln(q).
    // The tiny slack absorbs float noise at exact integer boundaries
    // (e.g. target 0.9, q 0.1 must yield k = 1, not 2).
    let k = ((1.0 - target).ln() / q.ln() - 1e-9).ceil();
    Some((k as u32).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_grows_with_k() {
        let q = 0.3;
        let mut prev = 0.0;
        for k in 1..=6 {
            let r = coverage_reliability(k, q);
            assert!(r > prev);
            prev = r;
        }
    }

    #[test]
    fn known_values() {
        assert!((coverage_reliability(1, 0.1) - 0.9).abs() < 1e-12);
        assert!((coverage_reliability(2, 0.1) - 0.99).abs() < 1e-12);
        assert!((coverage_reliability(3, 0.5) - 0.875).abs() < 1e-12);
        assert_eq!(coverage_reliability(4, 0.0), 1.0);
        assert_eq!(coverage_reliability(4, 1.0), 0.0);
    }

    #[test]
    fn required_k_round_trips_reliability() {
        for &q in &[0.05, 0.1, 0.3, 0.5, 0.9] {
            for &target in &[0.5, 0.9, 0.99, 0.999] {
                let k = required_k(target, q).unwrap();
                assert!(
                    coverage_reliability(k, q) >= target - 1e-9,
                    "k={k} too small for q={q}, target={target}"
                );
                if k > 1 {
                    assert!(
                        coverage_reliability(k - 1, q) < target,
                        "k={k} not minimal for q={q}, target={target}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_scale_example() {
        // q = 10% failure, 99.99% target => 4 sensors.
        assert_eq!(required_k(0.9999, 0.1), Some(4));
        // q = 50%, 90% target => 4 sensors (1 - 0.5^4 = 0.9375).
        assert_eq!(required_k(0.9, 0.5), Some(4));
    }

    #[test]
    fn edge_cases() {
        assert_eq!(required_k(0.9, 0.0), Some(1));
        assert_eq!(required_k(0.0, 0.7), Some(1));
        assert_eq!(required_k(0.9, 1.0), None);
        assert_eq!(required_k(1.0, 0.5), None);
        assert_eq!(required_k(1.0, 0.0), Some(1));
    }

    #[test]
    #[should_panic(expected = "q must be a probability")]
    fn invalid_q_panics() {
        let _ = coverage_reliability(2, 1.5);
    }
}
