//! Reliability arithmetic (§2.1).
//!
//! With i.i.d. node failure probability `q`, a point covered by `k`
//! sensors stays covered with probability `1 − q^k`. DECOR's coverage
//! requirement is derived from a user-facing reliability target:
//! `k = ⌈ log(1 − target) / log(q) ⌉`.

/// Probability that a `k`-covered point remains covered when every sensor
/// fails independently with probability `q`.
///
/// Panics unless `q ∈ [0, 1]`.
pub fn coverage_reliability(k: u32, q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    // powf, not powi: `k as i32` would wrap negative for k > i32::MAX,
    // and powf stays monotone in k over the whole u32 range.
    1.0 - q.powf(k as f64)
}

/// The smallest `k` achieving `coverage_reliability(k, q) >= target`.
///
/// ```
/// use decor_core::reliability::required_k;
///
/// // 20% node failure rate, 99.9% coverage guarantee => 5 sensors/point.
/// assert_eq!(required_k(0.999, 0.2), Some(5));
/// // Certainty is unreachable on an unreliable medium.
/// assert_eq!(required_k(1.0, 0.2), None);
/// ```
///
/// Returns `None` when the target is unreachable (`q = 1` with
/// `target > 0`). `target` must be in `[0, 1)` — a target of exactly 1 is
/// only reachable with `q = 0`, where `k = 1` suffices and is returned.
pub fn required_k(target: f64, q: f64) -> Option<u32> {
    assert!((0.0..=1.0).contains(&q), "q must be a probability");
    assert!(
        (0.0..=1.0).contains(&target),
        "target must be a probability"
    );
    if q == 0.0 {
        return Some(1);
    }
    if target == 0.0 {
        return Some(1);
    }
    if q == 1.0 {
        return None;
    }
    if target == 1.0 {
        return None; // q in (0,1): no finite k reaches certainty
    }
    // 1 - q^k >= target  <=>  q^k <= 1 - target  <=>  k >= ln(1-t)/ln(q).
    // The float quotient is only a starting estimate: at exact integer
    // boundaries (target 0.9, q 0.1) log noise can land one off in either
    // direction, so verify against `coverage_reliability` itself and walk
    // to the true minimum instead of papering over with an epsilon.
    let est = ((1.0 - target).ln() / q.ln()).ceil();
    let mut k = if est.is_finite() && est >= 1.0 {
        (est as u32).max(1)
    } else {
        1
    };
    while coverage_reliability(k, q) < target {
        k = k.checked_add(1).expect("required k exceeds u32 range");
    }
    while k > 1 && coverage_reliability(k - 1, q) >= target {
        k -= 1;
    }
    Some(k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_grows_with_k() {
        let q = 0.3;
        let mut prev = 0.0;
        for k in 1..=6 {
            let r = coverage_reliability(k, q);
            assert!(r > prev);
            prev = r;
        }
    }

    #[test]
    fn known_values() {
        assert!((coverage_reliability(1, 0.1) - 0.9).abs() < 1e-12);
        assert!((coverage_reliability(2, 0.1) - 0.99).abs() < 1e-12);
        assert!((coverage_reliability(3, 0.5) - 0.875).abs() < 1e-12);
        assert_eq!(coverage_reliability(4, 0.0), 1.0);
        assert_eq!(coverage_reliability(4, 1.0), 0.0);
    }

    #[test]
    fn required_k_round_trips_reliability() {
        for &q in &[0.05, 0.1, 0.3, 0.5, 0.9] {
            for &target in &[0.5, 0.9, 0.99, 0.999] {
                let k = required_k(target, q).unwrap();
                assert!(
                    coverage_reliability(k, q) >= target,
                    "k={k} too small for q={q}, target={target}"
                );
                if k > 1 {
                    assert!(
                        coverage_reliability(k - 1, q) < target,
                        "k={k} not minimal for q={q}, target={target}"
                    );
                }
            }
        }
    }

    #[test]
    fn required_k_is_exact_at_integer_boundaries() {
        // The old `- 1e-9` slack papered over these; the verify-and-adjust
        // implementation must get them exactly right: 1 - q^k == target.
        assert_eq!(required_k(0.9, 0.1), Some(1));
        assert_eq!(required_k(0.99, 0.1), Some(2));
        assert_eq!(required_k(0.999, 0.1), Some(3));
        assert_eq!(required_k(0.75, 0.5), Some(2));
        assert_eq!(required_k(0.875, 0.5), Some(3));
        // Just past the boundary needs one more sensor.
        assert_eq!(required_k(0.9000001, 0.1), Some(2));
        // Just below it does not.
        assert_eq!(required_k(0.8999999, 0.1), Some(1));
    }

    #[test]
    fn required_k_is_minimal_exhaustively() {
        // Brute-force cross-check on a grid of (target, q): the returned k
        // satisfies the target and k-1 does not.
        for qi in 1..20 {
            let q = qi as f64 / 20.0;
            for ti in 1..40 {
                let target = ti as f64 / 40.0;
                let k = required_k(target, q).unwrap();
                assert!(coverage_reliability(k, q) >= target, "q={q} t={target}");
                if k > 1 {
                    assert!(
                        coverage_reliability(k - 1, q) < target,
                        "q={q} t={target} k={k} not minimal"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_scale_example() {
        // q = 10% failure, 99.99% target => 4 sensors.
        assert_eq!(required_k(0.9999, 0.1), Some(4));
        // q = 50%, 90% target => 4 sensors (1 - 0.5^4 = 0.9375).
        assert_eq!(required_k(0.9, 0.5), Some(4));
    }

    #[test]
    fn edge_cases() {
        assert_eq!(required_k(0.9, 0.0), Some(1));
        assert_eq!(required_k(0.0, 0.7), Some(1));
        assert_eq!(required_k(0.9, 1.0), None);
        assert_eq!(required_k(1.0, 0.5), None);
        assert_eq!(required_k(1.0, 0.0), Some(1));
    }

    #[test]
    #[should_panic(expected = "q must be a probability")]
    fn invalid_q_panics() {
        let _ = coverage_reliability(2, 1.5);
    }
}
