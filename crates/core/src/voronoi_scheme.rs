//! Voronoi-based DECOR (§3.1–3.3, Definition 1).
//!
//! Every sensor node is its own cell: it *owns* the approximation points
//! within its communication radius `rc` that are at least as close to it
//! as to any 1-hop neighbor it knows about. Each round, a node estimates
//! the coverage of its owned points **from local knowledge only** — it can
//! count just the sensors within `rc` of itself — and, if any owned point
//! looks under-covered, places one new sensor at the owned point of
//! maximum (locally-estimated) benefit. New sensors become nodes with
//! cells of their own, which is how coverage creeps into large uncovered
//! regions ("new cells are created by new nodes during the recovery
//! process").
//!
//! The knowledge limit is the scheme's cost model: a sensor farther than
//! `rc` from the node may still cover one of its points (it only needs to
//! be within `rs` of the *point*), and the node, blind to it, will place a
//! redundant sensor. Growing `rc` shrinks that blind annulus — exactly the
//! Fig. 9 effect where the big-`rc` variant places far fewer redundant
//! nodes. Simultaneous decisions by mutually-invisible nodes add border
//! redundancy on top.
//!
//! Messages (Fig. 10): upon placing, a node unicasts a placement notice to
//! each of its 1-hop neighbors, so per-placement traffic grows with the
//! neighborhood size, i.e. with `rc` — the paper's "analogous to the
//! communication radius" observation.
//!
//! On a lossy medium (`cfg.link.loss_rate > 0`) notices ride the reliable
//! transport (`decor_net::transport`): acks, bounded retries, duplicate
//! suppression. A notice whose retry budget runs out leaves the intended
//! recipient blind to the new sensor ([`crate::NeighborKnowledge`]) — it
//! may then place a redundant border sensor, which is exactly the paper's
//! desynchronization failure mode, bounded here by the transport instead
//! of silent.

use crate::config::DeploymentConfig;
use crate::coverage::CoverageMap;
use crate::knowledge::NeighborKnowledge;
use crate::metrics::{MessageStats, PlacementOutcome, TracePoint};
use crate::scratch::SimScratch;
use crate::Placer;
use decor_net::{ChaosEngine, DeliveryOutcome, Message, MsgId, Network, NodeId, Transport};
use decor_trace::TraceEvent;
use std::collections::BTreeSet;

/// Voronoi-based DECOR. `rc` overrides the config's communication radius
/// (the paper evaluates `rc = 8` and `rc = 10·√2 ≈ 14.14`).
#[derive(Clone, Copy, Debug)]
pub struct VoronoiDecor {
    /// Communication radius defining both the knowledge horizon and the
    /// local Voronoi cells.
    pub rc: f64,
}

/// Safety cap on synchronous rounds.
const MAX_ROUNDS: usize = 100_000;

impl VoronoiDecor {
    /// Coverage of point `p` as estimated by the agent at `viewer`:
    /// the number of *known* sensors (within `rc` of the viewer, minus any
    /// in `hidden` — sensors whose placement notice never reached this
    /// viewer) covering `p`. `coverers` are the true coverers of `p`
    /// (id, position).
    fn estimate(
        viewer: decor_geom::Point,
        coverers: &[(usize, decor_geom::Point)],
        rc: f64,
        hidden: Option<&BTreeSet<usize>>,
    ) -> u32 {
        let rc_sq = rc * rc;
        coverers
            .iter()
            .filter(|&&(cid, cpos)| {
                viewer.dist_sq(cpos) <= rc_sq && hidden.is_none_or(|h| !h.contains(&cid))
            })
            .count() as u32
    }

    /// The agents that own point `pid` under their local Voronoi view *and*
    /// believe it under-covered. This is the per-point body of the decision
    /// phase; its result depends only on the sensors within `rc` of the
    /// point (candidate owners are within `rc`, and a coverer is within
    /// `rs <= rc`), which is what lets rounds cache it per point and
    /// invalidate just the `rc`-disk of each new placement.
    #[allow(clippy::too_many_arguments)]
    fn point_owners_into(
        map: &CoverageMap,
        pid: usize,
        rc: f64,
        rc_sq: f64,
        k: u32,
        knowledge: &NeighborKnowledge,
        scratch: &mut OwnersScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let p = map.points()[pid];
        // Agents that could own p (scratch buffers reused across points).
        let cands = &mut scratch.cands;
        cands.clear();
        map.for_each_sensor_within(p, rc, |sid, spos| {
            cands.push((sid, spos, p.dist_sq(spos)));
        });
        if cands.is_empty() {
            return; // unreachable this round; fringe grows later
        }
        cands.sort_by(|a, b| a.2.partial_cmp(&b.2).unwrap().then(a.0.cmp(&b.0)));
        let coverers = &mut scratch.coverers;
        coverers.clear();
        // `coverage(pid)` is the maintained count of exactly the sensors
        // `for_each_sensor_covering` would visit here, so a zero-coverage
        // point can skip the bucket scan: the coverer list is empty.
        if map.coverage(pid) > 0 {
            map.for_each_sensor_covering(p, |sid, spos| coverers.push((sid, spos)));
        }
        for (idx, &(sid, spos, _)) in cands.iter().enumerate() {
            let hidden = knowledge.hidden_from(sid);
            if Self::estimate(spos, coverers, rc, hidden) >= k {
                continue; // this agent believes p is fine
            }
            // Local ownership: no agent closer to p is a 1-hop neighbor of
            // this one. An agent it never learned about cannot defer it.
            let blocked = cands[..idx]
                .iter()
                .any(|&(cid, cpos, _)| spos.dist_sq(cpos) <= rc_sq && knowledge.knows(sid, cid));
            if !blocked {
                out.push(sid);
            }
        }
    }

    /// Locally-estimated benefit of agent `viewer` placing at `c`:
    /// Equation 1 restricted to the points the agent knows (within `rc` of
    /// itself), with coverage replaced by the agent's estimate.
    fn est_benefit(
        map: &CoverageMap,
        viewer: decor_geom::Point,
        c: decor_geom::Point,
        cfg: &DeploymentConfig,
        rc: f64,
        hidden: Option<&BTreeSet<usize>>,
    ) -> u64 {
        let rc_sq = rc * rc;
        let mut b = 0u64;
        // Streamed, allocation-free form of the old collect-and-estimate
        // loop: the benefit is an order-independent integer sum, and the
        // per-point estimate counts known coverers exactly as
        // [`Self::estimate`] does over the collected slice.
        map.for_each_point_within_unordered(c, cfg.rs, |ppid, ppos| {
            if viewer.dist_sq(ppos) <= rc_sq {
                // A zero-coverage point has no coverers to scan, so the
                // viewer's estimate is 0 no matter what it knows.
                if map.coverage(ppid) == 0 {
                    b += cfg.k as u64;
                    return;
                }
                let mut est = 0u32;
                map.for_each_sensor_covering(ppos, |sid, spos| {
                    if viewer.dist_sq(spos) <= rc_sq && hidden.is_none_or(|h| !h.contains(&sid)) {
                        est += 1;
                    }
                });
                if est < cfg.k {
                    b += (cfg.k - est) as u64;
                }
            }
        });
        b
    }
}

/// Reusable buffers for [`VoronoiDecor::point_owners_into`], so the
/// per-point ownership pass does not allocate per point.
#[derive(Default)]
struct OwnersScratch {
    cands: Vec<(usize, decor_geom::Point, f64)>,
    coverers: Vec<(usize, decor_geom::Point)>,
}

/// Voronoi-scheme run/round buffers, pooled in [`SimScratch`] so warm
/// fleet runs reuse last run's capacity. Everything is cleared or
/// rebuilt at run start (or per round) before any read, so contents
/// never leak between runs — the pool-poisoning proptests pin this.
#[derive(Default)]
pub(crate) struct VoronoiScratch {
    /// Per-point ownership cache; the inner vecs are recycled in place.
    owners: Vec<Vec<usize>>,
    /// Cache-invalidation dedup guard (`true` = needs recompute).
    owners_dirty: Vec<bool>,
    /// Worklist of point ids awaiting an ownership recompute.
    dirty: Vec<usize>,
    /// Dense "point has at least one owner" flags. An ascending-pid scan
    /// over this reproduces the retired `BTreeSet<usize>`'s iteration
    /// order exactly.
    active: Vec<bool>,
    /// Per-round `(agent sid, owned deficient pid)` pairs; pushed in
    /// ascending-pid order and sorted, replacing the old per-round
    /// `BTreeMap<usize, Vec<usize>>` grouping (same order: ascending
    /// sid, then ascending pid, and the pairs are unique).
    owned: Vec<(usize, usize)>,
    /// Per-round `(agent sid, point id, estimated benefit)` decisions.
    decisions: Vec<(usize, usize, u64)>,
    /// Per-round `(msg handle, recipient sid, announced sid)` notices.
    pending: Vec<(MsgId, usize, usize)>,
    /// Per-round flush outcomes, sorted by message id for lookup.
    flushed: Vec<(MsgId, DeliveryOutcome)>,
    /// Candidate/coverer buffers for the ownership pass.
    owners_scratch: OwnersScratch,
    /// Neighbor-list buffer for placement notices.
    nbs_buf: Vec<NodeId>,
    /// Dense sid → node id map (`usize::MAX` = sensor has no node, i.e.
    /// it was inactive when the run started).
    net_of: Vec<NodeId>,
    /// Dense node id → sid map (node ids are insertion-dense).
    sid_of: Vec<usize>,
    /// Initial active-sensor list buffer.
    sensors: Vec<(usize, decor_geom::Point)>,
    /// Stall-rescue deficient-point buffer.
    deficient: Vec<usize>,
}

/// Retires chaos-crashed nodes from the Voronoi placer's world: the
/// coverage map deactivates the sensor (a dead agent neither covers nor
/// owns points — map queries only visit active sensors) and the invariant
/// checker learns the death. The ownership cache needs no surgical
/// invalidation because chaos runs disable it (see `place_impl`).
fn retire_crashed(
    crashed: Vec<NodeId>,
    map: &mut CoverageMap,
    sid_of: &[usize],
    checker: &crate::invariants::InvariantChecker,
) {
    for nid in crashed {
        checker.note_crash(nid as u64);
        map.deactivate_sensor(sid_of[nid]);
    }
}

impl Placer for VoronoiDecor {
    fn name(&self) -> String {
        format!("Voronoi (rc={:.1})", self.rc)
    }

    fn place(&self, map: &mut CoverageMap, cfg: &DeploymentConfig) -> PlacementOutcome {
        self.place_impl(map, cfg, true, true, &mut SimScratch::new())
    }

    fn place_in(
        &self,
        map: &mut CoverageMap,
        cfg: &DeploymentConfig,
        scratch: &mut SimScratch,
    ) -> PlacementOutcome {
        self.place_impl(map, cfg, true, true, scratch)
    }
}

impl VoronoiDecor {
    /// Implementation behind [`Placer::place`]. With `use_cache` the
    /// per-point ownership results are reused across rounds and only the
    /// `rc`-disk of each new placement is recomputed (production); without
    /// it every point is recomputed every round (reference). With
    /// `use_transport` placement notices ride the reliable ack/retry
    /// transport (production); without it they are fire-and-forget
    /// unicasts (the pre-transport reference, valid only on a loss-free
    /// medium). Differential tests below pin the paths to identical
    /// placements.
    fn place_impl(
        &self,
        map: &mut CoverageMap,
        cfg: &DeploymentConfig,
        use_cache: bool,
        use_transport: bool,
        pool: &mut SimScratch,
    ) -> PlacementOutcome {
        cfg.validate();
        let rc = self.rc;
        assert!(
            rc >= cfg.rs,
            "Voronoi scheme needs rc >= rs (got rc={rc}, rs={})",
            cfg.rs
        );
        let lossy = cfg.link.is_lossy();
        // The ownership cache assumes estimates depend only on geometry;
        // under loss they also depend on the evolving knowledge ledger,
        // and under chaos crashes retire sensors mid-run, so fall back to
        // full recomputation.
        let use_cache = use_cache && !lossy && cfg.chaos.is_none();
        let field = *map.field();
        // Pooled network/transport: a warm pool hands back last run's
        // structures, reset to the same state a fresh construction yields.
        let mut net = match pool.net.take() {
            Some(mut n) => {
                n.reset(field);
                n
            }
            None => Network::new(field),
        };
        cfg.link.apply(&mut net);
        net.set_trace(cfg.trace.clone());
        let mut transport = if use_transport {
            Some(match pool.transport.take() {
                Some(mut t) => {
                    t.reset(cfg.link.transport());
                    t
                }
                None => Transport::new(cfg.link.transport()),
            })
        } else {
            None
        };
        // Chaos rides the transport clock, so the fire-and-forget
        // reference path ignores any configured plan (differential tests
        // never combine the two).
        let mut chaos = match (&transport, &cfg.chaos) {
            (Some(_), Some(plan)) => Some(ChaosEngine::borrowed(plan)),
            _ => None,
        };
        let mut knowledge = NeighborKnowledge::new();
        // Pooled round-loop buffers, destructured into disjoint `&mut`s so
        // the borrow checker accepts simultaneous use across the loop.
        let VoronoiScratch {
            owners,
            owners_dirty,
            dirty,
            active,
            owned,
            decisions,
            pending,
            flushed,
            owners_scratch,
            nbs_buf,
            net_of,
            sid_of,
            sensors,
            deficient,
        } = &mut pool.voro;
        // Both id spaces are insertion-dense (`add_sensor`/`add_node`
        // hand out sequential ids), so plain vecs replace the old
        // `BTreeMap` sid↔nid maps. Sensors inactive at run start (failed
        // before restoration) get no node; the sentinel is never read
        // because dead agents neither own points nor place.
        net_of.clear();
        net_of.resize(map.n_sensors(), usize::MAX);
        sid_of.clear();
        map.active_sensors_into(sensors);
        for &(sid, pos) in sensors.iter() {
            let nid = net.add_node(pos, cfg.rs, rc);
            net_of[sid] = nid;
            debug_assert_eq!(nid, sid_of.len());
            sid_of.push(sid);
        }
        let initial = map.n_active_sensors();
        let mut out = PlacementOutcome {
            initial_sensors: initial,
            ..PlacementOutcome::default()
        };
        out.trace.push(TracePoint {
            total_sensors: initial,
            fraction_k_covered: map.fraction_k_covered(cfg.k),
        });

        let rc_sq = rc * rc;
        // Per-point ownership cache: `owners[pid]` is the last computed
        // [`Self::point_owners_into`] result; an entry goes stale only when
        // a sensor lands within `rc` of the point. Stale entries sit on the
        // `dirty` worklist (with `owners_dirty` as the dedup guard) so a
        // round's recompute cost is proportional to the disturbed area,
        // not the field; `active` tracks the points with any owner at all,
        // which is what the decision phase actually iterates.
        for o in owners.iter_mut() {
            o.clear();
        }
        owners.resize_with(map.n_points(), Vec::new);
        owners_dirty.clear();
        owners_dirty.resize(map.n_points(), true);
        dirty.clear();
        dirty.extend(0..map.n_points());
        active.clear();
        active.resize(map.n_points(), false);
        let mut rounds = 0usize;
        while out.placed.len() < cfg.max_new_nodes && rounds < MAX_ROUNDS {
            let round = rounds as u64;
            // Faults due by now land before any decision of this round.
            if let (Some(ch), Some(tr)) = (chaos.as_mut(), transport.as_ref()) {
                ch.advance_to(&mut net, tr.now());
                retire_crashed(ch.take_crashed(), map, sid_of, &cfg.invariants);
            }
            if let Some(tr) = transport.as_ref() {
                cfg.trace.set_time(tr.now());
            }
            cfg.trace.emit(TraceEvent::RoundBegin {
                scheme: "voronoi",
                round,
            });
            // ---- Decision phase (coverage snapshot at round start) ----
            // For every point, find the agents that (a) believe it is
            // under-covered and (b) own it under their local view.
            if !use_cache {
                dirty.clear();
                dirty.extend(0..map.n_points());
                owners_dirty.iter_mut().for_each(|d| *d = true);
            }
            for pid in dirty.drain(..) {
                if !owners_dirty[pid] {
                    continue;
                }
                Self::point_owners_into(
                    map,
                    pid,
                    rc,
                    rc_sq,
                    cfg.k,
                    &knowledge,
                    owners_scratch,
                    &mut owners[pid],
                );
                owners_dirty[pid] = false;
                active[pid] = !owners[pid].is_empty();
            }
            // The ascending-pid scan over `active` visits points in the
            // same order the old full sweep pushed pids — so each agent's
            // owned list is byte-identical to the sweep's. The sort then
            // groups by agent: `(sid, pid)` pairs are unique and were
            // pushed in ascending-pid order, so the unstable sort yields
            // exactly the old `BTreeMap`'s (ascending sid, ascending pid)
            // iteration.
            owned.clear();
            for (pid, &has_owner) in active.iter().enumerate() {
                if has_owner {
                    for &sid in &owners[pid] {
                        owned.push((sid, pid));
                    }
                }
            }
            owned.sort_unstable();

            // Each acting agent picks its best owned deficient point.
            // (agent sid, point id, locally-estimated benefit)
            decisions.clear();
            let mut gi = 0;
            while gi < owned.len() {
                let sid = owned[gi].0;
                let mut gj = gi;
                while gj < owned.len() && owned[gj].0 == sid {
                    gj += 1;
                }
                let viewer = map.sensor_pos(sid);
                let hidden = knowledge.hidden_from(sid);
                let mut best: Option<(usize, u64)> = None;
                for &(_, pid) in &owned[gi..gj] {
                    let b = Self::est_benefit(map, viewer, map.points()[pid], cfg, rc, hidden);
                    if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                        best = Some((pid, b));
                    }
                }
                if let Some((pid, b)) = best {
                    if cfg.invariants.is_enabled() {
                        let mut measured = 0u32;
                        map.for_each_sensor_covering(map.points()[pid], |cid, cpos| {
                            if viewer.dist_sq(cpos) <= rc_sq
                                && hidden.is_none_or(|h| !h.contains(&cid))
                            {
                                measured += 1;
                            }
                        });
                        cfg.invariants
                            .check_estimate(pid, measured, map.coverage(pid));
                    }
                    decisions.push((sid, pid, b));
                }
                gi = gj;
            }

            // ---- Stall rescue ----
            if decisions.is_empty() {
                if map.count_below(cfg.k) == 0 {
                    // Fully covered but faults are still scheduled: a quiet
                    // run would never reach their injection times, so force
                    // the next batch and keep the protocol running.
                    if let Some(ch) = chaos.as_mut().filter(|ch| !ch.is_exhausted()) {
                        ch.advance_next_batch(&mut net);
                        retire_crashed(ch.take_crashed(), map, sid_of, &cfg.invariants);
                        cfg.trace.emit(TraceEvent::RoundEnd { round, placed: 0 });
                        cfg.trace.emit(TraceEvent::CoverageDelta {
                            below_target: map.count_below(cfg.k) as u64,
                        });
                        rounds += 1;
                        out.trace.push(TracePoint {
                            total_sensors: initial + out.placed.len(),
                            fraction_k_covered: map.fraction_k_covered(cfg.k),
                        });
                        continue;
                    }
                    break;
                }
                // Deficient points exist but nobody sees or reaches them:
                // dispatch one sensor out-of-band to the deficient point
                // nearest an existing agent (or the first one when the
                // field is empty). Models the paper's bootstrap fallback.
                map.uncovered_ids_into(cfg.k, deficient);
                let target = deficient
                    .iter()
                    .copied()
                    .min_by(|&a, &b| {
                        let da = nearest_agent_dist(map, map.points()[a]);
                        let db = nearest_agent_dist(map, map.points()[b]);
                        da.partial_cmp(&db).unwrap().then(a.cmp(&b))
                    })
                    .expect("non-empty deficient set");
                let pos = map.points()[target];
                let sid = map.add_sensor(pos, cfg.rs);
                map.for_each_point_within_unordered(pos, rc, |pid, _| {
                    if !owners_dirty[pid] {
                        owners_dirty[pid] = true;
                        dirty.push(pid);
                    }
                });
                let nid = net.add_node(pos, cfg.rs, rc);
                debug_assert_eq!(sid, net_of.len());
                net_of.push(nid);
                debug_assert_eq!(nid, sid_of.len());
                sid_of.push(sid);
                out.placed.push(pos);
                // Out-of-band dispatch: no placing agent, no local estimate.
                cfg.trace.emit(TraceEvent::SensorPlaced {
                    x: pos.x,
                    y: pos.y,
                    benefit: 0,
                    agent: u64::MAX,
                });
                cfg.trace.emit(TraceEvent::RoundEnd { round, placed: 1 });
                cfg.trace.emit(TraceEvent::CoverageDelta {
                    below_target: map.count_below(cfg.k) as u64,
                });
                rounds += 1;
                out.trace.push(TracePoint {
                    total_sensors: initial + out.placed.len(),
                    fraction_k_covered: map.fraction_k_covered(cfg.k),
                });
                continue;
            }

            // ---- Apply phase ----
            // (msg handle, recipient sensor, announced sensor) for every
            // notice handed to the transport this round.
            pending.clear();
            let placed_before_round = out.placed.len();
            for &(agent_sid, pid, benefit) in decisions.iter() {
                if out.placed.len() >= cfg.max_new_nodes {
                    break;
                }
                cfg.invariants.check_placer_alive(
                    "voronoi",
                    net_of[agent_sid] as u64,
                    net.is_alive(net_of[agent_sid]),
                );
                let pos = map.points()[pid];
                let new_sid = map.add_sensor(pos, cfg.rs);
                map.for_each_point_within_unordered(pos, rc, |qid, _| {
                    if !owners_dirty[qid] {
                        owners_dirty[qid] = true;
                        dirty.push(qid);
                    }
                });
                let new_nid = net.add_node(pos, cfg.rs, rc);
                debug_assert_eq!(new_sid, net_of.len());
                net_of.push(new_nid);
                debug_assert_eq!(new_nid, sid_of.len());
                sid_of.push(new_sid);
                out.placed.push(pos);
                cfg.trace.emit(TraceEvent::SensorPlaced {
                    x: pos.x,
                    y: pos.y,
                    benefit,
                    agent: agent_sid as u64,
                });
                // Placement notice: one unicast per 1-hop neighbor of the
                // placing agent (traffic grows with rc — Fig. 10).
                let agent_nid = net_of[agent_sid];
                net.neighbors_into(agent_nid, nbs_buf);
                match transport.as_mut() {
                    Some(tr) => {
                        for &nb in nbs_buf.iter() {
                            let id = tr.send(agent_nid, nb, Message::PlacementNotice { pos });
                            pending.push((id, sid_of[nb], new_sid));
                        }
                    }
                    None => {
                        for &nb in nbs_buf.iter() {
                            let _ = net.unicast(agent_nid, nb, Message::PlacementNotice { pos });
                        }
                    }
                }
            }
            if let Some(tr) = transport.as_mut() {
                // Under chaos the flush interleaves fault injection with
                // the retry clock, so crashes land between retransmissions.
                match chaos.as_mut() {
                    Some(ch) => tr.flush_chaos_into(&mut net, ch, flushed),
                    None => tr.flush_into(&mut net, flushed),
                }
                // Message ids are unique among terminal outcomes, so a
                // sorted slice + binary search replaces the old per-round
                // `BTreeMap<MsgId, _>` lookup.
                flushed.sort_unstable_by_key(|&(id, _)| id);
                for &(id, recipient_sid, new_sid) in pending.iter() {
                    // A GaveUp notice *may* still have arrived (lost acks
                    // only); the sender cannot tell, so the model takes the
                    // pessimistic branch and treats the recipient as blind.
                    let delivered = flushed
                        .binary_search_by_key(&id, |&(mid, _)| mid)
                        .is_ok_and(|ix| flushed[ix].1.is_delivered());
                    if !delivered {
                        knowledge.hide(recipient_sid, new_sid);
                    }
                    cfg.invariants.check_ledger(
                        recipient_sid as u64,
                        new_sid as u64,
                        delivered,
                        knowledge.knows(recipient_sid, new_sid),
                    );
                }
                // Crashes that fired during the flush retire their sensors
                // before the round closes.
                if let Some(ch) = chaos.as_mut() {
                    retire_crashed(ch.take_crashed(), map, sid_of, &cfg.invariants);
                }
            }

            if let Some(tr) = transport.as_ref() {
                cfg.trace.set_time(tr.now());
            }
            cfg.trace.emit(TraceEvent::RoundEnd {
                round,
                placed: (out.placed.len() - placed_before_round) as u64,
            });
            cfg.trace.emit(TraceEvent::CoverageDelta {
                below_target: map.count_below(cfg.k) as u64,
            });
            rounds += 1;
            out.trace.push(TracePoint {
                total_sensors: initial + out.placed.len(),
                fraction_k_covered: map.fraction_k_covered(cfg.k),
            });
            if map.count_below(cfg.k) == 0 {
                // Covered, but faults still pending: force the next batch
                // rather than converging early (see the stall-branch twin).
                match chaos.as_mut().filter(|ch| !ch.is_exhausted()) {
                    Some(ch) => {
                        ch.advance_next_batch(&mut net);
                        retire_crashed(ch.take_crashed(), map, sid_of, &cfg.invariants);
                    }
                    None => break,
                }
            }
        }

        out.rounds = rounds;
        out.fully_covered = map.count_below(cfg.k) == 0;
        cfg.invariants.check_converged(
            out.fully_covered,
            chaos.as_ref().is_some_and(|ch| !ch.is_exhausted()),
            out.placed.len() >= cfg.max_new_nodes || rounds >= MAX_ROUNDS,
        );
        let agents = map.n_active_sensors().max(1);
        let (retries, acks, notices_gave_up, duplicates_suppressed) = match &transport {
            Some(tr) => (
                tr.stats.retries,
                tr.stats.acks,
                tr.stats.gave_up,
                tr.stats.duplicates_suppressed,
            ),
            None => (0, 0, 0, 0),
        };
        out.messages = MessageStats {
            protocol_total: net.stats.protocol_sent,
            cells: agents,
            per_cell: net.stats.protocol_sent as f64 / agents as f64,
            per_node_rotated: net.stats.protocol_sent as f64 / agents as f64,
            retries,
            acks,
            notices_gave_up,
            duplicates_suppressed,
        };
        pool.net = Some(net);
        if let Some(t) = transport {
            pool.transport = Some(t);
        }
        out
    }
}

/// Distance from `q` to the nearest active sensor (infinity when none).
/// Delegates to the sensor index's ring-expanding nearest query; the
/// returned distance is `sqrt` of the minimum squared distance, identical
/// to the minimum of the old per-sensor `q.dist(spos)` scan.
fn nearest_agent_dist(map: &CoverageMap, q: decor_geom::Point) -> f64 {
    map.nearest_active_sensor(q)
        .map_or(f64::INFINITY, |(_, _, d)| d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::{Aabb, Point};
    use decor_lds::{halton_points, random_points};

    fn setup(k: u32, n_pts: usize, initial: usize, seed: u64) -> (CoverageMap, DeploymentConfig) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(k);
        let mut map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
        for p in random_points(initial, &field, seed) {
            map.add_sensor(p, cfg.rs);
        }
        (map, cfg)
    }

    #[test]
    fn reaches_full_coverage_small_rc() {
        let (mut map, cfg) = setup(1, 500, 50, 1);
        let out = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered, "uncovered: {}", map.count_below(1));
    }

    #[test]
    fn reaches_full_coverage_big_rc_k2() {
        let (mut map, cfg) = setup(2, 500, 50, 2);
        let out = VoronoiDecor { rc: 14.142 }.place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert!(map.min_coverage() >= 2);
    }

    #[test]
    fn bootstraps_from_empty_network() {
        let (mut map, cfg) = setup(1, 300, 0, 3);
        let out = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert!(!out.placed.is_empty());
    }

    #[test]
    fn covers_remote_disaster_region_by_expansion() {
        // All initial sensors in the left half; the scheme must creep
        // rightwards via newly placed nodes.
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(1);
        let mut map = CoverageMap::new(halton_points(400, &field), &field, &cfg);
        for i in 0..20 {
            map.add_sensor(
                Point::new(5.0 + (i % 5) as f64 * 8.0, 10.0 + (i / 5) as f64 * 20.0),
                cfg.rs,
            );
        }
        let out = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered);
        // Some placements must have reached the right half.
        assert!(out.placed.iter().any(|p| p.x > 80.0));
    }

    #[test]
    fn places_nothing_when_already_covered() {
        let (mut map, cfg) = setup(1, 300, 0, 4);
        map.add_sensor(Point::new(50.0, 50.0), 200.0);
        let out = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
        assert!(out.placed.is_empty());
        assert!(out.fully_covered);
    }

    #[test]
    fn bigger_rc_wastes_fewer_nodes() {
        // Fig. 8/9: more knowledge => placement closer to centralized.
        let (mut m1, cfg) = setup(2, 600, 80, 5);
        let small = VoronoiDecor { rc: 8.0 }.place(&mut m1, &cfg).placed.len();
        let (mut m2, _) = setup(2, 600, 80, 5);
        let big = VoronoiDecor { rc: 14.142 }
            .place(&mut m2, &cfg)
            .placed
            .len();
        assert!(
            big <= small,
            "big rc used {big} nodes, small rc used {small}"
        );
    }

    #[test]
    fn sends_messages_proportional_to_neighborhood() {
        let (mut m1, cfg) = setup(2, 500, 80, 6);
        let small = VoronoiDecor { rc: 8.0 }.place(&mut m1, &cfg).messages;
        let (mut m2, _) = setup(2, 500, 80, 6);
        let big = VoronoiDecor { rc: 14.142 }.place(&mut m2, &cfg).messages;
        assert!(small.protocol_total > 0);
        assert!(
            big.per_cell > small.per_cell,
            "big {} vs small {}",
            big.per_cell,
            small.per_cell
        );
    }

    #[test]
    fn cached_path_matches_recompute_all_path() {
        // The per-point ownership cache must reproduce the recompute-
        // everything-every-round reference bit-for-bit.
        for (k, initial, rc) in [(1u32, 0usize, 8.0), (2, 50, 8.0), (2, 60, 14.142)] {
            let (mut m_cached, cfg) = setup(k, 500, initial, 13);
            let mut m_fresh = m_cached.clone();
            let placer = VoronoiDecor { rc };
            let a = placer.place_impl(&mut m_cached, &cfg, true, true, &mut SimScratch::new());
            let b = placer.place_impl(&mut m_fresh, &cfg, false, true, &mut SimScratch::new());
            assert_eq!(a.placed, b.placed, "k={k} initial={initial} rc={rc}");
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.fully_covered, b.fully_covered);
            assert_eq!(a.messages.protocol_total, b.messages.protocol_total);
        }
    }

    #[test]
    fn transport_path_matches_legacy_at_zero_loss() {
        // On a loss-free medium the reliable transport must not change a
        // single placement decision: same sensors, same order, same rounds.
        // Only the accounting differs (every notice now carries an ack).
        for (k, initial, rc) in [(1u32, 40usize, 8.0), (2, 60, 14.142)] {
            let (mut m_tr, cfg) = setup(k, 500, initial, 17);
            let mut m_legacy = m_tr.clone();
            let placer = VoronoiDecor { rc };
            let a = placer.place_impl(&mut m_tr, &cfg, true, true, &mut SimScratch::new());
            let b = placer.place_impl(&mut m_legacy, &cfg, true, false, &mut SimScratch::new());
            assert_eq!(a.placed, b.placed, "k={k} rc={rc}");
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.fully_covered, b.fully_covered);
            assert_eq!(a.messages.retries, 0, "no loss, no retries");
            assert_eq!(a.messages.notices_gave_up, 0);
            assert_eq!(
                a.messages.acks, b.messages.protocol_total,
                "one ack per legacy notice"
            );
            assert_eq!(
                a.messages.protocol_total,
                2 * b.messages.protocol_total,
                "transport doubles traffic with acks at zero loss"
            );
        }
    }

    #[test]
    fn converges_under_heavy_loss() {
        // At 10% and 30% loss the transport keeps the placers convergent:
        // full k-coverage, retry/ack traffic visible, and the extra
        // (blind-spot) placements bounded.
        let (mut m_ref, cfg0) = setup(2, 500, 60, 19);
        let baseline = VoronoiDecor { rc: 8.0 }
            .place(&mut m_ref, &cfg0)
            .placed
            .len();
        let mut prev_retries = 0;
        for loss in [0.1, 0.3] {
            let (mut map, mut cfg) = setup(2, 500, 60, 19);
            cfg.link = crate::LinkConfig::lossy(loss, 23);
            let out = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
            assert!(out.fully_covered, "loss={loss} left deficient points");
            assert!(map.min_coverage() >= 2);
            assert!(out.messages.retries > prev_retries, "loss={loss}");
            assert!(out.messages.acks > 0);
            // Desynchronization may waste sensors, but boundedly so.
            assert!(
                out.placed.len() <= baseline + baseline / 2 + 5,
                "loss={loss}: {} placed vs {baseline} baseline",
                out.placed.len()
            );
            prev_retries = out.messages.retries;
        }
    }

    #[test]
    fn chaos_crashes_recover_to_full_coverage() {
        use crate::invariants::InvariantChecker;
        use decor_net::FaultPlan;
        let (mut map, mut cfg) = setup(2, 500, 60, 41);
        cfg.chaos = Some(FaultPlan::parse("0 crash 5\n3 crash 21\n50 crash 9\n").unwrap());
        cfg.invariants = InvariantChecker::enabled();
        let out = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered, "uncovered: {}", map.count_below(2));
        assert!(map.min_coverage() >= 2);
        assert_eq!(cfg.invariants.dead(), vec![5, 9, 21]);
        cfg.invariants.assert_green();
    }

    #[test]
    fn chaos_partition_and_latency_still_converge() {
        use crate::invariants::InvariantChecker;
        use decor_net::FaultPlan;
        let plan = "0 partition 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14\n\
                    2 latency 16\n\
                    4 crash 7\n\
                    300 heal\n\
                    300 latency 0\n";
        let (mut map, mut cfg) = setup(2, 500, 60, 43);
        cfg.chaos = Some(FaultPlan::parse(plan).unwrap());
        cfg.invariants = InvariantChecker::enabled();
        let out = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
        assert!(out.fully_covered);
        cfg.invariants.assert_green();
    }

    #[test]
    fn empty_chaos_plan_changes_nothing() {
        use decor_net::FaultPlan;
        let (mut m_chaos, mut cfg_chaos) = setup(2, 500, 60, 45);
        let mut m_plain = m_chaos.clone();
        let cfg_plain = cfg_chaos.clone();
        cfg_chaos.chaos = Some(FaultPlan::empty());
        cfg_chaos.invariants = crate::invariants::InvariantChecker::enabled();
        let a = VoronoiDecor { rc: 8.0 }.place(&mut m_chaos, &cfg_chaos);
        let b = VoronoiDecor { rc: 8.0 }.place(&mut m_plain, &cfg_plain);
        assert_eq!(a.placed, b.placed);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.messages.protocol_total, b.messages.protocol_total);
        cfg_chaos.invariants.assert_green();
    }

    #[test]
    fn estimate_ignores_sensors_beyond_rc() {
        let viewer = Point::new(0.0, 0.0);
        let coverers = vec![
            (0, Point::new(3.0, 0.0)), // within rc=8
            (1, Point::new(9.0, 0.0)), // beyond
            (2, Point::new(7.9, 0.0)), // within
        ];
        assert_eq!(VoronoiDecor::estimate(viewer, &coverers, 8.0, None), 2);
        // A hidden sensor is invisible even in range.
        let hidden: std::collections::BTreeSet<usize> = [2].into();
        assert_eq!(
            VoronoiDecor::estimate(viewer, &coverers, 8.0, Some(&hidden)),
            1
        );
    }

    #[test]
    fn trace_ends_fully_covered() {
        let (mut map, cfg) = setup(1, 400, 40, 7);
        let out = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
        assert_eq!(out.trace.last().unwrap().fraction_k_covered, 1.0);
        for w in out.trace.windows(2) {
            assert!(w[1].fraction_k_covered >= w[0].fraction_k_covered - 1e-12);
        }
    }

    #[test]
    fn respects_max_new_nodes() {
        let cfg = DeploymentConfig {
            max_new_nodes: 9,
            ..DeploymentConfig::with_k(2)
        };
        let field = Aabb::square(100.0);
        let mut map = CoverageMap::new(halton_points(300, &field), &field, &cfg);
        let out = VoronoiDecor { rc: 8.0 }.place(&mut map, &cfg);
        assert!(out.placed.len() <= 9);
        assert!(!out.fully_covered);
    }

    #[test]
    #[should_panic(expected = "rc >= rs")]
    fn rc_below_rs_panics() {
        let (mut map, cfg) = setup(1, 100, 0, 8);
        let _ = VoronoiDecor { rc: 2.0 }.place(&mut map, &cfg);
    }
}
