//! The coverage map: the paper's discrete representation of the monitored
//! area (§3.2).
//!
//! A [`CoverageMap`] holds the approximation points of the field (Halton
//! points in the paper's experiments) and, for each point `p`, the count
//! `k_p` of active sensors covering it. Sensors are added incrementally —
//! each placement updates only the points within its sensing disk via a
//! spatial hash-grid — and can be deactivated/reactivated to drive the
//! failure experiments without rebuilding the map.

use crate::config::DeploymentConfig;
use decor_geom::{Aabb, FrozenGridIndex, GridIndex, Point};
use std::collections::BTreeSet;

/// Index of a sensor within its [`CoverageMap`].
pub type SensorId = usize;

#[derive(Clone, Copy, Debug)]
struct Sensor {
    pos: Point,
    rs: f64,
    active: bool,
}

/// Discrete coverage state of a field.
///
/// ```
/// use decor_core::{CoverageMap, DeploymentConfig};
/// use decor_geom::{Aabb, Point};
/// use decor_lds::halton_points;
///
/// let field = Aabb::square(100.0);
/// let cfg = DeploymentConfig::default();
/// let mut map = CoverageMap::new(halton_points(500, &field), &field, &cfg);
/// assert_eq!(map.fraction_k_covered(1), 0.0);
/// let s = map.add_sensor(Point::new(50.0, 50.0), 30.0);
/// assert!(map.fraction_k_covered(1) > 0.2);
/// map.deactivate_sensor(s); // failures are reversible bookkeeping
/// assert_eq!(map.fraction_k_covered(1), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct CoverageMap {
    field: Aabb,
    points: Vec<Point>,
    coverage: Vec<u32>,
    /// The approximation points never move after construction, so they
    /// live in the read-only CSR index (contiguous slabs, early exit);
    /// only the sensors need the mutable bucket grid.
    pt_index: FrozenGridIndex,
    sensors: Vec<Sensor>,
    sensor_index: GridIndex,
    max_rs: f64,
    /// The configured coverage requirement; [`CoverageMap::uncovered_ids`]
    /// answers queries at this `k` from `below_target` without a sweep.
    k_target: u32,
    /// `cov_hist[c]` = number of points with coverage exactly `c`.
    cov_hist: Vec<usize>,
    /// Ids of points with coverage below `k_target` (kept exact on every
    /// sensor add/deactivate/reactivate).
    below_target: BTreeSet<usize>,
}

impl CoverageMap {
    /// Builds a map over `points` (the field approximation). The spatial
    /// index bucket size is tied to `cfg.rs`, the dominant query radius.
    ///
    /// Panics if any point lies outside `field` or the point set is empty.
    pub fn new(points: Vec<Point>, field: &Aabb, cfg: &DeploymentConfig) -> Self {
        cfg.validate();
        assert!(
            !points.is_empty(),
            "a coverage map needs at least one point"
        );
        for &p in &points {
            assert!(
                field.contains(p),
                "approximation point {p} outside the field"
            );
        }
        let bucket = cfg.rs.max(field.width().min(field.height()) / 64.0);
        let pt_index = FrozenGridIndex::from_points(
            field.min,
            (field.width(), field.height()),
            bucket,
            points.iter().copied().enumerate(),
        );
        let sensor_index = GridIndex::new(field.min, (field.width(), field.height()), bucket);
        let n = points.len();
        CoverageMap {
            field: *field,
            points,
            coverage: vec![0; n],
            pt_index,
            sensors: Vec::new(),
            sensor_index,
            max_rs: 0.0,
            k_target: cfg.k,
            cov_hist: vec![n],
            below_target: (0..n).collect(),
        }
    }

    /// The coverage requirement this map was configured with.
    pub fn k_target(&self) -> u32 {
        self.k_target
    }

    /// The monitored field.
    pub fn field(&self) -> &Aabb {
        &self.field
    }

    /// The approximation points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of approximation points.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// Current coverage count `k_p` of point `pid`.
    #[inline]
    pub fn coverage(&self, pid: usize) -> u32 {
        self.coverage[pid]
    }

    /// Ids of approximation points within distance `r` of `q`, sorted
    /// ascending — the same canonical order [`CoverageMap::sensors_within`]
    /// uses for sensor ids.
    pub fn points_within(&self, q: Point, r: f64) -> Vec<usize> {
        let mut v = self.pt_index.within(q, r);
        v.sort_unstable();
        v
    }

    /// Visits `(point_id, position)` for approximation points within `r`
    /// of `q` in ascending id order.
    pub fn for_each_point_within<F: FnMut(usize, Point)>(&self, q: Point, r: f64, mut f: F) {
        let mut hits: Vec<(usize, Point)> = Vec::new();
        self.pt_index
            .for_each_within(q, r, |pid, pos| hits.push((pid, pos)));
        hits.sort_unstable_by_key(|&(pid, _)| pid);
        for (pid, pos) in hits {
            f(pid, pos);
        }
    }

    /// Like [`CoverageMap::for_each_point_within`] but in hash-grid bucket
    /// order, without allocating. Use for order-independent accumulation
    /// (sums, counts) on hot paths.
    pub fn for_each_point_within_unordered<F: FnMut(usize, Point)>(&self, q: Point, r: f64, f: F) {
        self.pt_index.for_each_within(q, r, f)
    }

    /// Like [`CoverageMap::for_each_point_within_unordered`], but stops as
    /// soon as `f` returns `false`. Returns `true` when the scan ran to
    /// completion. Use for order-independent early-exit predicates
    /// ("is any point in this disk under-covered?").
    pub fn for_each_point_within_while<F: FnMut(usize, Point) -> bool>(
        &self,
        q: Point,
        r: f64,
        f: F,
    ) -> bool {
        self.pt_index.for_each_within_while(q, r, f)
    }

    /// True when at least `k` active sensors cover location `q`, honoring
    /// each sensor's own radius. Early-exits at the `k`-th coverer instead
    /// of enumerating the whole disk — the cheap form of the k-coverage
    /// audit (`sensors_covering(q).len() >= k` without the allocation).
    pub fn covered_at_least(&self, q: Point, k: usize) -> bool {
        if k == 0 {
            return true;
        }
        if self.max_rs == 0.0 {
            return false;
        }
        let mut remaining = k;
        !self
            .sensor_index
            .for_each_within_while(q, self.max_rs, |id, pos| {
                let s = &self.sensors[id];
                debug_assert_eq!(pos, s.pos);
                if q.in_disk(s.pos, s.rs) {
                    remaining -= 1;
                }
                remaining > 0
            })
    }

    /// Visits `(sensor_id, position)` of every active sensor covering `q`
    /// (each sensor's own radius honored), in hash-grid bucket order,
    /// without allocating — the streaming twin of
    /// [`CoverageMap::sensors_covering`].
    pub fn for_each_sensor_covering<F: FnMut(usize, Point)>(&self, q: Point, mut f: F) {
        if self.max_rs == 0.0 {
            return;
        }
        self.sensor_index
            .for_each_within(q, self.max_rs, |id, pos| {
                let s = &self.sensors[id];
                debug_assert_eq!(pos, s.pos);
                if q.in_disk(s.pos, s.rs) {
                    f(id, pos);
                }
            });
    }

    /// Adds an active sensor; updates coverage of all points in its disk.
    pub fn add_sensor(&mut self, pos: Point, rs: f64) -> SensorId {
        assert!(
            rs > 0.0 && rs.is_finite(),
            "sensing radius must be positive"
        );
        let id = self.sensors.len();
        self.sensors.push(Sensor {
            pos,
            rs,
            active: true,
        });
        self.sensor_index.insert(id, pos);
        self.max_rs = self.max_rs.max(rs);
        let coverage = &mut self.coverage;
        let hist = &mut self.cov_hist;
        let below = &mut self.below_target;
        let kt = self.k_target;
        self.pt_index.for_each_within(pos, rs, |pid, _| {
            let c = coverage[pid] as usize;
            hist[c] -= 1;
            if hist.len() <= c + 1 {
                hist.resize(c + 2, 0);
            }
            hist[c + 1] += 1;
            coverage[pid] += 1;
            if coverage[pid] >= kt {
                below.remove(&pid);
            }
        });
        id
    }

    /// Number of sensors ever added (active and inactive).
    pub fn n_sensors(&self) -> usize {
        self.sensors.len()
    }

    /// Number of currently active sensors.
    pub fn n_active_sensors(&self) -> usize {
        self.sensors.iter().filter(|s| s.active).count()
    }

    /// Position of sensor `id`.
    pub fn sensor_pos(&self, id: SensorId) -> Point {
        self.sensors[id].pos
    }

    /// Sensing radius of sensor `id`.
    pub fn sensor_rs(&self, id: SensorId) -> f64 {
        self.sensors[id].rs
    }

    /// Is sensor `id` active?
    pub fn sensor_active(&self, id: SensorId) -> bool {
        self.sensors[id].active
    }

    /// Deactivates sensor `id` (failure), decrementing covered points.
    /// Idempotent; returns whether the sensor was active.
    pub fn deactivate_sensor(&mut self, id: SensorId) -> bool {
        if !self.sensors[id].active {
            return false;
        }
        self.sensors[id].active = false;
        let pos = self.sensors[id].pos;
        let rs = self.sensors[id].rs;
        self.sensor_index.remove(id, pos);
        let coverage = &mut self.coverage;
        let hist = &mut self.cov_hist;
        let below = &mut self.below_target;
        let kt = self.k_target;
        self.pt_index.for_each_within(pos, rs, |pid, _| {
            debug_assert!(coverage[pid] > 0, "coverage underflow");
            let c = coverage[pid] as usize;
            hist[c] -= 1;
            hist[c - 1] += 1;
            coverage[pid] -= 1;
            if coverage[pid] < kt {
                below.insert(pid);
            }
        });
        true
    }

    /// Reactivates a previously deactivated sensor. Idempotent; returns
    /// whether the sensor was inactive.
    pub fn reactivate_sensor(&mut self, id: SensorId) -> bool {
        if self.sensors[id].active {
            return false;
        }
        self.sensors[id].active = true;
        let pos = self.sensors[id].pos;
        let rs = self.sensors[id].rs;
        self.sensor_index.insert(id, pos);
        let coverage = &mut self.coverage;
        let hist = &mut self.cov_hist;
        let below = &mut self.below_target;
        let kt = self.k_target;
        self.pt_index.for_each_within(pos, rs, |pid, _| {
            let c = coverage[pid] as usize;
            hist[c] -= 1;
            if hist.len() <= c + 1 {
                hist.resize(c + 2, 0);
            }
            hist[c + 1] += 1;
            coverage[pid] += 1;
            if coverage[pid] >= kt {
                below.remove(&pid);
            }
        });
        true
    }

    /// Ids of active sensors within distance `r` of `q` (sorted).
    pub fn sensors_within(&self, q: Point, r: f64) -> Vec<SensorId> {
        let mut v = self.sensor_index.within(q, r);
        v.sort_unstable();
        v
    }

    /// Visits `(sensor_id, position)` of active sensors within `r` of `q`.
    pub fn for_each_sensor_within<F: FnMut(usize, Point)>(&self, q: Point, r: f64, f: F) {
        self.sensor_index.for_each_within(q, r, f)
    }

    /// Active sensors covering point `q` (their own `rs` honored).
    pub fn sensors_covering(&self, q: Point) -> Vec<SensorId> {
        let mut out = Vec::new();
        self.sensors_covering_into(q, &mut out);
        out
    }

    /// Buffer-reuse variant of [`CoverageMap::sensors_covering`]: fills
    /// `out` (cleared first) with the covering sensor ids, sorted
    /// ascending.
    pub fn sensors_covering_into(&self, q: Point, out: &mut Vec<SensorId>) {
        out.clear();
        self.for_each_sensor_covering(q, |id, _| out.push(id));
        out.sort_unstable();
    }

    /// The active sensor nearest to `q`: `(id, position, distance)`, or
    /// `None` when no sensor is active. Ring-expanding search over the
    /// sensor index, so it is fast when a sensor is nearby.
    pub fn nearest_active_sensor(&self, q: Point) -> Option<(SensorId, Point, f64)> {
        self.sensor_index.nearest(q)
    }

    /// Fraction of approximation points with coverage `>= k`. O(k) via the
    /// incrementally-maintained coverage histogram.
    pub fn fraction_k_covered(&self, k: u32) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        let covered = self.points.len() - self.count_below(k);
        covered as f64 / self.points.len() as f64
    }

    /// Number of points with coverage below `k`. O(k), no sweep.
    pub fn count_below(&self, k: u32) -> usize {
        self.cov_hist
            .iter()
            .take((k as usize).min(self.cov_hist.len()))
            .sum()
    }

    /// Ids of points with coverage below `k`, ascending. O(result) when
    /// `k` equals the configured [`CoverageMap::k_target`] (the common
    /// case, answered from the maintained below-target set); O(n) sweep
    /// otherwise.
    pub fn uncovered_ids(&self, k: u32) -> Vec<usize> {
        if k == self.k_target {
            return self.below_target.iter().copied().collect();
        }
        (0..self.points.len())
            .filter(|&i| self.coverage[i] < k)
            .collect()
    }

    /// The minimum coverage over all points. O(min) via the histogram.
    pub fn min_coverage(&self) -> u32 {
        self.cov_hist.iter().position(|&n| n > 0).unwrap_or(0) as u32
    }

    /// Histogram of coverage counts: `hist[c]` = number of points covered
    /// exactly `c` times (capped at `max_c`, excess lumped into the last
    /// bucket).
    pub fn coverage_histogram(&self, max_c: u32) -> Vec<usize> {
        let mut hist = vec![0usize; max_c as usize + 1];
        for (c, &n) in self.cov_hist.iter().enumerate() {
            hist[c.min(max_c as usize)] += n;
        }
        hist
    }

    /// Positions of all active sensors (paired with ids, ascending).
    pub fn active_sensors(&self) -> Vec<(SensorId, Point)> {
        self.sensors
            .iter()
            .enumerate()
            .filter(|(_, s)| s.active)
            .map(|(i, s)| (i, s.pos))
            .collect()
    }

    /// Recomputes every point's coverage from scratch (O(n·deg)) and
    /// asserts it matches the incremental counters, the coverage
    /// histogram, and the below-target set. Test/debug aid.
    pub fn verify_consistency(&self) {
        for (pid, &p) in self.points.iter().enumerate() {
            let truth = self
                .sensors
                .iter()
                .filter(|s| s.active && p.in_disk(s.pos, s.rs))
                .count() as u32;
            assert_eq!(
                truth, self.coverage[pid],
                "coverage drift at point {pid} ({p})"
            );
        }
        let mut hist = vec![0usize; self.cov_hist.len()];
        for &c in &self.coverage {
            hist[c as usize] += 1;
        }
        assert_eq!(hist, self.cov_hist, "coverage histogram drift");
        let below: BTreeSet<usize> = (0..self.points.len())
            .filter(|&i| self.coverage[i] < self.k_target)
            .collect();
        assert_eq!(below, self.below_target, "below-target set drift");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Aabb {
        Aabb::square(100.0)
    }

    fn grid_points(n_side: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push(Point::new(
                    100.0 * (i as f64 + 0.5) / n_side as f64,
                    100.0 * (j as f64 + 0.5) / n_side as f64,
                ));
            }
        }
        pts
    }

    fn map() -> CoverageMap {
        CoverageMap::new(grid_points(20), &field(), &DeploymentConfig::default())
    }

    #[test]
    fn fresh_map_is_uncovered() {
        let m = map();
        assert_eq!(m.n_points(), 400);
        assert_eq!(m.fraction_k_covered(1), 0.0);
        assert_eq!(m.min_coverage(), 0);
        assert_eq!(m.count_below(1), 400);
    }

    #[test]
    fn add_sensor_covers_its_disk() {
        let mut m = map();
        m.add_sensor(Point::new(50.0, 50.0), 10.0);
        let covered: Vec<usize> = (0..m.n_points()).filter(|&i| m.coverage(i) > 0).collect();
        assert!(!covered.is_empty());
        for &pid in &covered {
            assert!(m.points()[pid].dist(Point::new(50.0, 50.0)) <= 10.0);
        }
        m.verify_consistency();
    }

    #[test]
    fn overlapping_sensors_stack_coverage() {
        let mut m = map();
        m.add_sensor(Point::new(50.0, 50.0), 10.0);
        m.add_sensor(Point::new(50.0, 50.0), 10.0);
        m.add_sensor(Point::new(50.0, 50.0), 10.0);
        let pid = m.points_within(Point::new(50.0, 50.0), 4.0)[0];
        assert_eq!(m.coverage(pid), 3);
        m.verify_consistency();
    }

    #[test]
    fn deactivate_and_reactivate_roundtrip() {
        let mut m = map();
        let s = m.add_sensor(Point::new(30.0, 30.0), 8.0);
        let before: Vec<u32> = (0..m.n_points()).map(|i| m.coverage(i)).collect();
        assert!(m.deactivate_sensor(s));
        assert!(!m.deactivate_sensor(s), "idempotent");
        assert_eq!(m.fraction_k_covered(1), 0.0);
        assert_eq!(m.n_active_sensors(), 0);
        assert!(m.reactivate_sensor(s));
        assert!(!m.reactivate_sensor(s), "idempotent");
        let after: Vec<u32> = (0..m.n_points()).map(|i| m.coverage(i)).collect();
        assert_eq!(before, after);
        m.verify_consistency();
    }

    #[test]
    fn sensors_covering_honors_individual_radii() {
        let mut m = map();
        let near = m.add_sensor(Point::new(50.0, 50.0), 3.0);
        let far = m.add_sensor(Point::new(58.0, 50.0), 12.0);
        let q = Point::new(52.0, 50.0);
        // near covers q (d=2 <= 3); far covers q (d=6 <= 12).
        assert_eq!(m.sensors_covering(q), vec![near, far]);
        let q2 = Point::new(54.0, 50.0); // d(near)=4 > 3, d(far)=4 <= 12
        assert_eq!(m.sensors_covering(q2), vec![far]);
    }

    #[test]
    fn fraction_and_histogram_agree() {
        let mut m = map();
        m.add_sensor(Point::new(25.0, 25.0), 20.0);
        m.add_sensor(Point::new(25.0, 25.0), 20.0);
        let hist = m.coverage_histogram(3);
        assert_eq!(hist.iter().sum::<usize>(), m.n_points());
        let at_least_2 = hist[2] + hist[3];
        assert!((m.fraction_k_covered(2) - at_least_2 as f64 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn uncovered_ids_match_count_below() {
        let mut m = map();
        m.add_sensor(Point::new(50.0, 50.0), 30.0);
        assert_eq!(m.uncovered_ids(1).len(), m.count_below(1));
        assert_eq!(m.uncovered_ids(2).len(), m.count_below(2));
        assert!(m.count_below(2) >= m.count_below(1));
    }

    #[test]
    fn full_coverage_reachable() {
        let mut m = map();
        // Blanket the field with a coarse sensor lattice.
        for i in 0..10 {
            for j in 0..10 {
                m.add_sensor(
                    Point::new(5.0 + 10.0 * i as f64, 5.0 + 10.0 * j as f64),
                    8.0,
                );
            }
        }
        assert_eq!(m.fraction_k_covered(1), 1.0);
        assert!(m.min_coverage() >= 1);
        m.verify_consistency();
    }

    #[test]
    #[should_panic(expected = "outside the field")]
    fn point_outside_field_panics() {
        let _ = CoverageMap::new(
            vec![Point::new(500.0, 0.0)],
            &field(),
            &DeploymentConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_point_set_panics() {
        let _ = CoverageMap::new(Vec::new(), &field(), &DeploymentConfig::default());
    }

    #[test]
    fn active_sensor_listing() {
        let mut m = map();
        let a = m.add_sensor(Point::new(10.0, 10.0), 4.0);
        let b = m.add_sensor(Point::new(20.0, 20.0), 4.0);
        m.deactivate_sensor(a);
        let act = m.active_sensors();
        assert_eq!(act.len(), 1);
        assert_eq!(act[0].0, b);
        assert_eq!(m.n_sensors(), 2);
        assert_eq!(m.n_active_sensors(), 1);
    }

    #[test]
    fn sensor_accessors() {
        let mut m = map();
        let s = m.add_sensor(Point::new(12.0, 34.0), 5.0);
        assert_eq!(m.sensor_pos(s), Point::new(12.0, 34.0));
        assert_eq!(m.sensor_rs(s), 5.0);
        assert!(m.sensor_active(s));
    }
}
