//! The coverage map: the paper's discrete representation of the monitored
//! area (§3.2).
//!
//! A [`CoverageMap`] holds the approximation points of the field (Halton
//! points in the paper's experiments) and, for each point `p`, the count
//! `k_p` of active sensors covering it. Sensors are added incrementally —
//! each placement updates only the points within its sensing disk via a
//! spatial hash-grid — and can be deactivated/reactivated to drive the
//! failure experiments without rebuilding the map.

use crate::config::DeploymentConfig;
use decor_geom::{query_bucket_edge, Aabb, FrozenGridIndex, GridIndex, Point};
use std::collections::BTreeMap;

/// Index of a sensor within its [`CoverageMap`].
pub type SensorId = usize;

/// Tile edge in point-index buckets: the coarse summary layer groups
/// 16×16 buckets per tile. The bucket edge is at least `rs`, so a tile is
/// at least `16·rs` wide and any `rs`-disk touches at most 4 tiles.
const TILE_BUCKETS: f64 = 16.0;

#[derive(Clone, Copy, Debug)]
struct Sensor {
    pos: Point,
    rs: f64,
    active: bool,
}

/// Discrete coverage state of a field.
///
/// ```
/// use decor_core::{CoverageMap, DeploymentConfig};
/// use decor_geom::{Aabb, Point};
/// use decor_lds::halton_points;
///
/// let field = Aabb::square(100.0);
/// let cfg = DeploymentConfig::default();
/// let mut map = CoverageMap::new(halton_points(500, &field), &field, &cfg);
/// assert_eq!(map.fraction_k_covered(1), 0.0);
/// let s = map.add_sensor(Point::new(50.0, 50.0), 30.0);
/// assert!(map.fraction_k_covered(1) > 0.2);
/// map.deactivate_sensor(s); // failures are reversible bookkeeping
/// assert_eq!(map.fraction_k_covered(1), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct CoverageMap {
    field: Aabb,
    points: Vec<Point>,
    /// Per-point coverage counts as a dense `u8` slab — a quarter of the
    /// old `Vec<u32>` footprint, so the chunked deficit kernels stream
    /// it from cache. Additions guard against saturation (see
    /// [`CoverageMap::add_sensor`]).
    coverage: Vec<u8>,
    /// The approximation points never move after construction, so they
    /// live in the read-only CSR index (contiguous slabs, early exit);
    /// only the sensors need the mutable bucket grid.
    pt_index: FrozenGridIndex,
    sensors: Vec<Sensor>,
    sensor_index: GridIndex,
    /// Histogram of *active* sensing radii keyed by `f64::to_bits`
    /// (positive finite floats order the same as their bit patterns), so
    /// the maximum query radius follows deactivations instead of
    /// ratcheting up forever.
    rs_hist: BTreeMap<u64, u32>,
    /// Cached largest key of `rs_hist` (0.0 when no sensor is active).
    max_rs: f64,
    /// The configured coverage requirement; [`CoverageMap::uncovered_ids`]
    /// answers queries at this `k` from the deficient tiles without a
    /// field sweep.
    k_target: u32,
    /// `cov_hist[c]` = number of points with coverage exactly `c`.
    cov_hist: Vec<usize>,
    // --- coarse tile summary layer (16×16 buckets per tile) ---
    tile_cols: usize,
    tile_rows: usize,
    tile_edge: f64,
    /// Tile index of each approximation point.
    tile_of_pid: Vec<u32>,
    /// Per tile: number of points with coverage below `k_target`. A zero
    /// is the "fully k-covered" summary bit that lets benefit scoring,
    /// `uncovered_ids` and restoration scans skip the whole tile.
    tile_below: Vec<u32>,
    /// CSR tile → points: tile `t` owns
    /// `tile_pids[tile_starts[t] .. tile_starts[t + 1]]`, each group in
    /// ascending point-id order.
    tile_starts: Vec<u32>,
    tile_pids: Vec<u32>,
}

impl CoverageMap {
    /// Builds a map over `points` (the field approximation). The spatial
    /// index bucket size is tied to `cfg.rs`, the dominant query radius.
    ///
    /// Panics if any point lies outside `field` or the point set is empty.
    pub fn new(points: Vec<Point>, field: &Aabb, cfg: &DeploymentConfig) -> Self {
        cfg.validate();
        assert!(
            !points.is_empty(),
            "a coverage map needs at least one point"
        );
        for &p in &points {
            assert!(
                field.contains(p),
                "approximation point {p} outside the field"
            );
        }
        let min_dim = field.width().min(field.height());
        let bucket = query_bucket_edge(cfg.rs, min_dim, points.len());
        let pt_index = FrozenGridIndex::from_points(
            field.min,
            (field.width(), field.height()),
            bucket,
            points.iter().copied().enumerate(),
        );
        let sensor_index = GridIndex::new(field.min, (field.width(), field.height()), bucket);
        let n = points.len();

        // Tile layer: counting-sort the points into a tile CSR (ascending
        // id within each tile, since ids are visited in order).
        let tile_edge = bucket * TILE_BUCKETS;
        let tile_cols = (field.width() / tile_edge).ceil().max(1.0) as usize;
        let tile_rows = (field.height() / tile_edge).ceil().max(1.0) as usize;
        let n_tiles = tile_cols * tile_rows;
        let mut tile_of_pid = Vec::with_capacity(n);
        let mut counts = vec![0u32; n_tiles];
        for &p in &points {
            let tx =
                (((p.x - field.min.x) / tile_edge).floor().max(0.0) as usize).min(tile_cols - 1);
            let ty =
                (((p.y - field.min.y) / tile_edge).floor().max(0.0) as usize).min(tile_rows - 1);
            let t = (ty * tile_cols + tx) as u32;
            tile_of_pid.push(t);
            counts[t as usize] += 1;
        }
        let mut tile_starts = Vec::with_capacity(n_tiles + 1);
        let mut acc = 0u32;
        for &c in &counts {
            tile_starts.push(acc);
            acc += c;
        }
        tile_starts.push(acc);
        let mut tile_pids = vec![0u32; n];
        let mut cursor = tile_starts[..n_tiles].to_vec();
        for (pid, &t) in tile_of_pid.iter().enumerate() {
            tile_pids[cursor[t as usize] as usize] = pid as u32;
            cursor[t as usize] += 1;
        }

        CoverageMap {
            field: *field,
            points,
            coverage: vec![0; n],
            pt_index,
            sensors: Vec::new(),
            sensor_index,
            rs_hist: BTreeMap::new(),
            max_rs: 0.0,
            k_target: cfg.k,
            cov_hist: vec![n],
            tile_cols,
            tile_rows,
            tile_edge,
            tile_of_pid,
            tile_below: counts,
            tile_starts,
            tile_pids,
        }
    }

    /// Rebuilds `self` as a bitwise copy of `template`, reusing every
    /// slab `self` already owns. Field-wise `clone_from` lets the point
    /// CSR, the bucket grids, the coverage slab and the tile layer all
    /// keep their capacity, so a warm map resets without touching the
    /// allocator. The result is indistinguishable from
    /// `template.clone()`.
    pub fn reset_from(&mut self, template: &CoverageMap) {
        self.field = template.field;
        self.points.clone_from(&template.points);
        self.coverage.clone_from(&template.coverage);
        self.pt_index.clone_from(&template.pt_index);
        self.sensors.clone_from(&template.sensors);
        self.sensor_index.clone_from(&template.sensor_index);
        self.rs_hist.clone_from(&template.rs_hist);
        self.max_rs = template.max_rs;
        self.k_target = template.k_target;
        self.cov_hist.clone_from(&template.cov_hist);
        self.tile_cols = template.tile_cols;
        self.tile_rows = template.tile_rows;
        self.tile_edge = template.tile_edge;
        self.tile_of_pid.clone_from(&template.tile_of_pid);
        self.tile_below.clone_from(&template.tile_below);
        self.tile_starts.clone_from(&template.tile_starts);
        self.tile_pids.clone_from(&template.tile_pids);
    }

    /// The coverage requirement this map was configured with.
    pub fn k_target(&self) -> u32 {
        self.k_target
    }

    /// The monitored field.
    pub fn field(&self) -> &Aabb {
        &self.field
    }

    /// The approximation points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of approximation points.
    pub fn n_points(&self) -> usize {
        self.points.len()
    }

    /// Current coverage count `k_p` of point `pid`.
    #[inline]
    pub fn coverage(&self, pid: usize) -> u32 {
        self.coverage[pid] as u32
    }

    /// The largest sensing radius among *active* sensors (0.0 when none).
    /// Tracked through a radius histogram, so it shrinks back when a
    /// wide-radius sensor deactivates — every `covered_at_least` /
    /// `for_each_sensor_covering` query scans this radius.
    #[inline]
    pub fn max_active_rs(&self) -> f64 {
        self.max_rs
    }

    /// Ids of approximation points within distance `r` of `q`, sorted
    /// ascending — the same canonical order [`CoverageMap::sensors_within`]
    /// uses for sensor ids.
    pub fn points_within(&self, q: Point, r: f64) -> Vec<usize> {
        let mut v = self.pt_index.within(q, r);
        v.sort_unstable();
        v
    }

    /// Visits `(point_id, position)` for approximation points within `r`
    /// of `q` in ascending id order.
    pub fn for_each_point_within<F: FnMut(usize, Point)>(&self, q: Point, r: f64, mut f: F) {
        let mut hits: Vec<(usize, Point)> = Vec::new();
        self.pt_index
            .for_each_within(q, r, |pid, pos| hits.push((pid, pos)));
        hits.sort_unstable_by_key(|&(pid, _)| pid);
        for (pid, pos) in hits {
            f(pid, pos);
        }
    }

    /// Like [`CoverageMap::for_each_point_within`] but in hash-grid bucket
    /// order, without allocating. Use for order-independent accumulation
    /// (sums, counts) on hot paths.
    pub fn for_each_point_within_unordered<F: FnMut(usize, Point)>(&self, q: Point, r: f64, f: F) {
        self.pt_index.for_each_within(q, r, f)
    }

    /// Like [`CoverageMap::for_each_point_within_unordered`], but stops as
    /// soon as `f` returns `false`. Returns `true` when the scan ran to
    /// completion. Use for order-independent early-exit predicates
    /// ("is any point in this disk under-covered?").
    pub fn for_each_point_within_while<F: FnMut(usize, Point) -> bool>(
        &self,
        q: Point,
        r: f64,
        f: F,
    ) -> bool {
        self.pt_index.for_each_within_while(q, r, f)
    }

    /// True when at least `k` active sensors cover location `q`, honoring
    /// each sensor's own radius. Early-exits at the `k`-th coverer instead
    /// of enumerating the whole disk — the cheap form of the k-coverage
    /// audit (`sensors_covering(q).len() >= k` without the allocation).
    pub fn covered_at_least(&self, q: Point, k: usize) -> bool {
        if k == 0 {
            return true;
        }
        if self.max_rs == 0.0 {
            return false;
        }
        let mut remaining = k;
        !self
            .sensor_index
            .for_each_within_while(q, self.max_rs, |id, pos| {
                let s = &self.sensors[id];
                debug_assert_eq!(pos, s.pos);
                if q.in_disk(s.pos, s.rs) {
                    remaining -= 1;
                }
                remaining > 0
            })
    }

    /// Visits `(sensor_id, position)` of every active sensor covering `q`
    /// (each sensor's own radius honored), in hash-grid bucket order,
    /// without allocating — the streaming twin of
    /// [`CoverageMap::sensors_covering`].
    pub fn for_each_sensor_covering<F: FnMut(usize, Point)>(&self, q: Point, mut f: F) {
        if self.max_rs == 0.0 {
            return;
        }
        self.sensor_index
            .for_each_within(q, self.max_rs, |id, pos| {
                let s = &self.sensors[id];
                debug_assert_eq!(pos, s.pos);
                if q.in_disk(s.pos, s.rs) {
                    f(id, pos);
                }
            });
    }

    /// Adds an active sensor; updates coverage of all points in its disk.
    pub fn add_sensor(&mut self, pos: Point, rs: f64) -> SensorId {
        assert!(
            rs > 0.0 && rs.is_finite(),
            "sensing radius must be positive"
        );
        let id = self.sensors.len();
        self.sensors.push(Sensor {
            pos,
            rs,
            active: true,
        });
        self.sensor_index.insert(id, pos);
        self.note_rs_activated(rs);
        let coverage = &mut self.coverage;
        let hist = &mut self.cov_hist;
        let tile_below = &mut self.tile_below;
        let tile_of_pid = &self.tile_of_pid;
        let kt = self.k_target;
        self.pt_index.for_each_within(pos, rs, |pid, _| {
            let c = coverage[pid] as usize;
            assert!(
                c < u8::MAX as usize,
                "coverage saturation: point {pid} already covered {c} times"
            );
            hist[c] -= 1;
            if hist.len() <= c + 1 {
                hist.resize(c + 2, 0);
            }
            hist[c + 1] += 1;
            coverage[pid] = (c + 1) as u8;
            if c + 1 == kt as usize {
                tile_below[tile_of_pid[pid] as usize] -= 1;
            }
        });
        id
    }

    /// Records an activation of radius `rs` in the radius histogram.
    fn note_rs_activated(&mut self, rs: f64) {
        *self.rs_hist.entry(rs.to_bits()).or_insert(0) += 1;
        if rs > self.max_rs {
            self.max_rs = rs;
        }
    }

    /// Records a deactivation of radius `rs`, shrinking the cached
    /// maximum when the last sensor of the widest radius went away.
    fn note_rs_deactivated(&mut self, rs: f64) {
        let bits = rs.to_bits();
        let n = self.rs_hist.get_mut(&bits).expect("radius histogram drift");
        *n -= 1;
        if *n == 0 {
            self.rs_hist.remove(&bits);
            if rs == self.max_rs {
                self.max_rs = self
                    .rs_hist
                    .keys()
                    .next_back()
                    .map_or(0.0, |&b| f64::from_bits(b));
            }
        }
    }

    /// Number of sensors ever added (active and inactive).
    pub fn n_sensors(&self) -> usize {
        self.sensors.len()
    }

    /// Number of currently active sensors.
    pub fn n_active_sensors(&self) -> usize {
        self.sensors.iter().filter(|s| s.active).count()
    }

    /// Position of sensor `id`.
    pub fn sensor_pos(&self, id: SensorId) -> Point {
        self.sensors[id].pos
    }

    /// Sensing radius of sensor `id`.
    pub fn sensor_rs(&self, id: SensorId) -> f64 {
        self.sensors[id].rs
    }

    /// Is sensor `id` active?
    pub fn sensor_active(&self, id: SensorId) -> bool {
        self.sensors[id].active
    }

    /// Deactivates sensor `id` (failure), decrementing covered points.
    /// Idempotent; returns whether the sensor was active.
    pub fn deactivate_sensor(&mut self, id: SensorId) -> bool {
        if !self.sensors[id].active {
            return false;
        }
        self.sensors[id].active = false;
        let pos = self.sensors[id].pos;
        let rs = self.sensors[id].rs;
        self.sensor_index.remove(id, pos);
        self.note_rs_deactivated(rs);
        let coverage = &mut self.coverage;
        let hist = &mut self.cov_hist;
        let tile_below = &mut self.tile_below;
        let tile_of_pid = &self.tile_of_pid;
        let kt = self.k_target;
        self.pt_index.for_each_within(pos, rs, |pid, _| {
            debug_assert!(coverage[pid] > 0, "coverage underflow");
            let c = coverage[pid] as usize;
            hist[c] -= 1;
            hist[c - 1] += 1;
            coverage[pid] = (c - 1) as u8;
            if c == kt as usize {
                tile_below[tile_of_pid[pid] as usize] += 1;
            }
        });
        true
    }

    /// Reactivates a previously deactivated sensor. Idempotent; returns
    /// whether the sensor was inactive.
    pub fn reactivate_sensor(&mut self, id: SensorId) -> bool {
        if self.sensors[id].active {
            return false;
        }
        self.sensors[id].active = true;
        let pos = self.sensors[id].pos;
        let rs = self.sensors[id].rs;
        self.sensor_index.insert(id, pos);
        self.note_rs_activated(rs);
        let coverage = &mut self.coverage;
        let hist = &mut self.cov_hist;
        let tile_below = &mut self.tile_below;
        let tile_of_pid = &self.tile_of_pid;
        let kt = self.k_target;
        self.pt_index.for_each_within(pos, rs, |pid, _| {
            let c = coverage[pid] as usize;
            assert!(
                c < u8::MAX as usize,
                "coverage saturation: point {pid} already covered {c} times"
            );
            hist[c] -= 1;
            if hist.len() <= c + 1 {
                hist.resize(c + 2, 0);
            }
            hist[c + 1] += 1;
            coverage[pid] = (c + 1) as u8;
            if c + 1 == kt as usize {
                tile_below[tile_of_pid[pid] as usize] -= 1;
            }
        });
        true
    }

    /// Ids of active sensors within distance `r` of `q` (sorted).
    pub fn sensors_within(&self, q: Point, r: f64) -> Vec<SensorId> {
        let mut v = self.sensor_index.within(q, r);
        v.sort_unstable();
        v
    }

    /// Visits `(sensor_id, position)` of active sensors within `r` of `q`.
    pub fn for_each_sensor_within<F: FnMut(usize, Point)>(&self, q: Point, r: f64, f: F) {
        self.sensor_index.for_each_within(q, r, f)
    }

    /// Active sensors covering point `q` (their own `rs` honored).
    pub fn sensors_covering(&self, q: Point) -> Vec<SensorId> {
        let mut out = Vec::new();
        self.sensors_covering_into(q, &mut out);
        out
    }

    /// Buffer-reuse variant of [`CoverageMap::sensors_covering`]: fills
    /// `out` (cleared first) with the covering sensor ids, sorted
    /// ascending.
    pub fn sensors_covering_into(&self, q: Point, out: &mut Vec<SensorId>) {
        out.clear();
        self.for_each_sensor_covering(q, |id, _| out.push(id));
        out.sort_unstable();
    }

    /// The active sensor nearest to `q`: `(id, position, distance)`, or
    /// `None` when no sensor is active. Ring-expanding search over the
    /// sensor index, so it is fast when a sensor is nearby.
    pub fn nearest_active_sensor(&self, q: Point) -> Option<(SensorId, Point, f64)> {
        self.sensor_index.nearest(q)
    }

    /// Fraction of approximation points with coverage `>= k`. O(k) via the
    /// incrementally-maintained coverage histogram.
    pub fn fraction_k_covered(&self, k: u32) -> f64 {
        if self.points.is_empty() {
            return 1.0;
        }
        let covered = self.points.len() - self.count_below(k);
        covered as f64 / self.points.len() as f64
    }

    /// Number of points with coverage below `k`. O(k), no sweep.
    pub fn count_below(&self, k: u32) -> usize {
        self.cov_hist
            .iter()
            .take((k as usize).min(self.cov_hist.len()))
            .sum()
    }

    /// Ids of points with coverage below `k`, ascending. Histogram-guided:
    /// returns empty in O(k) when nothing is below `k`. For `k` up to the
    /// configured [`CoverageMap::k_target`] the scan visits only deficient
    /// tiles (output-sensitive); only `k > k_target` pays a field sweep.
    pub fn uncovered_ids(&self, k: u32) -> Vec<usize> {
        let mut out = Vec::new();
        self.uncovered_ids_into(k, &mut out);
        out
    }

    /// [`CoverageMap::uncovered_ids`] into a reused buffer (cleared
    /// first).
    pub fn uncovered_ids_into(&self, k: u32, out: &mut Vec<usize>) {
        out.clear();
        if self.count_below(k) == 0 {
            return;
        }
        if k > self.k_target {
            out.extend((0..self.points.len()).filter(|&i| (self.coverage[i] as u32) < k));
            return;
        }
        // below-k ⊆ below-k_target, and every below-k_target point lives
        // in a tile with tile_below > 0; tile groups hold ascending pids
        // and tiles are visited in index order, so a final sort restores
        // the global ascending order across tiles.
        for (t, &below) in self.tile_below.iter().enumerate() {
            if below == 0 {
                continue;
            }
            let start = self.tile_starts[t] as usize;
            let end = self.tile_starts[t + 1] as usize;
            for &pid in &self.tile_pids[start..end] {
                if (self.coverage[pid as usize] as u32) < k {
                    out.push(pid as usize);
                }
            }
        }
        out.sort_unstable();
    }

    /// True when every approximation point inside the disk `(c, r)` has
    /// coverage at least the configured target. Tile-accelerated: tiles
    /// whose deficiency count is zero are skipped wholesale, so on a
    /// healthy field this is O(tiles touched) rather than O(points in
    /// disk).
    pub fn disk_fully_covered(&self, c: Point, r: f64) -> bool {
        if self.count_below(self.k_target) == 0 {
            return true;
        }
        if !self.tiles_deficient_near(c, r) {
            return true;
        }
        let kt = self.k_target;
        self.pt_index
            .for_each_within_while(c, r, |pid, _| (self.coverage[pid] as u32) >= kt)
    }

    /// Does any tile overlapping the disk `(c, r)` contain a
    /// below-target point?
    fn tiles_deficient_near(&self, c: Point, r: f64) -> bool {
        let (tx0, ty0) = self.tile_coords(Point::new(c.x - r, c.y - r));
        let (tx1, ty1) = self.tile_coords(Point::new(c.x + r, c.y + r));
        for ty in ty0..=ty1 {
            let row = ty * self.tile_cols;
            for tx in tx0..=tx1 {
                if self.tile_below[row + tx] > 0 {
                    return true;
                }
            }
        }
        false
    }

    /// Clamped tile coordinates of a location (which may lie outside the
    /// field, e.g. the corner of a query box).
    fn tile_coords(&self, p: Point) -> (usize, usize) {
        let tx = (((p.x - self.field.min.x) / self.tile_edge).floor().max(0.0) as usize)
            .min(self.tile_cols - 1);
        let ty = (((p.y - self.field.min.y) / self.tile_edge).floor().max(0.0) as usize)
            .min(self.tile_rows - 1);
        (tx, ty)
    }

    /// Total coverage deficit `Σ max(0, k - k_p)` over approximation
    /// points within `r` of `q` — the integer benefit of placing a
    /// `k`-requirement sensor there. Streams the CSR slabs in chunk
    /// ranges; ranges whose bucket box lies entirely inside the disk skip
    /// the per-point distance test.
    pub fn deficit_within(&self, q: Point, r: f64, k: u32) -> u64 {
        let rr = r * r;
        let coverage = &self.coverage;
        let mut sum = 0u64;
        self.pt_index
            .for_each_slab_range_within(q, r, |xs, ys, ids, all_inside| {
                if all_inside {
                    for &pid in ids {
                        let c = coverage[pid as usize] as u32;
                        sum += u64::from(k.saturating_sub(c));
                    }
                } else {
                    for i in 0..xs.len() {
                        let dx = xs[i] - q.x;
                        let dy = ys[i] - q.y;
                        let inside = (dx * dx + dy * dy <= rr) as u32;
                        let c = coverage[ids[i] as usize] as u32;
                        sum += u64::from(inside * k.saturating_sub(c));
                    }
                }
            });
        sum
    }

    /// Ascending ids of every point in a tile that is deficient or within
    /// `margin` of one: the output-sensitive restoration candidate set.
    /// Any location whose `rs`-disk (for `rs <= margin`) touches a
    /// below-target point lies in this set's tiles, so greedy placement
    /// restricted to these candidates sees every positive-benefit point.
    /// Returns all ids when every tile is deficient.
    pub fn deficit_candidates(&self, margin: f64) -> Vec<usize> {
        let mut wanted = Vec::new();
        let mut out = Vec::new();
        self.deficit_candidates_into(margin, &mut wanted, &mut out);
        out
    }

    /// Buffer-reuse variant of [`CoverageMap::deficit_candidates`]:
    /// `wanted` is a tile-flag scratch buffer and `out` receives the
    /// candidate ids (both cleared first). With warm buffers this does
    /// not allocate unless the candidate set outgrows `out`.
    pub fn deficit_candidates_into(
        &self,
        margin: f64,
        wanted: &mut Vec<bool>,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let ring = (margin / self.tile_edge).ceil().max(0.0) as usize;
        wanted.clear();
        wanted.resize(self.tile_below.len(), false);
        let mut any = false;
        for (t, &below) in self.tile_below.iter().enumerate() {
            if below == 0 {
                continue;
            }
            any = true;
            let tx = t % self.tile_cols;
            let ty = t / self.tile_cols;
            let x0 = tx.saturating_sub(ring);
            let x1 = (tx + ring).min(self.tile_cols - 1);
            let y0 = ty.saturating_sub(ring);
            let y1 = (ty + ring).min(self.tile_rows - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    wanted[y * self.tile_cols + x] = true;
                }
            }
        }
        if !any {
            return;
        }
        for (t, &w) in wanted.iter().enumerate() {
            if !w {
                continue;
            }
            let start = self.tile_starts[t] as usize;
            let end = self.tile_starts[t + 1] as usize;
            out.extend(self.tile_pids[start..end].iter().map(|&pid| pid as usize));
        }
        out.sort_unstable();
    }

    /// The minimum coverage over all points. O(min) via the histogram.
    pub fn min_coverage(&self) -> u32 {
        self.cov_hist.iter().position(|&n| n > 0).unwrap_or(0) as u32
    }

    /// Histogram of coverage counts: `hist[c]` = number of points covered
    /// exactly `c` times (capped at `max_c`, excess lumped into the last
    /// bucket).
    pub fn coverage_histogram(&self, max_c: u32) -> Vec<usize> {
        let mut hist = vec![0usize; max_c as usize + 1];
        for (c, &n) in self.cov_hist.iter().enumerate() {
            hist[c.min(max_c as usize)] += n;
        }
        hist
    }

    /// Positions of all active sensors (paired with ids, ascending).
    pub fn active_sensors(&self) -> Vec<(SensorId, Point)> {
        let mut out = Vec::new();
        self.active_sensors_into(&mut out);
        out
    }

    /// [`CoverageMap::active_sensors`] into a reused buffer (cleared
    /// first).
    pub fn active_sensors_into(&self, out: &mut Vec<(SensorId, Point)>) {
        out.clear();
        out.extend(
            self.sensors
                .iter()
                .enumerate()
                .filter(|(_, s)| s.active)
                .map(|(i, s)| (i, s.pos)),
        );
    }

    /// Recomputes every point's coverage from scratch (O(n·deg)) and
    /// asserts it matches the incremental counters, the coverage
    /// histogram, the per-tile deficiency summaries, and the active-radius
    /// histogram. Test/debug aid.
    pub fn verify_consistency(&self) {
        for (pid, &p) in self.points.iter().enumerate() {
            let truth = self
                .sensors
                .iter()
                .filter(|s| s.active && p.in_disk(s.pos, s.rs))
                .count() as u32;
            assert_eq!(
                truth, self.coverage[pid] as u32,
                "coverage drift at point {pid} ({p})"
            );
        }
        let mut hist = vec![0usize; self.cov_hist.len()];
        for &c in &self.coverage {
            hist[c as usize] += 1;
        }
        assert_eq!(hist, self.cov_hist, "coverage histogram drift");
        let mut tile_below = vec![0u32; self.tile_below.len()];
        for (pid, &t) in self.tile_of_pid.iter().enumerate() {
            if (self.coverage[pid] as u32) < self.k_target {
                tile_below[t as usize] += 1;
            }
        }
        assert_eq!(tile_below, self.tile_below, "tile deficiency drift");
        let mut rs_hist: BTreeMap<u64, u32> = BTreeMap::new();
        for s in self.sensors.iter().filter(|s| s.active) {
            *rs_hist.entry(s.rs.to_bits()).or_insert(0) += 1;
        }
        assert_eq!(rs_hist, self.rs_hist, "active-radius histogram drift");
        let true_max = rs_hist
            .keys()
            .next_back()
            .map_or(0.0, |&b| f64::from_bits(b));
        assert_eq!(true_max, self.max_rs, "max active radius drift");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Aabb {
        Aabb::square(100.0)
    }

    fn grid_points(n_side: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                pts.push(Point::new(
                    100.0 * (i as f64 + 0.5) / n_side as f64,
                    100.0 * (j as f64 + 0.5) / n_side as f64,
                ));
            }
        }
        pts
    }

    fn map() -> CoverageMap {
        CoverageMap::new(grid_points(20), &field(), &DeploymentConfig::default())
    }

    #[test]
    fn fresh_map_is_uncovered() {
        let m = map();
        assert_eq!(m.n_points(), 400);
        assert_eq!(m.fraction_k_covered(1), 0.0);
        assert_eq!(m.min_coverage(), 0);
        assert_eq!(m.count_below(1), 400);
    }

    #[test]
    fn add_sensor_covers_its_disk() {
        let mut m = map();
        m.add_sensor(Point::new(50.0, 50.0), 10.0);
        let covered: Vec<usize> = (0..m.n_points()).filter(|&i| m.coverage(i) > 0).collect();
        assert!(!covered.is_empty());
        for &pid in &covered {
            assert!(m.points()[pid].dist(Point::new(50.0, 50.0)) <= 10.0);
        }
        m.verify_consistency();
    }

    #[test]
    fn overlapping_sensors_stack_coverage() {
        let mut m = map();
        m.add_sensor(Point::new(50.0, 50.0), 10.0);
        m.add_sensor(Point::new(50.0, 50.0), 10.0);
        m.add_sensor(Point::new(50.0, 50.0), 10.0);
        let pid = m.points_within(Point::new(50.0, 50.0), 4.0)[0];
        assert_eq!(m.coverage(pid), 3);
        m.verify_consistency();
    }

    #[test]
    fn deactivate_and_reactivate_roundtrip() {
        let mut m = map();
        let s = m.add_sensor(Point::new(30.0, 30.0), 8.0);
        let before: Vec<u32> = (0..m.n_points()).map(|i| m.coverage(i)).collect();
        assert!(m.deactivate_sensor(s));
        assert!(!m.deactivate_sensor(s), "idempotent");
        assert_eq!(m.fraction_k_covered(1), 0.0);
        assert_eq!(m.n_active_sensors(), 0);
        assert!(m.reactivate_sensor(s));
        assert!(!m.reactivate_sensor(s), "idempotent");
        let after: Vec<u32> = (0..m.n_points()).map(|i| m.coverage(i)).collect();
        assert_eq!(before, after);
        m.verify_consistency();
    }

    #[test]
    fn sensors_covering_honors_individual_radii() {
        let mut m = map();
        let near = m.add_sensor(Point::new(50.0, 50.0), 3.0);
        let far = m.add_sensor(Point::new(58.0, 50.0), 12.0);
        let q = Point::new(52.0, 50.0);
        // near covers q (d=2 <= 3); far covers q (d=6 <= 12).
        assert_eq!(m.sensors_covering(q), vec![near, far]);
        let q2 = Point::new(54.0, 50.0); // d(near)=4 > 3, d(far)=4 <= 12
        assert_eq!(m.sensors_covering(q2), vec![far]);
    }

    #[test]
    fn fraction_and_histogram_agree() {
        let mut m = map();
        m.add_sensor(Point::new(25.0, 25.0), 20.0);
        m.add_sensor(Point::new(25.0, 25.0), 20.0);
        let hist = m.coverage_histogram(3);
        assert_eq!(hist.iter().sum::<usize>(), m.n_points());
        let at_least_2 = hist[2] + hist[3];
        assert!((m.fraction_k_covered(2) - at_least_2 as f64 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn uncovered_ids_match_count_below() {
        let mut m = map();
        m.add_sensor(Point::new(50.0, 50.0), 30.0);
        assert_eq!(m.uncovered_ids(1).len(), m.count_below(1));
        assert_eq!(m.uncovered_ids(2).len(), m.count_below(2));
        assert!(m.count_below(2) >= m.count_below(1));
    }

    #[test]
    fn full_coverage_reachable() {
        let mut m = map();
        // Blanket the field with a coarse sensor lattice.
        for i in 0..10 {
            for j in 0..10 {
                m.add_sensor(
                    Point::new(5.0 + 10.0 * i as f64, 5.0 + 10.0 * j as f64),
                    8.0,
                );
            }
        }
        assert_eq!(m.fraction_k_covered(1), 1.0);
        assert!(m.min_coverage() >= 1);
        m.verify_consistency();
    }

    #[test]
    #[should_panic(expected = "outside the field")]
    fn point_outside_field_panics() {
        let _ = CoverageMap::new(
            vec![Point::new(500.0, 0.0)],
            &field(),
            &DeploymentConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_point_set_panics() {
        let _ = CoverageMap::new(Vec::new(), &field(), &DeploymentConfig::default());
    }

    #[test]
    fn active_sensor_listing() {
        let mut m = map();
        let a = m.add_sensor(Point::new(10.0, 10.0), 4.0);
        let b = m.add_sensor(Point::new(20.0, 20.0), 4.0);
        m.deactivate_sensor(a);
        let act = m.active_sensors();
        assert_eq!(act.len(), 1);
        assert_eq!(act[0].0, b);
        assert_eq!(m.n_sensors(), 2);
        assert_eq!(m.n_active_sensors(), 1);
    }

    #[test]
    fn sensor_accessors() {
        let mut m = map();
        let s = m.add_sensor(Point::new(12.0, 34.0), 5.0);
        assert_eq!(m.sensor_pos(s), Point::new(12.0, 34.0));
        assert_eq!(m.sensor_rs(s), 5.0);
        assert!(m.sensor_active(s));
    }

    /// Regression: the query radius used to ratchet up forever. In a
    /// heterogeneous field, one huge-radius sensor dying must shrink
    /// `max_active_rs` back to the widest *surviving* radius.
    #[test]
    fn max_active_rs_shrinks_when_wide_sensor_dies() {
        let mut m = map();
        let a = m.add_sensor(Point::new(10.0, 10.0), 4.0);
        let big = m.add_sensor(Point::new(50.0, 50.0), 60.0);
        let b = m.add_sensor(Point::new(90.0, 90.0), 7.0);
        assert_eq!(m.max_active_rs(), 60.0);
        m.deactivate_sensor(big);
        assert_eq!(m.max_active_rs(), 7.0);
        m.verify_consistency();
        // Coverage queries still honor the surviving radii.
        assert!(m.covered_at_least(Point::new(90.0, 88.0), 1));
        assert!(!m.covered_at_least(Point::new(50.0, 50.0), 1));
        m.reactivate_sensor(big);
        assert_eq!(m.max_active_rs(), 60.0);
        m.deactivate_sensor(a);
        m.deactivate_sensor(big);
        m.deactivate_sensor(b);
        assert_eq!(m.max_active_rs(), 0.0);
        m.verify_consistency();
    }

    /// Duplicate radii must survive one of their sensors deactivating.
    #[test]
    fn max_active_rs_with_duplicate_radii() {
        let mut m = map();
        let a = m.add_sensor(Point::new(20.0, 20.0), 9.0);
        let _b = m.add_sensor(Point::new(80.0, 80.0), 9.0);
        m.deactivate_sensor(a);
        assert_eq!(m.max_active_rs(), 9.0);
        m.verify_consistency();
    }

    /// The tile-guided `uncovered_ids` path must agree with a naive
    /// field sweep at every `k`, below and above the target.
    #[test]
    fn uncovered_ids_matches_sweep_at_all_k() {
        let cfg = DeploymentConfig {
            k: 3,
            ..DeploymentConfig::default()
        };
        let mut m = CoverageMap::new(grid_points(20), &field(), &cfg);
        m.add_sensor(Point::new(30.0, 30.0), 25.0);
        m.add_sensor(Point::new(40.0, 35.0), 18.0);
        m.add_sensor(Point::new(70.0, 60.0), 22.0);
        m.add_sensor(Point::new(55.0, 45.0), 12.0);
        for k in 0..=5 {
            let sweep: Vec<usize> = (0..m.n_points()).filter(|&i| m.coverage(i) < k).collect();
            assert_eq!(m.uncovered_ids(k), sweep, "k={k}");
        }
    }

    /// Histogram early-out: once everything is covered at `k`, the
    /// answer is empty without touching any tile.
    #[test]
    fn uncovered_ids_early_out_when_fully_covered() {
        let cfg = DeploymentConfig {
            k: 1,
            ..DeploymentConfig::default()
        };
        let mut m = CoverageMap::new(grid_points(20), &field(), &cfg);
        m.add_sensor(Point::new(50.0, 50.0), 80.0);
        assert!(m.uncovered_ids(1).is_empty());
        assert!(m.disk_fully_covered(Point::new(50.0, 50.0), 10.0));
    }

    #[test]
    fn deficit_within_matches_naive_sum() {
        let mut m = map();
        m.add_sensor(Point::new(45.0, 45.0), 15.0);
        m.add_sensor(Point::new(60.0, 50.0), 10.0);
        for &(q, r, k) in &[
            (Point::new(50.0, 50.0), 12.0, 2u32),
            (Point::new(10.0, 10.0), 30.0, 1),
            (Point::new(50.0, 50.0), 70.0, 3),
        ] {
            let naive: u64 = (0..m.n_points())
                .filter(|&i| m.points()[i].in_disk(q, r))
                .map(|i| u64::from(k.saturating_sub(m.coverage(i))))
                .sum();
            assert_eq!(m.deficit_within(q, r, k), naive, "q={q} r={r} k={k}");
        }
    }

    /// The restoration candidate set covers every deficient point plus a
    /// margin ring, and collapses to empty on a healthy field.
    #[test]
    fn deficit_candidates_cover_deficient_points_with_margin() {
        let cfg = DeploymentConfig {
            k: 1,
            ..DeploymentConfig::default()
        };
        let mut m = CoverageMap::new(grid_points(20), &field(), &cfg);
        m.add_sensor(Point::new(50.0, 50.0), 80.0); // cover all
        assert!(m.deficit_candidates(8.0).is_empty());

        let mut m = CoverageMap::new(grid_points(20), &field(), &cfg);
        m.add_sensor(Point::new(25.0, 25.0), 30.0);
        let cands = m.deficit_candidates(8.0);
        let deficient = m.uncovered_ids(1);
        // Every deficient point is a candidate, and so is every point
        // within the margin of one (the greedy-placement superset).
        for pid in &deficient {
            assert!(cands.binary_search(pid).is_ok());
        }
        for pid in 0..m.n_points() {
            let p = m.points()[pid];
            let near_deficient = deficient.iter().any(|&d| m.points()[d].dist(p) <= 8.0);
            if near_deficient {
                assert!(cands.binary_search(&pid).is_ok(), "missing candidate {pid}");
            }
        }
        assert!(cands.windows(2).all(|w| w[0] < w[1]), "sorted unique");
    }

    /// A sensor stack reaching 255 coverers trips the saturation guard.
    #[test]
    #[should_panic(expected = "coverage saturation")]
    fn coverage_saturation_guard_trips() {
        let pts = vec![Point::new(50.0, 50.0)];
        let mut m = CoverageMap::new(pts, &field(), &DeploymentConfig::default());
        for _ in 0..256 {
            m.add_sensor(Point::new(50.0, 50.0), 5.0);
        }
    }
}
