//! Distributed shift agreement for set-k-cover rotation.
//!
//! `decor_net::SleepScheduler` answers *what* the shifts should be;
//! `decor_net::rotation::ShiftSchedule` represents the agreed answer. This
//! module supplies the missing middle: how a deployment *agrees* on that
//! answer in-network, reusing the machinery the restoration pipeline
//! already has —
//!
//! 1. a coordinator is elected by round-robin rotation over the alive
//!    nodes ([`decor_net::rotation_leader`], keyed by the agreement
//!    epoch so the role migrates across re-agreements);
//! 2. every other node reports in with one `Hello` broadcast (unreliable,
//!    charged — position reports aggregate up the BFS tree below, and
//!    this round is the price of that knowledge);
//! 3. the coordinator computes the canonical partition (the *same*
//!    deterministic greedy every node would compute from the same
//!    knowledge — see the convergence note below) and disseminates one
//!    [`decor_net::Message::ShiftAssign`] per member over the reliable
//!    transport along a BFS spanning tree rooted at the coordinator —
//!    each member learns its shift across its single tree edge, so the
//!    per-node agreement cost is O(degree), not O(network diameter), and
//!    no relay hotspot forms around the coordinator;
//! 4. a [`crate::NeighborKnowledge`] ledger tracks who provably has
//!    *not* been told their shift yet; nodes still blind when the retry
//!    budget exhausts fall back to computing the canonical partition
//!    locally (it is a pure function of the shared neighbor knowledge,
//!    so the fallback lands on the same answer — the ledger records how
//!    often the network had to lean on that crutch).
//!
//! Because step 3's partition is exactly
//! [`decor_net::SleepScheduler::shifts`], the agreed schedule is
//! bit-identical to the centralized output — the differential tests pin
//! this, across worker-thread counts and loss rates.

use decor_geom::Point;
use decor_net::election::alive_members;
use decor_net::{
    rotation_leader, Message, Network, NodeId, RotationConfig, ShiftSchedule, SleepScheduler,
    Transport,
};

use crate::config::LinkConfig;
use crate::knowledge::NeighborKnowledge;

/// How many dissemination rounds the coordinator retries before letting
/// still-blind nodes fall back to local computation. Each round already
/// rides the transport's own ack/retry machinery, so this bounds *path
/// re-tries* (e.g. after a relay died mid-round), not per-link attempts.
const MAX_ROUNDS: u32 = 4;

/// Outcome of one in-network shift agreement.
#[derive(Clone, Debug)]
pub struct ShiftAgreement {
    /// The agreed schedule — bit-identical to the centralized
    /// [`decor_net::SleepScheduler::shifts`] partition.
    pub schedule: ShiftSchedule,
    /// The elected coordinator, `None` when nobody is alive.
    pub coordinator: Option<NodeId>,
    /// Dissemination rounds actually used (0 when there was nothing to
    /// disseminate: degenerate schedule or empty network).
    pub rounds: u32,
    /// `ShiftAssign` messages handed to the reliable transport, across
    /// all hops and rounds.
    pub assignments_sent: u64,
    /// Members the coordinator could not reach within the retry budget;
    /// they fell back to computing the canonical partition locally.
    pub gave_up: usize,
}

/// Runs one shift-agreement epoch on `net`, charging all agreement
/// traffic to the network's energy accounting.
///
/// The returned schedule's period comes from `rot.period`; its membership
/// is the canonical set-k-cover partition of the currently-alive nodes
/// over `points`. When no feasible partition exists (some point's alive
/// coverers fall below `rot.target_coverage`) the schedule is empty —
/// always-on — and nothing is disseminated.
pub fn agree_shifts(
    net: &mut Network,
    points: &[Point],
    rot: &RotationConfig,
    link: &LinkConfig,
    epoch: u64,
) -> ShiftAgreement {
    rot.validate();
    let all: Vec<NodeId> = (0..net.len()).collect();
    let alive = alive_members(&all, net);
    let coordinator = rotation_leader(&alive, epoch);

    let shifts = SleepScheduler::new(rot.target_coverage).shifts(net, points);
    let schedule = ShiftSchedule::new(shifts, rot.period, net.len());

    let mut agreement = ShiftAgreement {
        schedule,
        coordinator,
        rounds: 0,
        assignments_sent: 0,
        gave_up: 0,
    };
    let Some(coord) = coordinator else {
        return agreement;
    };
    if agreement.schedule.n_shifts() <= 1 {
        // Nothing to agree on: everyone stays awake either way.
        return agreement;
    }

    // Gather: one hello broadcast per member (position reports aggregate
    // up the tree; the partition is computed from the network's ground
    // truth, this round charges the traffic that makes the coordinator's
    // knowledge plausible).
    for &id in &alive {
        if id != coord {
            let pos = net.node(id).pos;
            let _ = net.broadcast(id, Message::Hello { pos });
        }
    }

    // BFS spanning tree rooted at the coordinator: each member's single
    // tree edge is the reliable-transport hop its assignment rides.
    let mut parent: Vec<Option<NodeId>> = vec![None; net.len()];
    let mut seen = vec![false; net.len()];
    seen[coord] = true;
    let mut order = vec![coord];
    let mut qi = 0;
    while qi < order.len() {
        let u = order[qi];
        qi += 1;
        for v in net.neighbors_of(u) {
            if !seen[v] {
                seen[v] = true;
                parent[v] = Some(u);
                order.push(v);
            }
        }
    }

    // Dissemination: the ledger starts with every non-coordinator member
    // blind and clears as the transport's acks confirm delivery over the
    // member's tree edge. Unreachable members (no tree edge) stay blind
    // and fall back to local computation.
    let mut ledger = NeighborKnowledge::new();
    let epoch_key = epoch as usize;
    for shift in agreement.schedule.shifts() {
        for &id in shift {
            if id != coord && net.is_alive(id) {
                ledger.hide(id, epoch_key);
            }
        }
    }

    let mut transport = Transport::new(link.transport());
    while !ledger.is_empty() && agreement.rounds < MAX_ROUNDS {
        agreement.rounds += 1;
        let blind: Vec<NodeId> = (0..net.len())
            .filter(|&id| !ledger.knows(id, epoch_key))
            .collect();
        let mut in_flight: Vec<(NodeId, decor_net::MsgId)> = Vec::new();
        for id in blind {
            let Some(si) = agreement.schedule.shift_of(id) else {
                ledger.reveal(id, epoch_key);
                continue;
            };
            if !net.is_alive(id) {
                // A member that died between partition and dissemination
                // has no radio to tell; it stops being our problem.
                ledger.reveal(id, epoch_key);
                continue;
            }
            let Some(from) = parent[id] else {
                continue; // outside the tree: unreachable, stays blind
            };
            let msg = Message::ShiftAssign {
                node: id,
                shift: si as u32,
            };
            in_flight.push((id, transport.send(from, id, msg)));
            agreement.assignments_sent += 1;
        }
        let outcomes = transport.flush(net);
        for (id, mid) in in_flight {
            let delivered = outcomes
                .iter()
                .find(|(m, _)| *m == mid)
                .is_some_and(|(_, o)| o.is_delivered());
            if delivered {
                ledger.reveal(id, epoch_key);
            }
        }
        let _ = transport.take_inbox();
    }
    agreement.gave_up = ledger.blind_spots();
    agreement
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::Aabb;

    /// A 4x4 lattice where every lattice point is covered by several
    /// sensors: rs 6 on spacing 4 gives deep overlap, rc 8 keeps the
    /// comm graph connected.
    fn lattice_net() -> (Network, Vec<Point>) {
        let mut net = Network::new(Aabb::square(20.0));
        let mut points = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                let p = Point::new(4.0 + 4.0 * i as f64, 4.0 + 4.0 * j as f64);
                net.add_node(p, 6.0, 8.0);
                points.push(p);
            }
        }
        (net, points)
    }

    fn rot() -> RotationConfig {
        RotationConfig::default()
    }

    #[test]
    fn agreed_schedule_matches_centralized_partition() {
        let (mut net, points) = lattice_net();
        let expected = SleepScheduler::new(1).shifts(&net, &points);
        let agreement = agree_shifts(&mut net, &points, &rot(), &LinkConfig::default(), 0);
        assert_eq!(agreement.schedule.shifts(), &expected[..]);
        assert!(agreement.schedule.n_shifts() > 1, "lattice must split");
    }

    #[test]
    fn lossless_agreement_reaches_everyone_in_one_round() {
        let (mut net, points) = lattice_net();
        let agreement = agree_shifts(&mut net, &points, &rot(), &LinkConfig::default(), 0);
        assert_eq!(agreement.rounds, 1);
        assert_eq!(agreement.gave_up, 0);
        assert!(agreement.assignments_sent >= 15, "one per member at least");
    }

    #[test]
    fn agreement_charges_the_network() {
        let (mut net, points) = lattice_net();
        let agreement = agree_shifts(&mut net, &points, &rot(), &LinkConfig::default(), 0);
        assert!(agreement.schedule.n_shifts() > 1);
        assert!(net.stats.total_sent > 0, "agreement traffic must be paid");
        assert!(net.stats.protocol_sent > 0, "ShiftAssign is protocol plane");
    }

    #[test]
    fn coordinator_rotates_with_the_epoch() {
        let (mut net, points) = lattice_net();
        let a = agree_shifts(&mut net, &points, &rot(), &LinkConfig::default(), 0);
        let b = agree_shifts(&mut net, &points, &rot(), &LinkConfig::default(), 1);
        assert_ne!(a.coordinator, b.coordinator, "the role must migrate");
    }

    #[test]
    fn lossy_agreement_still_lands_on_the_canonical_schedule() {
        let (mut net, points) = lattice_net();
        let expected = SleepScheduler::new(1).shifts(&net, &points);
        let link = LinkConfig::lossy(0.2, 42);
        link.apply(&mut net);
        let agreement = agree_shifts(&mut net, &points, &rot(), &link, 0);
        assert_eq!(
            agreement.schedule.shifts(),
            &expected[..],
            "loss may cost retries, never a different schedule"
        );
    }

    #[test]
    fn infeasible_target_yields_always_on_without_traffic() {
        let mut net = Network::new(Aabb::square(20.0));
        net.add_node(Point::new(10.0, 10.0), 6.0, 8.0);
        let points = vec![Point::new(10.0, 10.0)];
        let hungry = RotationConfig {
            target_coverage: 5,
            ..rot()
        };
        let agreement = agree_shifts(&mut net, &points, &hungry, &LinkConfig::default(), 0);
        assert_eq!(agreement.schedule.n_shifts(), 0, "always-on fallback");
        assert_eq!(agreement.rounds, 0);
        assert_eq!(net.stats.total_sent, 0, "nothing to say, nothing sent");
    }

    #[test]
    fn empty_network_agrees_on_nothing() {
        let mut net = Network::new(Aabb::square(20.0));
        let agreement = agree_shifts(&mut net, &[], &rot(), &LinkConfig::default(), 0);
        assert_eq!(agreement.coordinator, None);
        assert_eq!(agreement.schedule.n_shifts(), 0);
    }

    #[test]
    fn dead_members_are_not_chased() {
        let (mut net, points) = lattice_net();
        // Partition computed over alive nodes only; kill one first.
        net.fail_node(5);
        let agreement = agree_shifts(&mut net, &points, &rot(), &LinkConfig::default(), 0);
        assert_eq!(agreement.gave_up, 0);
        assert_eq!(agreement.schedule.shift_of(5), None, "corpses unscheduled");
    }
}
