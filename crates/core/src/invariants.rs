//! Run-time invariant checking for chaos runs.
//!
//! A chaos test is only as strong as the properties it asserts, so the
//! checker makes the protocol's safety conditions explicit and machine-
//! checked on every run:
//!
//! 1. **Dead silence** — a crashed node never places a sensor and never
//!    wins an election after its crash.
//! 2. **Pessimistic estimates** — an agent's locally-measured coverage of
//!    a point never exceeds the ground-truth coverage (local knowledge may
//!    only *hide* sensors, never invent them).
//! 3. **Ledger consistency** — the [`crate::NeighborKnowledge`] ledger
//!    agrees with the transport's terminal `DeliveryOutcome`s: a delivered
//!    notice reveals the sensor, an exhausted retry budget hides it.
//! 4. **Eventual restoration** — once every scripted fault has fired and
//!    no resource cap intervened, the placer reaches full `k`-coverage.
//!
//! The checker rides [`crate::DeploymentConfig`] exactly like the trace
//! handle: the default is *disabled* and every hook reduces to a branch on
//! a niche-optimized `Option` — zero cost for runs that never enable it.
//! It is fed two ways: [`InvariantChecker::observe`] consumes the
//! `decor-trace` event stream (chaos crashes, election outcomes), and the
//! placers call the direct `check_*` hooks for conditions the generic
//! stream cannot express (the grid's `SensorPlaced.agent` is a cell
//! index, not a node id, so liveness of the placing *node* needs its own
//! hook).
//!
//! Violations are collected, not panicked on, so a fuzz harness can shrink
//! the offending fault plan before reporting; [`InvariantChecker::
//! assert_green`] panics with the full list for direct use in tests.

use decor_trace::TraceEvent;
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

#[derive(Default)]
struct CheckerState {
    /// Nodes crashed by the fault plan, in the run's accounting-network
    /// id space. Deliberately *not* fed by `NodeFailed` events: restoration
    /// scenarios emit those from mirror networks with their own id spaces.
    dead: BTreeSet<u64>,
    violations: Vec<String>,
}

/// A cloneable invariant checker; see the module docs for the catalog.
///
/// Clones share one state, so the placer, the network, and the test
/// harness all append to a single violation list. Like
/// [`decor_trace::TraceHandle`], attachment never affects configuration
/// equality: `PartialEq` always returns `true`.
#[derive(Clone, Default)]
pub struct InvariantChecker {
    inner: Option<Arc<Mutex<CheckerState>>>,
}

impl InvariantChecker {
    /// The disabled checker (same as `Default`): every hook is a no-op.
    pub fn disabled() -> Self {
        InvariantChecker { inner: None }
    }

    /// An enabled checker with an empty violation list.
    pub fn enabled() -> Self {
        InvariantChecker {
            inner: Some(Arc::new(Mutex::new(CheckerState::default()))),
        }
    }

    /// True when violations are being collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with<R>(&self, f: impl FnOnce(&mut CheckerState) -> R) -> Option<R> {
        self.inner.as_ref().map(|inner| {
            let mut state = inner.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut state)
        })
    }

    /// Records a chaos crash: `node` (accounting-network id) is dead from
    /// now on. Idempotent.
    pub fn note_crash(&self, node: u64) {
        self.with(|s| {
            s.dead.insert(node);
        });
    }

    /// Feeds one trace event through the checker. Understands the chaos
    /// ground-truth stream (`ChaosCrash` grows the dead set) and election
    /// outcomes (`ElectionWon` by a dead node is a violation); every other
    /// event is ignored.
    pub fn observe(&self, event: &TraceEvent) {
        match event {
            TraceEvent::ChaosCrash { node } => self.note_crash(*node),
            TraceEvent::ElectionWon {
                cell,
                round,
                leader,
            } => {
                self.with(|s| {
                    if s.dead.contains(leader) {
                        s.violations.push(format!(
                            "dead node {leader} won the election of cell {cell} round {round}"
                        ));
                    }
                });
            }
            _ => {}
        }
    }

    /// Invariant 1, election form: the winner of an election must be
    /// alive on the accounting network (`alive` is the network's verdict
    /// at election time).
    pub fn check_election(&self, cell: u64, round: u64, leader: u64, alive: bool) {
        self.with(|s| {
            if !alive || s.dead.contains(&leader) {
                s.violations.push(format!(
                    "dead node {leader} won the election of cell {cell} round {round}"
                ));
            }
        });
    }

    /// Invariant 1, placement form: the node applying a placement decision
    /// must be alive when the placement lands. `agent` is its accounting-
    /// network id; `what` names the scheme for the report.
    pub fn check_placer_alive(&self, what: &str, agent: u64, alive: bool) {
        self.with(|s| {
            if !alive || s.dead.contains(&agent) {
                s.violations
                    .push(format!("{what}: dead node {agent} placed a sensor"));
            }
        });
    }

    /// Invariant 2: an agent's measured coverage of approximation point
    /// `pid` must never exceed the ground truth.
    pub fn check_estimate(&self, pid: usize, measured: u32, truth: u32) {
        self.with(|s| {
            if measured > truth {
                s.violations.push(format!(
                    "point {pid}: measured coverage {measured} exceeds ground truth {truth}"
                ));
            }
        });
    }

    /// Invariant 3: after settling a placement notice, the knowledge
    /// ledger must agree with the terminal outcome — `arrived` notices
    /// reveal `sensor` to `viewer`, exhausted ones hide it. `knows` is the
    /// ledger's answer after settlement.
    pub fn check_ledger(&self, viewer: u64, sensor: u64, arrived: bool, knows: bool) {
        self.with(|s| {
            if arrived && !knows {
                s.violations.push(format!(
                    "ledger hides sensor {sensor} from viewer {viewer} despite delivery"
                ));
            }
            if !arrived && knows {
                s.violations.push(format!(
                    "ledger reveals sensor {sensor} to viewer {viewer} despite give-up"
                ));
            }
        });
    }

    /// Invariant 4, checked at run end: once every fault has fired
    /// (`faults_pending == false`) and no cap cut the run short
    /// (`hit_cap == false`), the placer must have restored full coverage.
    pub fn check_converged(&self, fully_covered: bool, faults_pending: bool, hit_cap: bool) {
        self.with(|s| {
            if !fully_covered && !faults_pending && !hit_cap {
                s.violations.push(
                    "restoration did not reach full k-coverage after faults ceased".to_string(),
                );
            }
        });
    }

    /// Nodes recorded dead so far (accounting-network ids).
    pub fn dead(&self) -> Vec<u64> {
        self.with(|s| s.dead.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The collected violations (empty when disabled or green).
    pub fn violations(&self) -> Vec<String> {
        self.with(|s| s.violations.clone()).unwrap_or_default()
    }

    /// True when no invariant has been violated (vacuously when disabled).
    pub fn is_green(&self) -> bool {
        self.with(|s| s.violations.is_empty()).unwrap_or(true)
    }

    /// Panics with the full violation list unless the run is green.
    pub fn assert_green(&self) {
        let v = self.violations();
        assert!(v.is_empty(), "invariant violations:\n  {}", v.join("\n  "));
    }
}

impl std::fmt::Debug for InvariantChecker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.with(|s| (s.dead.len(), s.violations.len())) {
            None => write!(f, "InvariantChecker(disabled)"),
            Some((dead, violations)) => write!(
                f,
                "InvariantChecker(enabled, {dead} dead, {violations} violations)"
            ),
        }
    }
}

/// Checker attachment never affects configuration identity — all checkers
/// compare equal, mirroring [`decor_trace::TraceHandle`].
impl PartialEq for InvariantChecker {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl serde::Serialize for InvariantChecker {}
impl<'de> serde::Deserialize<'de> for InvariantChecker {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_checker_is_inert_and_green() {
        let c = InvariantChecker::disabled();
        assert!(!c.is_enabled());
        c.note_crash(3);
        c.check_election(0, 0, 3, false);
        c.check_estimate(5, 9, 1);
        c.check_ledger(1, 2, true, false);
        c.check_converged(false, false, false);
        assert!(c.is_green());
        assert!(c.violations().is_empty());
        assert!(c.dead().is_empty());
        c.assert_green();
    }

    #[test]
    fn dead_nodes_must_not_win_elections() {
        let c = InvariantChecker::enabled();
        c.observe(&TraceEvent::ChaosCrash { node: 7 });
        assert_eq!(c.dead(), vec![7]);
        c.observe(&TraceEvent::ElectionWon {
            cell: 2,
            round: 4,
            leader: 7,
        });
        assert!(!c.is_green());
        assert!(c.violations()[0].contains("dead node 7"));
        // A live winner is fine.
        let c2 = InvariantChecker::enabled();
        c2.observe(&TraceEvent::ChaosCrash { node: 7 });
        c2.observe(&TraceEvent::ElectionWon {
            cell: 2,
            round: 4,
            leader: 8,
        });
        assert!(c2.is_green());
    }

    #[test]
    fn election_hook_cross_checks_the_network_verdict() {
        let c = InvariantChecker::enabled();
        c.check_election(1, 0, 5, true);
        assert!(c.is_green());
        c.check_election(1, 1, 5, false);
        assert!(!c.is_green());
    }

    #[test]
    fn dead_placers_are_violations() {
        let c = InvariantChecker::enabled();
        c.check_placer_alive("grid", 4, true);
        assert!(c.is_green());
        c.note_crash(4);
        c.check_placer_alive("grid", 4, true);
        assert_eq!(c.violations().len(), 1, "dead set overrides the flag");
    }

    #[test]
    fn estimates_must_stay_pessimistic() {
        let c = InvariantChecker::enabled();
        c.check_estimate(0, 2, 3);
        c.check_estimate(1, 3, 3);
        assert!(c.is_green());
        c.check_estimate(2, 4, 3);
        assert!(c.violations()[0].contains("point 2"));
    }

    #[test]
    fn ledger_must_match_outcomes() {
        let c = InvariantChecker::enabled();
        c.check_ledger(1, 9, true, true);
        c.check_ledger(1, 9, false, false);
        assert!(c.is_green());
        c.check_ledger(2, 9, true, false);
        c.check_ledger(3, 9, false, true);
        assert_eq!(c.violations().len(), 2);
    }

    #[test]
    fn convergence_is_required_only_after_faults_cease() {
        let c = InvariantChecker::enabled();
        c.check_converged(false, true, false); // faults still pending: fine
        c.check_converged(false, false, true); // cap hit: fine
        c.check_converged(true, false, false); // converged: fine
        assert!(c.is_green());
        c.check_converged(false, false, false);
        assert!(!c.is_green());
    }

    #[test]
    fn clones_share_one_violation_list() {
        let c = InvariantChecker::enabled();
        let c2 = c.clone();
        c.check_estimate(0, 5, 1);
        assert_eq!(c2.violations().len(), 1);
    }

    #[test]
    #[should_panic(expected = "invariant violations")]
    fn assert_green_panics_on_violation() {
        let c = InvariantChecker::enabled();
        c.check_converged(false, false, false);
        c.assert_green();
    }

    #[test]
    fn checkers_always_compare_equal_and_debug_shows_state() {
        assert_eq!(InvariantChecker::disabled(), InvariantChecker::enabled());
        assert_eq!(
            format!("{:?}", InvariantChecker::disabled()),
            "InvariantChecker(disabled)"
        );
        let c = InvariantChecker::enabled();
        c.note_crash(1);
        assert_eq!(
            format!("{c:?}"),
            "InvariantChecker(enabled, 1 dead, 0 violations)"
        );
    }
}
