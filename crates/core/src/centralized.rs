//! Baseline 1: the centralized greedy algorithm.
//!
//! Same heuristic as DECOR (maximum-benefit placement at an approximation
//! point) but with a *global* view of the field: one sequential loop over
//! all candidates, always placing at the globally best point. The paper
//! uses it as the quality reference ("expected to result in a more
//! efficient placement than DECOR"); it exchanges no messages because a
//! central authority sees everything.

use crate::benefit::BenefitTable;
use crate::config::DeploymentConfig;
use crate::coverage::CoverageMap;
use crate::metrics::{PlacementOutcome, TracePoint};
use crate::scratch::SimScratch;
use crate::Placer;

/// The centralized greedy baseline.
///
/// `trace_every` controls how often the coverage trace is sampled
/// (1 = after every placement, the default).
#[derive(Clone, Copy, Debug)]
pub struct CentralizedGreedy;

impl CentralizedGreedy {
    /// The pre-engine implementation: a [`BenefitTable`] whose `best()` is
    /// a linear scan over all candidates and whose updates recompute every
    /// affected benefit. Kept as the reference path for the differential
    /// tests and the PR-1 benchmark; placement sequences are bit-identical
    /// to [`Placer::place`].
    pub fn place_with_benefit_table(
        &self,
        map: &mut CoverageMap,
        cfg: &DeploymentConfig,
    ) -> PlacementOutcome {
        cfg.validate();
        let initial = map.n_active_sensors();
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let mut table = BenefitTable::new(map, cands, cfg.rs, cfg.k);
        let mut out = PlacementOutcome {
            initial_sensors: initial,
            ..PlacementOutcome::default()
        };
        out.trace.push(TracePoint {
            total_sensors: initial,
            fraction_k_covered: map.fraction_k_covered(cfg.k),
        });
        while out.placed.len() < cfg.max_new_nodes {
            let Some((_, _, pos, _)) = table.best() else {
                break; // zero benefit everywhere => fully k-covered
            };
            map.add_sensor(pos, cfg.rs);
            table.on_sensor_added(map, pos, cfg.rs);
            out.placed.push(pos);
            out.trace.push(TracePoint {
                total_sensors: initial + out.placed.len(),
                fraction_k_covered: map.fraction_k_covered(cfg.k),
            });
        }
        out.fully_covered = map.count_below(cfg.k) == 0;
        out
    }
}

impl Placer for CentralizedGreedy {
    fn name(&self) -> String {
        "Centralized".to_owned()
    }

    fn place(&self, map: &mut CoverageMap, cfg: &DeploymentConfig) -> PlacementOutcome {
        self.place_in(map, cfg, &mut SimScratch::new())
    }

    fn place_in(
        &self,
        map: &mut CoverageMap,
        cfg: &DeploymentConfig,
        scratch: &mut SimScratch,
    ) -> PlacementOutcome {
        cfg.validate();
        let initial = map.n_active_sensors();
        // Output-sensitive candidate set: any positive-benefit candidate
        // has a deficient point within `rs`, so it lives in a deficient
        // tile or its one-ring — and coverage only grows during greedy
        // placement, so the initial set stays a superset throughout. The
        // tile summaries track deficiency at `k_target`; a stricter
        // requirement would see deficits the tiles don't, so fall back to
        // the full sweep there.
        let cands = &mut scratch.cands;
        if cfg.k <= map.k_target() {
            map.deficit_candidates_into(cfg.rs, &mut scratch.tile_flags, cands);
        } else {
            cands.clear();
            cands.extend(0..map.n_points());
        }
        let engine = &mut scratch.engine;
        engine.reset_global(map, cands, cfg.rs, cfg.k);
        let mut out = PlacementOutcome {
            initial_sensors: initial,
            ..PlacementOutcome::default()
        };
        out.trace.push(TracePoint {
            total_sensors: initial,
            fraction_k_covered: map.fraction_k_covered(cfg.k),
        });
        while out.placed.len() < cfg.max_new_nodes {
            let Some((_, _, pos, _)) = engine.best(map) else {
                break; // zero benefit everywhere => fully k-covered
            };
            map.add_sensor(pos, cfg.rs);
            engine.on_sensor_added(map, pos, cfg.rs);
            out.placed.push(pos);
            out.trace.push(TracePoint {
                total_sensors: initial + out.placed.len(),
                fraction_k_covered: map.fraction_k_covered(cfg.k),
            });
        }
        out.fully_covered = map.count_below(cfg.k) == 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::Aabb;
    use decor_lds::halton_points;

    fn fresh_map(n_pts: usize, cfg: &DeploymentConfig) -> CoverageMap {
        let field = Aabb::square(100.0);
        CoverageMap::new(halton_points(n_pts, &field), &field, cfg)
    }

    #[test]
    fn achieves_full_coverage_for_k1() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(500, &cfg);
        let out = CentralizedGreedy.place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert_eq!(map.count_below(1), 0);
        assert!(!out.placed.is_empty());
    }

    #[test]
    fn achieves_full_coverage_for_k3() {
        let cfg = DeploymentConfig::with_k(3);
        let mut map = fresh_map(500, &cfg);
        let out = CentralizedGreedy.place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert!(map.min_coverage() >= 3);
    }

    #[test]
    fn node_count_scales_roughly_linearly_with_k() {
        let field_pts = 800;
        let count_for = |k: u32| {
            let cfg = DeploymentConfig::with_k(k);
            let mut map = fresh_map(field_pts, &cfg);
            CentralizedGreedy.place(&mut map, &cfg).placed.len()
        };
        let n1 = count_for(1);
        let n3 = count_for(3);
        assert!(n3 > 2 * n1, "k=3 needs well over 2x the k=1 nodes");
        assert!(n3 < 5 * n1, "k=3 should stay below 5x the k=1 nodes");
    }

    #[test]
    fn node_count_is_near_paper_scale() {
        // Paper: 788 nodes for k=4 on 2000 points / 100x100 / rs=4.
        // The exact number depends on the point realization; we accept a
        // generous band around the disc-packing lower bound (~640).
        let cfg = DeploymentConfig::with_k(4);
        let mut map = fresh_map(2000, &cfg);
        let out = CentralizedGreedy.place(&mut map, &cfg);
        assert!(out.fully_covered);
        let n = out.placed.len();
        assert!((650..=1000).contains(&n), "k=4 centralized used {n} nodes");
    }

    #[test]
    fn respects_existing_sensors() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(500, &cfg);
        // Pre-cover the whole field.
        for i in 0..13 {
            for j in 0..13 {
                map.add_sensor(
                    decor_geom::Point::new(4.0 + 7.7 * i as f64, 4.0 + 7.7 * j as f64),
                    6.0,
                );
            }
        }
        assert_eq!(map.count_below(1), 0);
        let out = CentralizedGreedy.place(&mut map, &cfg);
        assert!(out.placed.is_empty(), "nothing to restore");
        assert!(out.fully_covered);
        assert_eq!(out.initial_sensors, 169);
    }

    #[test]
    fn trace_is_monotone_and_ends_at_one() {
        let cfg = DeploymentConfig::with_k(2);
        let mut map = fresh_map(400, &cfg);
        let out = CentralizedGreedy.place(&mut map, &cfg);
        for w in out.trace.windows(2) {
            assert!(w[1].fraction_k_covered >= w[0].fraction_k_covered - 1e-12);
            assert_eq!(w[1].total_sensors, w[0].total_sensors + 1);
        }
        assert_eq!(out.trace.last().unwrap().fraction_k_covered, 1.0);
    }

    #[test]
    fn max_new_nodes_caps_the_run() {
        let cfg = DeploymentConfig {
            max_new_nodes: 5,
            ..DeploymentConfig::with_k(3)
        };
        let mut map = fresh_map(500, &cfg);
        let out = CentralizedGreedy.place(&mut map, &cfg);
        assert_eq!(out.placed.len(), 5);
        assert!(!out.fully_covered);
    }

    #[test]
    fn exchanges_no_messages() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(300, &cfg);
        let out = CentralizedGreedy.place(&mut map, &cfg);
        assert_eq!(out.messages.protocol_total, 0);
    }

    #[test]
    fn engine_path_matches_benefit_table_path() {
        // The sharded engine must reproduce the seed BenefitTable path
        // bit-for-bit: same placements in the same order, same trace.
        for (k, initial) in [(1u32, 0usize), (2, 25), (3, 60)] {
            let cfg = DeploymentConfig::with_k(k);
            let mut m_engine = fresh_map(700, &cfg);
            for i in 0..initial {
                m_engine.add_sensor(
                    decor_geom::Point::new(
                        3.0 + 13.0 * (i % 8) as f64,
                        3.0 + 17.0 * (i / 8) as f64,
                    ),
                    cfg.rs,
                );
            }
            let mut m_table = m_engine.clone();
            let a = CentralizedGreedy.place(&mut m_engine, &cfg);
            let b = CentralizedGreedy.place_with_benefit_table(&mut m_table, &cfg);
            assert_eq!(a.placed, b.placed, "k={k} initial={initial}");
            assert_eq!(a.fully_covered, b.fully_covered);
            assert_eq!(a.trace.len(), b.trace.len());
            for (ta, tb) in a.trace.iter().zip(&b.trace) {
                assert_eq!(ta.total_sensors, tb.total_sensors);
                assert_eq!(ta.fraction_k_covered, tb.fraction_k_covered);
            }
        }
    }

    #[test]
    fn restoration_from_damage_hole_matches_reference_path() {
        // The engine path restricts candidates to deficient tiles plus an
        // rs-ring; the reference path sweeps every point. After an area
        // failure both must restore with bit-identical placements.
        let cfg = DeploymentConfig::with_k(2);
        let mut map = fresh_map(900, &cfg);
        let mut ids = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                ids.push(map.add_sensor(
                    decor_geom::Point::new(2.5 + 5.0 * i as f64, 2.5 + 5.0 * j as f64),
                    cfg.rs,
                ));
            }
        }
        // Kill everything within 18 units of the field center.
        let hole = decor_geom::Point::new(50.0, 50.0);
        for &id in &ids {
            if map.sensor_pos(id).dist(hole) <= 18.0 {
                map.deactivate_sensor(id);
            }
        }
        assert!(map.count_below(cfg.k) > 0, "the hole must create deficit");
        let mut m_table = map.clone();
        let a = CentralizedGreedy.place(&mut map, &cfg);
        let b = CentralizedGreedy.place_with_benefit_table(&mut m_table, &cfg);
        assert_eq!(a.placed, b.placed, "restoration placements must match");
        assert!(a.fully_covered);
        map.verify_consistency();
    }

    #[test]
    fn greedy_never_places_zero_benefit_nodes() {
        // Every placement must reduce the global deficit: total placed
        // equals the number of strict deficit decreases.
        let cfg = DeploymentConfig::with_k(2);
        let mut map = fresh_map(300, &cfg);
        let deficit_before: u64 = (0..map.n_points())
            .map(|i| (cfg.k - map.coverage(i).min(cfg.k)) as u64)
            .sum();
        let out = CentralizedGreedy.place(&mut map, &cfg);
        assert!(deficit_before > 0);
        assert!(out.placed.len() as u64 <= deficit_before);
    }
}
