//! Deployment diagnostics: the quality metrics a downstream user wants
//! after running any placer — how efficient, how redundant, how even.

use crate::bounds::coverage_lower_bound;
use crate::coverage::CoverageMap;
use crate::redundancy::redundancy_stats;
use serde::{Deserialize, Serialize};

/// Summary statistics of a deployment on a coverage map.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeploymentDiagnostics {
    /// Active sensors in the deployment.
    pub sensors: usize,
    /// The coverage requirement analyzed against.
    pub k: u32,
    /// Fraction of points covered at least `k` times.
    pub fraction_k_covered: f64,
    /// Minimum per-point coverage.
    pub min_coverage: u32,
    /// Mean per-point coverage.
    pub mean_coverage: f64,
    /// Maximum per-point coverage.
    pub max_coverage: u32,
    /// Redundant sensors (removable without losing k-coverage).
    pub redundant: usize,
    /// `sensors / lower_bound` — 1.0 is information-theoretically optimal.
    pub efficiency_ratio: f64,
    /// Mean distance from each sensor to its nearest other sensor
    /// (clustering indicator; 0 when fewer than two sensors).
    pub mean_nearest_sensor_dist: f64,
    /// Coefficient of variation of the sensors' Voronoi cell areas —
    /// a load-balance measure (0 = perfectly even responsibility
    /// regions; exact global Voronoi via Delaunay duality).
    pub cell_area_cv: f64,
}

impl DeploymentDiagnostics {
    /// Analyzes the current state of `map` against requirement `k`.
    ///
    /// `rs_hint` is the sensing radius used for the lower bound (pass the
    /// deployment's configured `rs`; individual sensors may differ).
    pub fn analyze(map: &mut CoverageMap, k: u32, rs_hint: f64) -> Self {
        let n = map.n_points() as f64;
        let mut min_c = u32::MAX;
        let mut max_c = 0u32;
        let mut sum_c = 0u64;
        for pid in 0..map.n_points() {
            let c = map.coverage(pid);
            min_c = min_c.min(c);
            max_c = max_c.max(c);
            sum_c += c as u64;
        }
        let (redundant, _) = redundancy_stats(map, k);
        let sensors = map.n_active_sensors();
        let lb = coverage_lower_bound(map.field(), rs_hint, k).max(1);
        let positions: Vec<_> = map.active_sensors();
        let mut nn_sum = 0.0;
        let mut nn_count = 0usize;
        for &(sid, pos) in &positions {
            let mut best = f64::INFINITY;
            // Expanding search via the map's sensor index.
            for r in [rs_hint * 2.0, rs_hint * 8.0, f64::MAX] {
                let candidates = if r.is_finite() {
                    map.sensors_within(pos, r)
                } else {
                    positions.iter().map(|&(s, _)| s).collect()
                };
                for other in candidates {
                    if other != sid {
                        best = best.min(pos.dist(map.sensor_pos(other)));
                    }
                }
                if best.is_finite() {
                    break;
                }
            }
            if best.is_finite() {
                nn_sum += best;
                nn_count += 1;
            }
        }
        let sensor_points: Vec<decor_geom::Point> = positions.iter().map(|&(_, p)| p).collect();
        DeploymentDiagnostics {
            sensors,
            k,
            fraction_k_covered: map.fraction_k_covered(k),
            min_coverage: if map.n_points() == 0 { 0 } else { min_c },
            mean_coverage: sum_c as f64 / n,
            max_coverage: max_c,
            redundant,
            efficiency_ratio: sensors as f64 / lb as f64,
            mean_nearest_sensor_dist: if nn_count == 0 {
                0.0
            } else {
                nn_sum / nn_count as f64
            },
            cell_area_cv: decor_geom::cell_area_cv(&sensor_points, map.field()),
        }
    }

    /// A one-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} sensors, {:.1}% {}-covered (min {}, mean {:.2}, max {}), \
             {} redundant, {:.2}x lower bound, nn-dist {:.2}, cell-cv {:.2}",
            self.sensors,
            self.fraction_k_covered * 100.0,
            self.k,
            self.min_coverage,
            self.mean_coverage,
            self.max_coverage,
            self.redundant,
            self.efficiency_ratio,
            self.mean_nearest_sensor_dist,
            self.cell_area_cv
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedGreedy;
    use crate::config::DeploymentConfig;
    use crate::random_place::RandomPlacement;
    use crate::Placer;
    use decor_geom::{Aabb, Point};
    use decor_lds::halton_points;

    fn covered(k: u32, placer: &dyn Placer, seed: u64) -> (CoverageMap, DeploymentConfig) {
        let _ = seed;
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::with_k(k);
        let mut map = CoverageMap::new(halton_points(600, &field), &field, &cfg);
        placer.place(&mut map, &cfg);
        (map, cfg)
    }

    #[test]
    fn analyzes_a_covered_deployment() {
        let (mut map, cfg) = covered(2, &CentralizedGreedy, 0);
        let d = DeploymentDiagnostics::analyze(&mut map, cfg.k, cfg.rs);
        assert_eq!(d.fraction_k_covered, 1.0);
        assert!(d.min_coverage >= 2);
        assert!(d.mean_coverage >= d.min_coverage as f64);
        assert!(d.max_coverage >= d.mean_coverage as u32);
        assert!(d.efficiency_ratio >= 1.0, "cannot beat the lower bound");
        assert!(d.efficiency_ratio < 3.0, "greedy is not that bad");
        assert!(d.mean_nearest_sensor_dist > 0.0);
        assert!(!d.summary().is_empty());
    }

    #[test]
    fn random_shows_worse_diagnostics_than_greedy() {
        let (mut m1, cfg) = covered(1, &CentralizedGreedy, 1);
        let g = DeploymentDiagnostics::analyze(&mut m1, cfg.k, cfg.rs);
        let (mut m2, _) = covered(1, &RandomPlacement { seed: 7 }, 2);
        let r = DeploymentDiagnostics::analyze(&mut m2, cfg.k, cfg.rs);
        assert!(r.sensors > g.sensors);
        assert!(r.redundant > g.redundant);
        assert!(r.efficiency_ratio > g.efficiency_ratio);
        assert!(
            r.mean_nearest_sensor_dist < g.mean_nearest_sensor_dist,
            "random clusters sensors: {} vs {}",
            r.mean_nearest_sensor_dist,
            g.mean_nearest_sensor_dist
        );
        assert!(
            r.cell_area_cv > g.cell_area_cv,
            "random responsibility regions are less even: {} vs {}",
            r.cell_area_cv,
            g.cell_area_cv
        );
    }

    #[test]
    fn empty_deployment_diagnostics() {
        let field = Aabb::square(50.0);
        let cfg = DeploymentConfig::with_k(1);
        let mut map = CoverageMap::new(halton_points(100, &field), &field, &cfg);
        let d = DeploymentDiagnostics::analyze(&mut map, 1, cfg.rs);
        assert_eq!(d.sensors, 0);
        assert_eq!(d.fraction_k_covered, 0.0);
        assert_eq!(d.mean_nearest_sensor_dist, 0.0);
        assert_eq!(d.redundant, 0);
    }

    #[test]
    fn single_sensor_has_no_neighbor_distance() {
        let field = Aabb::square(50.0);
        let cfg = DeploymentConfig::with_k(1);
        let mut map = CoverageMap::new(halton_points(100, &field), &field, &cfg);
        map.add_sensor(Point::new(25.0, 25.0), 4.0);
        let d = DeploymentDiagnostics::analyze(&mut map, 1, cfg.rs);
        assert_eq!(d.sensors, 1);
        assert_eq!(d.mean_nearest_sensor_dist, 0.0);
    }
}
