//! The benefit function (Equation 1) and its incremental maintenance.
//!
//! The benefit of placing a sensor at candidate point `c` is
//! `b(c) = Σ_{p : d(p,c) ≤ rs} max(k − k_p, 0)` — the total remaining
//! coverage deficit the new sensor would bite into. DECOR always places at
//! the maximum-benefit candidate.
//!
//! Two evaluators:
//! - [`benefit_at`] — direct evaluation, O(points within `rs`);
//! - [`BenefitTable`] — a table of benefits over a candidate set, updated
//!   incrementally when a sensor lands: a placement at `q` only changes
//!   `k_p` for points within `rs` of `q`, and therefore only the benefits
//!   of candidates within `2·rs` of `q`. The centralized baseline does
//!   thousands of placements over 2000 candidates; incremental updates
//!   turn each step from O(N·deg) into O(deg²). The two evaluators are
//!   property-tested equivalent (and benched against each other in the
//!   ablation suite).

use crate::coverage::CoverageMap;
use decor_geom::{query_bucket_edge, FrozenGridIndex, Point};

/// Direct evaluation of Equation 1 at candidate position `c`.
///
/// Two fast paths: when the coverage map's tile summaries say no point in
/// the disk is below the target requirement (and `k` is at most that
/// target), the benefit is zero without any scan; otherwise the deficit is
/// accumulated by the chunked slab kernel in
/// [`CoverageMap::deficit_within`].
pub fn benefit_at(map: &CoverageMap, c: Point, rs: f64, k: u32) -> u64 {
    if k <= map.k_target() && map.disk_fully_covered(c, rs) {
        return 0;
    }
    map.deficit_within(c, rs, k)
}

/// Incrementally-maintained benefits over a fixed candidate set.
///
/// Candidates are approximation-point ids of the underlying map (DECOR
/// places new sensors *at* approximation points). The table does not hold
/// a reference to the map — callers pass it to [`BenefitTable::on_sensor_added`]
/// right after each `add_sensor`, keeping borrows simple.
#[derive(Clone, Debug)]
pub struct BenefitTable {
    rs: f64,
    k: u32,
    /// Candidate point ids, parallel to `benefits`.
    cand_pids: Vec<usize>,
    cand_pos: Vec<Point>,
    benefits: Vec<u64>,
    /// Spatial index over candidate positions; payload is the *slot*
    /// index. The candidate set is fixed for the table's lifetime, so it
    /// lives in the frozen CSR index.
    cand_index: FrozenGridIndex,
    /// Scratch slot buffer for `recompute_near`, reused across updates.
    affected_scratch: Vec<usize>,
}

impl BenefitTable {
    /// Builds the table for the given candidate point ids, computing every
    /// initial benefit directly.
    pub fn new(map: &CoverageMap, cand_pids: Vec<usize>, rs: f64, k: u32) -> Self {
        let field = map.field();
        let bucket = query_bucket_edge(
            rs,
            field.width().min(field.height()),
            cand_pids.len().max(1),
        );
        let mut cand_pos = Vec::with_capacity(cand_pids.len());
        let mut benefits = Vec::with_capacity(cand_pids.len());
        for &pid in &cand_pids {
            let pos = map.points()[pid];
            cand_pos.push(pos);
            benefits.push(benefit_at(map, pos, rs, k));
        }
        let cand_index = FrozenGridIndex::from_points(
            field.min,
            (field.width(), field.height()),
            bucket,
            cand_pos.iter().copied().enumerate(),
        );
        BenefitTable {
            rs,
            k,
            cand_pids,
            cand_pos,
            benefits,
            cand_index,
            affected_scratch: Vec::new(),
        }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.cand_pids.len()
    }

    /// True when the candidate set is empty.
    pub fn is_empty(&self) -> bool {
        self.cand_pids.is_empty()
    }

    /// Current benefit of candidate slot `slot`.
    pub fn benefit(&self, slot: usize) -> u64 {
        self.benefits[slot]
    }

    /// The best candidate: `(slot, point_id, position, benefit)` with the
    /// maximum benefit; ties break towards the lowest slot (deterministic).
    /// Returns `None` when every candidate has zero benefit.
    pub fn best(&self) -> Option<(usize, usize, Point, u64)> {
        let mut best: Option<(usize, u64)> = None;
        for (slot, &b) in self.benefits.iter().enumerate() {
            if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                best = Some((slot, b));
            }
        }
        best.map(|(slot, b)| (slot, self.cand_pids[slot], self.cand_pos[slot], b))
    }

    /// Notifies the table that a sensor of radius `rs_new` landed at `q`
    /// *after* the map was updated. Only candidates within `rs_new + rs`
    /// of `q` can have changed; their benefits are recomputed directly.
    ///
    /// Recomputing (rather than differential ±1 bookkeeping) keeps the
    /// update correct for heterogeneous radii at the same asymptotic cost.
    pub fn on_sensor_added(&mut self, map: &CoverageMap, q: Point, rs_new: f64) {
        self.recompute_near(map, q, rs_new);
    }

    /// Notifies the table that the sensor of radius `rs_old` at `q` was
    /// deactivated, *after* the map was updated. Same influence radius as
    /// [`BenefitTable::on_sensor_added`]; affected benefits are recomputed.
    pub fn on_sensor_removed(&mut self, map: &CoverageMap, q: Point, rs_old: f64) {
        self.recompute_near(map, q, rs_old);
    }

    fn recompute_near(&mut self, map: &CoverageMap, q: Point, r: f64) {
        let radius = r + self.rs;
        let rs = self.rs;
        let k = self.k;
        // Collect affected slots first: recomputation borrows `map`. The
        // scratch buffer is reused across updates.
        let mut affected = std::mem::take(&mut self.affected_scratch);
        self.cand_index.within_into(q, radius, &mut affected);
        for &slot in &affected {
            self.benefits[slot] = benefit_at(map, self.cand_pos[slot], rs, k);
        }
        self.affected_scratch = affected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeploymentConfig;
    use decor_geom::Aabb;
    use decor_lds::halton_points;

    fn setup(n_pts: usize) -> (CoverageMap, DeploymentConfig) {
        let field = Aabb::square(100.0);
        let cfg = DeploymentConfig::default();
        let map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
        (map, cfg)
    }

    #[test]
    fn benefit_of_empty_map_counts_full_deficit() {
        let (map, cfg) = setup(500);
        let c = map.points()[7];
        let in_range = map.points_within(c, cfg.rs).len() as u64;
        assert_eq!(benefit_at(&map, c, cfg.rs, cfg.k), in_range * cfg.k as u64);
    }

    #[test]
    fn benefit_drops_after_placement() {
        let (mut map, cfg) = setup(500);
        let c = map.points()[7];
        let before = benefit_at(&map, c, cfg.rs, cfg.k);
        map.add_sensor(c, cfg.rs);
        let after = benefit_at(&map, c, cfg.rs, cfg.k);
        assert!(after < before);
        // Every in-range point lost exactly one unit of deficit.
        let in_range = map.points_within(c, cfg.rs).len() as u64;
        assert_eq!(before - after, in_range);
    }

    #[test]
    fn benefit_is_zero_when_saturated() {
        let (mut map, cfg) = setup(200);
        let c = map.points()[0];
        for _ in 0..cfg.k {
            map.add_sensor(c, 200.0); // covers everything
        }
        assert_eq!(benefit_at(&map, c, cfg.rs, cfg.k), 0);
    }

    #[test]
    fn table_matches_direct_evaluation_initially() {
        let (map, cfg) = setup(400);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let table = BenefitTable::new(&map, cands.clone(), cfg.rs, cfg.k);
        for (slot, &pid) in cands.iter().enumerate() {
            assert_eq!(
                table.benefit(slot),
                benefit_at(&map, map.points()[pid], cfg.rs, cfg.k)
            );
        }
    }

    #[test]
    fn table_stays_consistent_across_many_placements() {
        let (mut map, cfg) = setup(400);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let mut table = BenefitTable::new(&map, cands.clone(), cfg.rs, cfg.k);
        // Place 40 sensors at a deterministic spread of points.
        for step in 0..40usize {
            let pid = (step * 97) % map.n_points();
            let q = map.points()[pid];
            map.add_sensor(q, cfg.rs);
            table.on_sensor_added(&map, q, cfg.rs);
        }
        for (slot, &pid) in cands.iter().enumerate() {
            assert_eq!(
                table.benefit(slot),
                benefit_at(&map, map.points()[pid], cfg.rs, cfg.k),
                "slot {slot} drifted"
            );
        }
    }

    #[test]
    fn best_picks_maximum_and_breaks_ties_low() {
        let (map, cfg) = setup(300);
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let table = BenefitTable::new(&map, cands, cfg.rs, cfg.k);
        let (slot, pid, pos, b) = table.best().expect("uncovered map has benefit");
        assert_eq!(pid, slot, "identity candidate mapping here");
        assert_eq!(pos, map.points()[pid]);
        for s in 0..table.len() {
            assert!(table.benefit(s) <= b);
            if table.benefit(s) == b {
                assert!(slot <= s, "tie must break to the lowest slot");
            }
        }
    }

    #[test]
    fn best_is_none_when_fully_covered() {
        let (mut map, cfg) = setup(200);
        for _ in 0..cfg.k {
            map.add_sensor(Point::new(50.0, 50.0), 200.0);
        }
        let cands: Vec<usize> = (0..map.n_points()).collect();
        let table = BenefitTable::new(&map, cands, cfg.rs, cfg.k);
        assert!(table.best().is_none());
    }

    #[test]
    fn subset_candidate_table() {
        let (map, cfg) = setup(300);
        let cands = vec![3, 77, 150];
        let table = BenefitTable::new(&map, cands.clone(), cfg.rs, cfg.k);
        assert_eq!(table.len(), 3);
        let (_, pid, _, _) = table.best().unwrap();
        assert!(cands.contains(&pid));
    }

    #[test]
    fn update_outside_influence_radius_is_noop() {
        let (mut map, cfg) = setup(400);
        let cands = vec![0usize];
        let c0 = map.points()[0];
        let mut table = BenefitTable::new(&map, cands, cfg.rs, cfg.k);
        let before = table.benefit(0);
        // A sensor far from candidate 0 cannot change its benefit.
        let far = Point::new(
            if c0.x < 50.0 { 95.0 } else { 5.0 },
            if c0.y < 50.0 { 95.0 } else { 5.0 },
        );
        map.add_sensor(far, cfg.rs);
        table.on_sensor_added(&map, far, cfg.rs);
        assert_eq!(table.benefit(0), before);
    }
}
