//! Result records produced by placement algorithms.

use decor_geom::Point;
use serde::{Deserialize, Serialize};

/// One sample of the coverage-vs-nodes curve (Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Total sensors active in the map after this step (initial + placed).
    pub total_sensors: usize,
    /// Fraction of approximation points covered at least `k` times.
    pub fraction_k_covered: f64,
}

/// Message accounting for a distributed run (Fig. 10).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Restoration-protocol messages sent in total.
    pub protocol_total: u64,
    /// Number of cells the scheme partitioned the field into (grid: fixed
    /// cells; Voronoi: one cell per participating node).
    pub cells: usize,
    /// Protocol messages per cell — the y-axis of Fig. 10.
    pub per_cell: f64,
    /// Protocol messages per node when leadership rotates within each cell
    /// (grid scheme; equals `per_cell` for Voronoi where every node is its
    /// own cell).
    pub per_node_rotated: f64,
    /// Retransmissions performed by the reliable transport (counted inside
    /// `protocol_total` too — a retry burns the same air time).
    pub retries: u64,
    /// Link-layer acknowledgements (also inside `protocol_total`).
    pub acks: u64,
    /// Placement notices whose retry budget ran out — each one is a
    /// potential border blind spot at the recipient.
    pub notices_gave_up: u64,
    /// Data frames that arrived more than once and were suppressed at the
    /// receiver (lost-ack retransmissions).
    pub duplicates_suppressed: u64,
}

/// Everything a [`crate::Placer`] reports about a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PlacementOutcome {
    /// Positions of newly placed sensors, in placement order.
    pub placed: Vec<Point>,
    /// Sensors active in the map before the run.
    pub initial_sensors: usize,
    /// Synchronous rounds executed (0 for the sequential baselines).
    pub rounds: usize,
    /// Coverage trace sampled after every placement (baselines) or every
    /// round (distributed schemes). Always ends with the final state.
    pub trace: Vec<TracePoint>,
    /// Did the run achieve full k-coverage (vs hitting `max_new_nodes`)?
    pub fully_covered: bool,
    /// Message accounting (zeroed for the centralized/random baselines,
    /// which exchange no in-network messages).
    pub messages: MessageStats,
}

impl PlacementOutcome {
    /// Total sensors after the run (initial + placed).
    pub fn total_sensors(&self) -> usize {
        self.initial_sensors + self.placed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_counts_initial_and_placed() {
        let o = PlacementOutcome {
            placed: vec![Point::ORIGIN; 7],
            initial_sensors: 5,
            ..PlacementOutcome::default()
        };
        assert_eq!(o.total_sensors(), 12);
    }

    #[test]
    fn default_outcome_is_empty() {
        let o = PlacementOutcome::default();
        assert_eq!(o.total_sensors(), 0);
        assert!(!o.fully_covered);
        assert_eq!(o.messages.protocol_total, 0);
    }
}
