//! Baseline 2: random placement.
//!
//! "A random placement algorithm that places the nodes at random positions
//! in the field until k coverage is achieved." The paper uses it as the
//! no-intelligence reference: it needs roughly 4x the nodes of any other
//! method and 10–20x the redundant nodes, but tolerates failures well
//! (Figs. 8, 9, 11).

use crate::config::DeploymentConfig;
use crate::coverage::CoverageMap;
use crate::metrics::{PlacementOutcome, TracePoint};
use crate::Placer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The random-placement baseline, deterministic in `seed`.
#[derive(Clone, Copy, Debug)]
pub struct RandomPlacement {
    /// RNG seed for the position stream.
    pub seed: u64,
}

impl Placer for RandomPlacement {
    fn name(&self) -> String {
        "Random".to_owned()
    }

    fn place(&self, map: &mut CoverageMap, cfg: &DeploymentConfig) -> PlacementOutcome {
        cfg.validate();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let field = *map.field();
        let initial = map.n_active_sensors();
        let mut out = PlacementOutcome {
            initial_sensors: initial,
            ..PlacementOutcome::default()
        };
        out.trace.push(TracePoint {
            total_sensors: initial,
            fraction_k_covered: map.fraction_k_covered(cfg.k),
        });
        // Track the number of deficient points instead of rescanning all
        // points per placement: refresh lazily every placement is still
        // O(N); instead recompute the count only when a placement touched
        // a deficient point.
        let mut below = map.count_below(cfg.k);
        while below > 0 && out.placed.len() < cfg.max_new_nodes {
            let pos = field.from_unit(rng.gen::<f64>(), rng.gen::<f64>());
            // Count how many points cross the threshold k due to this
            // sensor: those at exactly k-1 before.
            let mut crossed = 0usize;
            map.for_each_point_within_unordered(pos, cfg.rs, |pid, _| {
                if map.coverage(pid) == cfg.k - 1 {
                    crossed += 1;
                }
            });
            map.add_sensor(pos, cfg.rs);
            below -= crossed;
            out.placed.push(pos);
            out.trace.push(TracePoint {
                total_sensors: initial + out.placed.len(),
                fraction_k_covered: 1.0 - below as f64 / map.n_points() as f64,
            });
        }
        debug_assert_eq!(below, map.count_below(cfg.k), "deficit counter drift");
        out.fully_covered = below == 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::CentralizedGreedy;
    use decor_geom::Aabb;
    use decor_lds::halton_points;

    fn fresh_map(n_pts: usize, cfg: &DeploymentConfig) -> CoverageMap {
        let field = Aabb::square(100.0);
        CoverageMap::new(halton_points(n_pts, &field), &field, cfg)
    }

    #[test]
    fn reaches_full_coverage_eventually() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(400, &cfg);
        let out = RandomPlacement { seed: 1 }.place(&mut map, &cfg);
        assert!(out.fully_covered);
        assert_eq!(map.count_below(1), 0);
    }

    #[test]
    fn uses_far_more_nodes_than_greedy() {
        // The paper's headline comparison: random needs ~4x the nodes.
        let cfg = DeploymentConfig::with_k(2);
        let mut m1 = fresh_map(800, &cfg);
        let greedy = CentralizedGreedy.place(&mut m1, &cfg).placed.len();
        let mut m2 = fresh_map(800, &cfg);
        let random = RandomPlacement { seed: 3 }
            .place(&mut m2, &cfg)
            .placed
            .len();
        assert!(
            random as f64 > 2.5 * greedy as f64,
            "random {random} vs greedy {greedy}"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let cfg = DeploymentConfig::with_k(1);
        let run = |seed| {
            let mut map = fresh_map(300, &cfg);
            RandomPlacement { seed }.place(&mut map, &cfg).placed
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn respects_max_new_nodes() {
        let cfg = DeploymentConfig {
            max_new_nodes: 10,
            ..DeploymentConfig::with_k(3)
        };
        let mut map = fresh_map(400, &cfg);
        let out = RandomPlacement { seed: 4 }.place(&mut map, &cfg);
        assert_eq!(out.placed.len(), 10);
        assert!(!out.fully_covered);
    }

    #[test]
    fn trace_fraction_matches_map_state() {
        let cfg = DeploymentConfig {
            max_new_nodes: 50,
            ..DeploymentConfig::with_k(2)
        };
        let mut map = fresh_map(300, &cfg);
        let out = RandomPlacement { seed: 5 }.place(&mut map, &cfg);
        let last = out.trace.last().unwrap();
        assert!((last.fraction_k_covered - map.fraction_k_covered(2)).abs() < 1e-12);
    }

    #[test]
    fn no_placement_needed_when_covered() {
        let cfg = DeploymentConfig::with_k(1);
        let mut map = fresh_map(200, &cfg);
        map.add_sensor(decor_geom::Point::new(50.0, 50.0), 200.0);
        let out = RandomPlacement { seed: 6 }.place(&mut map, &cfg);
        assert!(out.placed.is_empty());
        assert!(out.fully_covered);
    }
}
