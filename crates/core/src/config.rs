//! Deployment configuration shared by all placement algorithms.

use serde::{Deserialize, Serialize};

/// Parameters of a coverage-restoration run.
///
/// Defaults reproduce the paper's setup: sensing radius `rs = 4`,
/// communication radius `rc = 2·rs = 8`, coverage requirement `k = 3`
/// (the value Figs. 7 and 11 use), and a generous safety cap on the total
/// number of sensors so a mis-configured run terminates.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Sensing radius `rs`.
    pub rs: f64,
    /// Communication radius `rc` (the paper's standing assumption is
    /// `rs <= rc`; schemes that need a larger radius — grid inter-leader
    /// traffic — compute their own).
    pub rc: f64,
    /// Coverage requirement `k >= 1`: every point must be covered by at
    /// least `k` sensors.
    pub k: u32,
    /// Hard cap on sensors a placer may add (loop-safety for the random
    /// baseline and adversarial configurations).
    pub max_new_nodes: usize,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            rs: 4.0,
            rc: 8.0,
            k: 3,
            max_new_nodes: 100_000,
        }
    }
}

impl DeploymentConfig {
    /// A config with the paper's radii and the given `k`.
    pub fn with_k(k: u32) -> Self {
        DeploymentConfig {
            k,
            ..DeploymentConfig::default()
        }
    }

    /// Validates invariants; placers call this on entry.
    pub fn validate(&self) {
        assert!(self.rs > 0.0 && self.rs.is_finite(), "rs must be positive");
        assert!(
            self.rc >= self.rs,
            "paper assumption rs <= rc violated (rs={}, rc={})",
            self.rs,
            self.rc
        );
        assert!(self.k >= 1, "coverage requirement k must be at least 1");
        assert!(self.max_new_nodes > 0, "max_new_nodes must be positive");
    }
}

/// The six algorithm configurations evaluated in the paper's figures.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Grid-based DECOR, 5×5 cells ("small cell").
    GridSmall,
    /// Grid-based DECOR, 10×10 cells ("big cell").
    GridBig,
    /// Voronoi-based DECOR, `rc = 2·rs = 8` ("small rc").
    VoronoiSmall,
    /// Voronoi-based DECOR, `rc = 10·√2 ≈ 14.14` ("big rc").
    VoronoiBig,
    /// Centralized greedy baseline (global view).
    Centralized,
    /// Random placement baseline.
    Random,
}

impl SchemeKind {
    /// All six, in the paper's legend order.
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::GridSmall,
        SchemeKind::GridBig,
        SchemeKind::VoronoiSmall,
        SchemeKind::VoronoiBig,
        SchemeKind::Centralized,
        SchemeKind::Random,
    ];

    /// The paper's legend label.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::GridSmall => "Grid (small cell)",
            SchemeKind::GridBig => "Grid (big cell)",
            SchemeKind::VoronoiSmall => "Voronoi (small rc)",
            SchemeKind::VoronoiBig => "Voronoi (big rc)",
            SchemeKind::Centralized => "Centralized",
            SchemeKind::Random => "Random",
        }
    }

    /// True for the four distributed DECOR variants.
    pub fn is_decor(&self) -> bool {
        !matches!(self, SchemeKind::Centralized | SchemeKind::Random)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = DeploymentConfig::default();
        assert_eq!(c.rs, 4.0);
        assert_eq!(c.rc, 8.0);
        assert_eq!(c.k, 3);
        c.validate();
    }

    #[test]
    fn with_k_overrides_only_k() {
        let c = DeploymentConfig::with_k(5);
        assert_eq!(c.k, 5);
        assert_eq!(c.rs, 4.0);
    }

    #[test]
    #[should_panic(expected = "rs <= rc")]
    fn validate_rejects_rc_below_rs() {
        DeploymentConfig {
            rs: 4.0,
            rc: 2.0,
            ..DeploymentConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn validate_rejects_zero_k() {
        DeploymentConfig {
            k: 0,
            ..DeploymentConfig::default()
        }
        .validate();
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::BTreeSet<&str> =
            SchemeKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn decor_classification() {
        assert!(SchemeKind::GridSmall.is_decor());
        assert!(SchemeKind::VoronoiBig.is_decor());
        assert!(!SchemeKind::Centralized.is_decor());
        assert!(!SchemeKind::Random.is_decor());
    }
}
