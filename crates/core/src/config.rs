//! Deployment configuration shared by all placement algorithms.

use crate::invariants::InvariantChecker;
use decor_net::{FaultPlan, RotationConfig};
use decor_trace::TraceHandle;
use serde::{Deserialize, Serialize};

/// Radio-link reliability knobs: the lossy-medium model plus the reliable
/// transport that placement notices ride on (see `decor_net::transport`).
///
/// The default is a perfect medium (`loss_rate = 0`), under which the
/// distributed placers behave bit-identically to a world without packet
/// loss. With `loss_rate > 0` each transmission is independently dropped
/// with that probability and the transport's ack/retry machinery earns its
/// keep; `max_retries`/`backoff_base` bound how hard it tries.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Per-transmission loss probability in `[0, 1)`.
    pub loss_rate: f64,
    /// Seed of the deterministic loss stream.
    pub loss_seed: u64,
    /// Maximum retransmissions per reliably-sent message.
    pub max_retries: u32,
    /// Ticks before the first retransmission; doubles per retry.
    pub backoff_base: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        let t = decor_net::TransportConfig::default();
        LinkConfig {
            loss_rate: 0.0,
            loss_seed: 0,
            max_retries: t.max_retries,
            backoff_base: t.backoff_base,
        }
    }
}

impl LinkConfig {
    /// A lossy medium with the default transport knobs.
    pub fn lossy(loss_rate: f64, loss_seed: u64) -> Self {
        LinkConfig {
            loss_rate,
            loss_seed,
            ..LinkConfig::default()
        }
    }

    /// The transport-layer view of these knobs.
    pub fn transport(&self) -> decor_net::TransportConfig {
        decor_net::TransportConfig {
            max_retries: self.max_retries,
            backoff_base: self.backoff_base,
        }
    }

    /// True when the medium drops packets.
    pub fn is_lossy(&self) -> bool {
        self.loss_rate > 0.0
    }

    /// Applies the loss model to a network.
    pub fn apply(&self, net: &mut decor_net::Network) {
        if self.is_lossy() {
            net.set_loss(self.loss_rate, self.loss_seed);
        }
    }

    /// Validates invariants; [`DeploymentConfig::validate`] calls this.
    pub fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.loss_rate),
            "loss rate must be in [0, 1), got {}",
            self.loss_rate
        );
        assert!(self.backoff_base > 0, "backoff base must be positive");
    }
}

/// Parameters of a coverage-restoration run.
///
/// Defaults reproduce the paper's setup: sensing radius `rs = 4`,
/// communication radius `rc = 2·rs = 8`, coverage requirement `k = 3`
/// (the value Figs. 7 and 11 use), and a generous safety cap on the total
/// number of sensors so a mis-configured run terminates.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// Sensing radius `rs`.
    pub rs: f64,
    /// Communication radius `rc` (the paper's standing assumption is
    /// `rs <= rc`; schemes that need a larger radius — grid inter-leader
    /// traffic — compute their own).
    pub rc: f64,
    /// Coverage requirement `k >= 1`: every point must be covered by at
    /// least `k` sensors.
    pub k: u32,
    /// Hard cap on sensors a placer may add (loop-safety for the random
    /// baseline and adversarial configurations).
    pub max_new_nodes: usize,
    /// Radio-link reliability: lossy-medium model and transport knobs.
    pub link: LinkConfig,
    /// Optional structured-event sink the simulator and placers emit into
    /// (see `decor_trace`). Disabled by default — emission is then a
    /// branch on `None` and nothing else. Never affects config equality.
    pub trace: TraceHandle,
    /// Optional scripted fault injection (see `decor_net::chaos`): the
    /// placers run a [`decor_net::ChaosEngine`] over this plan on their
    /// transport clock, so crashes, partitions, blackholes, latency
    /// spikes, and drains land mid-protocol. `None` (the default) leaves
    /// the run untouched; `(scenario, plan)` replays bit-identically.
    pub chaos: Option<FaultPlan>,
    /// Optional duty-cycled sleep rotation (see `decor_net::rotation` and
    /// [`crate::rotation`]): nodes agree on disjoint set-k-cover shifts
    /// in-network and rotate on the transport clock, draining batteries
    /// per the energy model. `None` (the default) keeps every node always
    /// on, exactly as before rotation existed.
    pub rotation: Option<RotationConfig>,
    /// Optional run-time invariant checking (see [`crate::invariants`]).
    /// Disabled by default — every hook is then a branch on `None` and
    /// nothing else. Never affects config equality.
    pub invariants: InvariantChecker,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            rs: 4.0,
            rc: 8.0,
            k: 3,
            max_new_nodes: 100_000,
            link: LinkConfig::default(),
            trace: TraceHandle::disabled(),
            chaos: None,
            rotation: None,
            invariants: InvariantChecker::disabled(),
        }
    }
}

impl DeploymentConfig {
    /// A config with the paper's radii and the given `k`.
    pub fn with_k(k: u32) -> Self {
        DeploymentConfig {
            k,
            ..DeploymentConfig::default()
        }
    }

    /// Validates invariants; placers call this on entry.
    pub fn validate(&self) {
        assert!(self.rs > 0.0 && self.rs.is_finite(), "rs must be positive");
        assert!(
            self.rc >= self.rs,
            "paper assumption rs <= rc violated (rs={}, rc={})",
            self.rs,
            self.rc
        );
        assert!(self.k >= 1, "coverage requirement k must be at least 1");
        assert!(self.max_new_nodes > 0, "max_new_nodes must be positive");
        self.link.validate();
        if let Some(rot) = &self.rotation {
            rot.validate();
        }
    }
}

/// The six algorithm configurations evaluated in the paper's figures,
/// plus this reproduction's exact-geometry extension.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum SchemeKind {
    /// Grid-based DECOR, 5×5 cells ("small cell").
    GridSmall,
    /// Grid-based DECOR, 10×10 cells ("big cell").
    GridBig,
    /// Voronoi-based DECOR, `rc = 2·rs = 8` ("small rc").
    VoronoiSmall,
    /// Voronoi-based DECOR, `rc = 10·√2 ≈ 14.14` ("big rc").
    VoronoiBig,
    /// Centralized greedy baseline (global view).
    Centralized,
    /// Random placement baseline.
    Random,
    /// Exact hole detection + deepest-witness healing (not in the paper;
    /// see [`crate::hole_scheme`]). Excluded from [`SchemeKind::ALL`] so
    /// the paper figures keep their six-curve legends.
    Holes,
}

impl SchemeKind {
    /// All six, in the paper's legend order.
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::GridSmall,
        SchemeKind::GridBig,
        SchemeKind::VoronoiSmall,
        SchemeKind::VoronoiBig,
        SchemeKind::Centralized,
        SchemeKind::Random,
    ];

    /// The paper's legend label.
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::GridSmall => "Grid (small cell)",
            SchemeKind::GridBig => "Grid (big cell)",
            SchemeKind::VoronoiSmall => "Voronoi (small rc)",
            SchemeKind::VoronoiBig => "Voronoi (big rc)",
            SchemeKind::Centralized => "Centralized",
            SchemeKind::Random => "Random",
            SchemeKind::Holes => "Holes (exact)",
        }
    }

    /// The stable machine-readable name used by CLI flags and scenario
    /// spec files. Unlike [`SchemeKind::label`] (the paper's legend text)
    /// these names are part of the on-disk format and must never change.
    pub fn spec_name(&self) -> &'static str {
        match self {
            SchemeKind::GridSmall => "grid-small",
            SchemeKind::GridBig => "grid-big",
            SchemeKind::VoronoiSmall => "voronoi-small",
            SchemeKind::VoronoiBig => "voronoi-big",
            SchemeKind::Centralized => "centralized",
            SchemeKind::Random => "random",
            SchemeKind::Holes => "holes",
        }
    }

    /// Parses a [`SchemeKind::spec_name`]. The error names the valid set,
    /// so a malformed spec file fails with a diagnosis, not a panic.
    pub fn parse_spec_name(name: &str) -> Result<SchemeKind, String> {
        const ALL_NAMED: [SchemeKind; 7] = [
            SchemeKind::GridSmall,
            SchemeKind::GridBig,
            SchemeKind::VoronoiSmall,
            SchemeKind::VoronoiBig,
            SchemeKind::Centralized,
            SchemeKind::Random,
            SchemeKind::Holes,
        ];
        ALL_NAMED
            .into_iter()
            .find(|s| s.spec_name() == name)
            .ok_or_else(|| {
                let valid: Vec<&str> = ALL_NAMED.iter().map(|s| s.spec_name()).collect();
                format!("unknown scheme '{name}' ({})", valid.join(" | "))
            })
    }

    /// True for the four distributed DECOR variants.
    pub fn is_decor(&self) -> bool {
        matches!(
            self,
            SchemeKind::GridSmall
                | SchemeKind::GridBig
                | SchemeKind::VoronoiSmall
                | SchemeKind::VoronoiBig
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = DeploymentConfig::default();
        assert_eq!(c.rs, 4.0);
        assert_eq!(c.rc, 8.0);
        assert_eq!(c.k, 3);
        c.validate();
    }

    #[test]
    fn with_k_overrides_only_k() {
        let c = DeploymentConfig::with_k(5);
        assert_eq!(c.k, 5);
        assert_eq!(c.rs, 4.0);
    }

    #[test]
    #[should_panic(expected = "rs <= rc")]
    fn validate_rejects_rc_below_rs() {
        DeploymentConfig {
            rs: 4.0,
            rc: 2.0,
            ..DeploymentConfig::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn validate_rejects_zero_k() {
        DeploymentConfig {
            k: 0,
            ..DeploymentConfig::default()
        }
        .validate();
    }

    #[test]
    fn default_link_is_lossless() {
        let link = LinkConfig::default();
        assert!(!link.is_lossy());
        link.validate();
        assert_eq!(link.transport(), decor_net::TransportConfig::default());
    }

    #[test]
    fn lossy_link_applies_to_networks() {
        let link = LinkConfig::lossy(0.3, 7);
        assert!(link.is_lossy());
        link.validate();
        assert_eq!(link.max_retries, LinkConfig::default().max_retries);
    }

    #[test]
    #[should_panic(expected = "loss rate must be in [0, 1)")]
    fn validate_rejects_certain_loss() {
        DeploymentConfig {
            link: LinkConfig::lossy(1.0, 0),
            ..DeploymentConfig::default()
        }
        .validate();
    }

    #[test]
    fn trace_attachment_does_not_affect_equality() {
        let plain = DeploymentConfig::default();
        let traced = DeploymentConfig {
            trace: TraceHandle::jsonl_writer(),
            ..DeploymentConfig::default()
        };
        assert_eq!(plain, traced, "observability is not part of the config");
        assert!(!plain.trace.is_enabled());
        assert!(traced.trace.is_enabled());
    }

    #[test]
    fn checker_attachment_does_not_affect_equality() {
        let plain = DeploymentConfig::default();
        let checked = DeploymentConfig {
            invariants: InvariantChecker::enabled(),
            ..DeploymentConfig::default()
        };
        assert_eq!(plain, checked, "observability is not part of the config");
        assert!(!plain.invariants.is_enabled());
        assert!(checked.invariants.is_enabled());
    }

    #[test]
    fn chaos_plan_is_part_of_the_config() {
        let plain = DeploymentConfig::default();
        let chaotic = DeploymentConfig {
            chaos: Some(FaultPlan::generate(1, 8, 500)),
            ..DeploymentConfig::default()
        };
        assert_ne!(plain, chaotic, "the fault plan changes the deployment");
        chaotic.validate();
    }

    #[test]
    fn rotation_is_part_of_the_config_and_validated() {
        let plain = DeploymentConfig::default();
        let rotating = DeploymentConfig {
            rotation: Some(RotationConfig::default()),
            ..DeploymentConfig::default()
        };
        assert_ne!(plain, rotating, "duty cycling changes the deployment");
        rotating.validate();
    }

    #[test]
    #[should_panic(expected = "shift period must be positive")]
    fn validate_rejects_zero_shift_period() {
        DeploymentConfig {
            rotation: Some(RotationConfig {
                period: 0,
                ..RotationConfig::default()
            }),
            ..DeploymentConfig::default()
        }
        .validate();
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: std::collections::BTreeSet<&str> =
            SchemeKind::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 6);
        assert!(labels.insert(SchemeKind::Holes.label()));
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn all_keeps_the_paper_legend() {
        // The exact-geometry extension must not sneak into the paper's
        // six-curve figures.
        assert_eq!(SchemeKind::ALL.len(), 6);
        assert!(!SchemeKind::ALL.contains(&SchemeKind::Holes));
    }

    #[test]
    fn spec_names_roundtrip_and_reject_unknowns() {
        for s in SchemeKind::ALL.into_iter().chain([SchemeKind::Holes]) {
            assert_eq!(SchemeKind::parse_spec_name(s.spec_name()), Ok(s));
        }
        let err = SchemeKind::parse_spec_name("quantum").unwrap_err();
        assert!(err.contains("unknown scheme 'quantum'"), "{err}");
        assert!(err.contains("grid-small"), "error must name the valid set");
        assert!(
            SchemeKind::parse_spec_name("Centralized").is_err(),
            "labels are not spec names"
        );
    }

    #[test]
    fn decor_classification() {
        assert!(SchemeKind::GridSmall.is_decor());
        assert!(SchemeKind::VoronoiBig.is_decor());
        assert!(!SchemeKind::Centralized.is_decor());
        assert!(!SchemeKind::Random.is_decor());
        assert!(!SchemeKind::Holes.is_decor());
    }
}
