//! Reusable simulation scratch state for warm placer runs.
//!
//! A [`SimScratch`] owns the allocation-heavy simulation structures a
//! placer builds per run — the benefit engine, the candidate list, the
//! simulated radio network and its transport layer — so a fleet worker
//! can thread one scratch through back-to-back runs and keep the hot
//! path off the allocator. Every structure is rebuilt through its
//! capacity-preserving `reset_*` path, which is also the cold
//! constructor's code path, so warm runs stay bit-identical to cold
//! ones (the pool-poisoning proptests in the workspace root pin this).

use crate::engine::ShardedBenefitEngine;
use decor_net::{Network, Transport};

/// Pooled scratch state threaded through [`crate::Placer::place_in`].
///
/// Starts empty; the first run sizes every buffer and later runs reuse
/// the capacity. Safe to share across different schemes, field sizes
/// and configs — each placer fully re-initializes what it uses.
pub struct SimScratch {
    /// Benefit engine, rebuilt per run via `reset_global`/`reset_cells`.
    pub engine: ShardedBenefitEngine,
    /// Candidate point-id buffer (swapped into the engine and back).
    pub cands: Vec<usize>,
    /// Tile-flag scratch for `CoverageMap::deficit_candidates_into`.
    pub tile_flags: Vec<bool>,
    /// Simulated radio network, reused via `Network::reset`. Lazily
    /// built so placers that never simulate radio pay nothing.
    pub net: Option<Network>,
    /// ARQ transport layer, reused via `Transport::reset`.
    pub transport: Option<Transport>,
    /// Grid-scheme round-loop buffers (cell partition, decisions,
    /// notices, adoption lists).
    pub(crate) grid: crate::grid_scheme::GridScratch,
    /// Voronoi-scheme round-loop buffers (ownership cache, decisions,
    /// notices, id maps).
    pub(crate) voro: crate::voronoi_scheme::VoronoiScratch,
}

impl SimScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SimScratch {
            engine: ShardedBenefitEngine::empty(),
            cands: Vec::new(),
            tile_flags: Vec::new(),
            net: None,
            transport: None,
            grid: Default::default(),
            voro: Default::default(),
        }
    }
}

impl Default for SimScratch {
    fn default() -> Self {
        Self::new()
    }
}
