//! Multi-hop routing over the communication graph.
//!
//! The paper sizes the grid scheme's communication radius so neighboring
//! leaders can talk *directly* (`rc = 10·√2` for 5×5 cells) "without the
//! need of any routing mechanism for the inter-leader communication".
//! This module supplies that mechanism, so configurations with smaller
//! radii still work and their true message cost can be measured:
//!
//! - [`shortest_path`] — BFS over alive nodes (minimum hop count);
//! - [`greedy_geographic`] — classic greedy geographic forwarding: each
//!   hop goes to the neighbor closest to the destination; fails at local
//!   minima (voids), which the caller can detect and escalate;
//! - `Network::route_unicast`-style accounting via [`send_routed`],
//!   charging one message per hop.

use crate::messages::Message;
use crate::network::{Network, SendError};
use crate::node::NodeId;
use std::collections::VecDeque;

/// Minimum-hop path from `from` to `to` over alive nodes (BFS), both
/// endpoints included. `None` when unreachable or an endpoint is down.
///
/// ```
/// use decor_geom::{Aabb, Point};
/// use decor_net::{shortest_path, Network};
///
/// let mut net = Network::new(Aabb::square(100.0));
/// for i in 0..4 {
///     net.add_node(Point::new(5.0 + 6.0 * i as f64, 50.0), 4.0, 8.0);
/// }
/// assert_eq!(shortest_path(&net, 0, 3), Some(vec![0, 1, 2, 3]));
/// net.fail_node(2);
/// assert_eq!(shortest_path(&net, 0, 3), None, "the relay is gone");
/// ```
pub fn shortest_path(net: &Network, from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    if !net.is_alive(from) || !net.is_alive(to) {
        return None;
    }
    if from == to {
        return Some(vec![from]);
    }
    let n = net.len();
    let mut prev = vec![usize::MAX; n];
    let mut seen = vec![false; n];
    seen[from] = true;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    'bfs: while let Some(u) = queue.pop_front() {
        for v in net.neighbors_of(u) {
            if !seen[v] {
                seen[v] = true;
                prev[v] = u;
                if v == to {
                    break 'bfs;
                }
                queue.push_back(v);
            }
        }
    }
    if !seen[to] {
        return None;
    }
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[cur];
        path.push(cur);
    }
    path.reverse();
    Some(path)
}

/// Greedy geographic forwarding: from `from`, repeatedly hop to the
/// neighbor strictly closest to `to`'s position. Returns the path on
/// success, or `Err(stuck_at)` when a local minimum (void) blocks
/// progress before reaching `to`.
pub fn greedy_geographic(net: &Network, from: NodeId, to: NodeId) -> Result<Vec<NodeId>, NodeId> {
    if !net.is_alive(from) || !net.is_alive(to) {
        return Err(from);
    }
    let target = net.node(to).pos;
    let mut path = vec![from];
    let mut cur = from;
    while cur != to {
        let cur_d = net.node(cur).pos.dist_sq(target);
        let next = net
            .neighbors_of(cur)
            .into_iter()
            .map(|nb| (net.node(nb).pos.dist_sq(target), nb))
            .filter(|&(d, _)| d < cur_d)
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        match next {
            Some((_, nb)) => {
                path.push(nb);
                cur = nb;
            }
            None => return Err(cur),
        }
    }
    Ok(path)
}

/// Sends `msg` from `from` to `to` along the minimum-hop path, charging
/// one transmission per hop. Returns the hop count (0 for `from == to`).
pub fn send_routed(
    net: &mut Network,
    from: NodeId,
    to: NodeId,
    msg: Message,
) -> Result<usize, SendError> {
    let path = shortest_path(net, from, to).ok_or(SendError::OutOfRange)?;
    for hop in path.windows(2) {
        net.unicast(hop[0], hop[1], msg)?;
    }
    Ok(path.len().saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::{Aabb, Point};

    fn line(n: usize, spacing: f64) -> Network {
        let mut net = Network::new(Aabb::square(200.0));
        for i in 0..n {
            net.add_node(Point::new(5.0 + i as f64 * spacing, 50.0), 4.0, 8.0);
        }
        net
    }

    #[test]
    fn shortest_path_on_a_line() {
        let net = line(5, 6.0); // each hop reaches only adjacent nodes
        let p = shortest_path(&net, 0, 4).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn shortest_path_skips_when_radius_allows() {
        let net = line(5, 4.0); // rc=8 spans two spacings
        let p = shortest_path(&net, 0, 4).unwrap();
        assert_eq!(p, vec![0, 2, 4]);
    }

    #[test]
    fn path_to_self_is_trivial() {
        let net = line(3, 5.0);
        assert_eq!(shortest_path(&net, 1, 1), Some(vec![1]));
    }

    #[test]
    fn unreachable_returns_none() {
        let mut net = line(3, 5.0);
        net.add_node(Point::new(150.0, 50.0), 4.0, 8.0);
        assert_eq!(shortest_path(&net, 0, 3), None);
    }

    #[test]
    fn dead_relay_forces_detour_or_failure() {
        let mut net = line(5, 6.0);
        net.fail_node(2);
        assert_eq!(shortest_path(&net, 0, 4), None, "line is cut");
    }

    #[test]
    fn greedy_geographic_matches_on_convex_topology() {
        let net = line(5, 6.0);
        let p = greedy_geographic(&net, 0, 4).unwrap();
        assert_eq!(p, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn greedy_geographic_gets_stuck_at_voids() {
        // A routing void: a's only neighbor (b) is *farther* from the
        // target, so greedy forwarding stalls at a, while a detour
        // b→c→d→e→f→t exists (every hop ≤ rc = 8, and none of c..f is
        // within rc of a).
        let mut net = Network::new(Aabb::square(100.0));
        let a = net.add_node(Point::new(35.0, 50.0), 4.0, 8.0);
        let b = net.add_node(Point::new(30.0, 50.0), 4.0, 8.0);
        net.add_node(Point::new(30.0, 43.0), 4.0, 8.0); // c
        net.add_node(Point::new(36.0, 39.0), 4.0, 8.0); // d
        net.add_node(Point::new(43.0, 42.0), 4.0, 8.0); // e
        net.add_node(Point::new(47.0, 46.0), 4.0, 8.0); // f
        let t = net.add_node(Point::new(50.0, 50.0), 4.0, 8.0);
        assert_eq!(net.neighbors_of(a), vec![b], "a must have only b");
        let res = greedy_geographic(&net, a, t);
        assert_eq!(res, Err(a));
        // BFS still finds the detour.
        let p = shortest_path(&net, a, t).unwrap();
        assert_eq!(p.first(), Some(&a));
        assert_eq!(p.last(), Some(&t));
        assert!(p.len() >= 5, "detour must be long: {p:?}");
    }

    #[test]
    fn send_routed_charges_per_hop() {
        let mut net = line(5, 6.0);
        let hops = send_routed(
            &mut net,
            0,
            4,
            Message::PlacementNotice { pos: Point::ORIGIN },
        )
        .unwrap();
        assert_eq!(hops, 4);
        assert_eq!(net.stats.protocol_sent, 4);
        assert_eq!(net.stats.sent_by(0), 1);
        assert_eq!(net.stats.sent_by(1), 1);
        assert_eq!(net.stats.received_by(4), 1);
    }

    #[test]
    fn send_routed_to_unreachable_fails_cleanly() {
        let mut net = line(2, 50.0);
        let err = send_routed(
            &mut net,
            0,
            1,
            Message::PlacementNotice { pos: Point::ORIGIN },
        );
        assert_eq!(err, Err(SendError::OutOfRange));
        assert_eq!(net.stats.total_sent, 0);
    }
}
