//! Data-plane simulation: periodic sensing reports routed to a sink.
//!
//! The paper's opening problem statement (§1): after failures "the data
//! (e.g., sensors' reports) may become stale or get lost". This module
//! measures exactly that — every alive sensor periodically emits a report
//! that is forwarded hop-by-hop (minimum-hop routing) to a sink node; the
//! *delivery ratio* quantifies how much of the data plane survives a
//! failure and how much a restoration brings back.

use crate::network::Network;
use crate::node::NodeId;
use crate::routing::shortest_path;
use decor_geom::Point;

/// Result of a report-collection round.
#[derive(Clone, Debug, PartialEq)]
pub struct DeliveryReport {
    /// Sensors that attempted to report (alive, excluding the sink).
    pub attempted: usize,
    /// Reports that reached the sink.
    pub delivered: usize,
    /// Total hops consumed by delivered reports.
    pub total_hops: u64,
    /// `delivered / attempted` (1.0 for an empty network).
    pub delivery_ratio: f64,
    /// Mean hops per delivered report (0 when nothing was delivered).
    pub mean_hops: f64,
}

/// Simulates one report-collection round: every alive node (except the
/// sink) routes one report to `sink` along a minimum-hop path. Messages
/// and energy are charged through the network's accounting.
///
/// Reports from nodes with no route to the sink are lost — this is the
/// "data gets lost" failure mode of §1.
pub fn collect_reports(net: &mut Network, sink: NodeId) -> DeliveryReport {
    assert!(net.is_alive(sink), "sink must be alive");
    let senders: Vec<NodeId> = net
        .alive_ids()
        .into_iter()
        .filter(|&id| id != sink)
        .collect();
    let mut delivered = 0usize;
    let mut total_hops = 0u64;
    for s in &senders {
        if let Some(path) = shortest_path(net, *s, sink) {
            for hop in path.windows(2) {
                let _ = net.unicast(
                    hop[0],
                    hop[1],
                    crate::messages::Message::Report { placements: 0 },
                );
            }
            delivered += 1;
            total_hops += path.len() as u64 - 1;
        }
    }
    let attempted = senders.len();
    DeliveryReport {
        attempted,
        delivered,
        total_hops,
        delivery_ratio: if attempted == 0 {
            1.0
        } else {
            delivered as f64 / attempted as f64
        },
        mean_hops: if delivered == 0 {
            0.0
        } else {
            total_hops as f64 / delivered as f64
        },
    }
}

/// Picks the alive node closest to `pos` as the sink (base station
/// placement helper). `None` when the network is empty.
pub fn sink_near(net: &Network, pos: Point) -> Option<NodeId> {
    net.alive_ids().into_iter().min_by(|&a, &b| {
        let da = net.node(a).pos.dist_sq(pos);
        let db = net.node(b).pos.dist_sq(pos);
        da.partial_cmp(&db).unwrap().then(a.cmp(&b))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::Aabb;

    fn line(n: usize, spacing: f64) -> Network {
        let mut net = Network::new(Aabb::square(200.0));
        for i in 0..n {
            net.add_node(Point::new(5.0 + i as f64 * spacing, 50.0), 4.0, 8.0);
        }
        net
    }

    #[test]
    fn connected_network_delivers_everything() {
        let mut net = line(10, 6.0);
        let report = collect_reports(&mut net, 0);
        assert_eq!(report.attempted, 9);
        assert_eq!(report.delivered, 9);
        assert_eq!(report.delivery_ratio, 1.0);
        assert!(report.mean_hops >= 1.0);
        assert!(net.stats.protocol_sent > 0, "reports are protocol traffic");
    }

    #[test]
    fn partition_loses_reports() {
        let mut net = line(10, 6.0);
        net.fail_node(5); // cut the line
        let report = collect_reports(&mut net, 0);
        assert_eq!(report.attempted, 8);
        assert_eq!(report.delivered, 4, "only the sink-side half gets through");
        assert!((report.delivery_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn hops_reflect_distance() {
        let mut net = line(5, 6.0);
        let report = collect_reports(&mut net, 0);
        // Senders at hop distances 1, 2, 3, 4 => total 10, mean 2.5.
        assert_eq!(report.total_hops, 10);
        assert!((report.mean_hops - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sink_near_picks_closest() {
        let net = line(5, 6.0);
        assert_eq!(sink_near(&net, Point::new(0.0, 50.0)), Some(0));
        assert_eq!(sink_near(&net, Point::new(100.0, 50.0)), Some(4));
        let empty = Network::new(Aabb::square(10.0));
        assert_eq!(sink_near(&empty, Point::ORIGIN), None);
    }

    #[test]
    fn singleton_network_trivially_delivers() {
        let mut net = line(1, 6.0);
        let report = collect_reports(&mut net, 0);
        assert_eq!(report.attempted, 0);
        assert_eq!(report.delivery_ratio, 1.0);
    }

    #[test]
    #[should_panic(expected = "sink must be alive")]
    fn dead_sink_panics() {
        let mut net = line(3, 6.0);
        net.fail_node(0);
        let _ = collect_reports(&mut net, 0);
    }
}
