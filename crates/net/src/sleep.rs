//! Sleep scheduling and network-lifetime simulation.
//!
//! The paper's third motivation for k-coverage (§1): "When k nodes are
//! covering a point, we have the option of putting some of them to sleep
//! or balance the workload among all k nodes. Thus, k-coverage leads to
//! significant energy savings and increases the lifetime for the
//! network." This module makes that claim measurable:
//!
//! - [`SleepScheduler::shifts`] partitions the alive nodes into disjoint
//!   *shifts*, each of which alone keeps every monitored point covered at
//!   the target degree (greedy set-multicover per shift);
//! - [`SleepScheduler::simulate_lifetime`] duty-cycles the shifts
//!   round-robin against a battery model and reports how much longer the
//!   network keeps its coverage guarantee compared to leaving every node
//!   awake.

use crate::network::Network;
use crate::node::NodeId;
use decor_geom::Point;

/// Builds sleep shifts and simulates duty-cycled lifetime.
///
/// ```
/// use decor_geom::{Aabb, Point};
/// use decor_net::{Network, SleepScheduler};
///
/// // Two identical sensors covering one spot can take turns.
/// let mut net = Network::new(Aabb::square(10.0));
/// net.add_node(Point::new(5.0, 5.0), 4.0, 8.0);
/// net.add_node(Point::new(5.0, 5.0), 4.0, 8.0);
/// let points = vec![Point::new(5.0, 5.0)];
/// let shifts = SleepScheduler::new(1).shifts(&net, &points);
/// assert_eq!(shifts.len(), 2);
/// let report = SleepScheduler::new(1).simulate_lifetime(&net, &points, 10.0, 1.0, 0.0);
/// assert_eq!(report.baseline_periods, 10);
/// assert_eq!(report.periods_covered, 20); // duty cycling doubles lifetime
/// ```
#[derive(Clone, Copy, Debug)]
pub struct SleepScheduler {
    /// Coverage degree each shift must maintain on its own (usually 1:
    /// the k-covered deployment is split into ~k 1-covering shifts).
    pub target_coverage: u32,
}

/// Outcome of a lifetime simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct LifetimeReport {
    /// Number of disjoint shifts the scheduler extracted.
    pub shifts: usize,
    /// Periods until coverage fell below target with duty cycling.
    pub periods_covered: u64,
    /// Periods until coverage fell below target with every node awake.
    pub baseline_periods: u64,
    /// `periods_covered / baseline_periods`.
    pub extension_factor: f64,
}

impl SleepScheduler {
    /// Creates a scheduler. Panics when `target_coverage` is zero.
    pub fn new(target_coverage: u32) -> Self {
        assert!(target_coverage >= 1, "target coverage must be at least 1");
        SleepScheduler { target_coverage }
    }

    /// For each point, the alive nodes covering it (sorted by id).
    fn coverers(net: &Network, points: &[Point]) -> Vec<Vec<NodeId>> {
        let r = max_rs(net);
        let mut buf: Vec<NodeId> = Vec::new();
        points
            .iter()
            .map(|&p| {
                net.alive_within_into(p, r, &mut buf);
                buf.iter()
                    .copied()
                    .filter(|&id| net.node(id).covers(p))
                    .collect()
            })
            .collect()
    }

    /// Partitions the alive nodes into disjoint shifts, each achieving
    /// `target_coverage` of every point in `points` on its own. Nodes
    /// left over are appended to the *first* shift as spares. Returns an
    /// empty vec when even the full network cannot reach the target.
    ///
    /// Construction is a balanced simultaneous assignment (a domatic-
    /// partition heuristic): extracting complete shifts one at a time lets
    /// the first shift hog the coverers of tight points and ruins the
    /// rest, so instead all `S` shifts are built together — the most
    /// constrained (point, shift) deficit is always served next — and `S`
    /// is found by trying the upper bound `min_p |coverers(p)| / target`
    /// downwards until a feasible partition appears.
    pub fn shifts(&self, net: &Network, points: &[Point]) -> Vec<Vec<NodeId>> {
        let coverers = Self::coverers(net, points);
        let min_cover = coverers.iter().map(Vec::len).min().unwrap_or(0) as u32;
        if min_cover < self.target_coverage {
            return Vec::new(); // even everyone awake cannot cover
        }
        let s_max = (min_cover / self.target_coverage).max(1) as usize;
        for s in (1..=s_max).rev() {
            if let Some(mut shifts) = self.try_partition(net, &coverers, s) {
                // Spares spread round-robin so every shift gets backup.
                let assigned: std::collections::BTreeSet<NodeId> =
                    shifts.iter().flatten().copied().collect();
                for (i, id) in net
                    .alive_ids()
                    .into_iter()
                    .filter(|id| !assigned.contains(id))
                    .enumerate()
                {
                    shifts[i % s].push(id);
                }
                for shift in &mut shifts {
                    shift.sort_unstable();
                }
                return shifts;
            }
        }
        Vec::new()
    }

    /// Attempts to build exactly `s` disjoint shifts simultaneously.
    fn try_partition(
        &self,
        net: &Network,
        coverers: &[Vec<NodeId>],
        s: usize,
    ) -> Option<Vec<Vec<NodeId>>> {
        let n_points = coverers.len();
        // deficit[si][pi]: coverage still needed by shift si at point pi.
        let mut deficit = vec![vec![self.target_coverage; n_points]; s];
        let mut shift_of = vec![usize::MAX; net.len()];
        let mut shifts = vec![Vec::new(); s];
        loop {
            // Most-constrained point: smallest slack between available
            // coverers and total remaining need.
            let mut pick: Option<(usize, i64)> = None; // (point, slack)
            let mut any_need = false;
            for pi in 0..n_points {
                let need: i64 = (0..s).map(|si| deficit[si][pi] as i64).sum();
                if need == 0 {
                    continue;
                }
                any_need = true;
                let avail = coverers[pi]
                    .iter()
                    .filter(|&&id| shift_of[id] == usize::MAX)
                    .count() as i64;
                let slack = avail - need;
                if slack < 0 {
                    return None; // infeasible for this s
                }
                if pick.is_none_or(|(_, sl)| slack < sl) {
                    pick = Some((pi, slack));
                }
            }
            if !any_need {
                break;
            }
            let (pi, _) = pick.expect("need exists");
            // Serve the shift with the largest deficit at pi (ties: low id).
            let si = (0..s)
                .max_by_key(|&si| (deficit[si][pi], std::cmp::Reverse(si)))
                .unwrap();
            debug_assert!(deficit[si][pi] > 0);
            // Among available coverers of pi, pick the one covering the
            // most still-deficient points *of that shift* (ties: low id).
            let mut best: Option<(NodeId, u64)> = None;
            for &id in &coverers[pi] {
                if shift_of[id] != usize::MAX {
                    continue;
                }
                let gain: u64 = coverers
                    .iter()
                    .enumerate()
                    .filter(|&(qi, c)| deficit[si][qi] > 0 && c.binary_search(&id).is_ok())
                    .count() as u64;
                if best.is_none_or(|(bid, g)| gain > g || (gain == g && id < bid)) {
                    best = Some((id, gain));
                }
            }
            let (id, _) = best?; // no available coverer: infeasible
            shift_of[id] = si;
            shifts[si].push(id);
            for (qi, c) in coverers.iter().enumerate() {
                if deficit[si][qi] > 0 && c.binary_search(&id).is_ok() {
                    deficit[si][qi] -= 1;
                }
            }
        }
        Some(shifts)
    }

    /// Simulates duty-cycled operation: in period `t`, shift `t mod S` is
    /// awake (cost `awake_cost` from its battery), everyone else sleeps
    /// (cost `sleep_cost`). When the scheduled shift can no longer meet
    /// the target (dead batteries), all surviving nodes wake as a last
    /// resort. The run ends when even that fails.
    ///
    /// Returns the lifetime report including the all-awake baseline
    /// computed under the same battery model.
    pub fn simulate_lifetime(
        &self,
        net: &Network,
        points: &[Point],
        battery: f64,
        awake_cost: f64,
        sleep_cost: f64,
    ) -> LifetimeReport {
        assert!(battery > 0.0 && awake_cost > 0.0, "positive battery/cost");
        assert!(
            sleep_cost >= 0.0 && sleep_cost < awake_cost,
            "sleeping must cost less than waking"
        );
        let shifts = self.shifts(net, points);
        let coverers = Self::coverers(net, points);
        let n = net.len();

        let covered = |energy: &[f64], awake: &dyn Fn(NodeId) -> bool| -> bool {
            coverers.iter().all(|c| {
                let mut have = 0;
                for &id in c {
                    if energy[id] >= awake_cost && awake(id) {
                        have += 1;
                        if have >= self.target_coverage {
                            return true;
                        }
                    }
                }
                false
            })
        };

        // Baseline: everyone awake every period.
        let baseline_periods = {
            let mut energy = vec![battery; n];
            let mut t = 0u64;
            loop {
                if !covered(&energy, &|_| true) {
                    break;
                }
                for e in energy.iter_mut() {
                    *e -= awake_cost;
                }
                t += 1;
                if t > 10_000_000 {
                    break; // guard
                }
            }
            t
        };

        if shifts.is_empty() {
            return LifetimeReport {
                shifts: 0,
                periods_covered: baseline_periods,
                baseline_periods,
                extension_factor: 1.0,
            };
        }

        // Duty-cycled run.
        let mut energy = vec![battery; n];
        let mut member_of = vec![usize::MAX; n];
        for (si, shift) in shifts.iter().enumerate() {
            for &id in shift {
                member_of[id] = si;
            }
        }
        let s = shifts.len();
        let mut t = 0u64;
        loop {
            let scheduled = (t % s as u64) as usize;
            let shift_ok = covered(&energy, &|id| member_of[id] == scheduled);
            let all_ok = shift_ok || covered(&energy, &|_| true);
            if !all_ok {
                break;
            }
            for id in 0..n {
                if member_of[id] == usize::MAX {
                    continue; // never part of the alive schedule
                }
                let awake = if shift_ok {
                    member_of[id] == scheduled
                } else {
                    true // emergency all-hands period
                };
                energy[id] -= if awake { awake_cost } else { sleep_cost };
                energy[id] = energy[id].max(-1.0);
            }
            t += 1;
            if t > 10_000_000 {
                break;
            }
        }

        LifetimeReport {
            shifts: s,
            periods_covered: t,
            baseline_periods,
            extension_factor: if baseline_periods == 0 {
                1.0
            } else {
                t as f64 / baseline_periods as f64
            },
        }
    }
}

fn max_rs(net: &Network) -> f64 {
    net.alive_ids()
        .into_iter()
        .map(|id| net.node(id).rs)
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::Aabb;

    /// A network where every point is covered by exactly `layers`
    /// identical sensor lattices.
    fn layered_net(layers: usize) -> (Network, Vec<Point>) {
        let mut net = Network::new(Aabb::square(40.0));
        for _ in 0..layers {
            for i in 0..6 {
                for j in 0..6 {
                    net.add_node(
                        Point::new(3.0 + 6.5 * i as f64, 3.0 + 6.5 * j as f64),
                        6.0,
                        12.0,
                    );
                }
            }
        }
        let mut pts = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                pts.push(Point::new(2.0 + 3.6 * i as f64, 2.0 + 3.6 * j as f64));
            }
        }
        (net, pts)
    }

    #[test]
    fn shifts_partition_and_each_covers() {
        let (net, pts) = layered_net(3);
        let sched = SleepScheduler::new(1);
        let shifts = sched.shifts(&net, &pts);
        assert!(shifts.len() >= 2, "3 layers must yield >= 2 shifts");
        // Disjoint.
        let mut seen = std::collections::BTreeSet::new();
        for shift in &shifts {
            for &id in shift {
                assert!(seen.insert(id), "node {id} in two shifts");
            }
            // Each shift alone covers every point.
            for &p in &pts {
                assert!(
                    shift.iter().any(|&id| net.node(id).covers(p)),
                    "point {p} uncovered by a shift"
                );
            }
        }
    }

    #[test]
    fn impossible_target_yields_no_shifts() {
        let (net, pts) = layered_net(1);
        let sched = SleepScheduler::new(5); // only 1 layer exists
        assert!(sched.shifts(&net, &pts).is_empty());
    }

    #[test]
    fn lifetime_extension_tracks_layer_count() {
        let (net, pts) = layered_net(3);
        let sched = SleepScheduler::new(1);
        let report = sched.simulate_lifetime(&net, &pts, 100.0, 1.0, 0.01);
        assert!(report.shifts >= 2);
        assert!(
            report.extension_factor > 1.8,
            "3 layers should nearly triple lifetime, got {:.2}x",
            report.extension_factor
        );
        assert!(report.periods_covered > report.baseline_periods);
    }

    #[test]
    fn single_layer_has_no_extension() {
        let (net, pts) = layered_net(1);
        let sched = SleepScheduler::new(1);
        let report = sched.simulate_lifetime(&net, &pts, 50.0, 1.0, 0.0);
        assert_eq!(report.shifts, 1);
        assert!(
            (report.extension_factor - 1.0).abs() < 0.05,
            "one shift cannot extend lifetime: {report:?}"
        );
    }

    #[test]
    fn baseline_matches_battery_budget() {
        let (net, pts) = layered_net(2);
        let sched = SleepScheduler::new(1);
        let report = sched.simulate_lifetime(&net, &pts, 10.0, 1.0, 0.0);
        // All-awake: every node dies after exactly 10 periods.
        assert_eq!(report.baseline_periods, 10);
    }

    #[test]
    fn zero_sleep_cost_gives_near_linear_scaling() {
        let (net, pts) = layered_net(4);
        let sched = SleepScheduler::new(1);
        let report = sched.simulate_lifetime(&net, &pts, 20.0, 1.0, 0.0);
        assert!(report.shifts >= 3);
        assert!(
            report.extension_factor >= report.shifts as f64 * 0.8,
            "{report:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_target_panics() {
        let _ = SleepScheduler::new(0);
    }

    #[test]
    #[should_panic(expected = "cost less")]
    fn sleep_dearer_than_awake_panics() {
        let (net, pts) = layered_net(1);
        let _ = SleepScheduler::new(1).simulate_lifetime(&net, &pts, 1.0, 1.0, 2.0);
    }
}
