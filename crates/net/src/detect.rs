//! The heartbeat failure detector of §3.2.
//!
//! "Neighboring nodes periodically exchange meta-information about their
//! positions, with a period `Tc`. Once a node stops receiving such messages
//! from one of its neighbors, this indicates that the neighbor has failed.
//! The nodes do not need to be synchronized."
//!
//! [`HeartbeatSim`] runs that protocol on the discrete-event engine: every
//! alive node broadcasts a heartbeat each period (with a per-node random
//! phase — *unsynchronized*), remembers when it last heard each neighbor,
//! and declares a neighbor failed after `timeout_periods` silent periods.

use crate::chaos::ChaosEngine;
use crate::event::{EventQueue, Time};
use crate::messages::Message;
use crate::network::Network;
use crate::node::NodeId;
use crate::rotation::ShiftSchedule;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Heartbeat protocol parameters.
#[derive(Clone, Copy, Debug)]
pub struct HeartbeatConfig {
    /// Heartbeat period `Tc` in ticks.
    pub period: Time,
    /// A neighbor is declared failed after this many silent periods.
    /// Must be at least 2 (one period of silence can be pure phase skew).
    pub timeout_periods: u32,
    /// Seed for the per-node phase jitter.
    pub seed: u64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            period: 1_000,
            timeout_periods: 3,
            seed: 0,
        }
    }
}

/// Outcome of a detection simulation.
#[derive(Clone, Debug, Default)]
pub struct DetectionReport {
    /// For every failed node that was detected: the earliest detection
    /// time and the detecting observer.
    pub first_detection: BTreeMap<NodeId, (Time, NodeId)>,
    /// Failed nodes that no alive neighbor ever detected (isolated nodes).
    pub undetected: Vec<NodeId>,
    /// Nodes suspected failed that were actually alive, with the earliest
    /// suspicion time and observer. Empty on a loss-free medium; on a
    /// lossy one, `timeout_periods` consecutively lost heartbeats trigger
    /// a false alarm (probability `loss^timeout` per window).
    pub false_positives: BTreeMap<NodeId, (Time, NodeId)>,
    /// Heartbeat messages broadcast during the run.
    pub heartbeats_sent: u64,
    /// Suspicions suppressed because the silent neighbor was scheduled
    /// asleep by the rotation (see [`crate::rotation`]): the silence
    /// crossed the timeout, but the three-state lifecycle says `Asleep`,
    /// not `Dead`, so no alarm was raised. Always 0 without a schedule.
    pub sleeping_suppressed: u64,
}

impl DetectionReport {
    /// Worst-case detection latency relative to the failure instant,
    /// `None` when nothing was detected.
    pub fn max_latency(&self, fail_at: Time) -> Option<Time> {
        self.first_detection
            .values()
            .map(|&(t, _)| t.saturating_sub(fail_at))
            .max()
    }
}

/// The suspicion predicate of §3.2, extracted pure so the miss-count
/// boundary is testable exactly: an observer suspects a neighbor when the
/// silence `now - last_heard` spans at least `timeout_periods` full
/// heartbeat periods — *exactly* at `period * timeout_periods` ticks, not
/// one tick sooner. Any heard heartbeat moves `last_heard` forward and
/// thereby resets the silence window from scratch.
///
/// Saturating: an observer clock behind the last-heard stamp (impossible
/// in the simulator, defensive for callers) reads as zero silence.
pub fn silent_too_long(now: Time, last_heard: Time, period: Time, timeout_periods: u32) -> bool {
    now.saturating_sub(last_heard) >= period * timeout_periods as Time
}

#[derive(Clone, Copy, Debug)]
enum Ev {
    /// Node broadcasts its heartbeat and reschedules.
    Beat(NodeId),
    /// Node scans its neighbor table for silent neighbors.
    Check(NodeId),
    /// The failure instant: victims drop out of the network.
    Fail,
    /// A shift boundary: re-apply the schedule's sleep flags to the
    /// network. Pre-scheduled before all Beats/Checks so FIFO tie-breaking
    /// pops it first at an equal tick — a node waking at `t` beats at `t`.
    Rotate,
}

/// Discrete-event heartbeat detector simulation.
pub struct HeartbeatSim {
    cfg: HeartbeatConfig,
}

impl HeartbeatSim {
    /// Creates a simulator with the given configuration.
    ///
    /// Panics if `timeout_periods < 2` — with unsynchronized phases a
    /// single silent period cannot distinguish skew from failure.
    pub fn new(cfg: HeartbeatConfig) -> Self {
        assert!(cfg.period > 0, "heartbeat period must be positive");
        assert!(
            cfg.timeout_periods >= 2,
            "timeout must span at least 2 periods to tolerate phase skew"
        );
        HeartbeatSim { cfg }
    }

    /// Runs the protocol on `net`: heartbeats start at time 0, the nodes in
    /// `victims` fail at `fail_at`, and the simulation ends at `horizon`.
    ///
    /// Returns who detected which failure and when. The network is mutated
    /// (victims fail, heartbeat traffic is accounted in `net.stats`).
    pub fn run(
        &self,
        net: &mut Network,
        victims: &[NodeId],
        fail_at: Time,
        horizon: Time,
    ) -> DetectionReport {
        self.run_inner(net, victims, fail_at, horizon, None, None)
    }

    /// Like [`HeartbeatSim::run`], but rotation-aware: nodes scheduled
    /// asleep by `schedule` pause their heartbeats and checks, observers
    /// measure a neighbor's silence only across windows where *both* ends
    /// were scheduled awake, and a timeout crossed while the neighbor is
    /// asleep is counted in
    /// [`DetectionReport::sleeping_suppressed`] instead of raising an
    /// alarm. With an empty or single-shift schedule this is exactly
    /// [`HeartbeatSim::run`].
    pub fn run_scheduled(
        &self,
        net: &mut Network,
        victims: &[NodeId],
        fail_at: Time,
        horizon: Time,
        schedule: &ShiftSchedule,
    ) -> DetectionReport {
        self.run_inner(net, victims, fail_at, horizon, Some(schedule), None)
    }

    /// Rotation-aware detection interleaved with a [`ChaosEngine`]
    /// (combines [`HeartbeatSim::run_scheduled`] and
    /// [`HeartbeatSim::run_with_chaos`]).
    pub fn run_scheduled_with_chaos(
        &self,
        net: &mut Network,
        victims: &[NodeId],
        fail_at: Time,
        horizon: Time,
        schedule: &ShiftSchedule,
        chaos: &mut ChaosEngine,
    ) -> DetectionReport {
        self.run_inner(net, victims, fail_at, horizon, Some(schedule), Some(chaos))
    }

    /// Like [`HeartbeatSim::run`], but interleaves a [`ChaosEngine`] with
    /// the detector's event queue: every scripted fault due at or before
    /// an event's tick is injected before the event is handled, so
    /// blackholes and partitions can open and close *between heartbeats*.
    /// With an exhausted or empty plan this is exactly `run`.
    pub fn run_with_chaos(
        &self,
        net: &mut Network,
        victims: &[NodeId],
        fail_at: Time,
        horizon: Time,
        chaos: &mut ChaosEngine,
    ) -> DetectionReport {
        self.run_inner(net, victims, fail_at, horizon, None, Some(chaos))
    }

    fn run_inner(
        &self,
        net: &mut Network,
        victims: &[NodeId],
        fail_at: Time,
        horizon: Time,
        schedule: Option<&ShiftSchedule>,
        mut chaos: Option<&mut ChaosEngine>,
    ) -> DetectionReport {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut q: EventQueue<Ev> = EventQueue::new();
        let period = self.cfg.period;

        // Neighbor tables and last-heard clocks, established by an initial
        // hello exchange at t=0 (charged to the maintenance plane).
        let ids = net.alive_ids();
        let mut last_heard: BTreeMap<(NodeId, NodeId), Time> = BTreeMap::new();
        let mut watch: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for &id in &ids {
            let pos = net.node(id).pos;
            let heard_by = net.broadcast(id, Message::Hello { pos });
            for observer in heard_by {
                last_heard.insert((observer, id), 0);
                watch.entry(observer).or_default().push(id);
            }
        }

        // Shift boundaries, pre-scheduled before any Beat/Check so the
        // queue's FIFO tie-break applies the new sleep flags first when a
        // boundary coincides with a beat. Rotating schedules only: an
        // always-on schedule must leave the event stream bit-identical to
        // the schedule-free run.
        let rotating = schedule.filter(|s| s.n_shifts() > 1);
        if let Some(sched) = rotating {
            let mut t = 0;
            while t <= horizon {
                q.schedule(t, Ev::Rotate);
                t += sched.period();
            }
        }

        // Unsynchronized start: each node's first beat at a random phase.
        for &id in &ids {
            let phase = rng.gen_range(0..period);
            q.schedule(phase, Ev::Beat(id));
            q.schedule(phase + period, Ev::Check(id));
        }
        q.schedule(fail_at, Ev::Fail);

        let mut report = DetectionReport::default();
        let mut detected: BTreeMap<NodeId, (Time, NodeId)> = BTreeMap::new();

        while let Some((now, ev)) = q.pop() {
            if now > horizon {
                break;
            }
            if let Some(engine) = chaos.as_deref_mut() {
                engine.advance_to(net, now);
            }
            match ev {
                Ev::Fail => {
                    for &v in victims {
                        net.fail_node(v);
                    }
                }
                Ev::Rotate => {
                    if let Some(sched) = rotating {
                        sched.apply_sleep_flags(net, now);
                    }
                }
                Ev::Beat(id) => {
                    if !net.is_alive(id) {
                        continue; // dead nodes stop beating — that is the signal
                    }
                    // A scheduled-asleep node's radio is off: it skips the
                    // beat but keeps its cadence for the next awake shift.
                    let asleep = rotating.is_some_and(|s| s.is_scheduled_asleep(id, now));
                    if !asleep {
                        let pos = net.node(id).pos;
                        let heard_by = net.broadcast(id, Message::Heartbeat { pos });
                        report.heartbeats_sent += 1;
                        for observer in heard_by {
                            last_heard.insert((observer, id), now);
                        }
                    }
                    q.schedule(now + period, Ev::Beat(id));
                }
                Ev::Check(id) => {
                    if !net.is_alive(id) {
                        continue;
                    }
                    if rotating.is_some_and(|s| s.is_scheduled_asleep(id, now)) {
                        // A sleeping observer scans nothing (radio off)
                        // but keeps its check cadence.
                        q.schedule(now + period, Ev::Check(id));
                        continue;
                    }
                    if let Some(neighbors) = watch.get(&id) {
                        for &nb in neighbors {
                            // Suspicion is based purely on silence: the
                            // observer cannot consult ground truth. On a
                            // lossy medium this can misfire on alive
                            // neighbors (classified below).
                            let last = last_heard.get(&(id, nb)).copied().unwrap_or(0);
                            match rotating {
                                Some(sched) if sched.is_scheduled_asleep(nb, now) => {
                                    // Three-state lifecycle: the schedule
                                    // says Asleep, not Dead. Count the
                                    // would-be alarm, never raise it.
                                    if silent_too_long(now, last, period, self.cfg.timeout_periods)
                                    {
                                        report.sleeping_suppressed += 1;
                                    }
                                }
                                Some(sched) => {
                                    // Silence only counts across windows
                                    // where both ends were on duty: a
                                    // neighbor (or the observer itself)
                                    // fresh off a sleep shift gets a full
                                    // timeout before suspicion.
                                    let eff = last
                                        .max(sched.last_wake_at(nb, now))
                                        .max(sched.last_wake_at(id, now));
                                    if silent_too_long(now, eff, period, self.cfg.timeout_periods) {
                                        detected.entry(nb).or_insert((now, id));
                                    }
                                }
                                None => {
                                    if silent_too_long(now, last, period, self.cfg.timeout_periods)
                                    {
                                        detected.entry(nb).or_insert((now, id));
                                    }
                                }
                            }
                        }
                    }
                    q.schedule(now + period, Ev::Check(id));
                }
            }
        }

        report.undetected = victims
            .iter()
            .copied()
            .filter(|v| !detected.contains_key(v))
            .collect();
        // Classify suspicions: real failures vs false alarms. A suspicion
        // of a node that is alive at the end of the run (i.e. never in
        // `victims`) is a false positive.
        let victim_set: std::collections::BTreeSet<NodeId> = victims.iter().copied().collect();
        for (nb, when) in detected {
            if victim_set.contains(&nb) {
                report.first_detection.insert(nb, when);
            } else {
                report.false_positives.insert(nb, when);
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::{Aabb, Point};

    fn line_network(n: usize, spacing: f64) -> Network {
        let mut net = Network::new(Aabb::square(100.0));
        for i in 0..n {
            net.add_node(Point::new(5.0 + i as f64 * spacing, 50.0), 4.0, 8.0);
        }
        net
    }

    fn cfg(seed: u64) -> HeartbeatConfig {
        HeartbeatConfig {
            period: 100,
            timeout_periods: 3,
            seed,
        }
    }

    #[test]
    fn failed_node_is_detected_by_neighbors() {
        let mut net = line_network(3, 5.0);
        let sim = HeartbeatSim::new(cfg(1));
        let report = sim.run(&mut net, &[1], 500, 2000);
        assert!(report.first_detection.contains_key(&1));
        assert!(report.undetected.is_empty());
        let (t, observer) = report.first_detection[&1];
        assert!(t > 500, "detection after the failure instant");
        assert!(observer == 0 || observer == 2);
    }

    #[test]
    fn detection_latency_is_bounded_by_timeout_plus_period() {
        let mut net = line_network(5, 5.0);
        let sim = HeartbeatSim::new(cfg(2));
        let report = sim.run(&mut net, &[2], 1000, 10_000);
        let latency = report.max_latency(1000).expect("detected");
        // Worst case: last beat right before failure, timeout 3 periods,
        // check up to one period later => <= 5 periods with slack.
        assert!(latency <= 500, "latency {latency}");
        assert!(latency >= 200, "cannot detect faster than ~2 periods");
    }

    #[test]
    fn no_false_positives_without_failures() {
        let mut net = line_network(4, 5.0);
        let sim = HeartbeatSim::new(cfg(3));
        let report = sim.run(&mut net, &[], 500, 5000);
        assert!(report.first_detection.is_empty());
        assert!(report.undetected.is_empty());
    }

    #[test]
    fn isolated_failure_goes_undetected() {
        // Node 2 is out of everyone's range.
        let mut net = line_network(2, 5.0);
        net.add_node(Point::new(90.0, 90.0), 4.0, 8.0);
        let sim = HeartbeatSim::new(cfg(4));
        let report = sim.run(&mut net, &[2], 500, 5000);
        assert_eq!(report.undetected, vec![2]);
    }

    #[test]
    fn simultaneous_failures_all_detected() {
        let mut net = line_network(6, 5.0);
        let sim = HeartbeatSim::new(cfg(5));
        let report = sim.run(&mut net, &[1, 3], 700, 8000);
        assert!(report.first_detection.contains_key(&1));
        assert!(report.first_detection.contains_key(&3));
    }

    #[test]
    fn heartbeat_traffic_is_maintenance_plane() {
        let mut net = line_network(3, 5.0);
        let sim = HeartbeatSim::new(cfg(6));
        let report = sim.run(&mut net, &[], 100, 1000);
        assert!(report.heartbeats_sent > 0);
        assert_eq!(net.stats.protocol_sent, 0);
        assert!(net.stats.maintenance_sent >= report.heartbeats_sent);
    }

    #[test]
    fn dead_nodes_send_no_heartbeats_after_failure() {
        let mut net = line_network(2, 5.0);
        let sim = HeartbeatSim::new(cfg(7));
        let horizon = 10_000;
        let report = sim.run(&mut net, &[1], 0, horizon);
        // Node 1 fails at t=0 (before its first beat fires it may beat once
        // if its phase event was scheduled before Fail pops — FIFO order
        // puts Beat first only if scheduled at the same tick earlier).
        // Either way, its beats must stop early.
        let periods = horizon / 100;
        assert!(
            report.heartbeats_sent <= periods + 2,
            "sent {} but only one node should keep beating",
            report.heartbeats_sent
        );
    }

    #[test]
    fn loss_free_medium_never_false_positives() {
        let mut net = line_network(6, 5.0);
        let sim = HeartbeatSim::new(cfg(11));
        let report = sim.run(&mut net, &[2], 500, 8000);
        assert!(report.false_positives.is_empty());
        assert!(report.first_detection.contains_key(&2));
    }

    #[test]
    fn heavy_loss_triggers_false_positives() {
        // 70% loss: P(3 consecutive heartbeats lost) = 0.343 per window,
        // so over 30 periods false alarms are near-certain.
        let mut net = line_network(8, 5.0);
        net.set_loss(0.7, 42);
        let sim = HeartbeatSim::new(cfg(12));
        let report = sim.run(&mut net, &[], 500, 30_000);
        assert!(
            !report.false_positives.is_empty(),
            "70% loss must cause false alarms"
        );
        assert!(report.first_detection.is_empty(), "nobody actually failed");
    }

    #[test]
    fn moderate_loss_still_detects_real_failures() {
        let mut net = line_network(6, 5.0);
        net.set_loss(0.2, 7);
        let sim = HeartbeatSim::new(cfg(13));
        let report = sim.run(&mut net, &[3], 500, 10_000);
        assert!(
            report.first_detection.contains_key(&3),
            "real failure must still be caught through 20% loss"
        );
    }

    #[test]
    fn run_is_deterministic_in_seed() {
        let run = |seed| {
            let mut net = line_network(5, 5.0);
            let sim = HeartbeatSim::new(cfg(seed));
            let r = sim.run(&mut net, &[2], 500, 5000);
            (r.first_detection, r.heartbeats_sent)
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn suspicion_fires_at_exactly_the_miss_threshold() {
        // Declared failed after *exactly* `timeout_periods` silent
        // periods — not one tick sooner, not one period later.
        for period in [1u64, 10, 100, 1_000] {
            for tp in 2u32..=5 {
                let window = period * tp as Time;
                let last = 700 * period; // arbitrary positive last-heard
                assert!(
                    !silent_too_long(last + window - 1, last, period, tp),
                    "period {period}, tp {tp}: fired a tick early"
                );
                assert!(
                    silent_too_long(last + window, last, period, tp),
                    "period {period}, tp {tp}: missed the exact boundary"
                );
                assert!(
                    silent_too_long(last + window + 1, last, period, tp),
                    "period {period}, tp {tp}: suspicion must latch"
                );
            }
        }
    }

    #[test]
    fn single_late_heartbeat_resets_the_silence_window() {
        let (period, tp) = (100u64, 3u32);
        let window = period * tp as Time;
        // Silent since t=0: about to be declared at t=300...
        assert!(silent_too_long(window, 0, period, tp));
        // ...but one heartbeat at t=299 resets the count from scratch:
        let heard = window - 1;
        assert!(!silent_too_long(window, heard, period, tp));
        assert!(!silent_too_long(heard + window - 1, heard, period, tp));
        // and the full threshold must elapse again after it.
        assert!(silent_too_long(heard + window, heard, period, tp));
    }

    #[test]
    fn suspicion_clock_saturates() {
        // An observer stamp ahead of `now` reads as zero silence, never
        // as a huge wrapped value.
        assert!(!silent_too_long(50, 100, 10, 2));
    }

    #[test]
    fn sim_detection_time_matches_the_pure_predicate() {
        // With one observer the sim's detection instant must be the first
        // Check tick where `silent_too_long` holds over the victim's true
        // last beat: no off-by-one between the extracted predicate and
        // the event loop. The victim's last beat lands in
        // [fail_at - period, fail_at], and detection fires at the first
        // check in [last + timeout, last + timeout + period), so the
        // detection tick is confined to
        // [fail_at + timeout - period, fail_at + timeout + period).
        for seed in 0..20u64 {
            let mut net = line_network(2, 5.0);
            let sim = HeartbeatSim::new(cfg(seed));
            let fail_at = 500;
            let report = sim.run(&mut net, &[1], fail_at, 5_000);
            let (t, observer) = report.first_detection[&1];
            assert_eq!(observer, 0);
            assert!(
                (fail_at + 200..fail_at + 400).contains(&t),
                "seed {seed}: detection at {t} outside the exact window"
            );
        }
    }

    #[test]
    fn blackhole_past_the_timeout_causes_one_sided_suspicion() {
        // A chaos blackhole opens 1 -> 0 at t=1000 for 8 periods — far
        // past the 3-period timeout: node 0 falsely suspects node 1,
        // while the clean reverse direction raises no alarm about 0.
        use crate::chaos::{ChaosEngine, FaultPlan};
        let mut net = line_network(2, 5.0);
        let sim = HeartbeatSim::new(cfg(22));
        let mut chaos = ChaosEngine::new(
            FaultPlan::parse("1000 blackhole 1 0\n1800 unblackhole 1 0\n").unwrap(),
        );
        let report = sim.run_with_chaos(&mut net, &[], 10_000, 5_000, &mut chaos);
        assert!(
            report.false_positives.contains_key(&1),
            "muted neighbor must be suspected: {report:?}"
        );
        assert_eq!(report.false_positives[&1].1, 0, "observer is node 0");
        assert!(
            !report.false_positives.contains_key(&0),
            "reverse link is clean, node 1 keeps hearing node 0"
        );
        // The last heard beat lands in [900, 1000), so the 3-period
        // threshold cannot be crossed before t=1200.
        let (t, _) = report.false_positives[&1];
        assert!(t >= 1200, "suspicion needs 3 silent periods (got {t})");
    }

    #[test]
    fn blackhole_below_the_timeout_is_tolerated() {
        // The same link mutes for only 2 periods with a 4-period timeout:
        // the first heartbeat after the heal resets the silence window
        // before any check crosses the threshold — no alarm.
        use crate::chaos::{ChaosEngine, FaultPlan};
        let mut net = line_network(2, 5.0);
        let sim = HeartbeatSim::new(HeartbeatConfig {
            period: 100,
            timeout_periods: 4,
            seed: 23,
        });
        let mut chaos = ChaosEngine::new(
            FaultPlan::parse("1000 blackhole 1 0\n1200 unblackhole 1 0\n").unwrap(),
        );
        let report = sim.run_with_chaos(&mut net, &[], 10_000, 5_000, &mut chaos);
        assert!(
            report.false_positives.is_empty(),
            "a sub-timeout mute must not alarm: {report:?}"
        );
    }

    #[test]
    fn run_with_empty_chaos_plan_matches_run() {
        use crate::chaos::{ChaosEngine, FaultPlan};
        let plain = {
            let mut net = line_network(5, 5.0);
            let sim = HeartbeatSim::new(cfg(9));
            let r = sim.run(&mut net, &[2], 500, 5_000);
            (r.first_detection, r.heartbeats_sent, net.stats.total_sent)
        };
        let chaotic = {
            let mut net = line_network(5, 5.0);
            let sim = HeartbeatSim::new(cfg(9));
            let mut chaos = ChaosEngine::new(FaultPlan::empty());
            let r = sim.run_with_chaos(&mut net, &[2], 500, 5_000, &mut chaos);
            (r.first_detection, r.heartbeats_sent, net.stats.total_sent)
        };
        assert_eq!(plain, chaotic);
    }

    #[test]
    fn sleeping_node_is_never_suspected() {
        // Two alternating shifts, shift period 4 heartbeat periods: every
        // node is silent for 400-tick stretches — far past the 300-tick
        // timeout — yet the three-state lifecycle must classify that
        // silence as Asleep, not Dead: zero false positives, and the
        // suppression counter proves the timeout actually crossed.
        use crate::rotation::ShiftSchedule;
        let mut net = line_network(6, 5.0);
        let sched = ShiftSchedule::new(vec![vec![0, 2, 4], vec![1, 3, 5]], 400, 6);
        let sim = HeartbeatSim::new(cfg(31));
        let report = sim.run_scheduled(&mut net, &[], 100_000, 8_000, &sched);
        assert!(
            report.false_positives.is_empty(),
            "scheduled sleep misread as failure: {report:?}"
        );
        assert!(report.first_detection.is_empty());
        assert!(
            report.sleeping_suppressed > 0,
            "the timeout never crossed — the suppression path was not exercised"
        );
    }

    #[test]
    fn dead_node_is_detected_by_its_shift_mates() {
        // Victim 1 shares shift 0 with its watcher 0: a real failure is
        // still caught under rotation, during their common awake windows.
        use crate::rotation::ShiftSchedule;
        let mut net = line_network(4, 5.0);
        let sched = ShiftSchedule::new(vec![vec![0, 1], vec![2, 3]], 800, 4);
        let sim = HeartbeatSim::new(cfg(32));
        let report = sim.run_scheduled(&mut net, &[1], 100, 20_000, &sched);
        assert!(
            report.first_detection.contains_key(&1),
            "rotation must not mask a real failure: {report:?}"
        );
        assert!(report.false_positives.is_empty(), "{report:?}");
    }

    #[test]
    fn fresh_waker_gets_a_full_timeout_window() {
        // Detection of a same-shift victim can only fire once the shift
        // has been awake a full timeout: silence accrued while either end
        // slept is not evidence.
        use crate::rotation::ShiftSchedule;
        let mut net = line_network(4, 5.0);
        let sched = ShiftSchedule::new(vec![vec![0, 1], vec![2, 3]], 800, 4);
        let sim = HeartbeatSim::new(cfg(33));
        // Fail during the victim's *off* shift: [800, 1600).
        let report = sim.run_scheduled(&mut net, &[1], 900, 20_000, &sched);
        let (t, _) = report.first_detection[&1];
        assert!(
            t >= 1600 + 300,
            "suspected at {t}, before the shift was awake a full timeout"
        );
    }

    #[test]
    fn always_on_schedule_matches_plain_run() {
        use crate::rotation::ShiftSchedule;
        let plain = {
            let mut net = line_network(5, 5.0);
            let sim = HeartbeatSim::new(cfg(34));
            let r = sim.run(&mut net, &[2], 500, 5_000);
            (r.first_detection, r.heartbeats_sent, net.stats.total_sent)
        };
        let scheduled = {
            let mut net = line_network(5, 5.0);
            let sim = HeartbeatSim::new(cfg(34));
            let sched = ShiftSchedule::always_on(400, 5);
            let r = sim.run_scheduled(&mut net, &[2], 500, 5_000, &sched);
            assert_eq!(r.sleeping_suppressed, 0);
            (r.first_detection, r.heartbeats_sent, net.stats.total_sent)
        };
        assert_eq!(plain, scheduled, "always-on rotation must be a no-op");
    }

    #[test]
    fn rotation_halves_the_heartbeat_traffic() {
        use crate::rotation::ShiftSchedule;
        let beats = |sched: Option<ShiftSchedule>| {
            let mut net = line_network(6, 5.0);
            let sim = HeartbeatSim::new(cfg(35));
            match sched {
                Some(s) => sim.run_scheduled(&mut net, &[], 100_000, 20_000, &s),
                None => sim.run(&mut net, &[], 100_000, 20_000),
            }
            .heartbeats_sent
        };
        let on = beats(None);
        let rotated = beats(Some(ShiftSchedule::new(
            vec![vec![0, 2, 4], vec![1, 3, 5]],
            400,
            6,
        )));
        assert!(
            rotated * 2 <= on + 6,
            "two disjoint shifts must ~halve beats: {rotated} vs {on}"
        );
    }

    #[test]
    #[should_panic(expected = "timeout must span")]
    fn tiny_timeout_panics() {
        let _ = HeartbeatSim::new(HeartbeatConfig {
            period: 10,
            timeout_periods: 1,
            seed: 0,
        });
    }
}
