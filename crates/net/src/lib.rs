//! A wireless-sensor-network simulator substrate for DECOR.
//!
//! The paper evaluates DECOR "in simulation" without naming a simulator, so
//! this crate builds the substrate its evaluation needs:
//!
//! - [`event`] — a deterministic discrete-event engine (integer tick clock,
//!   binary-heap queue with stable FIFO tie-breaking);
//! - [`node`] — sensor node state: position, sensing radius `rs`,
//!   communication radius `rc`, alive/failed flag;
//! - [`network`] — the network fabric: spatial-indexed neighbor lookup,
//!   range-checked unicast/broadcast with per-node message and energy
//!   accounting (the paper equates "messages sent" with energy dissipation
//!   in Fig. 10);
//! - [`messages`] — the protocol message vocabulary DECOR exchanges;
//! - [`failure`] — failure injection: i.i.d. node failures with probability
//!   `q`, exact random fractions, and disc-shaped *area failures* (natural
//!   disasters, §2.1);
//! - [`detect`] — the heartbeat failure detector of §3.2: neighbors
//!   exchange position meta-information with period `Tc`; silence beyond a
//!   timeout flags the neighbor as failed;
//! - [`transport`] — a reliable-delivery layer over the lossy medium:
//!   per-link sequence numbers, acks, bounded retransmissions with
//!   deterministic exponential backoff, duplicate suppression, and
//!   terminal delivery outcomes;
//! - [`election`] — randomized leader election with round-robin rotation
//!   (the paper's cited LEACH-style algorithms, abstracted);
//! - [`chaos`] — deterministic fault injection: sim-time-ordered
//!   [`FaultPlan`] scripts (crashes, partitions, blackholes, latency
//!   spikes, drains), a seeded plan generator, and ddmin plan shrinking;
//! - [`energy`] — a tx/rx/idle energy model;
//! - [`sleep`] / [`rotation`] — set-k-cover sleep shifts (the paper's
//!   motivation #3) and the runtime rotation state: shift schedules on the
//!   tick clock, battery knobs, and the awake / scheduled-asleep / dead
//!   node lifecycle the rotation-aware detector distinguishes.
//!
//! Everything is deterministic given explicit seeds; nothing here spawns
//! threads (parallelism lives in `decor-core::parallel`, across replicas).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod detect;
pub mod election;
pub mod energy;
pub mod event;
pub mod failure;
pub mod messages;
pub mod network;
pub mod node;
pub mod reports;
pub mod rotation;
pub mod routing;
pub mod sleep;
pub mod transport;

pub use chaos::{shrink_plan, ChaosEngine, FaultEvent, FaultKind, FaultPlan};
pub use detect::{silent_too_long, DetectionReport, HeartbeatConfig, HeartbeatSim};
pub use election::{elect_random, rotation_leader, rotation_leader_in};
pub use energy::EnergyModel;
pub use event::{EventQueue, Time};
pub use failure::FailurePlan;
pub use messages::Message;
pub use network::{NetStats, Network, SendError};
pub use node::{Node, NodeId};
pub use reports::{collect_reports, sink_near, DeliveryReport};
pub use rotation::{NodeLifecycle, RotationConfig, ShiftSchedule};
pub use routing::{greedy_geographic, send_routed, shortest_path};
pub use sleep::{LifetimeReport, SleepScheduler};
pub use transport::{DeliveryOutcome, Inbound, MsgId, Transport, TransportConfig, TransportStats};
