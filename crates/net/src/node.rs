//! Sensor node state.

use decor_geom::{Disk, Point};
use serde::{Deserialize, Serialize};

/// Index of a node within its [`crate::Network`].
pub type NodeId = usize;

/// A static, homogeneous-or-not sensor device (paper §2).
///
/// Each node has a sensing radius `rs` (it covers the disk of radius `rs`
/// around its position) and a communication radius `rc` (it can exchange
/// messages with nodes within `rc`). The paper's only standing assumption
/// is `rs <= rc`, enforced at construction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Position in the field (GPS-accurate per the paper's assumption).
    pub pos: Point,
    /// Sensing radius.
    pub rs: f64,
    /// Communication radius (`>= rs`).
    pub rc: f64,
    /// False once the node has failed; failed nodes neither sense nor
    /// communicate.
    pub alive: bool,
}

impl Node {
    /// Creates an alive node. Panics unless `0 < rs <= rc`.
    pub fn new(pos: Point, rs: f64, rc: f64) -> Self {
        assert!(
            rs > 0.0 && rs.is_finite(),
            "sensing radius must be positive"
        );
        assert!(
            rc >= rs,
            "the paper's standing assumption is rs <= rc (got rs={rs}, rc={rc})"
        );
        Node {
            pos,
            rs,
            rc,
            alive: true,
        }
    }

    /// The node's sensing disk.
    pub fn sensing_disk(&self) -> Disk {
        Disk::new(self.pos, self.rs)
    }

    /// The node's communication disk.
    pub fn comm_disk(&self) -> Disk {
        Disk::new(self.pos, self.rc)
    }

    /// Does this (alive) node cover point `p`?
    #[inline]
    pub fn covers(&self, p: Point) -> bool {
        self.alive && self.pos.dist_sq(p) <= self.rs * self.rs
    }

    /// Can this (alive) node talk to a node at `p`?
    #[inline]
    pub fn reaches(&self, p: Point) -> bool {
        self.alive && self.pos.dist_sq(p) <= self.rc * self.rc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_within_rs_only() {
        let n = Node::new(Point::new(10.0, 10.0), 4.0, 8.0);
        assert!(n.covers(Point::new(13.0, 10.0)));
        assert!(n.covers(Point::new(14.0, 10.0))); // boundary
        assert!(!n.covers(Point::new(14.1, 10.0)));
    }

    #[test]
    fn reaches_within_rc_only() {
        let n = Node::new(Point::new(0.0, 0.0), 4.0, 8.0);
        assert!(n.reaches(Point::new(8.0, 0.0)));
        assert!(!n.reaches(Point::new(8.1, 0.0)));
    }

    #[test]
    fn dead_node_neither_covers_nor_reaches() {
        let mut n = Node::new(Point::ORIGIN, 4.0, 8.0);
        n.alive = false;
        assert!(!n.covers(Point::ORIGIN));
        assert!(!n.reaches(Point::ORIGIN));
    }

    #[test]
    #[should_panic(expected = "rs <= rc")]
    fn rc_smaller_than_rs_panics() {
        let _ = Node::new(Point::ORIGIN, 5.0, 4.0);
    }

    #[test]
    #[should_panic(expected = "sensing radius must be positive")]
    fn zero_rs_panics() {
        let _ = Node::new(Point::ORIGIN, 0.0, 4.0);
    }

    #[test]
    fn disks_reflect_radii() {
        let n = Node::new(Point::new(1.0, 2.0), 3.0, 7.0);
        assert_eq!(n.sensing_disk().radius, 3.0);
        assert_eq!(n.comm_disk().radius, 7.0);
        assert_eq!(n.sensing_disk().center, n.pos);
    }
}
