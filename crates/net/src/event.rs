//! A deterministic discrete-event queue.
//!
//! Simulation time is an integer tick count ([`Time`]); callers choose the
//! tick granularity (the heartbeat simulator uses 1 tick = 1 ms). Events
//! scheduled for the same tick pop in FIFO order thanks to a monotone
//! sequence number, which keeps runs bit-for-bit reproducible regardless of
//! heap internals.

use std::collections::BinaryHeap;

/// Simulation time in ticks.
pub type Time = u64;

/// A time-ordered event queue with stable FIFO tie-breaking.
///
/// `BinaryHeap` needs `Ord` on the stored items; `HeapItem` implements it
/// manually on `(time, seq)` only, so the event payload `E` needs no
/// ordering traits.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapItem<E>>,
    seq: u64,
    now: Time,
}

struct HeapItem<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapItem<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapItem<E> {}
impl<E> PartialOrd for HeapItem<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapItem<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current simulation time: the timestamp of the last popped event
    /// (zero before any pop).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Returns the queue to its initial state (empty, time zero) while
    /// keeping the heap's buffer, so a reused queue schedules without
    /// reallocating.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.seq = 0;
        self.now = 0;
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Panics when scheduling into the past (`at < now`): discrete-event
    /// causality violation.
    pub fn schedule(&mut self, at: Time, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule event at {at}, simulation time is already {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapItem {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` `delay` ticks after the current time.
    pub fn schedule_after(&mut self, delay: Time, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let item = self.heap.pop()?;
        self.now = item.time;
        Some((item.time, item.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|i| i.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains events in order while `f` returns `true`; stops (leaving the
    /// rest queued) on the first `false`. Returns the number of events
    /// processed.
    pub fn run_while<F: FnMut(Time, E) -> bool>(&mut self, mut f: F) -> usize {
        let mut n = 0;
        while let Some(item) = self.heap.pop() {
            self.now = item.time;
            n += 1;
            if !f(item.time, item.event) {
                break;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(5, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((5, i)));
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0);
        q.schedule(7, ());
        q.schedule(3, ());
        q.pop();
        assert_eq!(q.now(), 3);
        q.pop();
        assert_eq!(q.now(), 7);
    }

    #[test]
    fn schedule_after_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10, "first");
        q.pop();
        q.schedule_after(5, "second");
        assert_eq!(q.pop(), Some((15, "second")));
    }

    #[test]
    #[should_panic(expected = "cannot schedule event")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(4, ());
        q.schedule(2, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(2));
        // Peeking does not consume.
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn run_while_stops_on_false() {
        let mut q = EventQueue::new();
        for t in 1..=10 {
            q.schedule(t, t);
        }
        let mut seen = Vec::new();
        let processed = q.run_while(|_, e| {
            seen.push(e);
            e < 4
        });
        assert_eq!(processed, 4);
        assert_eq!(seen, vec![1, 2, 3, 4]);
        assert_eq!(q.len(), 6);
        assert_eq!(q.now(), 4);
    }

    #[test]
    fn run_while_drains_everything_on_true() {
        let mut q = EventQueue::new();
        for t in [3, 1, 2] {
            q.schedule(t, t);
        }
        let mut order = Vec::new();
        q.run_while(|_, e| {
            order.push(e);
            true
        });
        assert_eq!(order, vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn events_scheduled_during_run_are_processed() {
        // Simulates a periodic process rescheduling itself.
        let mut q = EventQueue::new();
        q.schedule(0, ());
        let mut fired = Vec::new();
        while let Some((t, ())) = q.pop() {
            fired.push(t);
            if t < 50 {
                q.schedule(t + 10, ());
            }
        }
        assert_eq!(fired, vec![0, 10, 20, 30, 40, 50]);
    }
}
