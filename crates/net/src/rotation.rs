//! Shift rotation state for distributed set-k-cover scheduling.
//!
//! [`crate::sleep::SleepScheduler`] answers the *combinatorial* question —
//! how to partition a k-covered deployment into disjoint shifts that each
//! maintain a coverage target alone (the set-k-cover of Abrams, Goel &
//! Plotkin). This module holds the *runtime* side of that answer:
//!
//! - [`RotationConfig`] — the duty-cycling knobs (shift length on the
//!   transport tick clock, battery capacity, awake/asleep idle costs);
//! - [`ShiftSchedule`] — an agreed shift assignment, queryable at any
//!   simulation instant ("who is scheduled asleep *now*?");
//! - [`NodeLifecycle`] — the three-state awake / scheduled-asleep / dead
//!   lifecycle the heartbeat detector needs so that a sleeping node's
//!   silence is never mistaken for a failure.
//!
//! The schedule itself is agreed in-network by `decor-core`'s rotation
//! agreement (coordinator election + reliable `ShiftAssign` dissemination);
//! this module only represents the agreed outcome.

use crate::event::Time;
use crate::network::Network;
use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// Duty-cycled rotation knobs.
///
/// Costs are in the same energy units as [`crate::energy::EnergyModel`]
/// charges per message, so one battery pays for both radio traffic and
/// idle listening: a node's battery is spent when its cumulative radio
/// energy (from `Network::stats`) plus its idle cost reaches `battery`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RotationConfig {
    /// Coverage degree each shift must maintain on its own (usually 1:
    /// the k-covered deployment splits into ~k 1-covering shifts).
    pub target_coverage: u32,
    /// Shift length in ticks of the transport clock. One heartbeat period
    /// `Tc` equals one shift period: an awake node beats once per period.
    pub period: Time,
    /// Battery capacity per node, in energy-model units.
    pub battery: f64,
    /// Idle cost per period while awake (listening radio, sensing).
    pub awake_cost: f64,
    /// Idle cost per period while scheduled asleep (clock upkeep only).
    pub sleep_cost: f64,
    /// Seed for rotation-related jitter (heartbeat phases, agreement
    /// tie-breaking).
    pub seed: u64,
}

impl Default for RotationConfig {
    fn default() -> Self {
        // Battery 2000 sustains ~50 always-awake periods for a node with
        // a handful of neighbors under the default energy model — small
        // enough that endurance sims finish in test time, large enough
        // that rotation's multi-x extension is measurable.
        RotationConfig {
            target_coverage: 1,
            period: 1_000,
            battery: 2_000.0,
            awake_cost: 1.0,
            sleep_cost: 0.02,
            seed: 0,
        }
    }
}

impl RotationConfig {
    /// Validates the knobs; schedulers and sims call this on entry.
    pub fn validate(&self) {
        assert!(self.target_coverage >= 1, "target coverage must be >= 1");
        assert!(self.period > 0, "shift period must be positive");
        assert!(
            self.battery > 0.0 && self.battery.is_finite(),
            "battery must be positive"
        );
        assert!(
            self.awake_cost > 0.0 && self.awake_cost.is_finite(),
            "awake cost must be positive"
        );
        assert!(
            self.sleep_cost >= 0.0 && self.sleep_cost < self.awake_cost,
            "sleeping must cost less than waking"
        );
    }
}

/// The three-state node lifecycle of the rotation-aware detector.
///
/// A node that is silent because its shift put it to sleep is *not* a
/// restoration candidate; only the `Dead` state is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeLifecycle {
    /// Alive and on duty (its shift is scheduled, or it is unscheduled).
    Awake,
    /// Alive but scheduled asleep by the rotation — radio off, heartbeats
    /// paused, **not** failed.
    Asleep,
    /// Failed (crash, chaos fault, or spent battery).
    Dead,
}

/// An agreed shift assignment, rotating round-robin on the tick clock.
///
/// Shift `s` is on duty during periods `t` with `(t / period) % S == s`.
/// Nodes not assigned to any shift (`shift_of` = `None`) are treated as
/// always awake — this covers both the empty schedule (no feasible
/// partition: everyone stays on) and replacements placed mid-run before
/// the next agreement folds them in.
#[derive(Clone, Debug, PartialEq)]
pub struct ShiftSchedule {
    shifts: Vec<Vec<NodeId>>,
    member_of: Vec<usize>,
    period: Time,
}

impl ShiftSchedule {
    /// Builds a schedule from disjoint shifts over a network of `n_nodes`
    /// node ids. Panics when a node appears in two shifts or `period` is
    /// zero.
    pub fn new(shifts: Vec<Vec<NodeId>>, period: Time, n_nodes: usize) -> Self {
        assert!(period > 0, "shift period must be positive");
        let mut member_of = vec![usize::MAX; n_nodes];
        for (si, shift) in shifts.iter().enumerate() {
            for &id in shift {
                assert!(id < n_nodes, "shift member {id} out of range");
                assert!(
                    member_of[id] == usize::MAX,
                    "node {id} assigned to two shifts"
                );
                member_of[id] = si;
            }
        }
        ShiftSchedule {
            shifts,
            member_of,
            period,
        }
    }

    /// An empty schedule: nobody is ever scheduled asleep (the always-on
    /// degenerate case).
    pub fn always_on(period: Time, n_nodes: usize) -> Self {
        ShiftSchedule::new(Vec::new(), period, n_nodes)
    }

    /// Number of shifts. 0 or 1 means nobody ever sleeps.
    pub fn n_shifts(&self) -> usize {
        self.shifts.len()
    }

    /// The shift length in ticks.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The shifts, each sorted as provided by the scheduler.
    pub fn shifts(&self) -> &[Vec<NodeId>] {
        &self.shifts
    }

    /// Members of shift `si`.
    pub fn members(&self, si: usize) -> &[NodeId] {
        &self.shifts[si]
    }

    /// The shift `id` belongs to, `None` for unscheduled nodes.
    pub fn shift_of(&self, id: NodeId) -> Option<usize> {
        match self.member_of.get(id) {
            Some(&si) if si != usize::MAX => Some(si),
            _ => None,
        }
    }

    /// The shift on duty at tick `now` (0 when there is at most one).
    pub fn scheduled_shift(&self, now: Time) -> usize {
        if self.shifts.len() <= 1 {
            return 0;
        }
        ((now / self.period) % self.shifts.len() as Time) as usize
    }

    /// Is `id` scheduled asleep at tick `now`? Unscheduled nodes and
    /// single-shift schedules never sleep.
    pub fn is_scheduled_asleep(&self, id: NodeId, now: Time) -> bool {
        if self.shifts.len() <= 1 {
            return false;
        }
        match self.shift_of(id) {
            Some(si) => si != self.scheduled_shift(now),
            None => false,
        }
    }

    /// The start of `id`'s most recent scheduled-awake period at or
    /// before `now` (0 when it has not had one yet, or never sleeps).
    ///
    /// The rotation-aware detector measures silence from
    /// `max(last_heard, last_wake_at)`: a neighbor that just rotated back
    /// on duty gets a full timeout window before suspicion.
    pub fn last_wake_at(&self, id: NodeId, now: Time) -> Time {
        let s = self.shifts.len() as Time;
        if s <= 1 {
            return 0;
        }
        let Some(si) = self.shift_of(id) else {
            return 0;
        };
        let cur = now / self.period;
        let offset = (cur % s + s - si as Time) % s;
        match cur.checked_sub(offset) {
            Some(cycle) => cycle * self.period,
            None => 0, // first awake window still ahead
        }
    }

    /// The three-state lifecycle of `id` at tick `now`.
    pub fn state_of(&self, id: NodeId, now: Time, net: &Network) -> NodeLifecycle {
        if !net.is_alive(id) {
            NodeLifecycle::Dead
        } else if self.is_scheduled_asleep(id, now) {
            NodeLifecycle::Asleep
        } else {
            NodeLifecycle::Awake
        }
    }

    /// Folds a replacement node into the rotation: assigns `id` to shift
    /// `si`, growing the member table as needed. Panics when `id` already
    /// belongs to a shift or `si` is out of range.
    pub fn assign(&mut self, id: NodeId, si: usize) {
        assert!(si < self.shifts.len(), "shift {si} out of range");
        if id >= self.member_of.len() {
            self.member_of.resize(id + 1, usize::MAX);
        }
        assert!(
            self.member_of[id] == usize::MAX,
            "node {id} already assigned"
        );
        self.member_of[id] = si;
        self.shifts[si].push(id);
        self.shifts[si].sort_unstable();
    }

    /// The shift with the fewest members (ties: lowest index) — where a
    /// replacement does the most good.
    pub fn least_loaded_shift(&self) -> Option<usize> {
        (0..self.shifts.len()).min_by_key(|&si| self.shifts[si].len())
    }

    /// Sets every alive node's sleeping flag on `net` per the schedule at
    /// tick `now`. Dead nodes' flags are cleared (a flag on a corpse is
    /// meaningless and would survive into a wrong state on revival).
    pub fn apply_sleep_flags(&self, net: &mut Network, now: Time) {
        for id in 0..net.len() {
            let asleep = net.is_alive(id) && self.is_scheduled_asleep(id, now);
            net.set_sleeping(id, asleep);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::{Aabb, Point};

    fn sched3() -> ShiftSchedule {
        // 6 nodes, 3 shifts of 2, period 10.
        ShiftSchedule::new(vec![vec![0, 1], vec![2, 3], vec![4, 5]], 10, 6)
    }

    #[test]
    fn default_config_validates() {
        RotationConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "cost less")]
    fn sleep_dearer_than_awake_rejected() {
        RotationConfig {
            sleep_cost: 2.0,
            awake_cost: 1.0,
            ..RotationConfig::default()
        }
        .validate();
    }

    #[test]
    fn scheduled_shift_rotates_round_robin() {
        let s = sched3();
        assert_eq!(s.scheduled_shift(0), 0);
        assert_eq!(s.scheduled_shift(9), 0);
        assert_eq!(s.scheduled_shift(10), 1);
        assert_eq!(s.scheduled_shift(25), 2);
        assert_eq!(s.scheduled_shift(30), 0);
    }

    #[test]
    fn asleep_iff_off_shift() {
        let s = sched3();
        assert!(!s.is_scheduled_asleep(0, 5));
        assert!(s.is_scheduled_asleep(2, 5));
        assert!(s.is_scheduled_asleep(0, 15));
        assert!(!s.is_scheduled_asleep(2, 15));
    }

    #[test]
    fn unscheduled_nodes_never_sleep() {
        let mut s = sched3();
        // Node 6 arrives mid-run; until folded in it is always awake.
        assert_eq!(s.shift_of(6), None);
        assert!(!s.is_scheduled_asleep(6, 15));
        assert_eq!(s.last_wake_at(6, 35), 0);
        s.assign(6, 1);
        assert_eq!(s.shift_of(6), Some(1));
        assert!(s.is_scheduled_asleep(6, 5));
        assert!(!s.is_scheduled_asleep(6, 15));
    }

    #[test]
    fn single_or_empty_schedule_is_always_on() {
        let one = ShiftSchedule::new(vec![vec![0, 1]], 10, 2);
        let none = ShiftSchedule::always_on(10, 2);
        for now in [0u64, 7, 15, 100] {
            for id in 0..2 {
                assert!(!one.is_scheduled_asleep(id, now));
                assert!(!none.is_scheduled_asleep(id, now));
            }
        }
    }

    #[test]
    fn last_wake_at_is_the_latest_on_duty_boundary() {
        let s = sched3();
        // Node 2 (shift 1) is awake during periods 1, 4, 7...: ticks
        // [10,20), [40,50), ...
        assert_eq!(s.last_wake_at(2, 15), 10);
        assert_eq!(s.last_wake_at(2, 20), 10, "next window is [40,50)");
        assert_eq!(s.last_wake_at(2, 39), 10);
        assert_eq!(s.last_wake_at(2, 45), 40);
        // Before its first window the node has never woken.
        assert_eq!(s.last_wake_at(2, 5), 0);
        // Node 0 (shift 0) woke at the very start.
        assert_eq!(s.last_wake_at(0, 5), 0);
        assert_eq!(s.last_wake_at(0, 29), 0);
        assert_eq!(s.last_wake_at(0, 35), 30);
    }

    #[test]
    fn lifecycle_reports_three_states() {
        let mut net = Network::new(Aabb::square(50.0));
        for i in 0..6 {
            net.add_node(Point::new(5.0 + 2.0 * i as f64, 10.0), 4.0, 8.0);
        }
        let s = sched3();
        assert_eq!(s.state_of(0, 5, &net), NodeLifecycle::Awake);
        assert_eq!(s.state_of(2, 5, &net), NodeLifecycle::Asleep);
        net.fail_node(2);
        assert_eq!(s.state_of(2, 5, &net), NodeLifecycle::Dead);
        assert_eq!(s.state_of(2, 15, &net), NodeLifecycle::Dead);
    }

    #[test]
    fn apply_sleep_flags_matches_schedule() {
        let mut net = Network::new(Aabb::square(50.0));
        for i in 0..6 {
            net.add_node(Point::new(5.0 + 2.0 * i as f64, 10.0), 4.0, 8.0);
        }
        let s = sched3();
        s.apply_sleep_flags(&mut net, 12);
        for id in 0..6 {
            assert_eq!(net.is_sleeping(id), s.is_scheduled_asleep(id, 12));
        }
        // A dead node's flag is cleared even while its shift is off duty.
        net.fail_node(0);
        s.apply_sleep_flags(&mut net, 25);
        assert!(!net.is_sleeping(0));
    }

    #[test]
    #[should_panic(expected = "two shifts")]
    fn overlapping_shifts_rejected() {
        let _ = ShiftSchedule::new(vec![vec![0, 1], vec![1, 2]], 10, 3);
    }

    #[test]
    fn least_loaded_shift_breaks_ties_low() {
        let s = ShiftSchedule::new(vec![vec![0, 1], vec![2], vec![3]], 10, 4);
        assert_eq!(s.least_loaded_shift(), Some(1));
        assert_eq!(ShiftSchedule::always_on(10, 4).least_loaded_shift(), None);
    }
}
