//! Failure injection (paper §2.1).
//!
//! Two failure classes drive the evaluation:
//! - **random node failures** — nodes fail independently (i.i.d. with
//!   probability `q`, Figs. 11–12 additionally use exact fractions of the
//!   deployment);
//! - **area failures** — a disaster (earthquake, fire) kills *every* node
//!   inside a disc (radius 24 ≈ 17% of the paper's field, Figs. 6, 13, 14).

use crate::network::Network;
use crate::node::NodeId;
use decor_geom::Disk;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A failure scenario that can select victims from a network.
///
/// ```
/// use decor_geom::{Aabb, Disk, Point};
/// use decor_net::{FailurePlan, Network};
///
/// let mut net = Network::new(Aabb::square(100.0));
/// for i in 0..10 {
///     net.add_node(Point::new(5.0 + 10.0 * i as f64, 50.0), 4.0, 8.0);
/// }
/// // A disaster disc kills exactly the nodes inside it.
/// let plan = FailurePlan::Area { disk: Disk::new(Point::new(50.0, 50.0), 16.0) };
/// let victims = plan.apply(&mut net);
/// assert_eq!(victims, vec![3, 4, 5, 6]);
/// assert_eq!(net.alive_count(), 6);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FailurePlan {
    /// Every alive node fails independently with probability `q`.
    Iid {
        /// Per-node failure probability in `[0, 1]`.
        q: f64,
        /// RNG seed (deterministic victim selection).
        seed: u64,
    },
    /// An exact fraction of the alive nodes fails, chosen uniformly.
    Fraction {
        /// Fraction of alive nodes to fail, in `[0, 1]`.
        frac: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Every alive node inside the disc fails (correlated area failure).
    Area {
        /// The disaster disc.
        disk: Disk,
    },
}

impl FailurePlan {
    /// Selects the victims this plan would kill in `net` (sorted by id).
    /// Does not modify the network.
    pub fn victims(&self, net: &Network) -> Vec<NodeId> {
        let alive = net.alive_ids();
        match *self {
            FailurePlan::Iid { q, seed } => {
                assert!((0.0..=1.0).contains(&q), "probability q must be in [0,1]");
                let mut rng = StdRng::seed_from_u64(seed);
                alive.into_iter().filter(|_| rng.gen::<f64>() < q).collect()
            }
            FailurePlan::Fraction { frac, seed } => {
                assert!(
                    (0.0..=1.0).contains(&frac),
                    "fraction must be in [0,1], got {frac}"
                );
                let mut rng = StdRng::seed_from_u64(seed);
                let count = (alive.len() as f64 * frac).round() as usize;
                let mut pool = alive;
                pool.shuffle(&mut rng);
                let mut victims: Vec<NodeId> = pool.into_iter().take(count).collect();
                victims.sort_unstable();
                victims
            }
            FailurePlan::Area { disk } => alive
                .into_iter()
                .filter(|&id| disk.contains(net.node(id).pos))
                .collect(),
        }
    }

    /// Applies the plan: fails every victim. Returns the victims.
    pub fn apply(&self, net: &mut Network) -> Vec<NodeId> {
        let victims = self.victims(net);
        for &v in &victims {
            net.fail_node(v);
        }
        victims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::{Aabb, Point};

    fn grid_network(n_side: usize) -> Network {
        let mut net = Network::new(Aabb::square(100.0));
        for i in 0..n_side {
            for j in 0..n_side {
                let p = Point::new(
                    5.0 + 90.0 * i as f64 / (n_side - 1) as f64,
                    5.0 + 90.0 * j as f64 / (n_side - 1) as f64,
                );
                net.add_node(p, 4.0, 8.0);
            }
        }
        net
    }

    #[test]
    fn fraction_kills_exact_count() {
        let mut net = grid_network(10); // 100 nodes
        let plan = FailurePlan::Fraction { frac: 0.3, seed: 1 };
        let victims = plan.apply(&mut net);
        assert_eq!(victims.len(), 30);
        assert_eq!(net.alive_count(), 70);
    }

    #[test]
    fn fraction_zero_and_one() {
        let net = grid_network(5);
        assert!(FailurePlan::Fraction { frac: 0.0, seed: 2 }
            .victims(&net)
            .is_empty());
        assert_eq!(
            FailurePlan::Fraction { frac: 1.0, seed: 2 }
                .victims(&net)
                .len(),
            25
        );
    }

    #[test]
    fn fraction_is_deterministic_in_seed() {
        let net = grid_network(10);
        let a = FailurePlan::Fraction { frac: 0.5, seed: 9 }.victims(&net);
        let b = FailurePlan::Fraction { frac: 0.5, seed: 9 }.victims(&net);
        let c = FailurePlan::Fraction {
            frac: 0.5,
            seed: 10,
        }
        .victims(&net);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn iid_kill_rate_is_statistically_plausible() {
        let net = grid_network(20); // 400 nodes
        let victims = FailurePlan::Iid { q: 0.25, seed: 4 }.victims(&net);
        let rate = victims.len() as f64 / 400.0;
        assert!((0.15..=0.35).contains(&rate), "rate {rate}");
    }

    #[test]
    fn iid_extremes() {
        let net = grid_network(5);
        assert!(FailurePlan::Iid { q: 0.0, seed: 3 }
            .victims(&net)
            .is_empty());
        assert_eq!(FailurePlan::Iid { q: 1.0, seed: 3 }.victims(&net).len(), 25);
    }

    #[test]
    fn area_failure_kills_disc_only() {
        let mut net = grid_network(10);
        let disk = Disk::new(Point::new(50.0, 50.0), 24.0);
        let victims = FailurePlan::Area { disk }.apply(&mut net);
        assert!(!victims.is_empty());
        for &v in &victims {
            assert!(disk.contains(net.node(v).pos));
        }
        for id in net.alive_ids() {
            assert!(!disk.contains(net.node(id).pos));
        }
    }

    #[test]
    fn area_failure_fraction_matches_paper_geometry() {
        // Disc r=24 on a 100x100 field covers ~17-18% of the area; a dense
        // uniform grid should lose roughly that share of nodes (edge
        // effects make it slightly higher for an interior disc).
        let mut net = grid_network(50); // 2500 nodes
        let disk = Disk::new(Point::new(50.0, 50.0), 24.0);
        let victims = FailurePlan::Area { disk }.apply(&mut net);
        let frac = victims.len() as f64 / 2500.0;
        assert!((0.14..=0.24).contains(&frac), "killed fraction {frac}");
    }

    #[test]
    fn victims_do_not_mutate() {
        let net = grid_network(5);
        let _ = FailurePlan::Fraction { frac: 0.5, seed: 1 }.victims(&net);
        assert_eq!(net.alive_count(), 25);
    }

    #[test]
    fn apply_twice_is_idempotent_for_area() {
        let mut net = grid_network(10);
        let disk = Disk::new(Point::new(20.0, 20.0), 15.0);
        let first = FailurePlan::Area { disk }.apply(&mut net);
        let second = FailurePlan::Area { disk }.apply(&mut net);
        assert!(!first.is_empty());
        assert!(second.is_empty(), "no alive nodes left in the disc");
    }

    #[test]
    #[should_panic(expected = "fraction must be in [0,1]")]
    fn invalid_fraction_panics() {
        let net = grid_network(3);
        let _ = FailurePlan::Fraction { frac: 1.5, seed: 0 }.victims(&net);
    }
}
