//! Reliable message delivery over the lossy [`Network`] medium.
//!
//! The paper's border-correctness argument (§3.2–3.3) assumes placement
//! notices between neighboring cells actually arrive; on a lossy medium a
//! fire-and-forget unicast silently desynchronizes the cells' coverage
//! views. This module adds the missing link layer:
//!
//! - **sequence numbers** per directed link `(from, to)`;
//! - **acknowledgements** ([`Message::Ack`]) from the receiver;
//! - **bounded retransmissions** with deterministic exponential backoff,
//!   scheduled on the discrete-event [`EventQueue`];
//! - **duplicate suppression** at the receiver (a retransmission whose
//!   original arrived — e.g. because only the ack was lost — is delivered
//!   up at most once);
//! - **per-link FIFO**: each directed link keeps at most one message in
//!   the air; later sends on the same link wait for the earlier one to
//!   conclude. Together with the dedup window this guarantees the
//!   application plane sees notices in send order — a retransmission can
//!   never leapfrog a younger message;
//! - a terminal [`DeliveryOutcome`] per message: delivered, gave up after
//!   the retry budget, or peer down/unreachable.
//!
//! Every physical transmission (first attempt, retry, ack) goes through
//! [`Network::unicast`], so it is charged energy and counted in
//! [`crate::NetStats`] — the Fig. 10 messages-per-cell proxy stays honest
//! about what reliability costs.
//! [`NetStats::retries_sent`](crate::NetStats::retries_sent) and
//! [`NetStats::acks_sent`](crate::NetStats::acks_sent) separate the repair
//! traffic from first transmissions.
//!
//! ```
//! use decor_geom::{Aabb, Point};
//! use decor_net::{DeliveryOutcome, Message, Network, Transport, TransportConfig};
//!
//! let mut net = Network::new(Aabb::square(100.0));
//! let a = net.add_node(Point::new(10.0, 10.0), 4.0, 8.0);
//! let b = net.add_node(Point::new(15.0, 10.0), 4.0, 8.0);
//! net.set_loss(0.3, 7);
//! let mut tr = Transport::new(TransportConfig::default());
//! let id = tr.send(a, b, Message::PlacementNotice { pos: Point::ORIGIN });
//! let outcomes = tr.flush(&mut net);
//! assert_eq!(outcomes.len(), 1);
//! assert_eq!(outcomes[0].0, id);
//! assert!(matches!(outcomes[0].1, DeliveryOutcome::Delivered { .. }));
//! ```

use crate::chaos::ChaosEngine;
use crate::event::{EventQueue, Time};
use crate::messages::Message;
use crate::network::{Network, SendError};
use crate::node::NodeId;
use decor_trace::TraceEvent;
use std::collections::VecDeque;

/// Reliability knobs of the transport layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransportConfig {
    /// Maximum retransmissions after the first attempt. A message makes at
    /// most `1 + max_retries` trips onto the air before the sender gives
    /// up. With per-trip loss `p` the residual give-up probability is
    /// roughly `p^(1 + max_retries)` (ack losses push it slightly higher).
    pub max_retries: u32,
    /// Ticks before the first retransmission; doubles on every further
    /// retry (deterministic exponential backoff: `base, 2·base, 4·base…`).
    pub backoff_base: Time,
}

impl Default for TransportConfig {
    fn default() -> Self {
        // 8 retries survive 30% loss with residual failure ~2e-5 per
        // message; base 4 keeps backoff spans short on the tick clock.
        TransportConfig {
            max_retries: 8,
            backoff_base: 4,
        }
    }
}

impl TransportConfig {
    /// Validates the knobs; [`Transport::new`] calls this.
    pub fn validate(&self) {
        assert!(self.backoff_base > 0, "backoff base must be positive");
    }
}

/// Terminal fate of a reliably-sent message, from the sender's viewpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// The receiver acknowledged the message. `attempts` counts data
    /// transmissions including the successful one.
    Delivered {
        /// Data transmissions used (1 = first try).
        attempts: u32,
    },
    /// The retry budget ran out without an acknowledgement. Note the data
    /// may still have arrived (only the acks lost); the *sender* cannot
    /// distinguish the two, and neither does this outcome.
    GaveUp {
        /// Data transmissions used (`1 + max_retries`).
        attempts: u32,
    },
    /// The peer (or the sender itself) is down or out of range — no amount
    /// of retrying helps, so the transport fails fast.
    PeerDown,
}

impl DeliveryOutcome {
    /// True only for [`DeliveryOutcome::Delivered`].
    pub fn is_delivered(&self) -> bool {
        matches!(self, DeliveryOutcome::Delivered { .. })
    }
}

/// Aggregate transport-layer statistics (complementing [`crate::NetStats`],
/// which counts physical transmissions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Messages handed to [`Transport::send`].
    pub sent: u64,
    /// Data transmissions, including retransmissions.
    pub data_transmissions: u64,
    /// Retransmissions only.
    pub retries: u64,
    /// Acknowledgement transmissions attempted by receivers.
    pub acks: u64,
    /// Data frames that arrived more than once and were suppressed at the
    /// receiver (their redundant trips still cost energy).
    pub duplicates_suppressed: u64,
    /// Messages concluded [`DeliveryOutcome::Delivered`].
    pub delivered: u64,
    /// Messages concluded [`DeliveryOutcome::GaveUp`].
    pub gave_up: u64,
    /// Messages concluded [`DeliveryOutcome::PeerDown`].
    pub peer_down: u64,
}

/// Handle identifying a message passed to [`Transport::send`], echoed back
/// with its [`DeliveryOutcome`] by [`Transport::flush`].
pub type MsgId = usize;

/// A message delivered *up* to the application plane at the receiver: the
/// first arrival of its `(link, seq)` — duplicates are suppressed below
/// this surface, and the per-link FIFO guarantees `seq` arrives in send
/// order. Collected via [`Transport::take_inbox`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Inbound {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Per-directed-link sequence number.
    pub seq: u64,
    /// The delivered message.
    pub msg: Message,
}

/// One in-flight (or finished) reliable message.
#[derive(Clone, Debug)]
struct Flight {
    from: NodeId,
    to: NodeId,
    msg: Message,
    seq: u64,
    attempts: u32,
    done: bool,
}

/// A map keyed by directed link `(from, to)`, stored as a sorted vec with
/// binary-search lookups. Same contract as the `BTreeMap` it replaced
/// (unique keys, key order), but `clear` keeps the backing capacity, so a
/// pooled transport's per-link state reaches a zero-allocation steady
/// state instead of rebuilding a tree node per link per run.
#[derive(Debug)]
struct LinkMap<V> {
    entries: Vec<((NodeId, NodeId), V)>,
}

impl<V> LinkMap<V> {
    fn new() -> Self {
        LinkMap {
            entries: Vec::new(),
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
    }

    fn idx(&self, link: (NodeId, NodeId)) -> Result<usize, usize> {
        self.entries.binary_search_by_key(&link, |&(k, _)| k)
    }

    fn get_mut(&mut self, link: (NodeId, NodeId)) -> Option<&mut V> {
        match self.idx(link) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// The value under `link`, inserting `default` first when absent.
    fn entry_or(&mut self, link: (NodeId, NodeId), default: V) -> &mut V {
        let i = match self.idx(link) {
            Ok(i) => i,
            Err(i) => {
                self.entries.insert(i, (link, default));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Set-style insert (for `LinkMap<()>`): true when newly added.
    fn insert(&mut self, link: (NodeId, NodeId)) -> bool
    where
        V: Default,
    {
        match self.idx(link) {
            Ok(_) => false,
            Err(i) => {
                self.entries.insert(i, (link, V::default()));
                true
            }
        }
    }

    fn remove(&mut self, link: (NodeId, NodeId)) {
        if let Ok(i) = self.idx(link) {
            self.entries.remove(i);
        }
    }
}

/// The reliable-delivery layer. One instance serves any number of links;
/// per-link state (sequence counters, receiver dedup windows) is keyed by
/// the directed pair `(from, to)`.
///
/// Deterministic: retry timing comes from the [`EventQueue`] (stable FIFO
/// ties), loss decisions from the network's seeded stream, and all state
/// lives in ordered maps.
pub struct Transport {
    cfg: TransportConfig,
    clock: EventQueue<MsgId>,
    flights: Vec<Flight>,
    next_seq: LinkMap<u64>,
    /// Receiver-side dedup: the latest seq delivered up, per directed
    /// link. A watermark suffices for a full set because per-link FIFO
    /// means only the single in-flight (not yet concluded) message ever
    /// transmits, and flights on a link launch in strictly increasing
    /// seq order — so arrivals per link are monotone in seq, repeating
    /// only the current one (retransmissions after a lost ack).
    seen: LinkMap<u64>,
    /// Directed links with a flight currently in the air.
    busy: LinkMap<()>,
    /// Sends waiting for their link to free up, FIFO per directed link.
    /// Drained entries are kept (an empty queue behaves like an absent
    /// one) so their deque capacity survives for the next burst.
    waiting: LinkMap<VecDeque<MsgId>>,
    /// Application-plane deliveries at receivers, in arrival order.
    inbox: Vec<Inbound>,
    finished: Vec<(MsgId, DeliveryOutcome)>,
    /// Aggregate statistics, publicly readable.
    pub stats: TransportStats,
}

impl Transport {
    /// A transport with the given reliability knobs.
    pub fn new(cfg: TransportConfig) -> Self {
        cfg.validate();
        Transport {
            cfg,
            clock: EventQueue::new(),
            flights: Vec::new(),
            next_seq: LinkMap::new(),
            seen: LinkMap::new(),
            busy: LinkMap::new(),
            waiting: LinkMap::new(),
            inbox: Vec::new(),
            finished: Vec::new(),
            stats: TransportStats::default(),
        }
    }

    /// Returns the transport to the state of `Transport::new(cfg)`,
    /// keeping the flight vector, event-queue heap, inbox buffers and
    /// the flat per-link maps allocated. A reset transport behaves
    /// bit-identically to a freshly constructed one.
    pub fn reset(&mut self, cfg: TransportConfig) {
        cfg.validate();
        self.cfg = cfg;
        self.clock.reset();
        self.flights.clear();
        self.next_seq.clear();
        self.seen.clear();
        self.busy.clear();
        self.waiting.clear();
        self.inbox.clear();
        self.finished.clear();
        self.stats = TransportStats::default();
    }

    /// The configured knobs.
    pub fn config(&self) -> TransportConfig {
        self.cfg
    }

    /// Enqueues `msg` for reliable delivery `from → to`. Nothing hits the
    /// air until [`Transport::flush`] drives the event clock. Returns the
    /// handle under which `flush` will report the outcome.
    ///
    /// Sends on one directed link are strictly FIFO: a message waits until
    /// every earlier message on the same link has reached its terminal
    /// outcome, so retransmissions never reorder the application stream.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: Message) -> MsgId {
        let seq_slot = self.next_seq.entry_or((from, to), 0);
        let seq = *seq_slot;
        *seq_slot += 1;
        let id = self.flights.len();
        self.flights.push(Flight {
            from,
            to,
            msg,
            seq,
            attempts: 0,
            done: false,
        });
        self.stats.sent += 1;
        if self.busy.insert((from, to)) {
            self.clock.schedule_after(0, id);
        } else {
            self.waiting
                .entry_or((from, to), VecDeque::new())
                .push_back(id);
        }
        id
    }

    /// Runs the event clock until every enqueued message reaches a terminal
    /// state, then returns the `(handle, outcome)` pairs concluded since
    /// the last flush, in conclusion order.
    pub fn flush(&mut self, net: &mut Network) -> Vec<(MsgId, DeliveryOutcome)> {
        let mut out = Vec::new();
        self.flush_into(net, &mut out);
        out
    }

    /// [`Transport::flush`] into a caller-owned buffer (cleared first),
    /// preserving both the buffer's and the internal conclusion list's
    /// capacity — round loops flush every round, and `mem::take` would
    /// regrow both from scratch each time.
    pub fn flush_into(&mut self, net: &mut Network, out: &mut Vec<(MsgId, DeliveryOutcome)>) {
        while let Some((_, id)) = self.clock.pop() {
            self.attempt(net, id);
        }
        out.clear();
        out.append(&mut self.finished);
    }

    /// Like [`Transport::flush`], but interleaves a [`ChaosEngine`] with
    /// the retry clock: before every pop, all faults due at or before the
    /// popped instant are injected. A scripted crash therefore lands
    /// *between retries* of an in-flight message — the attempt after it
    /// concludes [`DeliveryOutcome::PeerDown`], exactly as a mid-exchange
    /// death behaves on the real medium. With an exhausted (or empty)
    /// plan this is byte-for-byte `flush`.
    pub fn flush_chaos(
        &mut self,
        net: &mut Network,
        chaos: &mut ChaosEngine,
    ) -> Vec<(MsgId, DeliveryOutcome)> {
        let mut out = Vec::new();
        self.flush_chaos_into(net, chaos, &mut out);
        out
    }

    /// [`Transport::flush_chaos`] into a caller-owned buffer (cleared
    /// first); see [`Transport::flush_into`].
    pub fn flush_chaos_into(
        &mut self,
        net: &mut Network,
        chaos: &mut ChaosEngine,
        out: &mut Vec<(MsgId, DeliveryOutcome)>,
    ) {
        while let Some(t) = self.clock.peek_time() {
            chaos.advance_to(net, t);
            let (_, id) = self.clock.pop().expect("peeked event is poppable");
            self.attempt(net, id);
        }
        out.clear();
        out.append(&mut self.finished);
    }

    /// Convenience: send one message and drive it to its terminal outcome.
    pub fn send_now(
        &mut self,
        net: &mut Network,
        from: NodeId,
        to: NodeId,
        msg: Message,
    ) -> DeliveryOutcome {
        let id = self.send(from, to, msg);
        let outcomes = self.flush(net);
        outcomes
            .into_iter()
            .find(|&(mid, _)| mid == id)
            .map(|(_, o)| o)
            .expect("flush concludes every enqueued message")
    }

    /// Current transport clock (ticks); advances as flushes retry.
    pub fn now(&self) -> Time {
        self.clock.now()
    }

    /// Drains the application-plane inbox: every message delivered up at a
    /// receiver since the last take, in arrival order. Each `(link, seq)`
    /// appears at most once ever (duplicates are suppressed below this
    /// surface), and per directed link the sequence numbers are strictly
    /// increasing — the FIFO discipline forbids reordering.
    pub fn take_inbox(&mut self) -> Vec<Inbound> {
        std::mem::take(&mut self.inbox)
    }

    fn conclude(&mut self, id: MsgId, outcome: DeliveryOutcome) {
        self.flights[id].done = true;
        match outcome {
            DeliveryOutcome::Delivered { .. } => self.stats.delivered += 1,
            DeliveryOutcome::GaveUp { .. } => self.stats.gave_up += 1,
            DeliveryOutcome::PeerDown => self.stats.peer_down += 1,
        }
        self.finished.push((id, outcome));
        // The link is free again: launch the next queued send, if any.
        // (The drained waiting entry stays — empty ≡ absent — so its
        // deque keeps its capacity for the link's next burst.)
        let link = (self.flights[id].from, self.flights[id].to);
        let next = self.waiting.get_mut(link).and_then(VecDeque::pop_front);
        match next {
            Some(next_id) => self.clock.schedule_after(0, next_id),
            None => self.busy.remove(link),
        }
    }

    /// Retries `id` after exponential backoff (plus any chaos latency
    /// spike), or gives up once the budget is spent.
    fn retry_or_give_up(&mut self, id: MsgId, extra_latency: Time) {
        let attempts = self.flights[id].attempts;
        // The budget is 1 first try + max_retries retransmissions.
        if attempts > self.cfg.max_retries {
            self.conclude(id, DeliveryOutcome::GaveUp { attempts });
        } else {
            // attempts = 1 → wait base; 2 → 2·base; … (shift capped well
            // below overflow).
            let exp = (attempts - 1).min(32);
            self.clock
                .schedule_after((self.cfg.backoff_base << exp) + extra_latency, id);
        }
    }

    /// One data transmission plus, on success, the receiver's ack.
    fn attempt(&mut self, net: &mut Network, id: MsgId) {
        if self.flights[id].done {
            return;
        }
        let Flight {
            from, to, msg, seq, ..
        } = self.flights[id];
        self.flights[id].attempts += 1;
        let attempts = self.flights[id].attempts;
        self.stats.data_transmissions += 1;
        // Transmissions happen on the transport clock; stamp trace events
        // (including the unicasts below) with it.
        net.trace().set_time(self.clock.now());
        if attempts > 1 {
            self.stats.retries += 1;
            net.stats.retries_sent += 1;
            net.trace().emit(TraceEvent::MsgRetry {
                from: from as u64,
                to: to as u64,
                seq,
                attempt: attempts as u64,
            });
        }
        match net.unicast(from, to, msg) {
            Ok(()) => {
                // Data arrived: deliver up unless this seq was seen before
                // (retransmission after a lost ack). Per-link arrivals are
                // monotone in seq (see the `seen` field doc), so equality
                // against the watermark is the full dedup test.
                let first_arrival = match self.seen.get_mut((from, to)) {
                    Some(w) if *w == seq => false,
                    Some(w) => {
                        debug_assert!(seq > *w, "non-monotone arrival on link");
                        *w = seq;
                        true
                    }
                    None => {
                        self.seen.entry_or((from, to), seq);
                        true
                    }
                };
                if first_arrival {
                    self.inbox.push(Inbound { from, to, seq, msg });
                } else {
                    self.stats.duplicates_suppressed += 1;
                }
                // The receiver acknowledges every arrival, duplicate or
                // not — the sender is asking because it missed the ack.
                self.stats.acks += 1;
                match net.unicast(to, from, Message::Ack { seq }) {
                    Ok(()) => {
                        net.trace().emit(TraceEvent::MsgAck {
                            from: from as u64,
                            to: to as u64,
                            seq,
                        });
                        self.conclude(id, DeliveryOutcome::Delivered { attempts })
                    }
                    // Lost ack, asymmetric range, or a sender that died
                    // mid-exchange: the sender hears nothing and behaves
                    // exactly as if the data frame was lost.
                    Err(_) => self.retry_or_give_up(id, net.extra_latency()),
                }
            }
            Err(SendError::Lost) => self.retry_or_give_up(id, net.extra_latency()),
            Err(SendError::SenderDown | SendError::ReceiverDown | SendError::OutOfRange) => {
                self.conclude(id, DeliveryOutcome::PeerDown)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::{Aabb, Point};

    fn pair_net() -> Network {
        let mut net = Network::new(Aabb::square(100.0));
        net.add_node(Point::new(10.0, 10.0), 4.0, 8.0);
        net.add_node(Point::new(15.0, 10.0), 4.0, 8.0);
        net
    }

    fn notice() -> Message {
        Message::PlacementNotice { pos: Point::ORIGIN }
    }

    #[test]
    fn lossless_delivery_is_one_data_frame_plus_ack() {
        let mut net = pair_net();
        let mut tr = Transport::new(TransportConfig::default());
        let out = tr.send_now(&mut net, 0, 1, notice());
        assert_eq!(out, DeliveryOutcome::Delivered { attempts: 1 });
        assert_eq!(net.stats.sent_by(0), 1);
        assert_eq!(net.stats.sent_by(1), 1, "the ack");
        assert_eq!(net.stats.acks_sent, 1);
        assert_eq!(net.stats.retries_sent, 0);
        assert_eq!(tr.stats.duplicates_suppressed, 0);
    }

    #[test]
    fn retries_punch_through_loss() {
        let mut net = pair_net();
        net.set_loss(0.3, 11);
        let mut tr = Transport::new(TransportConfig::default());
        let mut delivered = 0;
        for _ in 0..50 {
            if tr.send_now(&mut net, 0, 1, notice()).is_delivered() {
                delivered += 1;
            }
        }
        // Per attempt both the data frame and the ack must survive
        // (p = 0.49); the give-up probability over 9 attempts is 0.51^9
        // ≈ 0.2%, so essentially everything gets through.
        assert!(
            delivered >= 48,
            "8 retries must beat 30% loss: {delivered}/50"
        );
        assert!(tr.stats.retries > 0, "loss must have forced retries");
        assert_eq!(net.stats.retries_sent, tr.stats.retries);
    }

    #[test]
    fn gives_up_after_bounded_attempts() {
        let mut net = pair_net();
        net.set_loss(0.999, 3);
        let cfg = TransportConfig {
            max_retries: 3,
            backoff_base: 2,
        };
        let mut tr = Transport::new(cfg);
        // With loss 0.999 a give-up is near-certain per message.
        let mut gave_up = 0;
        for _ in 0..10 {
            match tr.send_now(&mut net, 0, 1, notice()) {
                DeliveryOutcome::GaveUp { attempts } => {
                    assert_eq!(attempts, 4, "1 first try + 3 retries");
                    gave_up += 1;
                }
                DeliveryOutcome::Delivered { attempts } => assert!(attempts <= 4),
                DeliveryOutcome::PeerDown => panic!("peers are up"),
            }
        }
        assert!(gave_up >= 9);
        assert!(tr.stats.gave_up >= 9);
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let mut net = pair_net();
        net.set_loss(0.999, 5);
        let cfg = TransportConfig {
            max_retries: 4,
            backoff_base: 4,
        };
        let mut tr = Transport::new(cfg);
        let t0 = tr.now();
        let out = tr.send_now(&mut net, 0, 1, notice());
        // Give-up path visits every backoff step: 4 + 8 + 16 + 32 = 60.
        if matches!(out, DeliveryOutcome::GaveUp { .. }) {
            assert_eq!(tr.now() - t0, 60, "sum of base·2^i for i in 0..4");
        }
    }

    #[test]
    fn peer_down_fails_fast() {
        let mut net = pair_net();
        net.fail_node(1);
        let mut tr = Transport::new(TransportConfig::default());
        let out = tr.send_now(&mut net, 0, 1, notice());
        assert_eq!(out, DeliveryOutcome::PeerDown);
        assert_eq!(net.stats.total_sent, 0, "no air time wasted on a corpse");
        // Out-of-range is equally terminal.
        let mut far = Network::new(Aabb::square(100.0));
        far.add_node(Point::new(10.0, 10.0), 4.0, 8.0);
        far.add_node(Point::new(50.0, 50.0), 4.0, 8.0);
        assert_eq!(
            tr.send_now(&mut far, 0, 1, notice()),
            DeliveryOutcome::PeerDown
        );
    }

    #[test]
    fn duplicate_suppression_on_lost_acks() {
        // Force many exchanges over a lossy medium: whenever only the ack
        // is lost, the retransmitted data frame must be suppressed.
        let mut net = pair_net();
        net.set_loss(0.4, 21);
        let mut tr = Transport::new(TransportConfig::default());
        for _ in 0..200 {
            tr.send_now(&mut net, 0, 1, notice());
        }
        assert!(
            tr.stats.duplicates_suppressed > 0,
            "40% loss over 200 messages must lose some acks: {:?}",
            tr.stats
        );
        // Dedup state is per-link and per-seq: every delivery was unique.
        assert_eq!(tr.stats.delivered + tr.stats.gave_up, 200);
    }

    #[test]
    fn sequence_numbers_are_per_link() {
        let mut net = Network::new(Aabb::square(100.0));
        for i in 0..3 {
            net.add_node(Point::new(10.0 + i as f64 * 3.0, 10.0), 4.0, 8.0);
        }
        let mut tr = Transport::new(TransportConfig::default());
        tr.send(0, 1, notice());
        tr.send(0, 2, notice());
        tr.send(0, 1, notice());
        tr.send(1, 0, notice());
        assert_eq!(tr.flights[0].seq, 0);
        assert_eq!(tr.flights[1].seq, 0, "distinct link starts at 0");
        assert_eq!(tr.flights[2].seq, 1);
        assert_eq!(tr.flights[3].seq, 0, "reverse direction is its own link");
        let outcomes = tr.flush(&mut net);
        assert!(outcomes.iter().all(|(_, o)| o.is_delivered()));
    }

    #[test]
    fn batch_flush_reports_every_message_once() {
        let mut net = pair_net();
        net.set_loss(0.3, 9);
        let mut tr = Transport::new(TransportConfig::default());
        let ids: Vec<MsgId> = (0..20).map(|_| tr.send(0, 1, notice())).collect();
        let outcomes = tr.flush(&mut net);
        let mut reported: Vec<MsgId> = outcomes.iter().map(|&(id, _)| id).collect();
        reported.sort_unstable();
        assert_eq!(reported, ids);
        assert!(
            tr.flush(&mut net).is_empty(),
            "second flush reports nothing"
        );
    }

    #[test]
    fn transport_is_deterministic() {
        let run = || {
            let mut net = pair_net();
            net.set_loss(0.45, 77);
            let mut tr = Transport::new(TransportConfig::default());
            let outs: Vec<DeliveryOutcome> = (0..40)
                .map(|_| tr.send_now(&mut net, 0, 1, notice()))
                .collect();
            (outs, tr.stats, net.stats.total_sent)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn retry_traffic_grows_with_loss() {
        let retries_at = |loss: f64| {
            let mut net = pair_net();
            if loss > 0.0 {
                net.set_loss(loss, 13);
            }
            let mut tr = Transport::new(TransportConfig::default());
            for _ in 0..100 {
                tr.send_now(&mut net, 0, 1, notice());
            }
            tr.stats.retries
        };
        let r0 = retries_at(0.0);
        let r1 = retries_at(0.1);
        let r3 = retries_at(0.3);
        assert_eq!(r0, 0);
        assert!(r1 > 0);
        assert!(r3 > r1, "retries at 30% ({r3}) must exceed 10% ({r1})");
    }

    #[test]
    fn per_link_fifo_delivers_in_send_order_under_loss() {
        let mut net = pair_net();
        net.set_loss(0.4, 33);
        let mut tr = Transport::new(TransportConfig::default());
        for _ in 0..30 {
            tr.send(0, 1, notice());
        }
        tr.flush(&mut net);
        let inbox = tr.take_inbox();
        assert!(!inbox.is_empty());
        let seqs: Vec<u64> = inbox.iter().map(|m| m.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(seqs, sorted, "app plane saw a dup or reorder: {seqs:?}");
        assert!(tr.take_inbox().is_empty(), "second take drains nothing");
    }

    #[test]
    fn only_one_flight_per_link_is_airborne() {
        // With FIFO, a second send on a busy link must not transmit until
        // the first concludes: sending two without flushing keeps exactly
        // one event scheduled.
        let mut net = pair_net();
        let mut tr = Transport::new(TransportConfig::default());
        tr.send(0, 1, notice());
        tr.send(0, 1, notice());
        assert_eq!(tr.clock.len(), 1, "second message waits for the link");
        tr.send(1, 0, notice());
        assert_eq!(tr.clock.len(), 2, "the reverse link is independent");
        let outcomes = tr.flush(&mut net);
        assert_eq!(outcomes.len(), 3);
    }

    #[test]
    fn trace_records_retries_and_acks() {
        let mut net = pair_net();
        net.set_loss(0.4, 5);
        let trace = decor_trace::TraceHandle::counting();
        net.set_trace(trace.clone());
        let mut tr = Transport::new(TransportConfig::default());
        for _ in 0..40 {
            tr.send_now(&mut net, 0, 1, notice());
        }
        let counts = trace.counts().unwrap();
        assert_eq!(
            counts.get("msg_retry").copied().unwrap_or(0),
            tr.stats.retries
        );
        assert_eq!(
            counts.get("msg_ack").copied().unwrap_or(0),
            tr.stats.delivered
        );
        assert_eq!(
            counts["msg_send"],
            tr.stats.data_transmissions + tr.stats.acks
        );
        assert!(counts["msg_drop"] > 0, "40% loss must drop frames");
    }

    #[test]
    fn chaos_crash_lands_between_retries() {
        use crate::chaos::{ChaosEngine, FaultEvent, FaultKind, FaultPlan};
        // Receiver dies at t=3, between the first attempt (t=0) and the
        // first retry (t=4): the retry must conclude PeerDown instead of
        // burning the rest of the budget.
        let mut net = pair_net();
        net.set_loss(0.999, 3);
        let mut tr = Transport::new(TransportConfig::default());
        let mut chaos = ChaosEngine::new(FaultPlan::new(vec![FaultEvent {
            at: 3,
            kind: FaultKind::Crash { node: 1 },
        }]));
        let id = tr.send(0, 1, notice());
        let outcomes = tr.flush_chaos(&mut net, &mut chaos);
        assert_eq!(outcomes, vec![(id, DeliveryOutcome::PeerDown)]);
        assert!(!net.is_alive(1));
        assert!(chaos.is_exhausted());
        assert_eq!(chaos.take_crashed(), vec![1]);
    }

    #[test]
    fn chaos_latency_spike_stretches_backoff() {
        use crate::chaos::{ChaosEngine, FaultEvent, FaultKind, FaultPlan};
        let mut net = pair_net();
        net.set_loss(0.999, 3);
        let cfg = TransportConfig {
            max_retries: 2,
            backoff_base: 4,
        };
        // Nominal give-up path visits backoffs 4 + 8 = 12 ticks.
        let mut tr = Transport::new(cfg);
        tr.send(0, 1, notice());
        tr.flush(&mut net);
        assert_eq!(tr.now(), 12);
        // A +10 spike from t=0 makes it (4+10) + (8+10) = 32.
        let mut net = pair_net();
        net.set_loss(0.999, 3);
        let mut tr = Transport::new(cfg);
        let mut chaos = ChaosEngine::new(FaultPlan::new(vec![FaultEvent {
            at: 0,
            kind: FaultKind::Latency { extra: 10 },
        }]));
        tr.send(0, 1, notice());
        tr.flush_chaos(&mut net, &mut chaos);
        assert_eq!(tr.now(), 32);
    }

    #[test]
    fn flush_chaos_with_empty_plan_matches_flush() {
        use crate::chaos::{ChaosEngine, FaultPlan};
        let run = |use_chaos: bool| {
            let mut net = pair_net();
            net.set_loss(0.45, 77);
            let mut tr = Transport::new(TransportConfig::default());
            let mut chaos = ChaosEngine::new(FaultPlan::empty());
            let mut outs = Vec::new();
            for _ in 0..30 {
                tr.send(0, 1, notice());
                if use_chaos {
                    outs.extend(tr.flush_chaos(&mut net, &mut chaos));
                } else {
                    outs.extend(tr.flush(&mut net));
                }
            }
            (outs, tr.stats, net.stats.total_sent)
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    #[should_panic(expected = "backoff base must be positive")]
    fn zero_backoff_panics() {
        let _ = Transport::new(TransportConfig {
            max_retries: 1,
            backoff_base: 0,
        });
    }
}
