//! The network fabric: node storage, neighbor lookup, range-checked
//! message delivery, and per-node message/energy accounting.

use crate::energy::EnergyModel;
use crate::event::Time;
use crate::messages::Message;
use crate::node::{Node, NodeId};
use decor_geom::{Aabb, GridIndex, Point};
use decor_trace::{TraceEvent, TraceHandle};
use std::collections::BTreeSet;

/// Per-node and aggregate traffic statistics.
///
/// Fig. 10 of the paper reports "messages per cell" as the energy proxy;
/// [`NetStats`] keeps the raw counters the harness aggregates into that
/// figure, split into protocol traffic (placement notices, elections,
/// reports) and maintenance traffic (heartbeats, hellos).
#[derive(Clone, Debug, Default)]
pub struct NetStats {
    sent: Vec<u64>,
    received: Vec<u64>,
    energy: Vec<f64>,
    /// Total messages sent (protocol + maintenance).
    pub total_sent: u64,
    /// Messages on the maintenance plane (heartbeats, hellos).
    pub maintenance_sent: u64,
    /// Messages of the restoration protocol itself.
    pub protocol_sent: u64,
    /// Retransmissions performed by the reliable transport. Each one is
    /// *also* counted in `total_sent` and its plane counter (a retry burns
    /// the same air time and energy as the original), so this counter lets
    /// analyses separate first transmissions from repair traffic.
    pub retries_sent: u64,
    /// Link-layer acknowledgements ([`Message::Ack`]). Acks ride the
    /// protocol plane (they acknowledge protocol traffic) and are also in
    /// `total_sent`/`protocol_sent`; this counter isolates them.
    pub acks_sent: u64,
}

impl NetStats {
    fn grow_to(&mut self, n: usize) {
        self.sent.resize(n, 0);
        self.received.resize(n, 0);
        self.energy.resize(n, 0.0);
    }

    /// Zeroes every counter, keeping the per-node vectors' capacity.
    fn reset(&mut self) {
        self.sent.clear();
        self.received.clear();
        self.energy.clear();
        self.total_sent = 0;
        self.maintenance_sent = 0;
        self.protocol_sent = 0;
        self.retries_sent = 0;
        self.acks_sent = 0;
    }

    /// Messages sent by node `id`.
    pub fn sent_by(&self, id: NodeId) -> u64 {
        self.sent.get(id).copied().unwrap_or(0)
    }

    /// Messages received by node `id`.
    pub fn received_by(&self, id: NodeId) -> u64 {
        self.received.get(id).copied().unwrap_or(0)
    }

    /// Energy consumed by node `id`.
    pub fn energy_of(&self, id: NodeId) -> f64 {
        self.energy.get(id).copied().unwrap_or(0.0)
    }

    /// Total energy consumed across the network.
    pub fn total_energy(&self) -> f64 {
        self.energy.iter().sum()
    }
}

/// The splitmix64 output finalizer: a full-avalanche 64-bit mix, so inputs
/// differing in a single bit (adjacent seeds) diverge completely.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Error returned by [`Network::unicast`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendError {
    /// Sender does not exist or has failed.
    SenderDown,
    /// Receiver does not exist or has failed.
    ReceiverDown,
    /// Receiver is beyond the sender's communication radius.
    OutOfRange,
    /// The packet was transmitted but lost in the air (lossy medium).
    /// The sender still paid transmission energy and counters.
    Lost,
}

/// A wireless sensor network: nodes plus the radio medium.
///
/// Geometry queries (neighbors, coverage candidates) go through an internal
/// spatial hash-grid of the *alive* nodes, so they stay O(1) expected even
/// with thousands of sensors.
///
/// ```
/// use decor_geom::{Aabb, Point};
/// use decor_net::{Message, Network};
///
/// let mut net = Network::new(Aabb::square(100.0));
/// let a = net.add_node(Point::new(10.0, 10.0), 4.0, 8.0);
/// let b = net.add_node(Point::new(15.0, 10.0), 4.0, 8.0);
/// assert_eq!(net.neighbors_of(a), vec![b]);
/// net.unicast(a, b, Message::Hello { pos: Point::new(10.0, 10.0) }).unwrap();
/// assert_eq!(net.stats.total_sent, 1);
/// net.fail_node(b);
/// assert!(net.neighbors_of(a).is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    nodes: Vec<Node>,
    /// Scheduled-asleep flags (see [`crate::rotation`]): a sleeping node's
    /// radio is off — it neither transmits nor receives, but it is *not*
    /// failed. Default false everywhere, so code that never touches
    /// rotation sees the historical behavior bit-for-bit.
    sleeping: Vec<bool>,
    index: GridIndex,
    field: Aabb,
    energy_model: EnergyModel,
    /// Per-packet loss probability in `[0, 1)` (0 = perfect medium).
    loss_rate: f64,
    /// Deterministic loss stream (splitmix-style counter mix).
    loss_state: u64,
    /// Traffic counters, publicly readable; mutated by `unicast`/`broadcast`.
    pub stats: NetStats,
    /// Optional structured-event sink; disabled by default (zero cost).
    trace: TraceHandle,
    /// Chaos partition: when set, packets only flow between nodes on the
    /// same side (side A = the set, side B = everyone else).
    partition: Option<BTreeSet<NodeId>>,
    /// Chaos-blackholed directed links: packets `from -> to` vanish in
    /// the air (the sender still pays, like a lossy drop).
    blackholes: BTreeSet<(NodeId, NodeId)>,
    /// Chaos latency spike: extra ticks added to every transport backoff.
    extra_latency: Time,
}

impl Network {
    /// An empty network over `field` with the default energy model.
    pub fn new(field: Aabb) -> Self {
        Network::with_energy_model(field, EnergyModel::default())
    }

    /// An empty network with an explicit energy model.
    pub fn with_energy_model(field: Aabb, energy_model: EnergyModel) -> Self {
        let cell = (field.width().min(field.height()) / 20.0).max(1.0);
        Network {
            nodes: Vec::new(),
            sleeping: Vec::new(),
            index: GridIndex::new(field.min, (field.width(), field.height()), cell),
            field,
            energy_model,
            loss_rate: 0.0,
            loss_state: 0,
            stats: NetStats::default(),
            trace: TraceHandle::disabled(),
            partition: None,
            blackholes: BTreeSet::new(),
            extra_latency: 0,
        }
    }

    /// Returns the network to the state of `Network::new(field)` — no
    /// nodes, perfect medium, default energy model, zeroed counters,
    /// disabled trace — while keeping the node storage, spatial-index
    /// buckets, and stats vectors allocated. A reset network behaves
    /// bit-identically to a freshly constructed one.
    pub fn reset(&mut self, field: Aabb) {
        let cell = (field.width().min(field.height()) / 20.0).max(1.0);
        self.nodes.clear();
        self.sleeping.clear();
        self.index
            .reset(field.min, (field.width(), field.height()), cell);
        self.field = field;
        self.energy_model = EnergyModel::default();
        self.loss_rate = 0.0;
        self.loss_state = 0;
        self.stats.reset();
        self.trace = TraceHandle::disabled();
        self.partition = None;
        self.blackholes.clear();
        self.extra_latency = 0;
    }

    /// Attaches a trace handle; every subsequent transmission emits
    /// send/deliver/drop events through it. Clones of the handle share one
    /// totally ordered stream.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The attached trace handle (disabled by default).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// Enables a lossy medium: every transmission is independently lost
    /// with probability `rate` (per receiver for broadcasts). The loss
    /// stream is deterministic in `seed`; the seed is passed through a full
    /// splitmix64 finalizer so even adjacent seeds (2 vs 3) produce
    /// unrelated streams. Panics unless `0 <= rate < 1`.
    pub fn set_loss(&mut self, rate: f64, seed: u64) {
        assert!(
            (0.0..1.0).contains(&rate),
            "loss rate must be in [0, 1), got {rate}"
        );
        self.loss_rate = rate;
        self.loss_state = splitmix64_mix(seed);
    }

    /// Draws the next loss decision from the deterministic stream.
    fn packet_lost(&mut self) -> bool {
        if self.loss_rate == 0.0 {
            return false;
        }
        // splitmix64 step.
        self.loss_state = self.loss_state.wrapping_add(0x9E3779B97F4A7C15);
        let z = splitmix64_mix(self.loss_state);
        ((z >> 11) as f64 / (1u64 << 53) as f64) < self.loss_rate
    }

    /// Splits the medium in two: packets cross between `side_a` and the
    /// rest of the network only after [`Network::heal_partition`]. Nodes
    /// on the same side keep communicating normally. Replaces any
    /// previous partition.
    pub fn set_partition(&mut self, side_a: impl IntoIterator<Item = NodeId>) {
        self.partition = Some(side_a.into_iter().collect());
    }

    /// Removes the partition (if any); the medium is whole again.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// Is a partition currently in effect?
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// The partition's side-A membership set, when one is in effect.
    pub fn partition_side_a(&self) -> Option<&BTreeSet<NodeId>> {
        self.partition.as_ref()
    }

    /// Blackholes the directed link `from -> to`: packets on it vanish
    /// in the air until [`Network::clear_blackhole`]. The reverse
    /// direction is unaffected.
    pub fn set_blackhole(&mut self, from: NodeId, to: NodeId) {
        self.blackholes.insert((from, to));
    }

    /// Restores the directed link `from -> to`.
    pub fn clear_blackhole(&mut self, from: NodeId, to: NodeId) {
        self.blackholes.remove(&(from, to));
    }

    /// Removes every blackholed link.
    pub fn clear_all_blackholes(&mut self) {
        self.blackholes.clear();
    }

    /// Extra ticks the reliable transport adds to every retry backoff
    /// (a chaos latency spike). 0 = nominal timing.
    pub fn extra_latency(&self) -> Time {
        self.extra_latency
    }

    /// Sets the chaos latency spike; 0 restores nominal timing.
    pub fn set_extra_latency(&mut self, extra: Time) {
        self.extra_latency = extra;
    }

    /// Charges `amount` of energy to node `id` without any transmission
    /// (a chaos energy drain). Unknown ids are ignored.
    pub fn drain_energy(&mut self, id: NodeId, amount: f64) {
        if let Some(e) = self.stats.energy.get_mut(id) {
            *e += amount;
        }
    }

    /// Is the directed link `from -> to` severed by a partition or a
    /// blackhole? Pure — consumes no loss-stream state, so attaching an
    /// empty chaos plan leaves the packet-loss sequence untouched.
    fn link_cut(&self, from: NodeId, to: NodeId) -> bool {
        if self.blackholes.contains(&(from, to)) {
            return true;
        }
        match &self.partition {
            Some(side_a) => side_a.contains(&from) != side_a.contains(&to),
            None => false,
        }
    }

    /// The monitored field.
    pub fn field(&self) -> &Aabb {
        &self.field
    }

    /// Adds an alive node, returning its id.
    pub fn add_node(&mut self, pos: Point, rs: f64, rc: f64) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node::new(pos, rs, rc));
        self.sleeping.push(false);
        self.index.insert(id, pos);
        self.stats.grow_to(self.nodes.len());
        id
    }

    /// Sets node `id`'s scheduled-asleep flag (see [`crate::rotation`]).
    /// A sleeping node's radio is off: it neither transmits nor receives
    /// and pays no rx energy, but it stays alive and in the spatial index
    /// (geometry queries are about positions, not duty state). Total:
    /// unknown ids are ignored.
    pub fn set_sleeping(&mut self, id: NodeId, asleep: bool) {
        if let Some(s) = self.sleeping.get_mut(id) {
            *s = asleep;
        }
    }

    /// Is node `id` scheduled asleep? Dead and unknown nodes read false —
    /// sleeping is a property of a live radio.
    pub fn is_sleeping(&self, id: NodeId) -> bool {
        self.is_alive(id) && self.sleeping.get(id).copied().unwrap_or(false)
    }

    /// Is node `id` alive *and* on duty (not scheduled asleep)? The
    /// receiver-side predicate of every transmission.
    pub fn is_awake(&self, id: NodeId) -> bool {
        self.is_alive(id) && !self.sleeping.get(id).copied().unwrap_or(false)
    }

    /// Number of nodes ever added (alive and failed).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes were ever added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of alive nodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// The node record for `id`. Panics on out-of-range ids; see
    /// [`Network::try_node`] for the total variant.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The node record for `id`, or `None` when no such node was ever
    /// added. The non-panicking sibling of [`Network::node`], consistent
    /// with [`Network::is_alive`] and [`Network::fail_node`] being total.
    pub fn try_node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id)
    }

    /// Is node `id` alive?
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.nodes.get(id).is_some_and(|n| n.alive)
    }

    /// Marks node `id` failed. Idempotent, and total like [`Network::is_alive`]:
    /// returns whether the node was alive before the call, `false` for
    /// unknown ids.
    pub fn fail_node(&mut self, id: NodeId) -> bool {
        match self.nodes.get_mut(id) {
            Some(n) if n.alive => {
                n.alive = false;
                let pos = n.pos;
                self.index.remove(id, pos);
                true
            }
            _ => false,
        }
    }

    /// Ids of all alive nodes, ascending.
    pub fn alive_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].alive)
            .collect()
    }

    /// Positions of all alive nodes (paired with their ids).
    pub fn alive_positions(&self) -> Vec<(NodeId, Point)> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, n)| (i, n.pos))
            .collect()
    }

    /// Alive nodes within distance `r` of point `q` (any node's own radius
    /// is irrelevant here — this is a pure geometric query). Sorted by id.
    pub fn alive_within(&self, q: Point, r: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.alive_within_into(q, r, &mut out);
        out
    }

    /// Buffer-reuse variant of [`Network::alive_within`]: clears `out`
    /// and fills it with the same ids in the same (ascending) order.
    pub fn alive_within_into(&self, q: Point, r: f64, out: &mut Vec<NodeId>) {
        self.index.within_into(q, r, out);
        out.sort_unstable();
    }

    /// 1-hop neighbors of `id`: alive nodes within *`id`'s* communication
    /// radius, excluding `id` itself.
    ///
    /// With heterogeneous radii links can be asymmetric; DECOR only ever
    /// sends over the sender's radius, which this models.
    pub fn neighbors_of(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.neighbors_into(id, &mut out);
        out
    }

    /// Buffer-reusing variant of [`Network::neighbors_of`]: clears `out`
    /// and fills it with the same ids in the same (ascending) order,
    /// avoiding a fresh allocation per call. Protocol round loops call
    /// this once per agent per round. Total: a dead or unknown `id`
    /// yields an empty buffer.
    pub fn neighbors_into(&self, id: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let Some(n) = self.nodes.get(id) else {
            return;
        };
        if !n.alive {
            return;
        }
        self.index.within_into(n.pos, n.rc, out);
        out.retain(|&i| i != id);
        out.sort_unstable();
    }

    /// Sends `msg` from `from` to `to`, charging energy and counters.
    ///
    /// A scheduled-asleep sender cannot transmit (radio off — reads as
    /// [`SendError::SenderDown`], like a failed node). A scheduled-asleep
    /// *receiver* silently misses the frame: the sender still transmits
    /// and pays (it cannot know the peer's duty state), the frame is
    /// dropped like a cut link — without consuming the loss stream, so
    /// rotation-free runs keep their exact packet-loss sequence.
    pub fn unicast(&mut self, from: NodeId, to: NodeId, msg: Message) -> Result<(), SendError> {
        let sender = *self.nodes.get(from).ok_or(SendError::SenderDown)?;
        if !sender.alive || self.sleeping[from] {
            return Err(SendError::SenderDown);
        }
        let receiver = *self.nodes.get(to).ok_or(SendError::ReceiverDown)?;
        if !receiver.alive {
            return Err(SendError::ReceiverDown);
        }
        let d = sender.pos.dist(receiver.pos);
        if d > sender.rc {
            return Err(SendError::OutOfRange);
        }
        let bytes = msg.payload_bytes();
        // The sender transmits (and pays) regardless of whether the
        // medium then eats the packet.
        self.stats.sent[from] += 1;
        self.stats.energy[from] += self.energy_model.tx_cost(bytes, d);
        self.stats.total_sent += 1;
        if msg.is_maintenance() {
            self.stats.maintenance_sent += 1;
        } else {
            self.stats.protocol_sent += 1;
        }
        if matches!(msg, Message::Ack { .. }) {
            self.stats.acks_sent += 1;
        }
        self.trace.emit(TraceEvent::MsgSend {
            from: from as u64,
            to: to as u64,
            msg: msg.kind(),
        });
        // A severed link (chaos partition/blackhole) or a sleeping
        // receiver eats the packet after the sender paid, exactly like a
        // lossy drop — but without drawing from the loss stream, so runs
        // without chaos faults or rotation are unaffected.
        if self.link_cut(from, to) || self.sleeping[to] {
            self.trace.emit(TraceEvent::MsgDrop {
                from: from as u64,
                to: to as u64,
                msg: msg.kind(),
            });
            return Err(SendError::Lost);
        }
        if self.packet_lost() {
            self.trace.emit(TraceEvent::MsgDrop {
                from: from as u64,
                to: to as u64,
                msg: msg.kind(),
            });
            return Err(SendError::Lost);
        }
        self.stats.received[to] += 1;
        self.stats.energy[to] += self.energy_model.rx_cost(bytes);
        self.trace.emit(TraceEvent::MsgDeliver {
            from: from as u64,
            to: to as u64,
            msg: msg.kind(),
        });
        Ok(())
    }

    /// Broadcasts `msg` from `from` at full power; every alive node within
    /// the sender's `rc` receives it. Returns the receiver ids (sorted).
    ///
    /// A broadcast counts as *one* sent message (single transmission) and
    /// one reception per receiver.
    pub fn broadcast(&mut self, from: NodeId, msg: Message) -> Vec<NodeId> {
        let sender = match self.nodes.get(from) {
            Some(n) if n.alive && !self.sleeping[from] => *n,
            _ => return Vec::new(),
        };
        let mut receivers = self.index.within(sender.pos, sender.rc);
        receivers.retain(|&i| i != from);
        receivers.sort_unstable();
        let bytes = msg.payload_bytes();
        self.stats.sent[from] += 1;
        self.stats.energy[from] += self.energy_model.tx_cost(bytes, sender.rc);
        self.stats.total_sent += 1;
        if msg.is_maintenance() {
            self.stats.maintenance_sent += 1;
        } else {
            self.stats.protocol_sent += 1;
        }
        // `to: u64::MAX` marks the single broadcast transmission; each
        // listener then delivers or drops independently.
        self.trace.emit(TraceEvent::MsgSend {
            from: from as u64,
            to: u64::MAX,
            msg: msg.kind(),
        });
        // On a lossy medium each listener drops the frame independently;
        // a sleeping listener misses it for free (radio off, no rx
        // energy, no loss-stream draw).
        let mut heard = Vec::with_capacity(receivers.len());
        for r in receivers {
            if self.link_cut(from, r) || self.sleeping[r] {
                self.trace.emit(TraceEvent::MsgDrop {
                    from: from as u64,
                    to: r as u64,
                    msg: msg.kind(),
                });
                continue;
            }
            if self.packet_lost() {
                self.trace.emit(TraceEvent::MsgDrop {
                    from: from as u64,
                    to: r as u64,
                    msg: msg.kind(),
                });
                continue;
            }
            self.stats.received[r] += 1;
            self.stats.energy[r] += self.energy_model.rx_cost(bytes);
            self.trace.emit(TraceEvent::MsgDeliver {
                from: from as u64,
                to: r as u64,
                msg: msg.kind(),
            });
            heard.push(r);
        }
        heard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net_with(positions: &[(f64, f64)], rs: f64, rc: f64) -> Network {
        let mut net = Network::new(Aabb::square(100.0));
        for &(x, y) in positions {
            net.add_node(Point::new(x, y), rs, rc);
        }
        net
    }

    #[test]
    fn add_and_query_nodes() {
        let net = net_with(&[(10.0, 10.0), (20.0, 10.0)], 4.0, 8.0);
        assert_eq!(net.len(), 2);
        assert_eq!(net.alive_count(), 2);
        assert!(net.is_alive(0) && net.is_alive(1));
        assert_eq!(net.node(1).pos, Point::new(20.0, 10.0));
    }

    #[test]
    fn neighbors_respect_rc() {
        let net = net_with(&[(10.0, 10.0), (17.0, 10.0), (30.0, 10.0)], 4.0, 8.0);
        assert_eq!(net.neighbors_of(0), vec![1]);
        assert_eq!(net.neighbors_of(1), vec![0]);
        assert_eq!(net.neighbors_of(2), Vec::<NodeId>::new());
    }

    #[test]
    fn neighbors_into_reuses_buffer_and_matches() {
        let net = net_with(&[(10.0, 10.0), (17.0, 10.0), (30.0, 10.0)], 4.0, 8.0);
        let mut buf = vec![99usize; 8];
        net.neighbors_into(0, &mut buf);
        assert_eq!(buf, net.neighbors_of(0));
        net.neighbors_into(2, &mut buf);
        assert!(buf.is_empty(), "stale contents must be cleared");
        net.neighbors_into(42, &mut buf);
        assert!(buf.is_empty(), "unknown id yields an empty buffer");
    }

    #[test]
    fn failed_nodes_leave_the_medium() {
        let mut net = net_with(&[(10.0, 10.0), (17.0, 10.0)], 4.0, 8.0);
        assert!(net.fail_node(1));
        assert!(!net.fail_node(1), "second failure is a no-op");
        assert_eq!(net.alive_count(), 1);
        assert_eq!(net.neighbors_of(0), Vec::<NodeId>::new());
        assert_eq!(net.neighbors_of(1), Vec::<NodeId>::new());
        assert_eq!(net.alive_ids(), vec![0]);
    }

    #[test]
    fn unicast_success_updates_stats() {
        let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
        let msg = Message::PlacementNotice { pos: Point::ORIGIN };
        assert_eq!(net.unicast(0, 1, msg), Ok(()));
        assert_eq!(net.stats.sent_by(0), 1);
        assert_eq!(net.stats.received_by(1), 1);
        assert_eq!(net.stats.total_sent, 1);
        assert_eq!(net.stats.protocol_sent, 1);
        assert_eq!(net.stats.maintenance_sent, 0);
        assert!(net.stats.energy_of(0) > 0.0);
        assert!(net.stats.energy_of(1) > 0.0);
        assert!(net.stats.energy_of(0) > net.stats.energy_of(1), "tx > rx");
    }

    #[test]
    fn unicast_range_check() {
        let mut net = net_with(&[(10.0, 10.0), (30.0, 10.0)], 4.0, 8.0);
        let msg = Message::Hello { pos: Point::ORIGIN };
        assert_eq!(net.unicast(0, 1, msg), Err(SendError::OutOfRange));
        assert_eq!(net.stats.total_sent, 0);
    }

    #[test]
    fn unicast_to_or_from_dead_node_fails() {
        let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
        net.fail_node(1);
        let msg = Message::Hello { pos: Point::ORIGIN };
        assert_eq!(net.unicast(0, 1, msg), Err(SendError::ReceiverDown));
        assert_eq!(net.unicast(1, 0, msg), Err(SendError::SenderDown));
    }

    #[test]
    fn asymmetric_radii_make_asymmetric_links() {
        let mut net = Network::new(Aabb::square(100.0));
        net.add_node(Point::new(10.0, 10.0), 4.0, 12.0); // long range
        net.add_node(Point::new(20.0, 10.0), 4.0, 5.0); // short range
        let msg = Message::Hello { pos: Point::ORIGIN };
        assert_eq!(net.unicast(0, 1, msg), Ok(()));
        assert_eq!(net.unicast(1, 0, msg), Err(SendError::OutOfRange));
        assert_eq!(net.neighbors_of(0), vec![1]);
        assert_eq!(net.neighbors_of(1), Vec::<NodeId>::new());
    }

    #[test]
    fn broadcast_reaches_all_in_range() {
        let mut net = net_with(
            &[(50.0, 50.0), (54.0, 50.0), (50.0, 57.0), (80.0, 80.0)],
            4.0,
            8.0,
        );
        let rx = net.broadcast(
            0,
            Message::Heartbeat {
                pos: Point::new(50.0, 50.0),
            },
        );
        assert_eq!(rx, vec![1, 2]);
        assert_eq!(net.stats.sent_by(0), 1, "broadcast is one transmission");
        assert_eq!(net.stats.received_by(1), 1);
        assert_eq!(net.stats.received_by(2), 1);
        assert_eq!(net.stats.received_by(3), 0);
        assert_eq!(net.stats.maintenance_sent, 1);
    }

    #[test]
    fn broadcast_from_dead_node_is_silent() {
        let mut net = net_with(&[(50.0, 50.0), (54.0, 50.0)], 4.0, 8.0);
        net.fail_node(0);
        let rx = net.broadcast(0, Message::Hello { pos: Point::ORIGIN });
        assert!(rx.is_empty());
        assert_eq!(net.stats.total_sent, 0);
    }

    #[test]
    fn alive_within_is_geometric() {
        let mut net = net_with(&[(10.0, 10.0), (14.0, 10.0), (40.0, 40.0)], 4.0, 8.0);
        assert_eq!(net.alive_within(Point::new(12.0, 10.0), 3.0), vec![0, 1]);
        net.fail_node(0);
        assert_eq!(net.alive_within(Point::new(12.0, 10.0), 3.0), vec![1]);
    }

    #[test]
    fn lossy_unicast_charges_sender_not_receiver() {
        let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
        net.set_loss(0.999, 3); // effectively always lost
        let mut lost = 0;
        for _ in 0..20 {
            if net.unicast(0, 1, Message::Hello { pos: Point::ORIGIN }) == Err(SendError::Lost) {
                lost += 1;
            }
        }
        assert!(lost >= 19, "loss rate 0.999 must drop nearly everything");
        assert_eq!(net.stats.sent_by(0), 20, "sender pays for every attempt");
        assert!(net.stats.received_by(1) <= 1);
        assert!(net.stats.energy_of(0) > 0.0);
    }

    #[test]
    fn lossy_broadcast_drops_receivers_independently() {
        let mut net = net_with(&[(50.0, 50.0), (54.0, 50.0), (50.0, 54.0)], 4.0, 8.0);
        net.set_loss(0.5, 9);
        let mut total_rx = 0usize;
        for _ in 0..40 {
            total_rx += net
                .broadcast(
                    0,
                    Message::Heartbeat {
                        pos: Point::new(50.0, 50.0),
                    },
                )
                .len();
        }
        // 40 broadcasts × 2 listeners × 50% ≈ 40; allow a wide band.
        assert!((20..=60).contains(&total_rx), "received {total_rx}");
        assert_eq!(net.stats.sent_by(0), 40);
    }

    #[test]
    fn loss_stream_is_deterministic() {
        let run = |seed| {
            let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
            net.set_loss(0.5, seed);
            (0..32)
                .map(|_| {
                    net.unicast(0, 1, Message::Hello { pos: Point::ORIGIN })
                        .is_ok()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn neighboring_seeds_diverge() {
        // The old `seed | 1` mixing collapsed adjacent even/odd seeds
        // (2 and 3 shared a stream); the splitmix64 finalizer must not.
        let run = |seed| {
            let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
            net.set_loss(0.5, seed);
            (0..64)
                .map(|_| {
                    net.unicast(0, 1, Message::Hello { pos: Point::ORIGIN })
                        .is_ok()
                })
                .collect::<Vec<bool>>()
        };
        for seed in [0u64, 2, 4, 100, 0xDEC0] {
            assert_ne!(run(seed), run(seed + 1), "seeds {seed} and {}", seed + 1);
        }
        assert_eq!(run(2), run(2), "same seed still reproduces");
    }

    #[test]
    fn fail_node_is_total() {
        let mut net = net_with(&[(10.0, 10.0)], 4.0, 8.0);
        assert!(!net.fail_node(999), "unknown id is not an error");
        assert!(net.fail_node(0));
        assert!(!net.fail_node(0), "second failure is a no-op");
        assert_eq!(net.alive_count(), 0);
    }

    #[test]
    fn try_node_is_total() {
        let net = net_with(&[(10.0, 10.0)], 4.0, 8.0);
        assert_eq!(net.try_node(0).unwrap().pos, Point::new(10.0, 10.0));
        assert!(net.try_node(1).is_none());
    }

    #[test]
    fn acks_are_counted_separately() {
        let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
        net.unicast(0, 1, Message::PlacementNotice { pos: Point::ORIGIN })
            .unwrap();
        net.unicast(1, 0, Message::Ack { seq: 0 }).unwrap();
        assert_eq!(net.stats.acks_sent, 1);
        assert_eq!(net.stats.protocol_sent, 2, "acks ride the protocol plane");
        assert_eq!(net.stats.total_sent, 2);
    }

    #[test]
    #[should_panic(expected = "loss rate must be in [0, 1)")]
    fn invalid_loss_rate_panics() {
        let mut net = net_with(&[(10.0, 10.0)], 4.0, 8.0);
        net.set_loss(1.0, 0);
    }

    #[test]
    fn partition_cuts_cross_side_links_only() {
        let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0), (12.0, 14.0)], 4.0, 8.0);
        let msg = Message::Hello { pos: Point::ORIGIN };
        net.set_partition([0, 2]);
        assert!(net.is_partitioned());
        assert_eq!(net.unicast(0, 1, msg), Err(SendError::Lost));
        assert_eq!(net.unicast(1, 0, msg), Err(SendError::Lost));
        assert_eq!(net.unicast(0, 2, msg), Ok(()), "same side still flows");
        assert_eq!(
            net.stats.sent_by(0),
            2,
            "sender pays for partitioned attempts"
        );
        net.heal_partition();
        assert!(!net.is_partitioned());
        assert_eq!(net.unicast(0, 1, msg), Ok(()));
    }

    #[test]
    fn blackhole_is_directional() {
        let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
        let msg = Message::Hello { pos: Point::ORIGIN };
        net.set_blackhole(0, 1);
        assert_eq!(net.unicast(0, 1, msg), Err(SendError::Lost));
        assert_eq!(net.unicast(1, 0, msg), Ok(()), "reverse link unaffected");
        net.clear_blackhole(0, 1);
        assert_eq!(net.unicast(0, 1, msg), Ok(()));
    }

    #[test]
    fn partition_drops_broadcast_listeners_across_the_cut() {
        let mut net = net_with(&[(50.0, 50.0), (54.0, 50.0), (50.0, 54.0)], 4.0, 8.0);
        net.set_partition([0, 1]);
        let rx = net.broadcast(
            0,
            Message::Heartbeat {
                pos: Point::new(50.0, 50.0),
            },
        );
        assert_eq!(rx, vec![1], "node 2 is on the far side");
    }

    #[test]
    fn chaos_cuts_do_not_consume_the_loss_stream() {
        let outcomes = |blackhole_first: bool| {
            let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
            net.set_loss(0.5, 7);
            if blackhole_first {
                net.set_blackhole(0, 1);
                for _ in 0..5 {
                    assert_eq!(
                        net.unicast(0, 1, Message::Hello { pos: Point::ORIGIN }),
                        Err(SendError::Lost)
                    );
                }
                net.clear_blackhole(0, 1);
            }
            (0..16)
                .map(|_| {
                    net.unicast(0, 1, Message::Hello { pos: Point::ORIGIN })
                        .is_ok()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(outcomes(false), outcomes(true));
    }

    #[test]
    fn drain_energy_charges_without_traffic() {
        let mut net = net_with(&[(10.0, 10.0)], 4.0, 8.0);
        net.drain_energy(0, 1.5);
        net.drain_energy(99, 1.0); // unknown id ignored
        assert_eq!(net.stats.energy_of(0), 1.5);
        assert_eq!(net.stats.total_sent, 0);
    }

    #[test]
    fn extra_latency_roundtrips() {
        let mut net = net_with(&[(10.0, 10.0)], 4.0, 8.0);
        assert_eq!(net.extra_latency(), 0);
        net.set_extra_latency(16);
        assert_eq!(net.extra_latency(), 16);
        net.set_extra_latency(0);
        assert_eq!(net.extra_latency(), 0);
    }

    #[test]
    fn sleeping_receiver_misses_frames_for_free() {
        let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
        net.set_sleeping(1, true);
        assert!(net.is_sleeping(1));
        assert!(!net.is_awake(1));
        assert!(net.is_alive(1), "sleeping is not dead");
        let msg = Message::Heartbeat { pos: Point::ORIGIN };
        assert_eq!(net.unicast(0, 1, msg), Err(SendError::Lost));
        assert_eq!(net.stats.sent_by(0), 1, "sender pays regardless");
        assert_eq!(net.stats.received_by(1), 0);
        assert_eq!(net.stats.energy_of(1), 0.0, "radio off costs nothing");
        net.set_sleeping(1, false);
        assert_eq!(net.unicast(0, 1, msg), Ok(()));
    }

    #[test]
    fn sleeping_sender_cannot_transmit() {
        let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
        net.set_sleeping(0, true);
        let msg = Message::Heartbeat { pos: Point::ORIGIN };
        assert_eq!(net.unicast(0, 1, msg), Err(SendError::SenderDown));
        assert!(net.broadcast(0, msg).is_empty());
        assert_eq!(net.stats.total_sent, 0);
    }

    #[test]
    fn broadcast_skips_sleeping_listeners() {
        let mut net = net_with(&[(50.0, 50.0), (54.0, 50.0), (50.0, 54.0)], 4.0, 8.0);
        net.set_sleeping(1, true);
        let rx = net.broadcast(
            0,
            Message::Heartbeat {
                pos: Point::new(50.0, 50.0),
            },
        );
        assert_eq!(rx, vec![2], "only the awake listener hears");
        assert_eq!(net.stats.received_by(1), 0);
    }

    #[test]
    fn sleeping_does_not_consume_the_loss_stream() {
        // Frames dropped at a sleeping radio burn no loss draws: after
        // the node wakes, the loss sequence continues exactly where it
        // would have without the sleeping-period traffic.
        let outcomes = |send_while_asleep: bool| {
            let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
            net.set_loss(0.5, 11);
            if send_while_asleep {
                net.set_sleeping(1, true);
                for _ in 0..5 {
                    assert_eq!(
                        net.unicast(0, 1, Message::Hello { pos: Point::ORIGIN }),
                        Err(SendError::Lost)
                    );
                }
                net.set_sleeping(1, false);
            }
            (0..16)
                .map(|_| {
                    net.unicast(0, 1, Message::Hello { pos: Point::ORIGIN })
                        .is_ok()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(outcomes(false), outcomes(true));
    }

    #[test]
    fn dead_nodes_read_as_not_sleeping() {
        let mut net = net_with(&[(10.0, 10.0)], 4.0, 8.0);
        net.set_sleeping(0, true);
        net.fail_node(0);
        assert!(!net.is_sleeping(0), "sleeping is a live-radio property");
        assert!(!net.is_awake(0));
        net.set_sleeping(99, true); // unknown ids ignored
        assert!(!net.is_sleeping(99));
    }

    #[test]
    fn reset_clears_sleep_flags() {
        let mut net = net_with(&[(10.0, 10.0)], 4.0, 8.0);
        net.set_sleeping(0, true);
        net.reset(Aabb::square(100.0));
        let id = net.add_node(Point::new(10.0, 10.0), 4.0, 8.0);
        assert!(net.is_awake(id));
    }

    #[test]
    fn total_energy_aggregates() {
        let mut net = net_with(&[(10.0, 10.0), (15.0, 10.0)], 4.0, 8.0);
        net.unicast(0, 1, Message::Hello { pos: Point::ORIGIN })
            .unwrap();
        let sum = net.stats.energy_of(0) + net.stats.energy_of(1);
        assert!((net.stats.total_energy() - sum).abs() < 1e-12);
    }
}
