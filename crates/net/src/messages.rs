//! The protocol vocabulary exchanged by DECOR nodes.
//!
//! The reproduction counts and costs these messages (Fig. 10 reports
//! messages per cell as the energy proxy); their payload sizes feed the
//! energy model. Message *semantics* live with the schemes in `decor-core`
//! and the detector in [`crate::detect`].

use crate::node::NodeId;
use decor_geom::Point;
use serde::{Deserialize, Serialize};

/// A protocol message.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Message {
    /// Periodic position/liveness meta-information (§3.2: exchanged with
    /// period `Tc`; silence reveals failure).
    Heartbeat {
        /// Sender's position, repeated each period per the paper.
        pos: Point,
    },
    /// Neighbor discovery hello.
    Hello {
        /// Sender's position.
        pos: Point,
    },
    /// A leader (grid scheme) or node (Voronoi scheme) announces that a new
    /// sensor was deployed at `pos` — sent to neighbors whose cells the new
    /// sensor's coverage overlaps, so they do not over-cover their borders
    /// (§3.3).
    PlacementNotice {
        /// Where the new sensor was placed.
        pos: Point,
    },
    /// Result of a leader election round within a cell.
    LeaderAnnounce {
        /// The elected node.
        leader: NodeId,
        /// Election round (rotation counter).
        round: u64,
    },
    /// A leader forwards its placement decisions towards the base station.
    Report {
        /// Number of placements carried in this report.
        placements: u32,
    },
    /// The rotation coordinator assigns `node` to sleep shift `shift`
    /// (see [`crate::rotation`]). Relayed hop-by-hop over the reliable
    /// transport during shift agreement; rides the protocol plane.
    ShiftAssign {
        /// The node being assigned.
        node: NodeId,
        /// Its shift index in the agreed rotation.
        shift: u32,
    },
    /// Link-layer acknowledgement of a reliably-sent message (see
    /// [`crate::transport`]). Carries the per-link sequence number being
    /// acknowledged. Acks are classified on the *protocol* plane: in this
    /// codebase the reliable transport only carries restoration-protocol
    /// traffic (placement notices), so its repair overhead belongs to the
    /// Fig. 10 proxy; [`crate::NetStats::acks_sent`] isolates them.
    Ack {
        /// Sequence number of the message being acknowledged.
        seq: u64,
    },
}

impl Message {
    /// Approximate payload size in bytes, used by the energy model.
    ///
    /// Sizes follow a mote-class packet layout: 8 bytes per coordinate
    /// pair, 4 bytes per id/counter, 1 byte tag.
    pub fn payload_bytes(&self) -> u32 {
        match self {
            Message::Heartbeat { .. } | Message::Hello { .. } | Message::PlacementNotice { .. } => {
                1 + 16
            }
            Message::LeaderAnnounce { .. } => 1 + 4 + 8,
            Message::Report { .. } => 1 + 4,
            Message::ShiftAssign { .. } => 1 + 4 + 4,
            Message::Ack { .. } => 1 + 4,
        }
    }

    /// Stable short label of the variant, used as the `msg` field of trace
    /// events ([`decor_trace::TraceEvent`]).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Heartbeat { .. } => "heartbeat",
            Message::Hello { .. } => "hello",
            Message::PlacementNotice { .. } => "notice",
            Message::LeaderAnnounce { .. } => "leader",
            Message::Report { .. } => "report",
            Message::ShiftAssign { .. } => "shift",
            Message::Ack { .. } => "ack",
        }
    }

    /// True for messages belonging to the background maintenance plane
    /// (heartbeats, hellos) as opposed to the restoration protocol itself.
    ///
    /// Fig. 10 counts protocol messages; maintenance traffic is constant
    /// background load and reported separately.
    pub fn is_maintenance(&self) -> bool {
        matches!(self, Message::Heartbeat { .. } | Message::Hello { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes_are_positive_and_stable() {
        let msgs = [
            Message::Heartbeat { pos: Point::ORIGIN },
            Message::Hello { pos: Point::ORIGIN },
            Message::PlacementNotice { pos: Point::ORIGIN },
            Message::LeaderAnnounce {
                leader: 3,
                round: 9,
            },
            Message::Report { placements: 5 },
            Message::ShiftAssign { node: 4, shift: 1 },
            Message::Ack { seq: 17 },
        ];
        for m in msgs {
            assert!(m.payload_bytes() > 0, "{m:?}");
        }
        assert_eq!(Message::Report { placements: 5 }.payload_bytes(), 5);
        assert_eq!(
            Message::ShiftAssign { node: 4, shift: 1 }.payload_bytes(),
            9
        );
    }

    #[test]
    fn maintenance_classification() {
        assert!(Message::Heartbeat { pos: Point::ORIGIN }.is_maintenance());
        assert!(Message::Hello { pos: Point::ORIGIN }.is_maintenance());
        assert!(!Message::PlacementNotice { pos: Point::ORIGIN }.is_maintenance());
        assert!(!Message::LeaderAnnounce {
            leader: 0,
            round: 0
        }
        .is_maintenance());
        assert!(!Message::Report { placements: 0 }.is_maintenance());
        assert!(!Message::ShiftAssign { node: 0, shift: 0 }.is_maintenance());
        assert!(!Message::Ack { seq: 0 }.is_maintenance());
    }
}
