//! A first-order radio energy model.
//!
//! The paper uses "number of messages sent" as its energy proxy (Fig. 10).
//! This model refines that just enough to be meaningful: transmitting costs
//! a per-message overhead plus a per-byte cost scaled by the square of the
//! transmission range (free-space path loss, as in the LEACH line of work
//! the paper cites for leader election), and receiving costs electronics
//! energy per byte.

use serde::{Deserialize, Serialize};

/// Energy model parameters. Units are abstract "energy units"; defaults
/// follow the classic first-order model ratios (50 nJ/bit electronics,
/// 100 pJ/bit/m² amplifier) with bytes instead of bits.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Electronics cost per byte, paid by both sender and receiver.
    pub elec_per_byte: f64,
    /// Amplifier cost per byte per (distance unit)², paid by the sender.
    pub amp_per_byte_d2: f64,
    /// Fixed per-message overhead (synchronization, headers), sender side.
    pub tx_overhead: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            elec_per_byte: 0.4,
            amp_per_byte_d2: 0.0008,
            tx_overhead: 1.0,
        }
    }
}

impl EnergyModel {
    /// Energy the sender spends to transmit `bytes` over distance `d`.
    pub fn tx_cost(&self, bytes: u32, d: f64) -> f64 {
        self.tx_overhead + bytes as f64 * (self.elec_per_byte + self.amp_per_byte_d2 * d * d)
    }

    /// Energy a receiver spends on `bytes`.
    pub fn rx_cost(&self, bytes: u32) -> f64 {
        bytes as f64 * self.elec_per_byte
    }

    /// Energy to broadcast `bytes` at full power for range `rc`, reaching
    /// `receivers` listeners: one transmission plus per-receiver reception.
    pub fn broadcast_cost(&self, bytes: u32, rc: f64, receivers: usize) -> f64 {
        self.tx_cost(bytes, rc) + receivers as f64 * self.rx_cost(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_grows_with_distance_and_size() {
        let m = EnergyModel::default();
        assert!(m.tx_cost(16, 8.0) > m.tx_cost(16, 4.0));
        assert!(m.tx_cost(32, 4.0) > m.tx_cost(16, 4.0));
    }

    #[test]
    fn rx_is_linear_in_bytes() {
        let m = EnergyModel::default();
        assert_eq!(m.rx_cost(0), 0.0);
        assert!((m.rx_cost(20) - 2.0 * m.rx_cost(10)).abs() < 1e-12);
    }

    #[test]
    fn zero_byte_message_still_costs_overhead() {
        let m = EnergyModel::default();
        assert_eq!(m.tx_cost(0, 5.0), m.tx_overhead);
    }

    #[test]
    fn broadcast_cost_composition() {
        let m = EnergyModel::default();
        let b = m.broadcast_cost(16, 8.0, 3);
        assert!((b - (m.tx_cost(16, 8.0) + 3.0 * m.rx_cost(16))).abs() < 1e-12);
    }

    #[test]
    fn doubling_range_quadruples_amp_term() {
        let m = EnergyModel {
            elec_per_byte: 0.0,
            amp_per_byte_d2: 1.0,
            tx_overhead: 0.0,
        };
        assert!((m.tx_cost(1, 8.0) - 4.0 * m.tx_cost(1, 4.0)).abs() < 1e-12);
    }
}
