//! Leader election and rotation (paper §3.1).
//!
//! The grid scheme needs one leader per cell. The paper delegates to known
//! in-network algorithms (LEACH-style randomized election \[6\], group
//! management \[11\], mobile ad-hoc election \[12\]) and assumes a *rotation*
//! mechanism spreads the leader's energy burden across the cell. We model
//! the outcome of those protocols, not their packet exchanges: a seeded
//! random choice for the initial election, round-robin rotation thereafter.

use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Randomly elects a leader among `members`, deterministic in `seed`.
///
/// Returns `None` for an empty member set (an empty cell has no leader;
/// the paper's fallback is a neighboring cell deploying one, handled by
/// the grid scheme).
pub fn elect_random(members: &[NodeId], seed: u64) -> Option<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    members.choose(&mut rng).copied()
}

/// Round-robin rotation: the leader for rotation round `round`.
///
/// Members are considered in sorted order so the schedule is independent
/// of the caller's ordering; every member leads once per `members.len()`
/// rounds, which is what equalizes per-node message load in Fig. 10's
/// "with rotation" numbers.
pub fn rotation_leader(members: &[NodeId], round: u64) -> Option<NodeId> {
    if members.is_empty() {
        return None;
    }
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    Some(sorted[(round % sorted.len() as u64) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cell_has_no_leader() {
        assert_eq!(elect_random(&[], 1), None);
        assert_eq!(rotation_leader(&[], 0), None);
    }

    #[test]
    fn random_election_is_deterministic_and_member() {
        let members = vec![3, 7, 11, 20];
        let a = elect_random(&members, 5).unwrap();
        let b = elect_random(&members, 5).unwrap();
        assert_eq!(a, b);
        assert!(members.contains(&a));
    }

    #[test]
    fn different_seeds_eventually_elect_differently() {
        let members = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let distinct: std::collections::BTreeSet<NodeId> =
            (0..32).filter_map(|s| elect_random(&members, s)).collect();
        assert!(distinct.len() > 1, "election never varies with seed");
    }

    #[test]
    fn rotation_cycles_through_all_members() {
        let members = vec![9, 2, 5];
        let schedule: Vec<NodeId> = (0..6)
            .map(|r| rotation_leader(&members, r).unwrap())
            .collect();
        assert_eq!(schedule, vec![2, 5, 9, 2, 5, 9]);
    }

    #[test]
    fn rotation_is_order_independent() {
        let a = rotation_leader(&[4, 1, 8], 1);
        let b = rotation_leader(&[8, 4, 1], 1);
        assert_eq!(a, b);
    }

    #[test]
    fn rotation_fairness_over_full_cycle() {
        let members = vec![10, 20, 30, 40];
        let mut counts = std::collections::BTreeMap::new();
        for r in 0..400 {
            *counts
                .entry(rotation_leader(&members, r).unwrap())
                .or_insert(0) += 1;
        }
        for (_, c) in counts {
            assert_eq!(c, 100);
        }
    }

    #[test]
    fn rotation_dedups_members() {
        assert_eq!(rotation_leader(&[5, 5, 5], 2), Some(5));
        assert_eq!(rotation_leader(&[2, 2, 7], 1), Some(7));
    }

    #[test]
    fn singleton_cell_always_leads() {
        for r in 0..5 {
            assert_eq!(rotation_leader(&[42], r), Some(42));
        }
    }
}
