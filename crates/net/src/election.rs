//! Leader election and rotation (paper §3.1).
//!
//! The grid scheme needs one leader per cell. The paper delegates to known
//! in-network algorithms (LEACH-style randomized election \[6\], group
//! management \[11\], mobile ad-hoc election \[12\]) and assumes a *rotation*
//! mechanism spreads the leader's energy burden across the cell. We model
//! the outcome of those protocols, not their packet exchanges: a seeded
//! random choice for the initial election, round-robin rotation thereafter.

use crate::network::Network;
use crate::node::NodeId;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Randomly elects a leader among `members`, deterministic in `seed`.
///
/// Returns `None` for an empty member set (an empty cell has no leader;
/// the paper's fallback is a neighboring cell deploying one, handled by
/// the grid scheme).
pub fn elect_random(members: &[NodeId], seed: u64) -> Option<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    members.choose(&mut rng).copied()
}

/// Round-robin rotation: the leader for rotation round `round`.
///
/// Members are considered in sorted order so the schedule is independent
/// of the caller's ordering; every member leads once per `members.len()`
/// rounds, which is what equalizes per-node message load in Fig. 10's
/// "with rotation" numbers.
pub fn rotation_leader(members: &[NodeId], round: u64) -> Option<NodeId> {
    rotation_leader_in(members, round, &mut Vec::new())
}

/// [`rotation_leader`] with a caller-owned sort buffer, so round loops
/// that elect once per cell per round stay off the allocator. Same
/// result for any (even dirty) buffer — it is cleared first.
pub fn rotation_leader_in(members: &[NodeId], round: u64, buf: &mut Vec<NodeId>) -> Option<NodeId> {
    if members.is_empty() {
        return None;
    }
    buf.clear();
    buf.extend_from_slice(members);
    buf.sort_unstable();
    buf.dedup();
    Some(buf[(round % buf.len() as u64) as usize])
}

/// The members of a cell that are alive on `net`, in the original order.
///
/// Elections must never consider a dead node: a crashed leader stays in
/// the cell's static member list (cells are geometric), so callers filter
/// through this before every [`rotation_leader`]/[`elect_random`] call.
pub fn alive_members(members: &[NodeId], net: &Network) -> Vec<NodeId> {
    members
        .iter()
        .copied()
        .filter(|&m| net.is_alive(m))
        .collect()
}

/// The rotation leaders a partitioned cell actually sees: one per side
/// that holds at least one alive member.
///
/// While the medium is split, each side independently re-runs the
/// election among the members *it* can reach — the paper's rotation
/// degenerates to one leader per fragment, re-merging on heal (the
/// rotation schedule is deterministic in `(members, round)`, so both
/// fragments agree again the moment they exchange a round's messages).
/// Without a partition this is a single-element vec equal to
/// [`rotation_leader`] over the alive members.
pub fn partition_leaders(members: &[NodeId], net: &Network, round: u64) -> Vec<NodeId> {
    let alive = alive_members(members, net);
    let Some(side_a) = net.partition_side_a() else {
        return rotation_leader(&alive, round).into_iter().collect();
    };
    let (a, b): (Vec<NodeId>, Vec<NodeId>) = alive.iter().partition(|m| side_a.contains(m));
    let mut leaders = Vec::new();
    leaders.extend(rotation_leader(&a, round));
    leaders.extend(rotation_leader(&b, round));
    leaders.sort_unstable();
    leaders
}

/// Is `claimant` a deposed leader — one whose placement decisions the
/// cell must reject? True when the claimant is dead, or is not the
/// current rotation leader of any partition side for `round`.
pub fn is_deposed(claimant: NodeId, members: &[NodeId], net: &Network, round: u64) -> bool {
    !partition_leaders(members, net, round).contains(&claimant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::{Aabb, Point};

    /// A 4-member cell on a shared medium: ids 0..4 in mutual range.
    fn cell_net() -> (Network, Vec<NodeId>) {
        let mut net = Network::new(Aabb::square(100.0));
        let members: Vec<NodeId> = (0..4)
            .map(|i| net.add_node(Point::new(10.0 + 2.0 * i as f64, 10.0), 4.0, 8.0))
            .collect();
        (net, members)
    }

    #[test]
    fn empty_cell_has_no_leader() {
        assert_eq!(elect_random(&[], 1), None);
        assert_eq!(rotation_leader(&[], 0), None);
    }

    #[test]
    fn random_election_is_deterministic_and_member() {
        let members = vec![3, 7, 11, 20];
        let a = elect_random(&members, 5).unwrap();
        let b = elect_random(&members, 5).unwrap();
        assert_eq!(a, b);
        assert!(members.contains(&a));
    }

    #[test]
    fn different_seeds_eventually_elect_differently() {
        let members = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let distinct: std::collections::BTreeSet<NodeId> =
            (0..32).filter_map(|s| elect_random(&members, s)).collect();
        assert!(distinct.len() > 1, "election never varies with seed");
    }

    #[test]
    fn rotation_cycles_through_all_members() {
        let members = vec![9, 2, 5];
        let schedule: Vec<NodeId> = (0..6)
            .map(|r| rotation_leader(&members, r).unwrap())
            .collect();
        assert_eq!(schedule, vec![2, 5, 9, 2, 5, 9]);
    }

    #[test]
    fn rotation_is_order_independent() {
        let a = rotation_leader(&[4, 1, 8], 1);
        let b = rotation_leader(&[8, 4, 1], 1);
        assert_eq!(a, b);
    }

    #[test]
    fn rotation_fairness_over_full_cycle() {
        let members = vec![10, 20, 30, 40];
        let mut counts = std::collections::BTreeMap::new();
        for r in 0..400 {
            *counts
                .entry(rotation_leader(&members, r).unwrap())
                .or_insert(0) += 1;
        }
        for (_, c) in counts {
            assert_eq!(c, 100);
        }
    }

    #[test]
    fn rotation_dedups_members() {
        assert_eq!(rotation_leader(&[5, 5, 5], 2), Some(5));
        assert_eq!(rotation_leader(&[2, 2, 7], 1), Some(7));
    }

    #[test]
    fn singleton_cell_always_leads() {
        for r in 0..5 {
            assert_eq!(rotation_leader(&[42], r), Some(42));
        }
    }

    #[test]
    fn dead_members_never_lead() {
        let (mut net, members) = cell_net();
        net.fail_node(0);
        net.fail_node(2);
        for round in 0..8 {
            let alive = alive_members(&members, &net);
            assert_eq!(alive, vec![1, 3]);
            let leader = rotation_leader(&alive, round).unwrap();
            assert!(
                net.is_alive(leader),
                "round {round} elected dead node {leader}"
            );
        }
    }

    #[test]
    fn partition_elects_one_leader_per_side() {
        let (mut net, members) = cell_net();
        net.set_partition([0, 1]);
        let leaders = partition_leaders(&members, &net, 0);
        assert_eq!(leaders, vec![0, 2], "round-robin head of each side");
        // Each side's leader is reachable from its own side only.
        assert!(net
            .unicast(1, 0, crate::Message::Hello { pos: Point::ORIGIN })
            .is_ok());
        assert!(net
            .unicast(1, 2, crate::Message::Hello { pos: Point::ORIGIN })
            .is_err());
    }

    #[test]
    fn leader_crash_inside_a_partition_reelects_on_both_sides() {
        let (mut net, members) = cell_net();
        net.set_partition([0, 1]);
        // Crash both current side leaders mid-round.
        net.fail_node(0);
        net.fail_node(2);
        let leaders = partition_leaders(&members, &net, 0);
        assert_eq!(leaders, vec![1, 3], "each side promoted its survivor");
        for &l in &leaders {
            assert!(net.is_alive(l));
        }
    }

    #[test]
    fn heal_converges_to_a_single_leader() {
        let (mut net, members) = cell_net();
        net.set_partition([0, 1]);
        assert_eq!(partition_leaders(&members, &net, 3).len(), 2);
        net.heal_partition();
        for round in 0..8 {
            let leaders = partition_leaders(&members, &net, round);
            assert_eq!(
                leaders.len(),
                1,
                "round {round}: healed cell must agree on one leader"
            );
            assert_eq!(
                leaders[0],
                rotation_leader(&members, round).unwrap(),
                "healed schedule equals the unpartitioned rotation"
            );
        }
    }

    #[test]
    fn one_sided_partition_leaves_one_side_leaderless() {
        let (mut net, members) = cell_net();
        // Every member lands on side A: side B of this cell is empty.
        net.set_partition([0, 1, 2, 3]);
        assert_eq!(partition_leaders(&members, &net, 0).len(), 1);
    }

    #[test]
    fn deposed_leader_is_rejected() {
        let (mut net, members) = cell_net();
        // Round 0: node 0 leads the whole cell.
        assert!(!is_deposed(0, &members, &net, 0));
        assert!(is_deposed(1, &members, &net, 0));
        // Node 0 crashes: its claim for round 0 is now stale and any
        // placement it announces must be rejected.
        net.fail_node(0);
        assert!(is_deposed(0, &members, &net, 0));
        assert!(!is_deposed(1, &members, &net, 0), "successor took over");
        // Across a partition, a leader from one side is not a valid
        // leader for the other side's round — but it is still *a*
        // current leader, so its own fragment accepts it.
        let (mut net2, members2) = cell_net();
        net2.set_partition([0, 1]);
        assert!(!is_deposed(0, &members2, &net2, 0));
        assert!(!is_deposed(2, &members2, &net2, 0));
        assert!(is_deposed(1, &members2, &net2, 0));
        // Heal: the merged cell rejects the side-B leader's claim once
        // rotation re-unifies.
        net2.heal_partition();
        assert!(is_deposed(2, &members2, &net2, 0));
        assert!(!is_deposed(0, &members2, &net2, 0));
    }
}
