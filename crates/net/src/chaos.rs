//! Deterministic chaos: scripted fault injection over the live network.
//!
//! Restoration protocols fail at the *composition* of faults — a
//! partition during an election, a leader crash between a placement
//! decision and its notice — which hand-written scenarios rarely reach.
//! This module makes those compositions first-class and reproducible:
//!
//! - a [`FaultPlan`] is a sim-time-ordered script of faults (crashes,
//!   partitions/heals, blackholed directed links, latency spikes,
//!   energy drains) with a stable text format for replay files;
//! - [`FaultPlan::generate`] derives a bounded random plan from a seed,
//!   so `(scenario, chaos_seed)` always replays bit-identically;
//! - a [`ChaosEngine`] applies the plan directly on the transport's
//!   event clock (see `Transport::flush_chaos`), so faults land *between
//!   retries* of in-flight messages, not just at round boundaries;
//! - [`shrink_plan`] delta-debugs a failing plan down to a locally
//!   minimal one (the vendored proptest shim cannot shrink).
//!
//! Every generated plan ends with cleanup events (heal, un-blackhole,
//! latency back to nominal) so "restoration converges once faults
//! cease" is a meaningful property to assert.

use crate::event::Time;
use crate::network::Network;
use crate::node::NodeId;
use decor_trace::TraceEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One kind of injected fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultKind {
    /// Node `node` dies (total: unknown ids are a no-op, like
    /// [`Network::fail_node`]).
    Crash {
        /// The victim's network node id.
        node: NodeId,
    },
    /// The medium splits: `side_a` vs everyone else. Replaces any
    /// earlier partition.
    Partition {
        /// Node ids on side A of the cut.
        side_a: Vec<NodeId>,
    },
    /// Removes the partition.
    Heal,
    /// The directed link `from -> to` eats every packet.
    Blackhole {
        /// Sending side of the severed link.
        from: NodeId,
        /// Receiving side of the severed link.
        to: NodeId,
    },
    /// Restores the directed link `from -> to`.
    Unblackhole {
        /// Sending side of the restored link.
        from: NodeId,
        /// Receiving side of the restored link.
        to: NodeId,
    },
    /// Every transport retry backoff gains `extra` ticks; 0 restores
    /// nominal timing.
    Latency {
        /// Extra ticks per backoff.
        extra: Time,
    },
    /// Node `node` is charged `amount` energy without transmitting.
    Drain {
        /// The drained node's id.
        node: NodeId,
        /// Energy units charged.
        amount: f64,
    },
}

/// One scheduled fault: a [`FaultKind`] stamped with its injection time
/// on the transport clock.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEvent {
    /// Injection time (ticks on the transport clock).
    pub at: Time,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// The event's line in the [`FaultPlan`] text format.
    fn line(&self) -> String {
        match &self.kind {
            FaultKind::Crash { node } => format!("{} crash {node}", self.at),
            FaultKind::Partition { side_a } => {
                let ids: Vec<String> = side_a.iter().map(|id| id.to_string()).collect();
                format!("{} partition {}", self.at, ids.join(" "))
                    .trim_end()
                    .to_string()
            }
            FaultKind::Heal => format!("{} heal", self.at),
            FaultKind::Blackhole { from, to } => format!("{} blackhole {from} {to}", self.at),
            FaultKind::Unblackhole { from, to } => {
                format!("{} unblackhole {from} {to}", self.at)
            }
            FaultKind::Latency { extra } => format!("{} latency {extra}", self.at),
            FaultKind::Drain { node, amount } => {
                format!("{} drain {node} {amount}", self.at)
            }
        }
    }
}

/// A sim-time-ordered fault script. Construction sorts by time (stable:
/// same-time faults keep their listed order), so iteration order is the
/// injection order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan from unordered events; sorts stably by injection time.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultPlan { events }
    }

    /// The plan that injects nothing.
    pub fn empty() -> Self {
        FaultPlan::default()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The scheduled faults, in injection order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// The last injection time (0 for an empty plan).
    pub fn horizon(&self) -> Time {
        self.events.last().map_or(0, |e| e.at)
    }

    /// Serializes to the replay text format: one `<time> <kind> [args…]`
    /// line per fault, parseable by [`FaultPlan::parse`].
    pub fn to_text(&self) -> String {
        let mut out = String::from("# decor chaos fault plan\n");
        for e in &self.events {
            out.push_str(&e.line());
            out.push('\n');
        }
        out
    }

    /// Parses the text format produced by [`FaultPlan::to_text`]. Blank
    /// lines and `#` comments are ignored. Returns a message naming the
    /// offending line on malformed input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut events = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tok = line.split_whitespace();
            let err = |what: &str| format!("line {}: {what}: {line:?}", lineno + 1);
            let at: Time = tok
                .next()
                .ok_or_else(|| err("missing time"))?
                .parse()
                .map_err(|_| err("bad time"))?;
            let kind = tok.next().ok_or_else(|| err("missing fault kind"))?;
            let mut num = |what: &str| -> Result<u64, String> {
                tok.next()
                    .ok_or_else(|| err(what))?
                    .parse::<u64>()
                    .map_err(|_| err(what))
            };
            let kind = match kind {
                "crash" => FaultKind::Crash {
                    node: num("crash needs a node id")? as NodeId,
                },
                "partition" => {
                    let side_a: Result<Vec<NodeId>, String> = tok
                        .by_ref()
                        .map(|t| {
                            t.parse::<u64>()
                                .map(|v| v as NodeId)
                                .map_err(|_| err("partition ids must be integers"))
                        })
                        .collect();
                    FaultKind::Partition { side_a: side_a? }
                }
                "heal" => FaultKind::Heal,
                "blackhole" => FaultKind::Blackhole {
                    from: num("blackhole needs <from> <to>")? as NodeId,
                    to: num("blackhole needs <from> <to>")? as NodeId,
                },
                "unblackhole" => FaultKind::Unblackhole {
                    from: num("unblackhole needs <from> <to>")? as NodeId,
                    to: num("unblackhole needs <from> <to>")? as NodeId,
                },
                "latency" => FaultKind::Latency {
                    extra: num("latency needs an extra tick count")?,
                },
                "drain" => {
                    let node = num("drain needs <node> <amount>")? as NodeId;
                    let amount: f64 = tok
                        .next()
                        .ok_or_else(|| err("drain needs <node> <amount>"))?
                        .parse()
                        .map_err(|_| err("bad drain amount"))?;
                    if !amount.is_finite() {
                        return Err(err("drain amount must be finite"));
                    }
                    FaultKind::Drain { node, amount }
                }
                other => return Err(err(&format!("unknown fault kind {other:?}"))),
            };
            if tok.next().is_some() {
                return Err(err("trailing tokens"));
            }
            events.push(FaultEvent { at, kind });
        }
        Ok(FaultPlan::new(events))
    }

    /// Derives a bounded random plan from `seed`: a mix of crashes
    /// (capped at half the `n_nodes` initial population), partitions,
    /// blackholes, latency spikes, and drains at times in `[0, horizon)`,
    /// followed by cleanup events at `horizon` (heal, un-blackhole,
    /// latency back to 0) so every fault provably ceases. Deterministic:
    /// the same `(seed, n_nodes, horizon)` always yields the same plan.
    pub fn generate(seed: u64, n_nodes: usize, horizon: Time) -> Self {
        if n_nodes == 0 {
            return FaultPlan::empty();
        }
        let horizon = horizon.max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let n_faults = rng.gen_range(1..=6usize);
        let crash_budget = (n_nodes / 2).max(1);
        let mut crashes = 0usize;
        let mut partitioned = false;
        let mut spiked = false;
        let mut holes: Vec<(NodeId, NodeId)> = Vec::new();
        let mut events = Vec::new();
        for _ in 0..n_faults {
            let at = rng.gen_range(0..horizon);
            let pick = rng.gen_range(0..7u32);
            let kind = match pick {
                // Crashes get the biggest share: they are the paper's
                // core fault model.
                0..=2 if crashes < crash_budget => {
                    crashes += 1;
                    FaultKind::Crash {
                        node: rng.gen_range(0..n_nodes),
                    }
                }
                3 => {
                    partitioned = true;
                    let side_a: Vec<NodeId> = (0..n_nodes).filter(|_| rng.gen_bool(0.5)).collect();
                    FaultKind::Partition { side_a }
                }
                4 if n_nodes >= 2 => {
                    let from = rng.gen_range(0..n_nodes);
                    let mut to = rng.gen_range(0..n_nodes - 1);
                    if to >= from {
                        to += 1;
                    }
                    holes.push((from, to));
                    FaultKind::Blackhole { from, to }
                }
                5 => {
                    spiked = true;
                    FaultKind::Latency {
                        extra: rng.gen_range(1..=32u64),
                    }
                }
                _ => FaultKind::Drain {
                    node: rng.gen_range(0..n_nodes),
                    amount: rng.gen_range(0.1..2.0f64),
                },
            };
            events.push(FaultEvent { at, kind });
        }
        // Cleanup: every non-crash fault is lifted at the horizon.
        if partitioned {
            events.push(FaultEvent {
                at: horizon,
                kind: FaultKind::Heal,
            });
        }
        for (from, to) in holes {
            events.push(FaultEvent {
                at: horizon,
                kind: FaultKind::Unblackhole { from, to },
            });
        }
        if spiked {
            events.push(FaultEvent {
                at: horizon,
                kind: FaultKind::Latency { extra: 0 },
            });
        }
        FaultPlan::new(events)
    }
}

/// Applies a [`FaultPlan`] to a [`Network`] as simulated time advances.
///
/// The engine is a cursor over the plan: [`ChaosEngine::advance_to`]
/// injects every fault due at or before the given instant, in plan
/// order. `Transport::flush_chaos` calls it before every pop of the
/// retry clock, so faults interleave with in-flight retransmissions;
/// placers additionally call it at round boundaries and drain pending
/// batches when coverage converges while faults are still scheduled.
#[derive(Clone, Debug)]
pub struct ChaosEngine<'a> {
    /// The script, borrowed from its owner where possible (placers hold
    /// the plan in their config) so attaching chaos to a run does not
    /// copy the event list.
    plan: std::borrow::Cow<'a, FaultPlan>,
    cursor: usize,
    crashed: Vec<NodeId>,
}

impl ChaosEngine<'static> {
    /// An engine at the start of `plan`, taking ownership of it.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosEngine {
            plan: std::borrow::Cow::Owned(plan),
            cursor: 0,
            crashed: Vec::new(),
        }
    }
}

impl<'a> ChaosEngine<'a> {
    /// An engine at the start of `plan`, borrowing it — the zero-copy
    /// twin of [`ChaosEngine::new`] for callers that keep the plan alive
    /// (e.g. a placer's deployment config).
    pub fn borrowed(plan: &'a FaultPlan) -> Self {
        ChaosEngine {
            plan: std::borrow::Cow::Borrowed(plan),
            cursor: 0,
            crashed: Vec::new(),
        }
    }

    /// The script being applied.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True once every fault has been injected.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.plan.events.len()
    }

    /// Injection time of the next pending fault, if any.
    pub fn next_time(&self) -> Option<Time> {
        self.plan.events.get(self.cursor).map(|e| e.at)
    }

    /// Injects every fault due at or before `now`, in plan order.
    pub fn advance_to(&mut self, net: &mut Network, now: Time) {
        while self.next_time().is_some_and(|t| t <= now) {
            self.apply_next(net);
        }
    }

    /// Forces the next same-time batch of faults regardless of the
    /// clock, returning its injection time. Placers call this when
    /// coverage converges while faults are still pending — otherwise a
    /// quiet (retry-free) run would never reach the fault times.
    pub fn advance_next_batch(&mut self, net: &mut Network) -> Option<Time> {
        let t = self.next_time()?;
        self.advance_to(net, t);
        Some(t)
    }

    /// Node ids crashed by the plan since the last call (ids that were
    /// alive when their crash fired). The placer uses this to retire the
    /// corresponding sensors from its coverage ground truth.
    pub fn take_crashed(&mut self) -> Vec<NodeId> {
        std::mem::take(&mut self.crashed)
    }

    fn apply_next(&mut self, net: &mut Network) {
        // Borrow the event in place: the only variant with heap payload
        // (`Partition`) feeds its id list to the network via iterator, so
        // no per-event clone of the plan's data is needed.
        let ev = &self.plan.events[self.cursor];
        self.cursor += 1;
        net.trace().set_time(ev.at);
        match &ev.kind {
            FaultKind::Crash { node } => {
                let node = *node;
                if net.fail_node(node) {
                    self.crashed.push(node);
                }
                net.trace()
                    .emit(TraceEvent::ChaosCrash { node: node as u64 });
            }
            FaultKind::Partition { side_a } => {
                net.trace().emit(TraceEvent::ChaosPartition {
                    side: side_a.len() as u64,
                });
                net.set_partition(side_a.iter().copied());
            }
            FaultKind::Heal => {
                net.heal_partition();
                net.trace().emit(TraceEvent::ChaosHeal);
            }
            FaultKind::Blackhole { from, to } => {
                net.set_blackhole(*from, *to);
                net.trace().emit(TraceEvent::ChaosBlackhole {
                    from: *from as u64,
                    to: *to as u64,
                });
            }
            FaultKind::Unblackhole { from, to } => {
                net.clear_blackhole(*from, *to);
                net.trace().emit(TraceEvent::ChaosUnblackhole {
                    from: *from as u64,
                    to: *to as u64,
                });
            }
            FaultKind::Latency { extra } => {
                net.set_extra_latency(*extra);
                net.trace().emit(TraceEvent::ChaosLatency { extra: *extra });
            }
            FaultKind::Drain { node, amount } => {
                net.drain_energy(*node, *amount);
                net.trace().emit(TraceEvent::ChaosDrain {
                    node: *node as u64,
                    amount: *amount,
                });
            }
        }
    }
}

/// Delta-debugs a failing plan to a locally minimal one: the returned
/// plan still satisfies `fails`, and (when the input failed at all) no
/// single event can be removed without the failure disappearing. The
/// classic ddmin loop — the vendored proptest shim cannot shrink, so
/// chaos tests shrink here instead.
///
/// `fails` must be deterministic; it is called many times.
pub fn shrink_plan(plan: &FaultPlan, mut fails: impl FnMut(&FaultPlan) -> bool) -> FaultPlan {
    if !fails(plan) {
        return plan.clone();
    }
    // The working set lives inside a `FaultPlan` so every probe borrows
    // it directly: a candidate chunk is drained into `removed` (capacity
    // reused across probes) and spliced back when the probe passes.
    // Removing a slice of a time-sorted list keeps it sorted, so probe
    // plans never need `FaultPlan::new`'s stable re-sort — the one plan
    // clone happens here, not once per probe.
    let mut work = plan.clone();
    let mut removed: Vec<FaultEvent> = Vec::new();
    let mut n = 2usize;
    while work.events.len() >= 2 {
        let chunk = work.events.len().div_ceil(n);
        let mut reduced = false;
        let mut i = 0;
        while i < n {
            let lo = i * chunk;
            if lo >= work.events.len() {
                break;
            }
            let hi = (lo + chunk).min(work.events.len());
            i += 1;
            if lo == 0 && hi == work.events.len() {
                continue; // complement would be empty
            }
            removed.clear();
            removed.extend(work.events.drain(lo..hi));
            if fails(&work) {
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            // Still passing without the chunk: put it back in place.
            work.events.splice(lo..lo, removed.drain(..));
        }
        if !reduced {
            if n >= work.events.len() {
                break;
            }
            n = (n * 2).min(work.events.len());
        }
    }
    // Final 1-minimality pass: drop single events while that still fails.
    let mut i = 0;
    while work.events.len() > 1 && i < work.events.len() {
        let ev = work.events.remove(i);
        if !fails(&work) {
            work.events.insert(i, ev);
            i += 1;
        }
    }
    work
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_geom::{Aabb, Point};

    fn small_net(n: usize) -> Network {
        let mut net = Network::new(Aabb::square(100.0));
        for i in 0..n {
            net.add_node(Point::new(10.0 + 3.0 * i as f64, 10.0), 4.0, 8.0);
        }
        net
    }

    #[test]
    fn generate_is_deterministic_in_the_seed() {
        let a = FaultPlan::generate(42, 10, 1000);
        let b = FaultPlan::generate(42, 10, 1000);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 10, 1000);
        assert_ne!(a, c, "adjacent seeds must diverge");
        assert!(!a.is_empty());
    }

    #[test]
    fn generated_faults_cease_by_the_horizon() {
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(seed, 8, 500);
            let mut net = small_net(8);
            let mut engine = ChaosEngine::new(plan.clone());
            engine.advance_to(&mut net, Time::MAX);
            assert!(engine.is_exhausted());
            assert!(
                !net.is_partitioned(),
                "seed {seed}: partition survived the horizon"
            );
            assert_eq!(
                net.extra_latency(),
                0,
                "seed {seed}: latency spike survived the horizon"
            );
            // Any blackholed link must have been restored: a unicast
            // between two alive in-range nodes can only fail as Lost if
            // a cut survived (the medium is lossless here).
            let alive = net.alive_ids();
            for &a in &alive {
                for &b in &alive {
                    if a == b || net.node(a).pos.dist(net.node(b).pos) > net.node(a).rc {
                        continue;
                    }
                    assert!(
                        net.unicast(a, b, crate::Message::Hello { pos: Point::ORIGIN })
                            .is_ok(),
                        "seed {seed}: link {a}->{b} still cut after horizon"
                    );
                }
            }
        }
    }

    #[test]
    fn generated_crashes_spare_half_the_population() {
        for seed in 0..50u64 {
            let plan = FaultPlan::generate(seed, 8, 500);
            let crashes = plan
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultKind::Crash { .. }))
                .count();
            assert!(
                crashes <= 4,
                "seed {seed}: {crashes} crashes out of 8 nodes"
            );
        }
    }

    #[test]
    fn text_format_roundtrips() {
        for seed in [0u64, 7, 99, 12345] {
            let plan = FaultPlan::generate(seed, 6, 300);
            let parsed = FaultPlan::parse(&plan.to_text()).unwrap();
            assert_eq!(plan, parsed, "seed {seed}");
        }
        // Hand-written plan exercising every kind.
        let text = "\
# a comment

120 crash 5
10 partition 0 1 2
300 heal
150 blackhole 3 7
350 unblackhole 3 7
400 latency 16
600 drain 2 1.5
";
        let plan = FaultPlan::parse(text).unwrap();
        assert_eq!(plan.len(), 7);
        assert_eq!(
            plan.events()[0],
            FaultEvent {
                at: 10,
                kind: FaultKind::Partition {
                    side_a: vec![0, 1, 2]
                }
            },
            "parse sorts by time"
        );
        assert_eq!(FaultPlan::parse(&plan.to_text()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for bad in [
            "crash 5",             // missing time
            "10 crash",            // missing node
            "10 crash x",          // non-numeric node
            "10 melt 3",           // unknown kind
            "10 heal now",         // trailing tokens
            "10 drain 3",          // missing amount
            "10 drain 3 NaN",      // non-finite amount
            "10 blackhole 3",      // missing <to>
            "10 latency -5",       // negative ticks
            "10 partition 1 2 x3", // non-numeric member
        ] {
            let res = FaultPlan::parse(bad);
            assert!(res.is_err(), "{bad:?} must not parse: {res:?}");
            assert!(
                res.unwrap_err().starts_with("line 1"),
                "error must name the line"
            );
        }
    }

    #[test]
    fn engine_applies_in_time_order_and_reports_crashes() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 50,
                kind: FaultKind::Crash { node: 1 },
            },
            FaultEvent {
                at: 10,
                kind: FaultKind::Crash { node: 0 },
            },
            FaultEvent {
                at: 10,
                kind: FaultKind::Crash { node: 99 }, // unknown: no-op
            },
            FaultEvent {
                at: 80,
                kind: FaultKind::Latency { extra: 7 },
            },
        ]);
        let mut net = small_net(3);
        let mut engine = ChaosEngine::new(plan);
        engine.advance_to(&mut net, 9);
        assert!(engine.take_crashed().is_empty(), "nothing due before t=10");
        engine.advance_to(&mut net, 49);
        assert_eq!(engine.take_crashed(), vec![0]);
        assert!(net.is_alive(1), "t=50 crash not yet due");
        assert_eq!(engine.next_time(), Some(50));
        engine.advance_to(&mut net, 1000);
        assert_eq!(engine.take_crashed(), vec![1]);
        assert_eq!(net.extra_latency(), 7);
        assert!(engine.is_exhausted());
        assert_eq!(engine.next_time(), None);
    }

    #[test]
    fn advance_next_batch_forces_pending_faults() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                at: 500,
                kind: FaultKind::Crash { node: 0 },
            },
            FaultEvent {
                at: 500,
                kind: FaultKind::Crash { node: 1 },
            },
            FaultEvent {
                at: 900,
                kind: FaultKind::Crash { node: 2 },
            },
        ]);
        let mut net = small_net(3);
        let mut engine = ChaosEngine::new(plan);
        assert_eq!(engine.advance_next_batch(&mut net), Some(500));
        assert_eq!(engine.take_crashed(), vec![0, 1], "whole t=500 batch");
        assert!(net.is_alive(2));
        assert_eq!(engine.advance_next_batch(&mut net), Some(900));
        assert_eq!(engine.advance_next_batch(&mut net), None);
    }

    #[test]
    fn engine_emits_chaos_trace_events() {
        let plan = FaultPlan::parse(
            "5 crash 1\n6 partition 0\n7 heal\n8 blackhole 0 2\n9 unblackhole 0 2\n10 latency 3\n11 drain 2 0.5\n",
        )
        .unwrap();
        let mut net = small_net(3);
        let trace = decor_trace::TraceHandle::counting();
        net.set_trace(trace.clone());
        let mut engine = ChaosEngine::new(plan);
        engine.advance_to(&mut net, 100);
        let counts = trace.counts().unwrap();
        for kind in [
            "chaos_crash",
            "chaos_partition",
            "chaos_heal",
            "chaos_blackhole",
            "chaos_unblackhole",
            "chaos_latency",
            "chaos_drain",
        ] {
            assert_eq!(counts.get(kind).copied().unwrap_or(0), 1, "{kind}");
        }
    }

    #[test]
    fn shrink_finds_the_single_culprit() {
        let plan = FaultPlan::generate(7, 10, 1000);
        assert!(plan.len() >= 2, "want a multi-event plan for this test");
        // Synthetic failure: any plan containing a crash of node 3.
        let culprit = FaultEvent {
            at: 123,
            kind: FaultKind::Crash { node: 3 },
        };
        let mut events = plan.events().to_vec();
        events.push(culprit.clone());
        let big = FaultPlan::new(events);
        let fails = |p: &FaultPlan| {
            p.events()
                .iter()
                .any(|e| e.kind == FaultKind::Crash { node: 3 })
        };
        let small = shrink_plan(&big, fails);
        assert_eq!(small.events(), &[culprit]);
    }

    #[test]
    fn shrink_of_a_passing_plan_is_identity() {
        let plan = FaultPlan::generate(7, 10, 1000);
        assert_eq!(shrink_plan(&plan, |_| false), plan);
    }

    #[test]
    fn shrink_preserves_failure_with_interacting_events() {
        // Failure needs BOTH a partition and a crash: shrinking must keep
        // one of each, dropping everything else.
        let mut events = FaultPlan::generate(11, 10, 1000).events().to_vec();
        events.push(FaultEvent {
            at: 40,
            kind: FaultKind::Partition { side_a: vec![0, 1] },
        });
        events.push(FaultEvent {
            at: 60,
            kind: FaultKind::Crash { node: 0 },
        });
        let big = FaultPlan::new(events);
        let fails = |p: &FaultPlan| {
            p.events()
                .iter()
                .any(|e| matches!(e.kind, FaultKind::Partition { .. }))
                && p.events()
                    .iter()
                    .any(|e| matches!(e.kind, FaultKind::Crash { .. }))
        };
        assert!(fails(&big));
        let small = shrink_plan(&big, fails);
        assert!(fails(&small), "shrunk plan must still fail");
        assert_eq!(small.len(), 2, "exactly one partition + one crash remain");
    }
}
