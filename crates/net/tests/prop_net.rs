//! Property tests for the WSN simulator substrate.

use decor_geom::{Aabb, Point};
use decor_net::{
    elect_random, rotation_leader, shortest_path, EventQueue, FailurePlan, Message, Network,
};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y))
}

fn build_net(positions: &[Point], rc: f64) -> Network {
    let mut net = Network::new(Aabb::square(100.0));
    for &p in positions {
        net.add_node(p, (rc / 2.0).max(0.5), rc);
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Events pop in non-decreasing time order with FIFO ties, no matter
    /// the schedule order.
    #[test]
    fn event_queue_total_order(times in prop::collection::vec(0u64..1000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            prop_assert_eq!(times[i], t);
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "order violated");
            }
            last = Some((t, i));
        }
    }

    /// Fraction failure kills exactly round(frac·n) nodes, all distinct.
    #[test]
    fn fraction_failure_exact_count(
        pts in prop::collection::vec(arb_point(), 1..80),
        frac in 0.0..1.0f64,
        seed in any::<u64>(),
    ) {
        let net = build_net(&pts, 8.0);
        let victims = FailurePlan::Fraction { frac, seed }.victims(&net);
        prop_assert_eq!(victims.len(), (pts.len() as f64 * frac).round() as usize);
        let mut v = victims.clone();
        v.dedup();
        prop_assert_eq!(v.len(), victims.len(), "victims must be unique and sorted");
    }

    /// Area failures kill exactly the nodes in the disc.
    #[test]
    fn area_failure_is_geometric(
        pts in prop::collection::vec(arb_point(), 1..80),
        c in arb_point(),
        r in 1.0..50.0f64,
    ) {
        let mut net = build_net(&pts, 8.0);
        let disk = decor_geom::Disk::new(c, r);
        let victims = FailurePlan::Area { disk }.apply(&mut net);
        for (i, &p) in pts.iter().enumerate() {
            prop_assert_eq!(victims.contains(&i), disk.contains(p), "node {}", i);
        }
    }

    /// Message accounting conserves: every unicast adds exactly one to
    /// sender and receiver counters; totals match.
    #[test]
    fn stats_conservation(
        pts in prop::collection::vec(arb_point(), 2..30),
        attempts in prop::collection::vec((any::<prop::sample::Index>(), any::<prop::sample::Index>()), 1..60),
    ) {
        let mut net = build_net(&pts, 30.0);
        let mut expected_total = 0u64;
        for (fi, ti) in &attempts {
            let from = fi.index(pts.len());
            let to = ti.index(pts.len());
            if from == to {
                continue;
            }
            if net.unicast(from, to, Message::Hello { pos: pts[from] }).is_ok() {
                expected_total += 1;
            }
        }
        prop_assert_eq!(net.stats.total_sent, expected_total);
        let sent_sum: u64 = (0..pts.len()).map(|i| net.stats.sent_by(i)).sum();
        let recv_sum: u64 = (0..pts.len()).map(|i| net.stats.received_by(i)).sum();
        prop_assert_eq!(sent_sum, expected_total);
        prop_assert_eq!(recv_sum, expected_total);
        prop_assert_eq!(
            net.stats.maintenance_sent + net.stats.protocol_sent,
            expected_total
        );
    }

    /// BFS routing returns a valid path: endpoints correct, every hop
    /// within the sender's rc, and no shorter path exists (spot-check by
    /// hop-count minimality vs. a direct link).
    #[test]
    fn shortest_path_is_valid(
        pts in prop::collection::vec(arb_point(), 2..40),
        fi in any::<prop::sample::Index>(),
        ti in any::<prop::sample::Index>(),
    ) {
        let net = build_net(&pts, 15.0);
        let from = fi.index(pts.len());
        let to = ti.index(pts.len());
        if let Some(path) = shortest_path(&net, from, to) {
            prop_assert_eq!(*path.first().unwrap(), from);
            prop_assert_eq!(*path.last().unwrap(), to);
            for hop in path.windows(2) {
                prop_assert!(pts[hop[0]].dist(pts[hop[1]]) <= 15.0 + 1e-9);
            }
            if from != to && pts[from].dist(pts[to]) <= 15.0 {
                prop_assert_eq!(path.len(), 2, "direct link must be used");
            }
        }
    }

    /// Election picks members only; rotation visits everyone equally.
    #[test]
    fn election_properties(members in prop::collection::vec(0usize..1000, 1..20), seed in any::<u64>()) {
        let mut uniq = members.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let elected = elect_random(&members, seed).unwrap();
        prop_assert!(members.contains(&elected));
        let cycle: Vec<usize> = (0..uniq.len() as u64)
            .map(|r| rotation_leader(&members, r).unwrap())
            .collect();
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, uniq, "one full cycle visits each member once");
    }

    /// Failing nodes only ever shrinks neighbor lists.
    #[test]
    fn failure_shrinks_neighborhoods(
        pts in prop::collection::vec(arb_point(), 2..40),
        kill in any::<prop::sample::Index>(),
    ) {
        let mut net = build_net(&pts, 12.0);
        let before: Vec<Vec<usize>> = (0..pts.len()).map(|i| net.neighbors_of(i)).collect();
        let victim = kill.index(pts.len());
        net.fail_node(victim);
        for (i, before_i) in before.iter().enumerate() {
            let after = net.neighbors_of(i);
            for nb in &after {
                prop_assert!(before_i.contains(nb), "neighbors cannot appear");
                prop_assert_ne!(*nb, victim);
            }
        }
    }
}
