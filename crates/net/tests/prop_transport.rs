//! Property tests for the reliable-transport invariants (tier: invariants).
//!
//! Over random loss rates, seeds and traffic patterns, the transport must
//! uphold its two contracts:
//!
//! 1. the application plane never sees a duplicate or out-of-order notice
//!    on any directed link ([`Transport::take_inbox`] is the app surface);
//! 2. every message handed to [`Transport::send`] reaches a terminal
//!    [`DeliveryOutcome`] exactly once across flushes.

use decor_geom::{Aabb, Point};
use decor_net::{DeliveryOutcome, Message, MsgId, Network, Transport, TransportConfig};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A 2×2 square of mutually reachable nodes: 12 directed links.
fn quad_net(loss: f64, seed: u64) -> Network {
    let mut net = Network::new(Aabb::square(100.0));
    for &(x, y) in &[(10.0, 10.0), (15.0, 10.0), (10.0, 15.0), (15.0, 15.0)] {
        net.add_node(Point::new(x, y), 4.0, 8.0);
    }
    if loss > 0.0 {
        net.set_loss(loss, seed);
    }
    net
}

fn notice() -> Message {
    Message::PlacementNotice { pos: Point::ORIGIN }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariant 1: per directed link, the app plane receives strictly
    /// increasing sequence numbers — no duplicates, no reordering — at any
    /// loss rate, even one high enough to force give-ups mid-stream.
    #[test]
    fn app_plane_is_dup_free_and_in_order(
        loss in 0.0..0.85f64,
        seed in any::<u64>(),
        // (sender, receiver) pairs drawn from the quad.
        links in prop::collection::vec((0usize..4, 0usize..4), 1..60),
    ) {
        let mut net = quad_net(loss, seed);
        let mut tr = Transport::new(TransportConfig {
            max_retries: 4,
            backoff_base: 2,
        });
        for &(a, b) in &links {
            if a != b {
                tr.send(a, b, notice());
            }
        }
        tr.flush(&mut net);
        let mut last_seq: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for m in tr.take_inbox() {
            if let Some(&prev) = last_seq.get(&(m.from, m.to)) {
                prop_assert!(
                    m.seq > prev,
                    "link {:?} delivered seq {} after {}",
                    (m.from, m.to), m.seq, prev
                );
            }
            last_seq.insert((m.from, m.to), m.seq);
        }
    }

    /// Invariant 2: every send concludes exactly once, across any
    /// interleaving of sends and flushes.
    #[test]
    fn every_message_concludes_exactly_once(
        loss in 0.0..0.9f64,
        seed in any::<u64>(),
        // Batch sizes interleaved with flushes.
        batches in prop::collection::vec(1usize..12, 1..8),
    ) {
        let mut net = quad_net(loss, seed);
        let mut tr = Transport::new(TransportConfig {
            max_retries: 3,
            backoff_base: 4,
        });
        let mut sent: Vec<MsgId> = Vec::new();
        let mut concluded: BTreeMap<MsgId, DeliveryOutcome> = BTreeMap::new();
        for (bi, &n) in batches.iter().enumerate() {
            for j in 0..n {
                // Cycle through links deterministically.
                let a = (bi + j) % 4;
                let b = (a + 1 + j % 3) % 4;
                sent.push(tr.send(a, b, notice()));
            }
            for (id, out) in tr.flush(&mut net) {
                prop_assert!(
                    concluded.insert(id, out).is_none(),
                    "message {id} concluded twice"
                );
            }
        }
        prop_assert!(tr.flush(&mut net).is_empty(), "extra flush must be empty");
        let mut reported: Vec<MsgId> = concluded.keys().copied().collect();
        reported.sort_unstable();
        let mut expected = sent.clone();
        expected.sort_unstable();
        prop_assert_eq!(reported, expected);
    }

    /// Delivered messages appear in the inbox exactly once; gave-up
    /// messages appear at most once (the data may have arrived with only
    /// the acks lost). PeerDown never reaches the inbox.
    #[test]
    fn inbox_is_consistent_with_outcomes(
        loss in 0.0..0.85f64,
        seed in any::<u64>(),
        n in 1usize..40,
    ) {
        let mut net = quad_net(loss, seed);
        let mut tr = Transport::new(TransportConfig {
            max_retries: 4,
            backoff_base: 2,
        });
        let ids: Vec<MsgId> = (0..n).map(|_| tr.send(0, 1, notice())).collect();
        let outcomes: BTreeMap<MsgId, DeliveryOutcome> = tr.flush(&mut net).into_iter().collect();
        let inbox = tr.take_inbox();
        // seq on link (0,1) equals the send index here.
        let delivered_seqs: Vec<u64> = inbox.iter().map(|m| m.seq).collect();
        for (i, id) in ids.iter().enumerate() {
            match outcomes[id] {
                DeliveryOutcome::Delivered { .. } => prop_assert!(
                    delivered_seqs.contains(&(i as u64)),
                    "delivered message {i} missing from inbox"
                ),
                DeliveryOutcome::PeerDown => prop_assert!(
                    !delivered_seqs.contains(&(i as u64)),
                    "peer-down message {i} cannot have been delivered"
                ),
                DeliveryOutcome::GaveUp { .. } => {}
            }
        }
        let mut uniq = delivered_seqs.clone();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), delivered_seqs.len(), "inbox has duplicates");
    }
}
