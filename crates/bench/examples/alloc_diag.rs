//! Diagnostic: where do a warm run's steady-state allocations come from?
//!
//! Runs one scheme (default grid-small, override via `DIAG_SCHEME`)
//! through a warm [`WorkerArena`] and prints the allocation count, byte
//! volume and size-class histogram per phase: map refill, placer, and
//! the post-processing tail. Companion to the `pr9_alloc` bench —
//! requires the same `alloc-counter` feature:
//!
//! ```text
//! cargo run --release -p decor-bench --features alloc-counter --example alloc_diag
//! ```

use decor_bench::alloc_counter::{delta, hist_delta_pretty, hist_snapshot, snapshot};
use decor_core::{DeploymentConfig, SchemeKind};
use decor_exp::arena::WorkerArena;
use decor_exp::ExpParams;

fn main() {
    let scheme = std::env::var("DIAG_SCHEME")
        .map(|s| SchemeKind::parse_spec_name(&s).expect("DIAG_SCHEME"))
        .unwrap_or(SchemeKind::GridSmall);
    let params = ExpParams {
        n_points: 200,
        initial_nodes: 24,
        ..ExpParams::quick()
    };
    let mut arena = WorkerArena::new();
    let phase = |label: &str, arena: &mut WorkerArena, seed: u64, verbose: bool| {
        let mut cfg = DeploymentConfig::with_k(1);
        cfg.link = params.link(seed);

        let s0 = snapshot();
        let h0 = hist_snapshot();
        let mut map = arena.make_map(&params, &cfg, params.initial_nodes, seed);
        let s1 = snapshot();
        let h1 = hist_snapshot();
        let placer = params.placer(scheme, seed ^ 0x9E37);
        let out = placer.place_in(&mut map, &cfg, &mut arena.scratch);
        let s2 = snapshot();
        let h2 = hist_snapshot();
        let coverage = map.fraction_k_covered(cfg.k);
        arena.recycle(map);
        let s3 = snapshot();
        let h3 = hist_snapshot();

        let dm = delta(s0, s1);
        let dp = delta(s1, s2);
        let dt = delta(s2, s3);
        println!(
            "{label}: map {} allocs / {} B; placer {} allocs / {} B; tail {} allocs / {} B  \
             (placed {}, rounds {}, coverage {:.3})",
            dm.allocs,
            dm.bytes,
            dp.allocs,
            dp.bytes,
            dt.allocs,
            dt.bytes,
            out.placed.len(),
            out.rounds,
            coverage
        );
        if verbose {
            println!("map hist:\n{}", hist_delta_pretty(&h0, &h1));
            println!("placer hist:\n{}", hist_delta_pretty(&h1, &h2));
            println!("tail hist:\n{}", hist_delta_pretty(&h2, &h3));
        }
    };
    phase("cold   ", &mut arena, 1, false);
    phase("warm #1", &mut arena, 2, false);
    phase("warm #2", &mut arena, 3, true);
}
