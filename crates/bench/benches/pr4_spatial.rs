//! PR-4 acceptance benchmark: the frozen CSR spatial index vs the mutable
//! hash-grid, plus the end-to-end centralized greedy run the index
//! accelerates.
//!
//! Microbenches sweep a fixed batch of query centers over a 2000-point
//! Halton field (the paper's 100x100 m field, rs = 4 m) and compare:
//!
//! - `legacy_for_each` / `frozen_for_each` — visit every point in the disk;
//! - `legacy_count` / `frozen_count` — count points in the disk;
//! - `frozen_covers_at_least_k2` — the early-exit k-coverage probe, which
//!   must beat `frozen_count` (it stops at the 2nd hit instead of
//!   enumerating all ~10);
//! - `frozen_for_each_wide_r12` — the wide-radius path that exercises the
//!   per-bucket AABB prefilters and batch-accept.
//!
//! The end-to-end group re-measures the PR-1 scenario (centralized greedy
//! to full 2-coverage from empty) on the frozen-index engine.
//!
//! Reproduce the committed summary with:
//!
//! ```text
//! CRITERION_JSON=$PWD/BENCH_PR4.json \
//!     cargo bench -p decor-bench --bench pr4_spatial
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use decor_core::{CentralizedGreedy, CoverageMap, DeploymentConfig, Placer};
use decor_geom::{Aabb, FrozenGridIndex, GridIndex, Point};
use decor_lds::halton_points;
use std::hint::black_box;

const N_PTS: usize = 2000;
const RS: f64 = 4.0;

fn field() -> Aabb {
    Aabb::square(100.0)
}

/// Every 8th approximation point doubles as a query center: enough to
/// amortize timer overhead while keeping one iteration sub-millisecond.
fn query_batch(points: &[Point]) -> Vec<Point> {
    points.iter().copied().step_by(8).collect()
}

fn bench_queries(c: &mut Criterion) {
    let field = field();
    let points = halton_points(N_PTS, &field);
    let queries = query_batch(&points);
    // Same policy as CoverageMap: rs-sized buckets with a density floor
    // (resolves to exactly 4.0 here, as the old /64 formula did).
    let cell = decor_geom::query_bucket_edge(RS, field.width().min(field.height()), N_PTS);
    let mut legacy = GridIndex::new(field.min, (field.width(), field.height()), cell);
    for (id, &p) in points.iter().enumerate() {
        legacy.insert(id, p);
    }
    let frozen = FrozenGridIndex::from_points(
        field.min,
        (field.width(), field.height()),
        cell,
        points.iter().copied().enumerate(),
    );

    // Sanity: the two indexes must agree before their numbers mean
    // anything, and the early-exit probe must agree with the full count.
    for &q in &queries {
        let mut a = legacy.within(q, RS);
        a.sort_unstable();
        let mut b = frozen.within(q, RS);
        b.sort_unstable();
        assert_eq!(a, b, "index divergence at {q:?}; bench is invalid");
        assert_eq!(
            frozen.covers_at_least(q, RS, 2),
            frozen.count_within(q, RS) >= 2
        );
    }

    let mut g = c.benchmark_group("pr4/query_2000pts_rs4");
    g.bench_function("legacy_for_each", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                legacy.for_each_within(q, RS, |id, _| acc += id);
            }
            black_box(acc)
        })
    });
    g.bench_function("frozen_for_each", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                frozen.for_each_within(q, RS, |id, _| acc += id);
            }
            black_box(acc)
        })
    });
    g.bench_function("legacy_count", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                legacy.for_each_within(q, RS, |_, _| acc += 1);
            }
            black_box(acc)
        })
    });
    g.bench_function("frozen_count", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                acc += frozen.count_within(q, RS);
            }
            black_box(acc)
        })
    });
    g.bench_function("frozen_covers_at_least_k2", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                acc += usize::from(frozen.covers_at_least(q, RS, 2));
            }
            black_box(acc)
        })
    });
    g.bench_function("frozen_for_each_wide_r12", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                frozen.for_each_within(q, 12.0, |id, _| acc += id);
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let cfg = DeploymentConfig::with_k(2);
    let field = field();
    let base = CoverageMap::new(halton_points(N_PTS, &field), &field, &cfg);

    // Sanity: the run must fully restore (a silent failure would make the
    // timing meaningless).
    {
        let mut m = base.clone();
        let out = CentralizedGreedy.place(&mut m, &cfg);
        assert!(out.fully_covered, "greedy failed to restore; bench invalid");
    }

    let mut g = c.benchmark_group("pr4/centralized_greedy_k2_2000pts");
    g.bench_function("sharded_engine", |b| {
        b.iter_batched(
            || base.clone(),
            |mut map| black_box(CentralizedGreedy.place(&mut map, &cfg)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(pr4, bench_queries, bench_end_to_end);
criterion_main!(pr4);
