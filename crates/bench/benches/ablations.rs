//! Ablation benches for the design decisions called out in DESIGN.md §6:
//!
//! 1. incremental benefit maintenance vs full recompute per placement;
//! 2. hash-grid spatial index vs brute-force radius queries;
//! 3. Halton vs random field approximation (cost side; the quality side
//!    is Fig. 4);
//! 4. parallel vs sequential replica execution.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use decor_core::parallel::{par_best_candidate, run_replicas};
use decor_core::{benefit_at, BenefitTable, CoverageMap, DeploymentConfig, Placer};
use decor_geom::{Aabb, GridIndex, Point};
use decor_lds::{halton_points, random_points};
use std::hint::black_box;

fn fresh_map(n_pts: usize, k: u32) -> (CoverageMap, DeploymentConfig) {
    let field = Aabb::square(100.0);
    let cfg = DeploymentConfig {
        k,
        ..DeploymentConfig::default()
    };
    let map = CoverageMap::new(halton_points(n_pts, &field), &field, &cfg);
    (map, cfg)
}

/// Centralized greedy with the incremental table (the production path).
fn greedy_incremental(mut map: CoverageMap, cfg: &DeploymentConfig) -> usize {
    let cands: Vec<usize> = (0..map.n_points()).collect();
    let mut table = BenefitTable::new(&map, cands, cfg.rs, cfg.k);
    let mut placed = 0;
    while let Some((_, _, pos, _)) = table.best() {
        map.add_sensor(pos, cfg.rs);
        table.on_sensor_added(&map, pos, cfg.rs);
        placed += 1;
    }
    placed
}

/// Centralized greedy recomputing every candidate's benefit per step.
fn greedy_naive(mut map: CoverageMap, cfg: &DeploymentConfig) -> usize {
    let cands: Vec<usize> = (0..map.n_points()).collect();
    let mut placed = 0;
    loop {
        let mut best: Option<(usize, u64)> = None;
        for &pid in &cands {
            let b = benefit_at(&map, map.points()[pid], cfg.rs, cfg.k);
            if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                best = Some((pid, b));
            }
        }
        let Some((pid, _)) = best else { break };
        map.add_sensor(map.points()[pid], cfg.rs);
        placed += 1;
    }
    placed
}

/// Naive greedy with the crossbeam-parallel candidate scan.
fn greedy_parallel_scan(mut map: CoverageMap, cfg: &DeploymentConfig) -> usize {
    let cands: Vec<usize> = (0..map.n_points()).collect();
    let mut placed = 0;
    while let Some((pid, _)) = par_best_candidate(&map, &cands, cfg.rs, cfg.k) {
        map.add_sensor(map.points()[pid], cfg.rs);
        placed += 1;
    }
    placed
}

fn bench_benefit_maintenance(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_benefit_maintenance");
    g.sample_size(10);
    let n = 600;
    g.bench_function("incremental_table", |b| {
        b.iter_batched(
            || fresh_map(n, 2),
            |(map, cfg)| black_box(greedy_incremental(map, &cfg)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("naive_recompute", |b| {
        b.iter_batched(
            || fresh_map(n, 2),
            |(map, cfg)| black_box(greedy_naive(map, &cfg)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("parallel_scan", |b| {
        b.iter_batched(
            || fresh_map(n, 2),
            |(map, cfg)| black_box(greedy_parallel_scan(map, &cfg)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_spatial_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_spatial_index");
    let field = Aabb::square(100.0);
    let pts = random_points(2000, &field, 7);
    let mut idx = GridIndex::for_square_field(100.0, 4.0);
    for (i, &p) in pts.iter().enumerate() {
        idx.insert(i, p);
    }
    let queries: Vec<Point> = random_points(256, &field, 8);
    g.bench_function("hash_grid", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                acc += idx.count_within(q, 4.0);
            }
            black_box(acc)
        })
    });
    g.bench_function("brute_force", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &q in &queries {
                acc += pts.iter().filter(|p| q.dist_sq(**p) <= 16.0).count();
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_approximation_backend(c: &mut Criterion) {
    // Cost of generating the approximation + running a deployment on it.
    let mut g = c.benchmark_group("ablation_approximation_backend");
    g.sample_size(10);
    let field = Aabb::square(100.0);
    let cfg = DeploymentConfig {
        k: 1,
        ..DeploymentConfig::default()
    };
    g.bench_function("halton_2000", |b| {
        b.iter(|| black_box(halton_points(2000, &field)))
    });
    g.bench_function("random_2000", |b| {
        b.iter(|| black_box(random_points(2000, &field, 3)))
    });
    g.bench_function("deploy_on_halton", |b| {
        b.iter_batched(
            || CoverageMap::new(halton_points(600, &field), &field, &cfg),
            |mut map| {
                black_box(
                    decor_core::CentralizedGreedy
                        .place(&mut map, &cfg)
                        .placed
                        .len(),
                )
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("deploy_on_random_points", |b| {
        b.iter_batched(
            || CoverageMap::new(random_points(600, &field, 4), &field, &cfg),
            |mut map| {
                black_box(
                    decor_core::CentralizedGreedy
                        .place(&mut map, &cfg)
                        .placed
                        .len(),
                )
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_replica_parallelism(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_replica_parallelism");
    g.sample_size(10);
    let work = |seed: u64| {
        let (map, cfg) = fresh_map(400, 1);
        let mut m = map;
        decor_core::RandomPlacement { seed }
            .place(&mut m, &cfg)
            .placed
            .len()
    };
    g.bench_function("sequential_5_replicas", |b| {
        b.iter(|| {
            let v: Vec<usize> = (0..5)
                .map(|i| work(decor_core::parallel::replica_seed(1, i)))
                .collect();
            black_box(v)
        })
    });
    g.bench_function("crossbeam_5_replicas", |b| {
        b.iter(|| black_box(run_replicas(5, 1, |_, seed| work(seed))))
    });
    g.finish();
}

criterion_group!(
    ablations,
    bench_benefit_maintenance,
    bench_spatial_index,
    bench_approximation_backend,
    bench_replica_parallelism
);
criterion_main!(ablations);
