//! Microbenchmarks of the substrate crates: LDS generation, discrepancy
//! measures, geometry queries, the event queue, heartbeat detection and
//! connectivity checks.

use criterion::{criterion_group, criterion_main, Criterion};
use decor_geom::{Aabb, Point, UnitDiskGraph};
use decor_lds::{hammersley_unit, l2_star_discrepancy, star_discrepancy, HaltonSequence, Sobol2D};
use decor_net::{EventQueue, HeartbeatConfig, HeartbeatSim, Network};
use std::hint::black_box;

fn bench_lds_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("lds_generation_2000");
    g.bench_function("halton", |b| {
        b.iter(|| black_box(HaltonSequence::new(2).take_unit2(2000)))
    });
    g.bench_function("halton_scrambled", |b| {
        b.iter(|| black_box(HaltonSequence::new(2).scrambled(7).take_unit2(2000)))
    });
    g.bench_function("hammersley", |b| {
        b.iter(|| black_box(hammersley_unit(2000)))
    });
    g.bench_function("sobol", |b| b.iter(|| black_box(Sobol2D::new().take(2000))));
    g.finish();
}

fn bench_discrepancy(c: &mut Criterion) {
    let pts = HaltonSequence::new(2).take_unit2(256);
    let mut g = c.benchmark_group("discrepancy_256");
    g.sample_size(20);
    g.bench_function("star_exact", |b| {
        b.iter(|| black_box(star_discrepancy(&pts)))
    });
    g.bench_function("l2_warnock", |b| {
        b.iter(|| black_box(l2_star_discrepancy(&pts)))
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule((i * 7919) % 100_000, i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn line_network(n: usize) -> Network {
    let mut net = Network::new(Aabb::square(1000.0));
    for i in 0..n {
        net.add_node(Point::new(5.0 + i as f64 * 5.0, 50.0), 4.0, 8.0);
    }
    net
}

fn bench_heartbeat_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("heartbeat_detection");
    g.sample_size(20);
    g.bench_function("100_nodes_20_periods", |b| {
        b.iter(|| {
            let mut net = line_network(100);
            let sim = HeartbeatSim::new(HeartbeatConfig {
                period: 100,
                timeout_periods: 3,
                seed: 1,
            });
            black_box(sim.run(&mut net, &[50], 500, 2000))
        })
    });
    g.finish();
}

fn bench_unit_disk_graph(c: &mut Criterion) {
    let mut pts = Vec::new();
    // A deterministic quasi-random cloud of 800 nodes.
    for (u, v) in HaltonSequence::new(2).take_unit2(800) {
        pts.push(Point::new(u * 100.0, v * 100.0));
    }
    let mut g = c.benchmark_group("unit_disk_graph_800");
    g.sample_size(20);
    g.bench_function("build", |b| {
        b.iter(|| black_box(UnitDiskGraph::build(&pts, 8.0)))
    });
    let graph = UnitDiskGraph::build(&pts, 8.0);
    g.bench_function("is_connected", |b| {
        b.iter(|| black_box(graph.is_connected()))
    });
    g.bench_function("k_connectivity_2", |b| {
        b.iter(|| black_box(graph.vertex_connectivity_at_least(2)))
    });
    g.finish();
}

fn bench_network_traffic(c: &mut Criterion) {
    c.bench_function("broadcast_500_nodes", |b| {
        let mut net = Network::new(Aabb::square(100.0));
        for (u, v) in HaltonSequence::new(2).take_unit2(500) {
            net.add_node(Point::new(u * 100.0, v * 100.0), 4.0, 8.0);
        }
        b.iter(|| {
            for id in 0..500 {
                black_box(net.broadcast(
                    id,
                    decor_net::Message::Heartbeat {
                        pos: net.node(id).pos,
                    },
                ));
            }
        })
    });
}

fn bench_delaunay_and_voronoi(c: &mut Criterion) {
    let mut pts = Vec::new();
    for (u, v) in HaltonSequence::new(2).take_unit2(400) {
        pts.push(Point::new(u * 100.0, v * 100.0));
    }
    let mut g = c.benchmark_group("delaunay_400_sites");
    g.sample_size(20);
    g.bench_function("triangulate", |b| {
        b.iter(|| black_box(decor_geom::Delaunay::build(&pts)))
    });
    let d = decor_geom::Delaunay::build(&pts);
    let field = Aabb::square(100.0);
    g.bench_function("voronoi_cells", |b| {
        b.iter(|| black_box(d.voronoi_cells(&field)))
    });
    g.finish();
}

fn bench_breach_paths(c: &mut Criterion) {
    let mut pts = Vec::new();
    for (u, v) in HaltonSequence::new(2).take_unit2(300) {
        pts.push(Point::new(u * 100.0, v * 100.0));
    }
    let field = Aabb::square(100.0);
    let mut g = c.benchmark_group("coverage_paths_res128");
    g.sample_size(10);
    g.bench_function("maximal_breach", |b| {
        b.iter(|| black_box(decor_geom::maximal_breach_path(&pts, &field, 128)))
    });
    g.bench_function("best_support", |b| {
        b.iter(|| black_box(decor_geom::best_support_path(&pts, &field, 128)))
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let net = {
        let mut net = Network::new(Aabb::square(100.0));
        for (u, v) in HaltonSequence::new(2).take_unit2(600) {
            net.add_node(Point::new(u * 100.0, v * 100.0), 4.0, 8.0);
        }
        net
    };
    c.bench_function("bfs_route_600_nodes", |b| {
        b.iter(|| black_box(decor_net::shortest_path(&net, 0, 599)))
    });
}

fn bench_sleep_scheduling(c: &mut Criterion) {
    // Three stacked lattices: a field the scheduler can split 3 ways.
    let mut net = Network::new(Aabb::square(40.0));
    for _ in 0..3 {
        for i in 0..6 {
            for j in 0..6 {
                net.add_node(
                    Point::new(3.0 + 6.5 * i as f64, 3.0 + 6.5 * j as f64),
                    6.0,
                    12.0,
                );
            }
        }
    }
    let pts: Vec<Point> = (0..100)
        .map(|i| Point::new(2.0 + 3.6 * (i % 10) as f64, 2.0 + 3.6 * (i / 10) as f64))
        .collect();
    let mut g = c.benchmark_group("sleep_scheduler_108_nodes");
    g.sample_size(20);
    g.bench_function("shifts", |b| {
        b.iter(|| black_box(decor_net::SleepScheduler::new(1).shifts(&net, &pts)))
    });
    g.bench_function("lifetime_sim", |b| {
        b.iter(|| {
            black_box(
                decor_net::SleepScheduler::new(1).simulate_lifetime(&net, &pts, 50.0, 1.0, 0.01),
            )
        })
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_lds_generation,
    bench_discrepancy,
    bench_event_queue,
    bench_heartbeat_sim,
    bench_unit_disk_graph,
    bench_network_traffic,
    bench_delaunay_and_voronoi,
    bench_breach_paths,
    bench_routing,
    bench_sleep_scheduling
);
criterion_main!(substrates);
