//! PR-1 acceptance benchmark: the sharded, incrementally-maintained
//! placement engine vs the seed `BenefitTable` path.
//!
//! Scenario (from the PR-1 issue): centralized greedy restoration to full
//! 2-coverage of a 2000-point Halton field on the paper's 100x100 m field
//! with rs = 4 m, starting from an empty deployment. Both paths produce
//! bit-identical placement sequences (enforced by the differential tests);
//! this bench measures the wall-clock gap.
//!
//! Reproduce the committed summary with:
//!
//! ```text
//! CRITERION_JSON=$PWD/BENCH_PR1.json \
//!     cargo bench -p decor-bench --bench pr1_engine
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use decor_core::{CentralizedGreedy, CoverageMap, DeploymentConfig, Placer};
use decor_geom::Aabb;
use decor_lds::halton_points;
use std::hint::black_box;

fn base_map(n_pts: usize, cfg: &DeploymentConfig) -> CoverageMap {
    let field = Aabb::square(100.0);
    CoverageMap::new(halton_points(n_pts, &field), &field, cfg)
}

fn bench_engine_vs_table(c: &mut Criterion) {
    let cfg = DeploymentConfig::with_k(2);
    let base = base_map(2000, &cfg);

    // Sanity: both paths fully restore and agree (cheap relative to the
    // measurement loop; a silent divergence would invalidate the numbers).
    {
        let mut a = base.clone();
        let mut b = base.clone();
        let oa = CentralizedGreedy.place(&mut a, &cfg);
        let ob = CentralizedGreedy.place_with_benefit_table(&mut b, &cfg);
        assert!(oa.fully_covered && ob.fully_covered);
        assert_eq!(oa.placed, ob.placed, "paths diverged; bench is invalid");
    }

    let mut g = c.benchmark_group("pr1/centralized_greedy_k2_2000pts");
    g.bench_function("seed_benefit_table", |b| {
        b.iter_batched(
            || base.clone(),
            |mut map| black_box(CentralizedGreedy.place_with_benefit_table(&mut map, &cfg)),
            BatchSize::LargeInput,
        )
    });
    g.bench_function("sharded_engine", |b| {
        b.iter_batched(
            || base.clone(),
            |mut map| black_box(CentralizedGreedy.place(&mut map, &cfg)),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(pr1, bench_engine_vs_table);
criterion_main!(pr1);
