//! PR-6 acceptance benchmark: restoration cost across three decades of
//! field size at fixed point density.
//!
//! Each size `n ∈ {2k, 20k, 200k, 2M}` builds the paper's scenario scaled
//! to `n` approximation points ([`ExpParams::scaled`]: side `100·√(n/2000)`,
//! density 0.2 points/unit², `rs = 4`, `k = 2`), pre-covers it with a
//! sensor lattice, punches an area failure of radius 24 at the center, and
//! times `CentralizedGreedy::place` restoring the hole on a fresh clone
//! per iteration (setup excluded from timing).
//!
//! The damage — and therefore the restoration work — is the same at every
//! size; only the surrounding healthy field grows. With the hierarchical
//! coverage core the per-placement cost must stay near-flat across the
//! sweep (sublinear in field size); the old field-sweep implementation
//! grew linearly.
//!
//! `PR6_MAX_POINTS` caps the sweep for CI smoke runs (e.g.
//! `PR6_MAX_POINTS=20000` benches only the first two sizes).
//!
//! Reproduce the committed summary with:
//!
//! ```text
//! CRITERION_JSON=$PWD/BENCH_PR6.json \
//!     cargo bench -p decor-bench --bench pr6_scale
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use decor_core::{CentralizedGreedy, CoverageMap, DeploymentConfig, Placer};
use decor_exp::ExpParams;
use decor_geom::Point;
use decor_lds::halton_points;
use std::hint::black_box;

/// Lattice pitch guaranteeing 2-coverage everywhere at `rs = 4`: a node
/// at every multiple of 3.5 puts two nodes within 4.0 of any field
/// location (worst case is a cell center at `3.5·√2/2 ≈ 2.47` from four
/// nodes; field edges keep two axis neighbors within 3.5).
const LATTICE: f64 = 3.5;
/// Area-failure radius. At tile edge `16·rs = 64` the hole plus its
/// one-tile candidate ring stays a tiny fraction of the larger fields.
const HOLE_R: f64 = 24.0;

fn sweep_sizes() -> Vec<usize> {
    let cap = std::env::var("PR6_MAX_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2_000_000usize);
    [2_000usize, 20_000, 200_000, 2_000_000]
        .into_iter()
        .filter(|&n| n <= cap)
        .collect()
}

/// The scaled scenario right after the area failure: lattice-covered
/// field with every sensor within [`HOLE_R`] of the center deactivated.
fn damaged_map(n: usize, cfg: &DeploymentConfig) -> CoverageMap {
    let params = ExpParams::scaled(n);
    let field = params.field();
    let side = params.field_side;
    let mut map = CoverageMap::new(halton_points(n, &field), &field, cfg);
    let center = Point::new(side / 2.0, side / 2.0);
    let n_side = (side / LATTICE).floor() as usize + 1;
    for i in 0..=n_side {
        for j in 0..=n_side {
            let pos = Point::new(
                (LATTICE * i as f64).min(side),
                (LATTICE * j as f64).min(side),
            );
            let id = map.add_sensor(pos, cfg.rs);
            if pos.dist(center) <= HOLE_R {
                map.deactivate_sensor(id);
            }
        }
    }
    map
}

fn bench_scale_sweep(c: &mut Criterion) {
    let cfg = DeploymentConfig::with_k(2);
    let mut g = c.benchmark_group("pr6/restore_area_r24");
    for n in sweep_sizes() {
        let base = damaged_map(n, &cfg);
        // Sanity: the failure must damage coverage, the healthy remainder
        // must be intact, and the run must fully restore — otherwise the
        // timing is meaningless.
        assert!(base.count_below(2) > 0, "hole missing at n={n}");
        {
            let mut m = base.clone();
            let out = CentralizedGreedy.place(&mut m, &cfg);
            assert!(out.fully_covered, "restoration failed at n={n}");
            assert!(!out.placed.is_empty());
        }
        g.bench_function(&format!("n{n}"), |b| {
            b.iter_batched(
                || base.clone(),
                |mut map| black_box(CentralizedGreedy.place(&mut map, &cfg)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(pr6, bench_scale_sweep);
criterion_main!(pr6);
