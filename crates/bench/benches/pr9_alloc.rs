//! PR-9 acceptance benchmark: steady-state allocations per scenario run.
//!
//! Requires the `alloc-counter` feature (a counting global allocator):
//!
//! ```text
//! cargo bench -p decor-bench --features alloc-counter --bench pr9_alloc
//! ```
//!
//! Two phases over the same run set (the pr8 tiny cells — four schemes,
//! deploy workload):
//!
//! 1. **Cold** — every run through [`execute_run`], rebuilding the map,
//!    engine, network and transport from the allocator each time.
//! 2. **Warm** — the same runs through [`execute_run_in`] against one
//!    [`WorkerArena`], after a warm-up pass per scheme that sizes the
//!    pools.
//!
//! Asserts, in order:
//! - warm results are fingerprint-identical to cold results (reuse must
//!   never change outcomes);
//! - warm steady-state allocations per run are at least 10× below cold;
//! - warm allocations per run fit the budget committed in
//!   `ALLOC_BUDGET.json` at the repo root — the CI alloc-regression
//!   gate. Regenerate the budget from this bench's printed summary when
//!   a deliberate change moves the number.
//!
//! Counters are process-global, so the measured section runs on this
//! thread alone; scenario scale stays below the engine's parallel-build
//! threshold, keeping the counts deterministic.

use decor_bench::alloc_counter::{delta, snapshot};
use decor_core::parallel::replica_seed;
use decor_core::SchemeKind;
use decor_exp::arena::WorkerArena;
use decor_exp::scenario::{execute_run, execute_run_in, RunSpec, ScenarioSpec};
use decor_exp::ExpParams;

/// One warm-up round plus this many measured rounds over every cell.
const MEASURE_ROUNDS: usize = 8;
const WARMUP_ROUNDS: usize = 2;

fn cells() -> Vec<ScenarioSpec> {
    let params = ExpParams {
        n_points: 200,
        initial_nodes: 24,
        ..ExpParams::quick()
    };
    let schemes: Vec<SchemeKind> = match std::env::var("PR9_SCHEMES") {
        // Diagnostic filter: PR9_SCHEMES=grid-small,random narrows the
        // measured cells when hunting an allocation regression.
        Ok(list) => list
            .split(',')
            .map(|s| SchemeKind::parse_spec_name(s).expect("PR9_SCHEMES"))
            .collect(),
        Err(_) => vec![
            SchemeKind::Centralized,
            SchemeKind::GridSmall,
            SchemeKind::VoronoiSmall,
            SchemeKind::Random,
        ],
    };
    schemes
        .iter()
        .enumerate()
        .map(|(i, &scheme)| {
            let mut spec = ScenarioSpec::from_params(&params, scheme, 1);
            spec.name = format!("pr9-{}", scheme.spec_name());
            spec.replicas = WARMUP_ROUNDS + MEASURE_ROUNDS;
            spec.base_seed = 0xDEC0_0009 ^ ((i as u64) << 16);
            spec
        })
        .collect()
}

fn run_spec(cell: usize, spec: &ScenarioSpec, replica: usize) -> RunSpec {
    RunSpec {
        cell,
        replica,
        seed: replica_seed(spec.base_seed, replica),
    }
}

fn committed_budget() -> u64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../ALLOC_BUDGET.json");
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let json = decor_exp::jsonio::Json::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
    json.get("steady_allocs_per_run")
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("{path}: missing steady_allocs_per_run"))
}

fn main() {
    let cells = cells();
    let measured: Vec<(usize, usize)> = (WARMUP_ROUNDS..WARMUP_ROUNDS + MEASURE_ROUNDS)
        .flat_map(|round| (0..cells.len()).map(move |ci| (ci, round)))
        .collect();

    // Phase 1: cold — fresh state per run.
    let cold_start = snapshot();
    let mut cold_prints = Vec::with_capacity(measured.len());
    for &(ci, replica) in &measured {
        let run = run_spec(ci, &cells[ci], replica);
        cold_prints.push(execute_run(&cells[ci], &run).fingerprint_json());
    }
    let cold = delta(cold_start, snapshot());

    // Phase 2: warm — one arena, warm-up rounds first.
    let mut arena = WorkerArena::new();
    for round in 0..WARMUP_ROUNDS {
        for (ci, spec) in cells.iter().enumerate() {
            let run = run_spec(ci, spec, round);
            std::hint::black_box(execute_run_in(spec, &run, &mut arena));
        }
    }
    let warm_start = snapshot();
    let mut warm_prints = Vec::with_capacity(measured.len());
    for &(ci, replica) in &measured {
        let run = run_spec(ci, &cells[ci], replica);
        warm_prints.push(execute_run_in(&cells[ci], &run, &mut arena).fingerprint_json());
    }
    let warm = delta(warm_start, snapshot());

    assert_eq!(
        warm_prints, cold_prints,
        "pooled runs diverged from cold runs"
    );

    // The fingerprint strings themselves were allocated inside the
    // measured sections, symmetrically for both phases.
    let runs = measured.len() as u64;
    let cold_per_run = cold.allocs / runs;
    let warm_per_run = warm.allocs / runs;
    println!(
        "pr9 alloc: cold {} allocs/run ({} KiB), warm {} allocs/run ({} KiB) — {:.1}x fewer",
        cold_per_run,
        cold.bytes / runs / 1024,
        warm_per_run,
        warm.bytes / runs / 1024,
        cold_per_run as f64 / warm_per_run.max(1) as f64
    );
    assert!(
        warm_per_run * 10 <= cold_per_run,
        "steady-state allocations/run only dropped from {cold_per_run} to \
         {warm_per_run} — the 10x reuse target regressed"
    );

    let budget = committed_budget();
    assert!(
        warm_per_run <= budget,
        "steady-state allocations/run {warm_per_run} exceed the committed \
         budget {budget} (ALLOC_BUDGET.json) — either fix the regression or \
         deliberately raise the budget"
    );
    println!("pr9 alloc: within committed budget {budget}");
}
