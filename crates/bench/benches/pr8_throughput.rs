//! PR-8 acceptance benchmark: scenario-matrix throughput.
//!
//! Two phases:
//!
//! 1. **Guarded batch** — a fixed 64-run matrix (tiny deploy scenarios
//!    across two schemes) through [`MatrixRunner`], timed end to end.
//!    The median lands in `BENCH_PR8.json` and `scripts/bench_guard.sh`
//!    gates regressions: this is the service's unit of work, so runner
//!    overhead (claiming, scattering, aggregation plumbing) shows up
//!    here before it shows up in a fleet.
//!
//! 2. **Saturation** — one pass over a `PR8_RUNS`-run matrix (default
//!    10 000) printing runs/sec and worker utilization
//!    (busy-time / wall-time × threads). At the full 10k scale the run
//!    asserts >95% utilization: the work-stealing loop must keep every
//!    worker busy on a matrix whose runs vary in cost by scheme. Quick
//!    mode (`PR8_RUNS=200` in CI) prints without asserting — tiny
//!    matrices end with a partial final wave, so the bound only means
//!    something when runs ≫ threads.
//!
//! Reproduce the committed summary with:
//!
//! ```text
//! CRITERION_JSON=$PWD/BENCH_PR8.json \
//!     cargo bench -p decor-bench --bench pr8_throughput
//! ```

use criterion::{black_box, Criterion};
use decor_core::SchemeKind;
use decor_exp::scenario::{ScenarioMatrix, ScenarioSpec};
use decor_exp::{ExpParams, MatrixRunner};

/// A deploy cell small enough that a 10k-run matrix finishes in seconds:
/// 200 approximation points, 24 initial sensors, k = 1.
fn tiny_cell(scheme: SchemeKind, replicas: usize, base_seed: u64) -> ScenarioSpec {
    let params = ExpParams {
        n_points: 200,
        initial_nodes: 24,
        ..ExpParams::quick()
    };
    let mut spec = ScenarioSpec::from_params(&params, scheme, 1);
    spec.name = format!("pr8-{}", scheme.spec_name());
    spec.replicas = replicas;
    spec.base_seed = base_seed;
    spec
}

fn batch_matrix(runs: usize) -> ScenarioMatrix {
    let schemes = [
        SchemeKind::Centralized,
        SchemeKind::GridSmall,
        SchemeKind::VoronoiSmall,
        SchemeKind::Random,
    ];
    let per_cell = runs.div_ceil(schemes.len());
    let cells = schemes
        .iter()
        .enumerate()
        .map(|(i, &s)| tiny_cell(s, per_cell, 0xDEC0_0008 ^ ((i as u64) << 16)))
        .collect();
    ScenarioMatrix::new(cells)
        .expect("pr8 matrix is valid")
        .capped(runs)
        .expect("cap is positive")
}

fn bench_batch(c: &mut Criterion) {
    let matrix = batch_matrix(64);
    let runner = MatrixRunner::auto();
    // Sanity: the batch must complete and cover, or the timing is noise.
    let probe = runner.run(&matrix);
    assert!(probe.complete(), "pr8 batch left holes");
    assert_eq!(probe.executed, 64);
    let mut g = c.benchmark_group("pr8/matrix");
    g.sample_size(10);
    g.bench_function("serve_batch_64", |b| {
        b.iter(|| black_box(runner.run(&matrix)))
    });
    g.finish();
}

fn saturation() {
    let runs: usize = std::env::var("PR8_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let matrix = batch_matrix(runs);
    let runner = MatrixRunner::auto();
    let out = runner.run(&matrix);
    assert!(out.complete(), "saturation matrix left holes");
    let util = out.utilization();
    println!(
        "pr8 saturation: {} runs on {} threads in {:.2} s — {:.0} runs/sec, {:.1}% utilization",
        out.executed,
        out.threads,
        out.wall_ns as f64 / 1e9,
        out.runs_per_sec(),
        util * 100.0
    );
    if runs >= 10_000 {
        assert!(
            util > 0.95,
            "matrix runner utilization {util:.3} at {runs} runs — the work-stealing \
             loop is leaving workers idle"
        );
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_batch(&mut criterion);
    saturation();
}
