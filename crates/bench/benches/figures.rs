//! One Criterion group per paper figure: each bench regenerates the
//! figure's core computation at a bounded scale (the quick configuration)
//! so the run finishes in minutes. The full-scale tables come from
//! `cargo run --release -p decor-exp --bin decor-figures -- all`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use decor_core::restore::fail_and_restore;
use decor_core::{redundancy::redundancy_stats, SchemeKind};
use decor_exp::common::{deploy, ExpParams};
use decor_exp::{fig04, fig05_06, fig12};
use decor_net::FailurePlan;
use std::hint::black_box;

fn params() -> ExpParams {
    ExpParams {
        seeds: 1,
        ..ExpParams::quick()
    }
}

fn bench_fig04(c: &mut Criterion) {
    let p = params();
    c.bench_function("fig04_approximation_quality", |b| {
        b.iter(|| black_box(fig04::run(&p)))
    });
}

fn bench_fig05_06(c: &mut Criterion) {
    let p = params();
    c.bench_function("fig05_deployment_render", |b| {
        b.iter(|| black_box(fig05_06::run_deployment(&p)))
    });
    c.bench_function("fig06_disaster_render", |b| {
        b.iter(|| black_box(fig05_06::run_disaster(&p)))
    });
}

fn bench_fig07_08(c: &mut Criterion) {
    // Figs. 7 and 8 share the same core computation: a full deployment
    // run per scheme (Fig. 7 reads its trace, Fig. 8 its node count).
    let p = params();
    let mut g = c.benchmark_group("fig07_08_deployment");
    g.sample_size(10);
    for scheme in SchemeKind::ALL {
        g.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let (_, out, _) = deploy(&p, scheme, 3, 1);
                black_box(out.total_sensors())
            })
        });
    }
    g.finish();
}

fn bench_fig09(c: &mut Criterion) {
    let p = params();
    let mut g = c.benchmark_group("fig09_redundancy");
    g.sample_size(10);
    for scheme in [
        SchemeKind::Centralized,
        SchemeKind::GridSmall,
        SchemeKind::Random,
    ] {
        g.bench_function(scheme.label(), |b| {
            b.iter_batched(
                || deploy(&p, scheme, 2, 1).0,
                |mut map| black_box(redundancy_stats(&mut map, 2)),
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    // Message accounting is part of the deployment; bench the accounting
    // extraction over a pre-built outcome.
    let p = params();
    let mut g = c.benchmark_group("fig10_messages");
    g.sample_size(10);
    for scheme in [SchemeKind::GridSmall, SchemeKind::VoronoiBig] {
        g.bench_function(scheme.label(), |b| {
            b.iter(|| {
                let (_, out, _) = deploy(&p, scheme, 2, 1);
                black_box(out.messages.per_cell)
            })
        });
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let p = params();
    let (map, _, cfg) = deploy(&p, SchemeKind::GridSmall, 3, 1);
    c.bench_function("fig11_random_failures_sweep", |b| {
        b.iter_batched(
            || map.clone(),
            |mut m| {
                let plan = FailurePlan::Fraction { frac: 0.3, seed: 2 };
                black_box(decor_core::restore::coverage_after_failure(
                    &mut m, &cfg, &plan, 3,
                ))
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_fig12(c: &mut Criterion) {
    let p = params();
    let (map, _, cfg) = deploy(&p, SchemeKind::Centralized, 2, 1);
    c.bench_function("fig12_max_tolerated_search", |b| {
        b.iter(|| black_box(fig12::max_tolerated_pct(&map, &cfg, 3)))
    });
}

fn bench_fig13_14(c: &mut Criterion) {
    let p = params();
    let disk = fig05_06::disaster_disk(&p);
    let mut g = c.benchmark_group("fig13_14_area_failure_restore");
    g.sample_size(10);
    for scheme in [SchemeKind::Centralized, SchemeKind::VoronoiBig] {
        g.bench_function(scheme.label(), |b| {
            b.iter_batched(
                || deploy(&p, scheme, 2, 1),
                |(mut map, _, cfg)| {
                    let placer = p.placer(scheme, 9);
                    let plan = FailurePlan::Area { disk };
                    black_box(fail_and_restore(
                        &mut map,
                        placer.as_ref(),
                        &cfg,
                        &plan,
                        None,
                    ))
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    bench_fig04,
    bench_fig05_06,
    bench_fig07_08,
    bench_fig09,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13_14
);
criterion_main!(figures);
