//! Benchmark crate — bench targets live in `benches/`.
