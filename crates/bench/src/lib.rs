//! Benchmark crate — bench targets live in `benches/`.
//!
//! With the `alloc-counter` feature the crate additionally installs a
//! counting global allocator (`alloc_counter`, behind the `alloc-counter` feature) used by the `pr9_alloc`
//! bench to measure steady-state allocations per scenario run.

/// A counting [`std::alloc::System`] wrapper installed as the global
/// allocator when the `alloc-counter` feature is on.
///
/// Every `alloc`/`realloc`/`alloc_zeroed` bumps a relaxed atomic pair
/// (count, bytes); [`alloc_counter::snapshot`] reads them and
/// [`alloc_counter::delta`] subtracts two snapshots. The counters are
/// process-global, so measurements are only meaningful on a quiescent,
/// single-threaded section — which is exactly how `pr9_alloc` drives
/// the fleet's warm path.
#[cfg(feature = "alloc-counter")]
pub mod alloc_counter {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);
    /// Power-of-two size-class counters (`hist[i]` counts allocations of
    /// `2^(i-1) < size <= 2^i` bytes), for pinpointing what a measured
    /// section allocated.
    static HIST: [AtomicU64; 32] = [const { AtomicU64::new(0) }; 32];

    fn bump(size: usize) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(size as u64, Ordering::Relaxed);
        let class = (usize::BITS - size.max(1).leading_zeros()).min(31) as usize;
        HIST[class].fetch_add(1, Ordering::Relaxed);
    }

    /// The counting allocator type (see module docs).
    pub struct CountingAllocator;

    // SAFETY: defers every operation to `System`, only adding relaxed
    // atomic bookkeeping on the allocation edges.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            bump(layout.size());
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            bump(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            bump(new_size);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;

    /// Allocator counters at one instant.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct AllocSnapshot {
        /// Heap allocations (allocs + reallocs + zeroed allocs) so far.
        pub allocs: u64,
        /// Bytes requested across those allocations.
        pub bytes: u64,
    }

    /// Reads the current counters.
    pub fn snapshot() -> AllocSnapshot {
        AllocSnapshot {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes: BYTES.load(Ordering::Relaxed),
        }
    }

    /// Counter growth between two snapshots.
    pub fn delta(start: AllocSnapshot, end: AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: end.allocs - start.allocs,
            bytes: end.bytes - start.bytes,
        }
    }

    /// The size-class histogram counters at one instant (see `HIST`).
    pub fn hist_snapshot() -> [u64; 32] {
        std::array::from_fn(|i| HIST[i].load(Ordering::Relaxed))
    }

    /// Renders the growth between two histogram snapshots as
    /// `"<=N: count"` lines, skipping empty classes.
    pub fn hist_delta_pretty(start: &[u64; 32], end: &[u64; 32]) -> String {
        let mut out = String::new();
        for i in 0..32 {
            let d = end[i] - start[i];
            if d > 0 {
                out.push_str(&format!("  <={}: {}\n", 1u64 << i, d));
            }
        }
        out
    }
}
