//! Property tests pinning [`FrozenGridIndex`] to the naive O(n) scan.
//!
//! The frozen CSR index is a pure layout optimization: for any point
//! cloud, any query center and any radius, `for_each_within`,
//! `count_within` and `covers_at_least` must agree exactly with a brute
//! force scan using the canonical inclusive [`Point::in_disk`] predicate
//! — including points at distance exactly `r` (the coverage boundary is
//! inclusive, and placement determinism depends on that bit-for-bit).

use decor_geom::{FrozenGridIndex, GridIndex, Point};
use proptest::prelude::*;

fn arb_point(side: f64) -> impl Strategy<Value = Point> {
    (0.0..side, 0.0..side).prop_map(|(x, y)| Point::new(x, y))
}

fn brute_within(pts: &[Point], q: Point, r: f64) -> Vec<usize> {
    pts.iter()
        .enumerate()
        .filter(|&(_, &p)| q.in_disk(p, r))
        .map(|(id, _)| id)
        .collect()
}

fn frozen(pts: &[Point], cell: f64) -> FrozenGridIndex {
    FrozenGridIndex::from_points(
        Point::ORIGIN,
        (100.0, 100.0),
        cell,
        pts.iter().copied().enumerate(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `for_each_within` visits exactly the brute-force id set, for both
    /// the fast 3×3 path (r <= cell) and the wide AABB-prefiltered path.
    #[test]
    fn for_each_within_matches_naive_scan(
        pts in prop::collection::vec(arb_point(100.0), 0..120),
        q in arb_point(100.0),
        r in 0.1..70.0f64,
        cell in 1.0..20.0f64,
    ) {
        let idx = frozen(&pts, cell);
        let mut got = idx.within(q, r);
        got.sort_unstable();
        prop_assert_eq!(got, brute_within(&pts, q, r));
    }

    /// `count_within` equals the naive count.
    #[test]
    fn count_within_matches_naive_scan(
        pts in prop::collection::vec(arb_point(100.0), 0..120),
        q in arb_point(100.0),
        r in 0.1..70.0f64,
        cell in 1.0..20.0f64,
    ) {
        let idx = frozen(&pts, cell);
        prop_assert_eq!(idx.count_within(q, r), brute_within(&pts, q, r).len());
    }

    /// `covers_at_least(q, r, k)` ⇔ naive count ≥ k, for every k up to
    /// past the population.
    #[test]
    fn covers_at_least_matches_naive_scan(
        pts in prop::collection::vec(arb_point(100.0), 0..80),
        q in arb_point(100.0),
        r in 0.1..50.0f64,
        cell in 1.0..20.0f64,
    ) {
        let idx = frozen(&pts, cell);
        let n = brute_within(&pts, q, r).len();
        for k in 0..=(n + 2) {
            prop_assert_eq!(idx.covers_at_least(q, r, k), n >= k, "k={}, n={}", k, n);
        }
    }

    /// Points constructed at distance *exactly* `r` from the query are
    /// included — boundary inclusivity matches `Point::in_disk` on both
    /// query paths (reuses the inclusive-boundary regression pattern).
    #[test]
    fn boundary_points_at_exact_radius_are_included(
        q in arb_point(60.0),
        r in 0.5..30.0f64,
        filler in prop::collection::vec(arb_point(100.0), 0..40),
        cell in 1.0..20.0f64,
    ) {
        // Axis-aligned offsets keep q.x ± r exactly representable-ish;
        // the predicate must agree with in_disk either way.
        let mut pts = filler;
        let boundary_start = pts.len();
        pts.push(Point::new(q.x + r, q.y));
        pts.push(Point::new(q.x, q.y + r));
        let idx = frozen(&pts, cell);
        let got = idx.within(q, r);
        for (id, p) in [(boundary_start, pts[boundary_start]), (boundary_start + 1, pts[boundary_start + 1])] {
            prop_assert_eq!(
                got.contains(&id),
                q.in_disk(p, r),
                "boundary point {} disagreed with in_disk", p
            );
        }
        // And the whole result still matches brute force exactly.
        let mut sorted = got;
        sorted.sort_unstable();
        prop_assert_eq!(sorted, brute_within(&pts, q, r));
    }

    /// Freezing a populated `GridIndex` answers identically to the
    /// mutable source for all three query kinds.
    #[test]
    fn freeze_preserves_query_results(
        pts in prop::collection::vec(arb_point(100.0), 0..100),
        q in arb_point(100.0),
        r in 0.1..60.0f64,
        k in 0usize..6,
    ) {
        let mut grid = GridIndex::for_square_field(100.0, 4.0);
        for (id, &p) in pts.iter().enumerate() {
            grid.insert(id, p);
        }
        let idx = grid.freeze();
        prop_assert_eq!(idx.len(), grid.len());
        let mut a = idx.within(q, r);
        let mut b = grid.within(q, r);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(idx.count_within(q, r), grid.count_within(q, r));
        prop_assert_eq!(idx.covers_at_least(q, r, k), grid.covers_at_least(q, r, k));
    }

    /// `within_into` clears the buffer and matches `within`; the
    /// early-exit visitor stops exactly when asked.
    #[test]
    fn within_into_and_early_exit_contract(
        pts in prop::collection::vec(arb_point(100.0), 0..100),
        q in arb_point(100.0),
        r in 0.1..40.0f64,
        stop_after in 1usize..5,
    ) {
        let idx = frozen(&pts, 4.0);
        let mut buf = vec![usize::MAX; 7];
        idx.within_into(q, r, &mut buf);
        prop_assert_eq!(&buf, &idx.within(q, r));
        let total = buf.len();
        let mut visited = 0usize;
        let completed = idx.for_each_within_while(q, r, |_, _| {
            visited += 1;
            visited < stop_after
        });
        if total >= stop_after {
            prop_assert!(!completed);
            prop_assert_eq!(visited, stop_after);
        } else {
            prop_assert!(completed);
            prop_assert_eq!(visited, total);
        }
    }
}
