//! Property tests for the geometry substrate.

use decor_geom::{
    local_voronoi_cell, Aabb, ConvexPolygon, Delaunay, Disk, GridIndex, HalfPlane, Point,
    UnitDiskGraph,
};
use proptest::prelude::*;

fn arb_point(side: f64) -> impl Strategy<Value = Point> {
    (0.0..side, 0.0..side).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Triangle inequality and symmetry of the distance metric.
    #[test]
    fn distance_metric_axioms(a in arb_point(100.0), b in arb_point(100.0), c in arb_point(100.0)) {
        prop_assert!((a.dist(b) - b.dist(a)).abs() < 1e-12);
        prop_assert!(a.dist(c) <= a.dist(b) + b.dist(c) + 1e-9);
        prop_assert!(a.dist(a) == 0.0);
    }

    /// Clamping a point into a box yields the closest box point.
    #[test]
    fn aabb_clamp_is_nearest(p in arb_point(200.0)) {
        let b = Aabb::new(Point::new(50.0, 50.0), Point::new(150.0, 120.0));
        let c = b.clamp(p);
        prop_assert!(b.contains(c));
        // No box corner or the center is closer than the clamp.
        for probe in b.corners().iter().chain([b.center()].iter()) {
            prop_assert!(p.dist(c) <= p.dist(*probe) + 1e-9);
        }
    }

    /// Disk-disk intersection predicate is symmetric and consistent with
    /// the intersection area.
    #[test]
    fn disk_intersection_consistency(
        c1 in arb_point(50.0), r1 in 0.5..20.0f64,
        c2 in arb_point(50.0), r2 in 0.5..20.0f64,
    ) {
        let a = Disk::new(c1, r1);
        let b = Disk::new(c2, r2);
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
        let area = a.intersection_area(&b);
        prop_assert!(area >= -1e-9);
        prop_assert!(area <= a.area().min(b.area()) + 1e-9);
        if !a.intersects(&b) {
            prop_assert!(area.abs() < 1e-9);
        }
    }

    /// Half-plane clipping never grows a polygon and preserves points on
    /// the kept side.
    #[test]
    fn clipping_shrinks_area(
        nx in -1.0..1.0f64, ny in -1.0..1.0f64, off in -50.0..150.0f64,
    ) {
        prop_assume!(nx.abs() + ny.abs() > 1e-6);
        let sq = ConvexPolygon::from_aabb(&Aabb::square(100.0));
        let h = HalfPlane { normal: Point::new(nx, ny), offset: off };
        let clipped = sq.clip(&h);
        prop_assert!(clipped.area() <= sq.area() + 1e-6);
        if let Some(c) = clipped.centroid() {
            prop_assert!(h.contains(c));
            prop_assert!(sq.contains(c));
        }
    }

    /// A local Voronoi cell always contains its node (when inside the
    /// field) and never exceeds the rc-box area.
    #[test]
    fn voronoi_cell_contains_node(
        node in arb_point(100.0),
        nbs in prop::collection::vec(arb_point(100.0), 0..8),
        rc in 4.0..20.0f64,
    ) {
        let field = Aabb::square(100.0);
        let filtered: Vec<Point> = nbs.into_iter().filter(|&n| n != node).collect();
        let cell = local_voronoi_cell(node, &filtered, &field, rc);
        prop_assert!(cell.area() <= (2.0 * rc) * (2.0 * rc) + 1e-6);
        if !cell.is_empty() {
            prop_assert!(cell.contains(node));
        }
    }

    /// Grid-index removal really removes: after removing a random subset,
    /// queries never return removed ids.
    #[test]
    fn grid_index_remove_is_complete(
        pts in prop::collection::vec(arb_point(100.0), 1..60),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..30),
        q in arb_point(100.0),
        r in 1.0..50.0f64,
    ) {
        let mut idx = GridIndex::for_square_field(100.0, 4.0);
        for (i, &p) in pts.iter().enumerate() {
            idx.insert(i, p);
        }
        let mut removed = std::collections::BTreeSet::new();
        for sel in &removals {
            let i = sel.index(pts.len());
            if removed.insert(i) {
                prop_assert!(idx.remove(i, pts[i]));
            }
        }
        for id in idx.within(q, r) {
            prop_assert!(!removed.contains(&id));
        }
        prop_assert_eq!(idx.len(), pts.len() - removed.len());
    }

    /// Unit-disk graphs are symmetric and edges respect the radius.
    #[test]
    fn unit_disk_graph_symmetry(
        pts in prop::collection::vec(arb_point(60.0), 2..40),
        rc in 2.0..20.0f64,
    ) {
        let g = UnitDiskGraph::build(&pts, rc);
        for u in 0..g.len() {
            for &v in g.neighbors(u) {
                prop_assert!(pts[u].dist(pts[v]) <= rc + 1e-9);
                prop_assert!(g.neighbors(v).contains(&u), "asymmetric edge {u}-{v}");
            }
        }
    }

    /// Global Voronoi cells (Delaunay duality) tile the field for any
    /// point cloud: areas sum to the field area and every site sits in
    /// its own cell.
    #[test]
    fn voronoi_cells_tile_for_any_cloud(
        pts in prop::collection::vec(arb_point(100.0), 2..40),
    ) {
        // Dedup exact duplicates (duplicates legitimately share cells).
        let mut distinct: Vec<Point> = Vec::new();
        for p in pts {
            if !distinct.contains(&p) {
                distinct.push(p);
            }
        }
        prop_assume!(distinct.len() >= 2);
        let field = Aabb::square(100.0);
        let d = Delaunay::build(&distinct);
        let cells = d.voronoi_cells(&field);
        let total: f64 = cells.iter().map(|c| c.area()).sum();
        prop_assert!((total - field.area()).abs() < 1.0, "sum {total}");
        for (i, c) in cells.iter().enumerate() {
            prop_assert!(c.contains(distinct[i]), "site {i} outside its cell");
        }
    }

    /// The rc-limited local Voronoi cell is a superset of the exact
    /// global cell intersected with the rc-box (fewer clipping planes
    /// can only leave more area).
    #[test]
    fn local_cell_contains_global_cell(
        pts in prop::collection::vec(arb_point(100.0), 3..20),
        idx in any::<prop::sample::Index>(),
        rc in 6.0..25.0f64,
    ) {
        let mut distinct: Vec<Point> = Vec::new();
        for p in pts {
            if !distinct.contains(&p) {
                distinct.push(p);
            }
        }
        prop_assume!(distinct.len() >= 3);
        let field = Aabb::square(100.0);
        let i = idx.index(distinct.len());
        let me = distinct[i];
        let d = Delaunay::build(&distinct);
        let global = d.voronoi_cell(i, &field);
        let neighbors: Vec<Point> = distinct
            .iter()
            .enumerate()
            .filter(|&(j, p)| j != i && me.dist(*p) <= rc)
            .map(|(_, &p)| p)
            .collect();
        let local = local_voronoi_cell(me, &neighbors, &field, rc);
        // Sample the global cell; every interior sample within the
        // rc-box must lie in the local cell.
        if let Some(c) = global.centroid() {
            if me.dist(c) < rc * 0.99 {
                prop_assert!(local.contains(c), "centroid {c} escaped local cell");
            }
        }
        for t in [0.25, 0.5, 0.75] {
            let probe = me.lerp(global.centroid().unwrap_or(me), t);
            if me.dist(probe) < rc * 0.99 && global.contains(probe) {
                prop_assert!(local.contains(probe), "probe {probe} escaped");
            }
        }
    }

    /// Removing zero nodes never disconnects; k-connectivity is monotone
    /// decreasing in k.
    #[test]
    fn connectivity_monotone_in_k(
        pts in prop::collection::vec(arb_point(30.0), 3..15),
    ) {
        let g = UnitDiskGraph::build(&pts, 12.0);
        let mut prev = true;
        for k in 1..=4usize {
            let now = g.vertex_connectivity_at_least(k);
            prop_assert!(!now || prev, "k-connectivity must be monotone");
            prev = now;
        }
        prop_assert_eq!(g.is_connected_without(&vec![false; g.len()]), g.is_connected());
    }
}
