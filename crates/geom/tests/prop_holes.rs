//! Differential tests for the exact hole detector.
//!
//! The oracle is brute force: a dense sample grid where a sample is
//! uncovered iff its nearest sensor is farther than `rs`. The exact
//! detector must agree with the oracle in both directions (membership
//! of uncovered samples, uncoveredness of every hole's witness) and in
//! aggregate (total area, within the sampling resolution), and it must
//! stay *output-sensitive*: detecting a small wound on a huge almost-
//! fully-covered field only ever touches the sensors near the wound.

use decor_geom::{detect_holes, Aabb, FrozenGridIndex, Point};
use proptest::prelude::*;

fn nearest(sensors: &[Point], q: Point) -> Option<(usize, f64)> {
    sensors
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s.dist(q)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact holes vs. the dense-sampling oracle.
    #[test]
    fn holes_agree_with_dense_sampling_oracle(
        sensors in prop::collection::vec(
            (0.0..100.0f64, 0.0..100.0f64).prop_map(|(x, y)| Point::new(x, y)),
            1..50,
        ),
        rs in 4.0..22.0f64,
    ) {
        let field = Aabb::square(100.0);
        let report = detect_holes(&sensors, rs, &field);

        // Every hole's farthest witness is genuinely uncovered (the
        // witness is a point of the hole, brute-force checked), and its
        // depth is exactly the witness' nearest-sensor gap.
        for h in report.holes() {
            let (_, gap) = nearest(&sensors, h.deepest).unwrap();
            prop_assert!(gap > rs, "witness {:?} covered: {gap} <= {rs}", h.deepest);
            prop_assert!((gap - h.depth).abs() < 1e-6);
            prop_assert!(h.area > 0.0);
            prop_assert!(!h.cells.is_empty());
        }

        // No uncovered sample lies outside all reported holes (modulo a
        // one-spacing boundary margin), and the sampled uncovered area
        // agrees with the exact total within the sampling resolution.
        let grid = 140usize;
        let dx = field.width() / grid as f64;
        let margin = dx; // samples this close to a disk edge may be sliver-filtered
        let mut sampled = 0.0;
        for gy in 0..grid {
            for gx in 0..grid {
                let q = Point::new((gx as f64 + 0.5) * dx, (gy as f64 + 0.5) * dx);
                let (ni, gap) = nearest(&sensors, q).unwrap();
                if gap <= rs {
                    continue;
                }
                sampled += dx * dx;
                if gap > rs + margin {
                    prop_assert!(
                        report.hole_of_cell(ni).is_some(),
                        "uncovered sample {q:?} (gap {gap}) outside all holes"
                    );
                }
            }
        }
        // Misclassification is confined to a half-spacing band around
        // the region boundary (disk perimeters + field perimeter).
        let tol = (sensors.len() as f64 * std::f64::consts::TAU * rs + 400.0) * dx;
        prop_assert!(
            (report.total_area() - sampled).abs() <= tol,
            "exact {} vs sampled {sampled} (tol {tol})",
            report.total_area()
        );
    }
}

/// `pr6_scale`-style output-sensitivity: a field sized for 10⁵
/// approximation points at paper density (side ≈ 707), almost fully
/// covered by a ~20k-sensor lattice with one wound punched out.
/// Regional detection gathers candidate sensors through the frozen
/// index and must (a) touch only a wound-sized sensor subset and
/// (b) still find the wound exactly.
#[test]
fn detection_is_output_sensitive_on_large_field() {
    let side = (100.0f64 * 100.0 * (100_000.0 / 2000.0)).sqrt(); // ≈ 707
    let field = Aabb::square(side);
    let (spacing, rs) = (5.0, 4.0);
    let per_row = (side / spacing).ceil() as usize;
    let wound_center = Point::new(side * 0.37, side * 0.58);
    let wound_r = 14.0;
    let mut sensors: Vec<Point> = Vec::new();
    for i in 0..per_row {
        for j in 0..per_row {
            let p = Point::new((i as f64 + 0.5) * spacing, (j as f64 + 0.5) * spacing);
            if field.contains(p) && !p.in_disk(wound_center, wound_r) {
                sensors.push(p);
            }
        }
    }
    assert!(
        sensors.len() > 15_000,
        "lattice too small: {}",
        sensors.len()
    );

    // Regional detection: inflate the wound's bounding box far enough
    // that the included lattice ring fully covers the ROI rim, then
    // gather candidates through the frozen index only.
    let idx = FrozenGridIndex::from_points(
        field.min,
        (field.width(), field.height()),
        spacing,
        sensors.iter().copied().enumerate(),
    );
    let roi = Aabb::new(
        Point::new(wound_center.x - wound_r, wound_center.y - wound_r),
        Point::new(wound_center.x + wound_r, wound_center.y + wound_r),
    )
    .inflate(2.0 * spacing + rs)
    .intersection(&field)
    .unwrap();
    // Every sensor whose disk reaches into the ROI lies within the
    // ROI's circumradius plus rs of its center; one spacing of slack.
    let gather_r = roi.width().hypot(roi.height()) * 0.5 + rs + spacing;
    let mut local: Vec<Point> = Vec::new();
    idx.for_each_within(roi.center(), gather_r, |_, p| {
        local.push(p);
    });

    // (a) Output sensitivity: the exact work is bounded by the wound
    // size, not the field size.
    assert!(
        local.len() < 400,
        "regional detection touched {} of {} sensors",
        local.len(),
        sensors.len()
    );

    // (b) Exactness on the region: one hole, centered on the wound,
    // with the area the lattice-minus-wound really leaves uncovered.
    let report = detect_holes(&local, rs, &roi);
    assert_eq!(report.holes().len(), 1, "expected exactly the wound hole");
    let h = &report.holes()[0];
    assert!(
        h.centroid.dist(wound_center) < spacing,
        "wound centroid drifted: {:?}",
        h.centroid
    );
    // Oracle: dense sampling of the ROI against the *local* sensor set
    // (identical coverage inside the ROI by construction).
    let grid = 400usize;
    let (dx, dy) = (roi.width() / grid as f64, roi.height() / grid as f64);
    let mut sampled = 0.0;
    for gy in 0..grid {
        for gx in 0..grid {
            let q = Point::new(
                roi.min.x + (gx as f64 + 0.5) * dx,
                roi.min.y + (gy as f64 + 0.5) * dy,
            );
            if !local.iter().any(|s| q.in_disk(*s, rs)) {
                sampled += dx * dy;
            }
        }
    }
    assert!(
        (report.total_area() - sampled).abs() < 0.05 * sampled.max(1.0),
        "exact {} vs sampled {sampled}",
        report.total_area()
    );
}
