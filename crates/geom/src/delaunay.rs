//! Delaunay triangulation (Bowyer–Watson) and exact global Voronoi cells.
//!
//! The local Voronoi cells of [`crate::voronoi`] are what a *node* can
//! compute (bounded by its communication radius). For analysis we also
//! want the exact, global diagram: a sensor's true Voronoi cell is the
//! intersection of the bisector half-planes against its **Delaunay
//! neighbors** only (a classical duality), so one triangulation yields
//! every cell exactly.
//!
//! Used by deployment diagnostics (cell-area variance = load balance),
//! by tests cross-validating the rc-limited local cells, and available to
//! downstream users for the Voronoi-path analyses of the paper's related
//! work [13, 24].

use crate::aabb::Aabb;
use crate::point::Point;
use crate::polygon::{ConvexPolygon, HalfPlane};
use std::collections::BTreeSet;

/// A Delaunay triangulation of a planar point set.
///
/// ```
/// use decor_geom::{Aabb, Delaunay, Point};
///
/// let sites = vec![
///     Point::new(25.0, 25.0),
///     Point::new(75.0, 25.0),
///     Point::new(50.0, 75.0),
/// ];
/// let d = Delaunay::build(&sites);
/// assert_eq!(d.triangles().len(), 1);
/// // The exact Voronoi cells tile the field.
/// let field = Aabb::square(100.0);
/// let total: f64 = d.voronoi_cells(&field).iter().map(|c| c.area()).sum();
/// assert!((total - field.area()).abs() < 1e-6);
/// ```
#[derive(Clone, Debug)]
pub struct Delaunay {
    points: Vec<Point>,
    /// Triangles as index triples (counter-clockwise).
    triangles: Vec<[usize; 3]>,
    /// Degenerate flag: fewer than 3 points or all (near-)collinear.
    degenerate: bool,
}

/// Is point `p` strictly inside the circumcircle of CCW triangle
/// `(a, b, c)`? Standard 3×3 determinant test.
///
/// The determinant scales with coordinate⁴, so the near-cocircular
/// tolerance is normalized by the squared magnitudes of the lifted
/// vertices — the same triangle at 1×, 100×, or 10000× coordinate scale
/// gets the same verdict.
fn in_circumcircle(a: Point, b: Point, c: Point, p: Point) -> bool {
    let ax = a.x - p.x;
    let ay = a.y - p.y;
    let bx = b.x - p.x;
    let by = b.y - p.y;
    let cx = c.x - p.x;
    let cy = c.y - p.y;
    let la = ax * ax + ay * ay;
    let lb = bx * bx + by * by;
    let lc = cx * cx + cy * cy;
    let det = la * (bx * cy - cx * by) - lb * (ax * cy - cx * ay) + lc * (ax * by - bx * ay);
    let scale = la.max(lb).max(lc);
    det > 1e-12 * scale * scale
}

/// Signed twice-area of triangle `(a, b, c)`; positive when CCW.
fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b - a).cross(c - a)
}

impl Delaunay {
    /// Builds the triangulation. Duplicate points are collapsed; for
    /// degenerate inputs (fewer than three distinct points, or all
    /// collinear) the triangulation is empty and neighbor queries fall
    /// back to "all other points".
    pub fn build(points: &[Point]) -> Self {
        // Collapse exact duplicates while keeping original indexing:
        // duplicates get no triangles of their own but remain addressable.
        let pts = points.to_vec();
        let n = pts.len();
        if n < 3 {
            return Delaunay {
                points: pts,
                triangles: Vec::new(),
                degenerate: true,
            };
        }
        // Super-triangle comfortably containing the bounding box.
        let mut lo = pts[0];
        let mut hi = pts[0];
        for &p in &pts {
            lo = Point::new(lo.x.min(p.x), lo.y.min(p.y));
            hi = Point::new(hi.x.max(p.x), hi.y.max(p.y));
        }
        // The floor only guards all-coincident inputs; it must not be an
        // absolute constant or the super-triangle's relative size (and
        // with it hull-adjacent combinatorics) would depend on the
        // coordinate scale.
        let raw_span = (hi.x - lo.x).max(hi.y - lo.y);
        let span = if raw_span > 0.0 {
            raw_span
        } else {
            hi.x.abs().max(hi.y.abs()).max(1.0)
        };
        let mid = lo.midpoint(hi);
        let s0 = Point::new(mid.x - 20.0 * span, mid.y - 10.0 * span);
        let s1 = Point::new(mid.x + 20.0 * span, mid.y - 10.0 * span);
        let s2 = Point::new(mid.x, mid.y + 20.0 * span);
        // Working vertex array: real points then the 3 super vertices.
        let mut verts = pts.clone();
        verts.extend([s0, s1, s2]);
        let (i0, i1, i2) = (n, n + 1, n + 2);
        let mut tris: Vec<[usize; 3]> = vec![[i0, i1, i2]];

        let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
        for (pi, &p) in pts.iter().enumerate() {
            let key = (p.x.to_bits(), p.y.to_bits());
            if !seen.insert(key) {
                continue; // duplicate point: skip insertion
            }
            // Bad triangles: circumcircle contains p.
            let mut bad: Vec<usize> = Vec::new();
            for (ti, t) in tris.iter().enumerate() {
                if in_circumcircle(verts[t[0]], verts[t[1]], verts[t[2]], p) {
                    bad.push(ti);
                }
            }
            // Boundary polygon: edges of bad triangles not shared by two
            // bad triangles.
            let mut edge_count: std::collections::BTreeMap<(usize, usize), usize> =
                std::collections::BTreeMap::new();
            for &ti in &bad {
                let t = tris[ti];
                for e in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                    let k = (e.0.min(e.1), e.0.max(e.1));
                    *edge_count.entry(k).or_insert(0) += 1;
                }
            }
            // Remove bad triangles (descending indices to keep validity).
            bad.sort_unstable_by(|a, b| b.cmp(a));
            // Collect boundary with orientation from the bad set.
            let mut boundary: Vec<(usize, usize)> = Vec::new();
            for &ti in &bad {
                let t = tris[ti];
                for e in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                    let k = (e.0.min(e.1), e.0.max(e.1));
                    if edge_count[&k] == 1 {
                        boundary.push(e);
                    }
                }
            }
            for ti in bad {
                tris.swap_remove(ti);
            }
            // Re-triangulate the cavity.
            for (u, v) in boundary {
                let mut t = [u, v, pi];
                if orient(verts[t[0]], verts[t[1]], verts[t[2]]) < 0.0 {
                    t.swap(0, 1);
                }
                // Skip exactly-degenerate slivers. `orient` scales with
                // coordinate², so normalize by the adjacent edge lengths:
                // the filter rejects on sin(angle), not on absolute area.
                let (va, vb, vc) = (verts[t[0]], verts[t[1]], verts[t[2]]);
                let scale = ((vb - va).norm_sq() * (vc - va).norm_sq()).sqrt();
                if orient(va, vb, vc).abs() > 1e-12 * scale {
                    tris.push(t);
                }
            }
        }
        // Drop triangles touching the super vertices.
        let triangles: Vec<[usize; 3]> = tris
            .into_iter()
            .filter(|t| t.iter().all(|&v| v < n))
            .collect();
        let degenerate = triangles.is_empty();
        Delaunay {
            points: pts,
            triangles,
            degenerate,
        }
    }

    /// The input points.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The triangles (empty for degenerate inputs).
    pub fn triangles(&self) -> &[[usize; 3]] {
        &self.triangles
    }

    /// True when the input admitted no triangulation (collinear / tiny).
    pub fn is_degenerate(&self) -> bool {
        self.degenerate
    }

    /// Undirected Delaunay edges as `(min, max)` index pairs.
    pub fn edges(&self) -> BTreeSet<(usize, usize)> {
        let mut out = BTreeSet::new();
        for t in &self.triangles {
            for e in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                out.insert((e.0.min(e.1), e.0.max(e.1)));
            }
        }
        out
    }

    /// Delaunay neighbors of point `i`. For degenerate triangulations
    /// (where the duality argument breaks down) this conservatively
    /// returns *all* other points, which keeps Voronoi cells exact.
    pub fn neighbors(&self, i: usize) -> Vec<usize> {
        if self.degenerate {
            return (0..self.points.len()).filter(|&j| j != i).collect();
        }
        let mut out = BTreeSet::new();
        for t in &self.triangles {
            if t.contains(&i) {
                for &v in t {
                    if v != i {
                        out.insert(v);
                    }
                }
            }
        }
        // Points that ended up without any triangle (duplicates) also
        // fall back to the conservative neighbor set.
        if out.is_empty() && self.points.len() > 1 {
            return (0..self.points.len()).filter(|&j| j != i).collect();
        }
        out.into_iter().collect()
    }

    /// The exact Voronoi cell of point `i`, clipped to `field`.
    ///
    /// Correctness leans on the duality theorem: every bounding bisector
    /// of a Voronoi cell belongs to a Delaunay neighbor.
    pub fn voronoi_cell(&self, i: usize, field: &Aabb) -> ConvexPolygon {
        let me = self.points[i];
        let planes: Vec<HalfPlane> = self
            .neighbors(i)
            .into_iter()
            .filter(|&j| self.points[j] != me)
            .map(|j| HalfPlane::bisector(me, self.points[j]))
            .collect();
        ConvexPolygon::from_aabb(field).clip_all(planes.iter())
    }

    /// All Voronoi cells, clipped to `field`.
    pub fn voronoi_cells(&self, field: &Aabb) -> Vec<ConvexPolygon> {
        (0..self.points.len())
            .map(|i| self.voronoi_cell(i, field))
            .collect()
    }
}

/// Coefficient of variation (std/mean) of the Voronoi cell areas of
/// `points` within `field` — a load-balance measure: 0 for perfectly
/// even responsibility regions. Duplicated points share a cell and are
/// counted once; returns 0 for fewer than 2 distinct points.
pub fn cell_area_cv(points: &[Point], field: &Aabb) -> f64 {
    let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut distinct: Vec<Point> = Vec::new();
    for &p in points {
        if seen.insert((p.x.to_bits(), p.y.to_bits())) {
            distinct.push(p);
        }
    }
    if distinct.len() < 2 {
        return 0.0;
    }
    let d = Delaunay::build(&distinct);
    let areas: Vec<f64> = d.voronoi_cells(field).iter().map(|c| c.area()).collect();
    let mean = areas.iter().sum::<f64>() / areas.len() as f64;
    if mean <= 0.0 {
        return 0.0;
    }
    let var = areas.iter().map(|a| (a - mean) * (a - mean)).sum::<f64>() / areas.len() as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Aabb {
        Aabb::square(100.0)
    }

    fn scatter(n: usize) -> Vec<Point> {
        // Deterministic LCG scatter.
        let mut state = 0x853C49E6748FEA9Bu64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
                Point::new(x, y)
            })
            .collect()
    }

    #[test]
    fn square_triangulates_into_two_triangles() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        let d = Delaunay::build(&pts);
        assert_eq!(d.triangles().len(), 2);
        assert_eq!(d.edges().len(), 5); // 4 sides + 1 diagonal
        assert!(!d.is_degenerate());
    }

    #[test]
    fn empty_circumcircle_property_holds() {
        let pts = scatter(60);
        let d = Delaunay::build(&pts);
        assert!(!d.is_degenerate());
        for t in d.triangles() {
            for (pi, &p) in pts.iter().enumerate() {
                if t.contains(&pi) {
                    continue;
                }
                assert!(
                    !in_circumcircle(pts[t[0]], pts[t[1]], pts[t[2]], p),
                    "point {pi} inside circumcircle of {t:?}"
                );
            }
        }
    }

    #[test]
    fn triangle_count_matches_euler_formula() {
        // For a triangulated point set: T = 2n - 2 - h, where h is the
        // number of hull vertices. Verify the weaker bound and edge
        // consistency E = (3T + h) / 2 via Euler: V - E + F = 2.
        let pts = scatter(40);
        let d = Delaunay::build(&pts);
        let t = d.triangles().len();
        let e = d.edges().len();
        // F = T + outer face.
        assert_eq!(40 - e as i64 + (t as i64 + 1), 2, "Euler characteristic");
    }

    #[test]
    fn voronoi_cells_partition_the_field() {
        let pts = scatter(30);
        let d = Delaunay::build(&pts);
        let cells = d.voronoi_cells(&field());
        let total: f64 = cells.iter().map(|c| c.area()).sum();
        assert!(
            (total - 10_000.0).abs() < 1.0,
            "cells must tile the field: {total}"
        );
        for (i, cell) in cells.iter().enumerate() {
            assert!(cell.contains(pts[i]), "cell {i} must contain its site");
        }
    }

    #[test]
    fn voronoi_cells_agree_with_nearest_site() {
        let pts = scatter(25);
        let d = Delaunay::build(&pts);
        let cells = d.voronoi_cells(&field());
        // Sample a grid: each sample's nearest site's cell contains it.
        for gx in 0..20 {
            for gy in 0..20 {
                let q = Point::new(2.5 + 5.0 * gx as f64, 2.5 + 5.0 * gy as f64);
                let (ni, nd) = pts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, q.dist(*p)))
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                    .unwrap();
                // Skip near-ties where float noise could flip ownership.
                let second = pts
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != ni)
                    .map(|(_, p)| q.dist(*p))
                    .fold(f64::INFINITY, f64::min);
                if second - nd < 1e-6 {
                    continue;
                }
                assert!(cells[ni].contains(q), "sample {q} outside cell {ni}");
            }
        }
    }

    #[test]
    fn collinear_points_are_degenerate_but_cells_still_exact() {
        let pts: Vec<Point> = (0..5)
            .map(|i| Point::new(10.0 + 20.0 * i as f64, 50.0))
            .collect();
        let d = Delaunay::build(&pts);
        assert!(d.is_degenerate());
        assert!(d.triangles().is_empty());
        let cells = d.voronoi_cells(&field());
        let total: f64 = cells.iter().map(|c| c.area()).sum();
        assert!((total - 10_000.0).abs() < 1.0, "strip cells tile: {total}");
        // Middle site owns a vertical strip of width 20.
        assert!((cells[2].area() - 2000.0).abs() < 1.0);
    }

    #[test]
    fn tiny_inputs() {
        assert!(Delaunay::build(&[]).triangles().is_empty());
        let one = Delaunay::build(&[Point::new(5.0, 5.0)]);
        assert!(one.is_degenerate());
        let cells = one.voronoi_cells(&field());
        assert!((cells[0].area() - 10_000.0).abs() < 1e-6);
        let two = Delaunay::build(&[Point::new(25.0, 50.0), Point::new(75.0, 50.0)]);
        let cells2 = two.voronoi_cells(&field());
        assert!((cells2[0].area() - 5000.0).abs() < 1e-6);
        assert!((cells2[1].area() - 5000.0).abs() < 1e-6);
    }

    #[test]
    fn duplicate_points_share_cells_safely() {
        let pts = vec![
            Point::new(30.0, 30.0),
            Point::new(30.0, 30.0),
            Point::new(70.0, 70.0),
            Point::new(20.0, 80.0),
        ];
        let d = Delaunay::build(&pts);
        // The duplicate gets the conservative neighbor fallback and an
        // empty cell (its bisector against its twin is undefined; we
        // filter coincident sites, so it shares the twin's region).
        let cell = d.voronoi_cell(0, &field());
        assert!(cell.contains(Point::new(30.0, 30.0)));
    }

    #[test]
    fn delaunay_contains_nearest_neighbor_edges() {
        // Classic inclusion: each point's nearest neighbor is a Delaunay
        // neighbor.
        let pts = scatter(40);
        let d = Delaunay::build(&pts);
        for (i, &p) in pts.iter().enumerate() {
            let (nn, _) = pts
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(j, q)| (j, p.dist(*q)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap();
            assert!(
                d.neighbors(i).contains(&nn),
                "nearest neighbor {nn} of {i} missing"
            );
        }
    }

    #[test]
    fn triangulation_combinatorics_scale_invariant() {
        // The same scatter triangulated at 1x/100x/10000x coordinate
        // scale must produce the identical edge set: the circumcircle
        // and sliver predicates are normalized, so scaling every
        // coordinate cannot flip a combinatorial decision.
        let base = scatter(60);
        let edges_at = |s: f64| {
            let pts: Vec<Point> = base.iter().map(|p| Point::new(p.x * s, p.y * s)).collect();
            let d = Delaunay::build(&pts);
            assert!(!d.is_degenerate(), "scatter degenerate at scale {s}");
            d.edges()
        };
        let e1 = edges_at(1.0);
        assert!(!e1.is_empty());
        assert_eq!(e1, edges_at(100.0), "edge set drifted at 100x scale");
        assert_eq!(e1, edges_at(10_000.0), "edge set drifted at 10000x scale");
        assert_eq!(e1, edges_at(1e-4), "edge set drifted at micro scale");
    }

    #[test]
    fn cell_area_cv_detects_clustering() {
        // A regular grid has near-zero CV; a clustered set has a large one.
        let mut regular = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                regular.push(Point::new(10.0 + 20.0 * i as f64, 10.0 + 20.0 * j as f64));
            }
        }
        let cv_reg = cell_area_cv(&regular, &field());
        let mut clustered = scatter(20);
        clustered.iter_mut().for_each(|p| {
            p.x = 40.0 + p.x * 0.2;
            p.y = 40.0 + p.y * 0.2;
        });
        let cv_clu = cell_area_cv(&clustered, &field());
        assert!(cv_reg < 0.1, "regular grid CV {cv_reg}");
        assert!(cv_clu > 0.5, "clustered CV {cv_clu}");
        assert_eq!(cell_area_cv(&[], &field()), 0.0);
        assert_eq!(cell_area_cv(&[Point::new(1.0, 1.0)], &field()), 0.0);
    }
}
