//! Unit-disk communication graphs and connectivity checks.
//!
//! Two nodes can communicate when their distance is at most `rc`. The paper
//! states (§2) that `rc >= 2·rs` plus full k-coverage implies
//! k-connectivity; this module provides the machinery to *check* that
//! corollary in tests and experiments:
//!
//! - [`UnitDiskGraph`] — adjacency built with the spatial index (O(n · deg)).
//! - [`UnitDiskGraph::is_connected`] — BFS.
//! - [`UnitDiskGraph::vertex_connectivity_at_least`] — Menger's theorem via
//!   unit-capacity max-flow on the node-split digraph: the graph is
//!   k-vertex-connected iff every non-adjacent pair has k internally
//!   disjoint paths.

use crate::grid_index::GridIndex;
use crate::point::Point;

/// An undirected unit-disk graph over a set of node positions.
#[derive(Clone, Debug)]
pub struct UnitDiskGraph {
    positions: Vec<Point>,
    adj: Vec<Vec<usize>>,
}

impl UnitDiskGraph {
    /// Builds the graph: nodes `i`, `j` are adjacent iff
    /// `dist(p_i, p_j) <= rc` and `i != j`.
    pub fn build(positions: &[Point], rc: f64) -> Self {
        assert!(rc > 0.0, "communication radius must be positive");
        let mut adj = vec![Vec::new(); positions.len()];
        if !positions.is_empty() {
            // Index extent from the data itself; degenerate extents padded.
            let (mut lo, mut hi) = (positions[0], positions[0]);
            for &p in positions {
                lo = Point::new(lo.x.min(p.x), lo.y.min(p.y));
                hi = Point::new(hi.x.max(p.x), hi.y.max(p.y));
            }
            let extent = ((hi.x - lo.x).max(rc), (hi.y - lo.y).max(rc));
            let mut idx = GridIndex::new(lo, extent, rc);
            for (i, &p) in positions.iter().enumerate() {
                idx.insert(i, p);
            }
            for (i, &p) in positions.iter().enumerate() {
                idx.for_each_within(p, rc, |j, _| {
                    if j != i {
                        adj[i].push(j);
                    }
                });
            }
            for l in &mut adj {
                l.sort_unstable();
            }
        }
        UnitDiskGraph {
            positions: positions.to_vec(),
            adj,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Neighbor list of node `i` (sorted by id).
    pub fn neighbors(&self, i: usize) -> &[usize] {
        &self.adj[i]
    }

    /// Position of node `i`.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// BFS connectivity over all nodes. The empty graph and the singleton
    /// are connected by convention.
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(0);
        let mut visited = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    queue.push_back(v);
                }
            }
        }
        visited == n
    }

    /// True when the graph stays connected after removing the nodes in
    /// `removed` (given as a boolean mask).
    pub fn is_connected_without(&self, removed: &[bool]) -> bool {
        let n = self.len();
        assert_eq!(removed.len(), n);
        let alive: Vec<usize> = (0..n).filter(|&i| !removed[i]).collect();
        if alive.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[alive[0]] = true;
        queue.push_back(alive[0]);
        let mut visited = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &self.adj[u] {
                if !removed[v] && !seen[v] {
                    seen[v] = true;
                    visited += 1;
                    queue.push_back(v);
                }
            }
        }
        visited == alive.len()
    }

    /// Maximum number of internally vertex-disjoint paths between `s`
    /// and `t` (`s != t`), capped at `cap` to bound work.
    ///
    /// Implemented as unit-capacity max-flow on the standard node-split
    /// transformation (each node but `s`,`t` becomes an `in -> out` arc of
    /// capacity one). Runs `cap` augmenting BFS passes at most.
    pub fn disjoint_paths(&self, s: usize, t: usize, cap: usize) -> usize {
        assert_ne!(s, t);
        let n = self.len();
        // Node-split ids: in(v) = 2v, out(v) = 2v + 1.
        // Arcs: in(v) -> out(v) cap 1 (v != s, t: s/t get cap `cap`),
        //       out(u) -> in(v) cap 1 for each edge (u, v).
        let num = 2 * n;
        let mut graph: Vec<Vec<usize>> = vec![Vec::new(); num];
        let mut to: Vec<usize> = Vec::new();
        let mut cap_vec: Vec<i32> = Vec::new();
        let add_edge = |graph: &mut Vec<Vec<usize>>,
                        to: &mut Vec<usize>,
                        caps: &mut Vec<i32>,
                        u: usize,
                        v: usize,
                        c: i32| {
            graph[u].push(to.len());
            to.push(v);
            caps.push(c);
            graph[v].push(to.len());
            to.push(u);
            caps.push(0);
        };
        for v in 0..n {
            let c = if v == s || v == t { cap as i32 } else { 1 };
            add_edge(&mut graph, &mut to, &mut cap_vec, 2 * v, 2 * v + 1, c);
        }
        for u in 0..n {
            for &v in &self.adj[u] {
                // Each undirected edge becomes two directed out->in arcs;
                // add each direction once (u < v handles both).
                if u < v {
                    add_edge(&mut graph, &mut to, &mut cap_vec, 2 * u + 1, 2 * v, 1);
                    add_edge(&mut graph, &mut to, &mut cap_vec, 2 * v + 1, 2 * u, 1);
                }
            }
        }
        let source = 2 * s; // in(s); its split arc has capacity `cap`
        let sink = 2 * t + 1; // out(t)
        let mut flow = 0usize;
        let mut parent_edge = vec![usize::MAX; num];
        while flow < cap {
            // BFS for an augmenting path.
            for pe in parent_edge.iter_mut() {
                *pe = usize::MAX;
            }
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(source);
            let mut reached = false;
            'bfs: while let Some(u) = queue.pop_front() {
                for &e in &graph[u] {
                    let v = to[e];
                    if cap_vec[e] > 0 && parent_edge[v] == usize::MAX && v != source {
                        parent_edge[v] = e;
                        if v == sink {
                            reached = true;
                            break 'bfs;
                        }
                        queue.push_back(v);
                    }
                }
            }
            if !reached {
                break;
            }
            // Augment by one unit.
            let mut v = sink;
            while v != source {
                let e = parent_edge[v];
                cap_vec[e] -= 1;
                cap_vec[e ^ 1] += 1;
                v = to[e ^ 1];
            }
            flow += 1;
        }
        flow
    }

    /// Checks k-vertex-connectivity (capped test, exact for `k <= n-1`).
    ///
    /// Uses Menger's theorem: the graph is k-connected iff it has more than
    /// k nodes and every pair of *non-adjacent* nodes admits `k` internally
    /// disjoint paths. To bound cost we test `s = 0` against all others and
    /// every non-adjacent pair among a capped sample — exact per
    /// Even–Tarjan's observation that fixing one endpoint in a minimum
    /// separator's complement suffices when iterated over k+1 seeds.
    /// For the sizes exercised here (hundreds of nodes) we keep the simpler
    /// exact variant: all pairs (s, t) with `s` in the first `k+1` nodes.
    pub fn vertex_connectivity_at_least(&self, k: usize) -> bool {
        let n = self.len();
        if k == 0 {
            return true;
        }
        if n <= k {
            return false; // k-connectivity requires at least k+1 nodes
        }
        if !self.is_connected() {
            return false;
        }
        let seeds = (k + 1).min(n);
        for s in 0..seeds {
            for t in 0..n {
                if t == s || self.adj[s].binary_search(&t).is_ok() {
                    continue;
                }
                if self.disjoint_paths(s, t, k) < k {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn adjacency_respects_rc() {
        let g = UnitDiskGraph::build(&pts(&[(0.0, 0.0), (1.0, 0.0), (3.0, 0.0)]), 1.5);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[] as &[usize]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn boundary_distance_is_adjacent() {
        let g = UnitDiskGraph::build(&pts(&[(0.0, 0.0), (2.0, 0.0)]), 2.0);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn chain_is_connected_but_not_biconnected() {
        let g = UnitDiskGraph::build(&pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]), 1.2);
        assert!(g.is_connected());
        assert!(g.vertex_connectivity_at_least(1));
        assert!(!g.vertex_connectivity_at_least(2));
    }

    #[test]
    fn disconnected_graph_detected() {
        let g = UnitDiskGraph::build(&pts(&[(0.0, 0.0), (10.0, 0.0)]), 1.0);
        assert!(!g.is_connected());
        assert!(!g.vertex_connectivity_at_least(1));
    }

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(UnitDiskGraph::build(&[], 1.0).is_connected());
        assert!(UnitDiskGraph::build(&pts(&[(0.0, 0.0)]), 1.0).is_connected());
    }

    #[test]
    fn triangle_is_biconnected() {
        let g = UnitDiskGraph::build(&pts(&[(0.0, 0.0), (1.0, 0.0), (0.5, 0.8)]), 1.2);
        assert!(g.vertex_connectivity_at_least(2));
        assert!(!g.vertex_connectivity_at_least(3)); // needs > 3 nodes
    }

    #[test]
    fn square_with_diagonals_is_triconnected() {
        // K4 via generous radius.
        let g = UnitDiskGraph::build(&pts(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)]), 2.0);
        assert!(g.vertex_connectivity_at_least(3));
    }

    #[test]
    fn cut_vertex_limits_connectivity() {
        // Two triangles sharing a single vertex (bowtie): 1-connected only.
        let g = UnitDiskGraph::build(
            &pts(&[
                (0.0, 0.0),
                (1.0, 0.6),
                (1.0, -0.6),
                (2.0, 0.0), // shared hub is node 3
                (3.0, 0.6),
                (3.0, -0.6),
                (4.0, 0.0),
            ]),
            1.4,
        );
        assert!(g.is_connected());
        assert!(g.vertex_connectivity_at_least(1));
        assert!(!g.vertex_connectivity_at_least(2));
    }

    #[test]
    fn disjoint_paths_on_cycle() {
        // 6-cycle: exactly two disjoint paths between opposite nodes.
        let mut coords = Vec::new();
        for i in 0..6 {
            let a = i as f64 * std::f64::consts::TAU / 6.0;
            coords.push((a.cos(), a.sin()));
        }
        let g = UnitDiskGraph::build(&pts(&coords), 1.05);
        assert_eq!(g.disjoint_paths(0, 3, 5), 2);
        assert_eq!(g.disjoint_paths(0, 2, 5), 2);
    }

    #[test]
    fn is_connected_without_removed_nodes() {
        let g = UnitDiskGraph::build(&pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0)]), 1.2);
        assert!(g.is_connected_without(&[false, false, false]));
        // Removing the middle node splits the chain.
        assert!(!g.is_connected_without(&[false, true, false]));
        // Removing an end keeps the rest connected.
        assert!(g.is_connected_without(&[true, false, false]));
        // Removing all but one is trivially connected.
        assert!(g.is_connected_without(&[true, true, false]));
    }

    #[test]
    fn dense_cluster_has_high_connectivity() {
        // 3x3 grid with radius covering rook+diagonal moves => quite dense.
        let mut coords = Vec::new();
        for i in 0..3 {
            for j in 0..3 {
                coords.push((i as f64, j as f64));
            }
        }
        let g = UnitDiskGraph::build(&pts(&coords), 1.5);
        assert!(g.vertex_connectivity_at_least(3));
    }
}
