//! Convex polygons and half-plane clipping.
//!
//! The local Voronoi cell of a node (paper §3.1, Definition 1) is the
//! intersection of half-planes — one per 1-hop neighbor (the perpendicular
//! bisector) — clipped to the node's communication disk. We represent cells
//! as convex polygons and clip with Sutherland–Hodgman; the communication
//! disk is approximated by its bounding box (exactly what a node can know
//! about, since everything relevant lies within `rc`).

use crate::aabb::Aabb;
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An oriented half-plane `{ p : n · p <= c }` with inward normal away
/// from `n`.
///
/// `HalfPlane::bisector(a, b)` keeps the side of `a`, which is how Voronoi
/// cells are built: each neighbor `b` cuts away the points closer to `b`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HalfPlane {
    /// Outward normal (points away from the kept side).
    pub normal: Point,
    /// Offset: the half-plane is `normal · p <= offset`.
    pub offset: f64,
}

impl HalfPlane {
    /// The half-plane of points at least as close to `a` as to `b`
    /// (the perpendicular bisector, keeping `a`'s side).
    ///
    /// Panics if `a == b` (no bisector exists).
    pub fn bisector(a: Point, b: Point) -> Self {
        assert!(
            a != b,
            "perpendicular bisector of coincident points is undefined"
        );
        let n = b - a;
        let m = a.midpoint(b);
        HalfPlane {
            normal: n,
            offset: n.dot(m),
        }
    }

    /// Signed evaluation: negative inside, zero on the boundary line.
    #[inline]
    pub fn eval(&self, p: Point) -> f64 {
        self.normal.dot(p) - self.offset
    }

    /// Inclusive containment.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.eval(p) <= 1e-9 * self.normal.norm().max(1.0)
    }

    /// Intersection of the boundary line with segment `a`–`b`, assuming the
    /// two endpoints straddle the line.
    fn clip_point(&self, a: Point, b: Point) -> Point {
        let fa = self.eval(a);
        let fb = self.eval(b);
        let t = fa / (fa - fb);
        a.lerp(b, t.clamp(0.0, 1.0))
    }
}

/// A convex polygon stored as counter-clockwise vertices.
///
/// May be empty (fully clipped away). Degenerate polygons (fewer than three
/// vertices after clipping) are treated as empty.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// A polygon from CCW vertices. Callers must supply a convex CCW chain;
    /// this is checked in debug builds.
    pub fn from_ccw(vertices: Vec<Point>) -> Self {
        let poly = ConvexPolygon { vertices };
        debug_assert!(
            poly.is_convex_ccw(),
            "vertices must form a convex CCW chain"
        );
        poly
    }

    /// The polygon of an axis-aligned box.
    pub fn from_aabb(b: &Aabb) -> Self {
        ConvexPolygon {
            vertices: b.corners().to_vec(),
        }
    }

    /// The empty polygon.
    pub fn empty() -> Self {
        ConvexPolygon::default()
    }

    /// Vertices in CCW order (empty slice when the polygon is empty).
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// True when the polygon has no interior.
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3 || self.area() <= 0.0
    }

    fn is_convex_ccw(&self) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return true;
        }
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            if (b - a).cross(c - b) < -1e-9 {
                return false;
            }
        }
        true
    }

    /// Shoelace area (non-negative for CCW chains).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        if n < 3 {
            return 0.0;
        }
        let mut s = 0.0;
        for i in 0..n {
            s += self.vertices[i].cross(self.vertices[(i + 1) % n]);
        }
        s * 0.5
    }

    /// Centroid of the polygon (`None` when empty).
    pub fn centroid(&self) -> Option<Point> {
        let a = self.area();
        if a <= 0.0 {
            return None;
        }
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.cross(q);
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Some(Point::new(cx / (6.0 * a), cy / (6.0 * a)))
    }

    /// Inclusive point-in-polygon test (convexity assumed).
    ///
    /// The cross product scales with edge length × distance, so the
    /// boundary tolerance is normalized by both: a point within
    /// `1e-9 × extent` of the supporting line counts as inside, at any
    /// coordinate scale. This is deliberately at least as inclusive as
    /// [`ConvexPolygon::clip`]'s strict `<= 0` keep rule, so every vertex
    /// that survives a clip is reported contained.
    pub fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        if n < 3 {
            return false;
        }
        let ext = self.extent();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let e = b - a;
            if e.cross(p - a) < -1e-9 * e.norm() * ext {
                return false;
            }
        }
        true
    }

    /// Characteristic length of the polygon (bounding-box L∞ extent),
    /// used to scale boundary tolerances. Zero for empty polygons.
    fn extent(&self) -> f64 {
        let Some(bb) = self.bounding_box() else {
            return 0.0;
        };
        bb.width().max(bb.height())
    }

    /// Clips the polygon by a half-plane (Sutherland–Hodgman step).
    ///
    /// Returns the (possibly empty) intersection `self ∩ h`.
    pub fn clip(&self, h: &HalfPlane) -> ConvexPolygon {
        let n = self.vertices.len();
        if n == 0 {
            return ConvexPolygon::empty();
        }
        let mut out = Vec::with_capacity(n + 1);
        for i in 0..n {
            let cur = self.vertices[i];
            let nxt = self.vertices[(i + 1) % n];
            let cur_in = h.eval(cur) <= 0.0;
            let nxt_in = h.eval(nxt) <= 0.0;
            if cur_in {
                out.push(cur);
                if !nxt_in {
                    out.push(h.clip_point(cur, nxt));
                }
            } else if nxt_in {
                out.push(h.clip_point(cur, nxt));
            }
        }
        dedup_close(&mut out);
        if out.len() < 3 {
            return ConvexPolygon::empty();
        }
        ConvexPolygon { vertices: out }
    }

    /// Clips by many half-planes in sequence.
    pub fn clip_all<'a, I: IntoIterator<Item = &'a HalfPlane>>(&self, planes: I) -> ConvexPolygon {
        let mut poly = self.clone();
        for h in planes {
            if poly.vertices.is_empty() {
                break;
            }
            poly = poly.clip(h);
        }
        poly
    }

    /// Tight bounding box (`None` when empty).
    pub fn bounding_box(&self) -> Option<Aabb> {
        let first = *self.vertices.first()?;
        let mut bb = Aabb::new(first, first);
        for &v in &self.vertices[1..] {
            bb.min.x = bb.min.x.min(v.x);
            bb.min.y = bb.min.y.min(v.y);
            bb.max.x = bb.max.x.max(v.x);
            bb.max.y = bb.max.y.max(v.y);
        }
        Some(bb)
    }
}

/// Removes consecutive near-duplicate vertices introduced by clipping.
///
/// "Near" is relative to the chain's own extent (two vertices closer
/// than `1e-9 ×` the bounding-box span collapse), so micro-field cells
/// dedup as reliably as kilometer-scale ones and genuinely distinct
/// corners of large cells are never silently deleted.
fn dedup_close(v: &mut Vec<Point>) {
    if v.len() < 2 {
        return;
    }
    let mut lo = v[0];
    let mut hi = v[0];
    for &p in v.iter() {
        lo = Point::new(lo.x.min(p.x), lo.y.min(p.y));
        hi = Point::new(hi.x.max(p.x), hi.y.max(p.y));
    }
    let ext = (hi.x - lo.x).max(hi.y - lo.y);
    // For an all-coincident chain (ext == 0) any positive tolerance
    // collapses it to one vertex, which is what we want.
    let tol_sq = (1e-9 * ext).powi(2).max(f64::MIN_POSITIVE);
    let mut out: Vec<Point> = Vec::with_capacity(v.len());
    for &p in v.iter() {
        if out.last().is_none_or(|&q| q.dist_sq(p) > tol_sq) {
            out.push(p);
        }
    }
    while out.len() >= 2 && out.first().unwrap().dist_sq(*out.last().unwrap()) <= tol_sq {
        out.pop();
    }
    *v = out;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::from_aabb(&Aabb::square(1.0))
    }

    #[test]
    fn square_area_and_centroid() {
        let sq = unit_square();
        assert!((sq.area() - 1.0).abs() < 1e-12);
        let c = sq.centroid().unwrap();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bisector_keeps_a_side() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        let h = HalfPlane::bisector(a, b);
        assert!(h.contains(a));
        assert!(!h.contains(b));
        assert!(h.contains(Point::new(1.0, 5.0))); // on the boundary
    }

    #[test]
    #[should_panic(expected = "coincident")]
    fn bisector_of_coincident_points_panics() {
        let p = Point::new(1.0, 1.0);
        let _ = HalfPlane::bisector(p, p);
    }

    #[test]
    fn clip_square_by_diagonal() {
        let sq = unit_square();
        // Keep points with x + y <= 1 (lower-left triangle).
        let h = HalfPlane {
            normal: Point::new(1.0, 1.0),
            offset: 1.0,
        };
        let tri = sq.clip(&h);
        assert!((tri.area() - 0.5).abs() < 1e-12);
        assert!(tri.contains(Point::new(0.1, 0.1)));
        assert!(!tri.contains(Point::new(0.9, 0.9)));
    }

    #[test]
    fn clip_away_everything_yields_empty() {
        let sq = unit_square();
        let h = HalfPlane {
            normal: Point::new(1.0, 0.0),
            offset: -1.0, // x <= -1: nothing in the unit square
        };
        let e = sq.clip(&h);
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(e.centroid().is_none());
    }

    #[test]
    fn clip_keep_everything_is_identity_area() {
        let sq = unit_square();
        let h = HalfPlane {
            normal: Point::new(0.0, 1.0),
            offset: 5.0, // y <= 5 keeps all
        };
        let c = sq.clip(&h);
        assert!((c.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_clipping_produces_voronoi_quadrant() {
        // Node at (0.25, 0.25) with neighbors at (0.75, 0.25) and
        // (0.25, 0.75): its cell inside the unit square is the quarter
        // square [0, 0.5]².
        let sq = unit_square();
        let me = Point::new(0.25, 0.25);
        let planes = [
            HalfPlane::bisector(me, Point::new(0.75, 0.25)),
            HalfPlane::bisector(me, Point::new(0.25, 0.75)),
        ];
        let cell = sq.clip_all(planes.iter());
        assert!((cell.area() - 0.25).abs() < 1e-12);
        assert!(cell.contains(Point::new(0.4, 0.4)));
        assert!(!cell.contains(Point::new(0.6, 0.4)));
    }

    #[test]
    fn contains_is_boundary_inclusive() {
        let sq = unit_square();
        assert!(sq.contains(Point::new(0.0, 0.5)));
        assert!(sq.contains(Point::new(1.0, 1.0)));
        assert!(!sq.contains(Point::new(1.001, 0.5)));
    }

    #[test]
    fn bounding_box_of_clipped_polygon() {
        let sq = unit_square();
        let h = HalfPlane {
            normal: Point::new(1.0, 0.0),
            offset: 0.5, // x <= 0.5
        };
        let bb = sq.clip(&h).bounding_box().unwrap();
        assert!((bb.max.x - 0.5).abs() < 1e-12);
        assert_eq!(bb.min, Point::new(0.0, 0.0));
    }

    #[test]
    fn empty_polygon_queries() {
        let e = ConvexPolygon::empty();
        assert!(e.is_empty());
        assert!(!e.contains(Point::ORIGIN));
        assert!(e.bounding_box().is_none());
        assert_eq!(e.vertices().len(), 0);
    }

    #[test]
    fn clip_output_vertices_are_contained() {
        // Reconciliation with `clip`: every vertex kept or created by a
        // clip must be reported contained, at any coordinate scale.
        for scale in [1.0, 100.0, 10_000.0, 1e-4] {
            let me = Point::new(0.3 * scale, 0.4 * scale);
            let mut poly = ConvexPolygon::from_aabb(&Aabb::square(scale));
            for i in 0..10 {
                let ang = i as f64 * std::f64::consts::TAU / 10.0 + 0.3;
                let other = Point::new(
                    scale * (0.5 + 0.45 * ang.cos()),
                    scale * (0.5 + 0.45 * ang.sin()),
                );
                poly = poly.clip(&HalfPlane::bisector(me, other));
                for &v in poly.vertices() {
                    assert!(
                        poly.contains(v),
                        "clip vertex {v} not contained at scale {scale}"
                    );
                }
            }
            assert!(!poly.is_empty());
            assert!(poly.contains(me));
        }
    }

    #[test]
    fn contains_tolerance_is_scale_invariant() {
        for scale in [1.0, 100.0, 10_000.0, 1e-4] {
            let sq = ConvexPolygon::from_aabb(&Aabb::square(scale));
            // A relative 1e-12 excursion past the boundary is tolerated...
            assert!(
                sq.contains(Point::new(scale * (1.0 + 1e-12), 0.5 * scale)),
                "boundary point rejected at scale {scale}"
            );
            // ...a relative 1e-3 excursion is not.
            assert!(
                !sq.contains(Point::new(scale * 1.001, 0.5 * scale)),
                "outside point accepted at scale {scale}"
            );
        }
    }

    #[test]
    fn dedup_threshold_tracks_polygon_scale() {
        // Graze a corner at a relative 1e-6 offset: on a micro square the
        // two clip points are genuinely distinct corners and must survive.
        let micro = ConvexPolygon::from_aabb(&Aabb::square(1e-6));
        let graze = |off: f64| HalfPlane {
            normal: Point::new(-1.0, -1.0),
            offset: -off, // keeps x + y >= off
        };
        let clipped = micro.clip(&graze(1e-12));
        assert_eq!(
            clipped.vertices().len(),
            5,
            "micro-field corner cut lost vertices: {:?}",
            clipped.vertices()
        );
        // The same relative grazing cut on a kilometer-scale square
        // produces clip points within float noise of the corner; they
        // must collapse instead of surviving as phantom slivers.
        let big = ConvexPolygon::from_aabb(&Aabb::square(1e6));
        let clipped = big.clip(&graze(1e-8));
        assert_eq!(
            clipped.vertices().len(),
            4,
            "large-field noise vertices survived: {:?}",
            clipped.vertices()
        );
    }

    #[test]
    fn clip_preserves_convexity() {
        let sq = unit_square();
        let mut poly = sq;
        // Clip with a fan of bisectors against points on a circle.
        let me = Point::new(0.5, 0.5);
        for i in 0..8 {
            let ang = i as f64 * std::f64::consts::TAU / 8.0;
            let other = Point::new(0.5 + 0.8 * ang.cos(), 0.5 + 0.8 * ang.sin());
            poly = poly.clip(&HalfPlane::bisector(me, other));
        }
        assert!(!poly.is_empty());
        assert!(poly.contains(me));
        assert!(poly.area() < 1.0);
    }
}
