//! Local Voronoi cells (Definition 1 of the paper).
//!
//! In the Voronoi-based DECOR scheme every node `s_i` owns the region of
//! points that are (a) within its communication radius `rc` — it cannot
//! know about anything farther — and (b) at least as close to `s_i` as to
//! any 1-hop neighbor. The cell is computed by clipping the `rc`-box around
//! the node with the perpendicular bisector of every neighbor, then
//! intersecting with the field boundary.
//!
//! Two views are offered:
//! - [`local_voronoi_cell`] — the exact polygon (bisector clipping);
//! - [`owns_point`] — the predicate a real node would evaluate per point,
//!   used on the hot path (no polygon needed).

use crate::aabb::Aabb;
use crate::point::Point;
use crate::polygon::{ConvexPolygon, HalfPlane};

/// Computes the local Voronoi cell of `node` given its 1-hop `neighbors`,
/// clipped to `field` and to the `rc`-box around the node.
///
/// Neighbors coincident with `node` are ignored (they induce no bisector);
/// neighbors farther than `2·rc` cannot influence the cell and are skipped
/// as an optimization.
pub fn local_voronoi_cell(
    node: Point,
    neighbors: &[Point],
    field: &Aabb,
    rc: f64,
) -> ConvexPolygon {
    let rc_box = Aabb::new(
        Point::new(node.x - rc, node.y - rc),
        Point::new(node.x + rc, node.y + rc),
    );
    let start = match field.intersection(&rc_box) {
        Some(b) if b.area() > 0.0 => ConvexPolygon::from_aabb(&b),
        _ => return ConvexPolygon::empty(),
    };
    let planes: Vec<HalfPlane> = neighbors
        .iter()
        .filter(|&&nb| nb != node && node.dist_sq(nb) <= (2.0 * rc) * (2.0 * rc))
        .map(|&nb| HalfPlane::bisector(node, nb))
        .collect();
    start.clip_all(planes.iter())
}

/// The per-point ownership predicate: does `node` own `p` given its
/// 1-hop `neighbors` and communication radius `rc`?
///
/// `p` must be within `rc` of `node` and no neighbor may be strictly
/// closer to `p`. Ties (equidistant points) are owned by *both* nodes,
/// mirroring the paper's "smaller than" wording loosely; DECOR's schemes
/// break ties by node id at a higher level when exclusive ownership is
/// required.
pub fn owns_point(node: Point, p: Point, neighbors: &[Point], rc: f64) -> bool {
    let d = node.dist_sq(p);
    if d > rc * rc {
        return false;
    }
    neighbors.iter().all(|&nb| nb.dist_sq(p) >= d)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIELD: Aabb = Aabb {
        min: Point { x: 0.0, y: 0.0 },
        max: Point { x: 100.0, y: 100.0 },
    };

    #[test]
    fn isolated_node_owns_its_rc_box() {
        let node = Point::new(50.0, 50.0);
        let cell = local_voronoi_cell(node, &[], &FIELD, 8.0);
        assert!((cell.area() - 256.0).abs() < 1e-9); // (2*8)^2
        assert!(cell.contains(node));
    }

    #[test]
    fn cell_clips_to_field_boundary() {
        let node = Point::new(2.0, 2.0);
        let cell = local_voronoi_cell(node, &[], &FIELD, 8.0);
        // rc-box is [-6,10]² clipped to [0,10]² => area 100.
        assert!((cell.area() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn one_neighbor_halves_the_cell() {
        let node = Point::new(50.0, 50.0);
        let nb = Point::new(58.0, 50.0);
        let cell = local_voronoi_cell(node, &[nb], &FIELD, 8.0);
        // Bisector at x = 54 cuts the [42,58]×[42,58] box: width 12 of 16.
        assert!((cell.area() - 12.0 * 16.0).abs() < 1e-9);
        assert!(cell.contains(Point::new(53.0, 50.0)));
        assert!(!cell.contains(Point::new(55.0, 50.0)));
    }

    #[test]
    fn surrounded_node_gets_small_cell() {
        let node = Point::new(50.0, 50.0);
        let mut nbs = Vec::new();
        for i in 0..6 {
            let a = i as f64 * std::f64::consts::TAU / 6.0;
            nbs.push(Point::new(50.0 + 4.0 * a.cos(), 50.0 + 4.0 * a.sin()));
        }
        let cell = local_voronoi_cell(node, &nbs, &FIELD, 8.0);
        assert!(!cell.is_empty());
        assert!(cell.contains(node));
        // Hexagonal cell with apothem 2: area 8√3 ≈ 13.86, well under box.
        assert!(cell.area() < 20.0);
    }

    #[test]
    fn coincident_neighbor_is_ignored() {
        let node = Point::new(50.0, 50.0);
        let cell = local_voronoi_cell(node, &[node], &FIELD, 8.0);
        assert!((cell.area() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn far_neighbor_does_not_affect_cell() {
        let node = Point::new(50.0, 50.0);
        let near = local_voronoi_cell(node, &[], &FIELD, 8.0);
        let far = local_voronoi_cell(node, &[Point::new(90.0, 90.0)], &FIELD, 8.0);
        assert!((near.area() - far.area()).abs() < 1e-9);
    }

    #[test]
    fn ownership_predicate_matches_cell_polygon() {
        let node = Point::new(40.0, 60.0);
        let nbs = [
            Point::new(46.0, 60.0),
            Point::new(40.0, 52.0),
            Point::new(35.0, 65.0),
        ];
        let rc = 8.0;
        let cell = local_voronoi_cell(node, &nbs, &FIELD, rc);
        // Sample a grid; the predicate uses the rc-disk while the polygon
        // uses the rc-box, so restrict sampling to the disk.
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(32.0 + 16.0 * i as f64 / 39.0, 52.0 + 16.0 * j as f64 / 39.0);
                if node.dist(p) > rc - 1e-9 || !FIELD.contains(p) {
                    continue;
                }
                // Skip points near cell boundaries where float ties differ.
                let margin = nbs
                    .iter()
                    .map(|&nb| (nb.dist_sq(p) - node.dist_sq(p)).abs())
                    .fold(f64::INFINITY, f64::min);
                if margin < 1e-6 {
                    continue;
                }
                assert_eq!(
                    owns_point(node, p, &nbs, rc),
                    cell.contains(p),
                    "disagreement at {p}"
                );
            }
        }
    }

    #[test]
    fn ownership_respects_rc_limit() {
        let node = Point::new(50.0, 50.0);
        assert!(owns_point(node, Point::new(57.0, 50.0), &[], 8.0));
        assert!(!owns_point(node, Point::new(59.0, 50.0), &[], 8.0));
    }

    #[test]
    fn tie_points_are_owned_by_both() {
        let a = Point::new(40.0, 50.0);
        let b = Point::new(60.0, 50.0);
        let mid = Point::new(50.0, 50.0);
        assert!(owns_point(a, mid, &[b], 15.0));
        assert!(owns_point(b, mid, &[a], 15.0));
    }

    #[test]
    fn node_outside_field_gets_clipped_or_empty_cell() {
        let node = Point::new(-20.0, -20.0);
        let cell = local_voronoi_cell(node, &[], &FIELD, 8.0);
        assert!(cell.is_empty());
    }
}
