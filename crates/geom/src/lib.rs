//! Geometry substrate for the DECOR reproduction.
//!
//! The DECOR paper (Drougas & Kalogeraki, IPDPS 2007) reduces sensor-network
//! coverage restoration to planar geometry: sensors are disks of radius
//! `rs`, the monitored field is an axis-aligned rectangle, cells are either
//! grid rectangles or local Voronoi regions, and connectivity is a unit-disk
//! graph over the communication radius `rc`. This crate provides those
//! primitives:
//!
//! - [`Point`] / [`Aabb`] / [`Disk`] — basic planar types.
//! - [`GridIndex`] — a uniform hash-grid spatial index answering
//!   radius queries in O(1) expected time; the workhorse behind coverage
//!   counting and benefit evaluation.
//! - [`FrozenGridIndex`] — the read-only CSR twin of [`GridIndex`] for
//!   point sets that never change (the coverage approximation points):
//!   contiguous struct-of-arrays slabs, precomputed bucket neighborhoods,
//!   AABB prefilters, and an early-exit `covers_at_least` k-coverage
//!   predicate.
//! - [`ConvexPolygon`] and half-plane clipping — exact local Voronoi cells.
//! - [`local_voronoi_cell`] — the cell of Definition 1 in the paper: the
//!   region of points closer to a node than to any of its 1-hop neighbors.
//! - [`UnitDiskGraph`] — communication graph, BFS connectivity and
//!   Menger-style vertex k-connectivity checks (for the paper's corollary
//!   that `rc >= 2*rs` plus k-coverage implies k-connectivity).
//!
//! All coordinates are `f64`. Determinism matters for the reproduction, so
//! no operation here consults a random source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aabb;
pub mod delaunay;
pub mod disk;
pub mod frozen_index;
pub mod graph;
pub mod grid_index;
pub mod holes;
pub mod paths;
pub mod point;
pub mod polygon;
pub mod voronoi;

pub use aabb::Aabb;
pub use delaunay::{cell_area_cv, Delaunay};
pub use disk::Disk;
pub use frozen_index::FrozenGridIndex;
pub use graph::UnitDiskGraph;
pub use grid_index::{query_bucket_edge, GridIndex};
pub use holes::{detect_holes, disk_polygon_overlap, Hole, HoleReport};
pub use paths::{best_support_path, maximal_breach_path, CrossingPath};
pub use point::Point;
pub use polygon::{ConvexPolygon, HalfPlane};
pub use voronoi::local_voronoi_cell;
