//! Exact coverage-hole detection from the Delaunay/Voronoi structure.
//!
//! The paper's schemes certify coverage by *sampling* approximation
//! points, so their residual error is invisible without a ground truth.
//! This module computes the uncovered region **exactly** (for uniform
//! sensing radius `rs` and 1-coverage) from the same Delaunay machinery
//! that already backs the diagnostics:
//!
//! 1. Every point of the field is closest to some sensor, so the
//!    uncovered set decomposes per Voronoi cell as
//!    `cell(i) ∩ field − disk(site_i, rs)` — an exact convex-polygon ∖
//!    disk remainder.
//! 2. Distance-to-site is convex over a convex cell, so a cell has an
//!    uncovered remainder **iff** one of its (clipped) vertices is
//!    farther than `rs` from the site. Interior cell vertices are the
//!    circumcenters of incident Delaunay triangles — the classical
//!    "uncovered Voronoi vertex / empty triangle" witness of the
//!    hole-detection literature (arXiv:2005.02492, arXiv:1203.3772).
//! 3. Two adjacent remainders belong to the same hole **iff** their
//!    shared Voronoi edge carries an uncovered point; distance along the
//!    edge is convex too, so only the edge's endpoints need testing.
//!
//! Detection is output-sensitive in practice: a triangle-circumcenter
//! sweep over a [`FrozenGridIndex`] of the sensors (is the circumcenter
//! covered by the disks of the triangle's corners — or any nearby
//! sensor?) marks the few *suspect* cells, and the exact polygon work
//! runs only on those plus the hull/boundary cells. On an
//! almost-fully-covered lattice this is O(hull + damage), not O(n).
//!
//! Caveat on hole *identity*: a single cell whose remainder is itself
//! disconnected (the site's disk cuts a long thin cell in two) is kept
//! as one atom, so two touching-at-that-cell components may be reported
//! merged. Areas, membership and witnesses remain exact; only the
//! component count is conservative — harmless for healing, which
//! re-detects after every placement.

use crate::aabb::Aabb;
use crate::delaunay::Delaunay;
use crate::frozen_index::FrozenGridIndex;
use crate::point::Point;
use crate::polygon::{ConvexPolygon, HalfPlane};
use std::collections::{BTreeMap, BTreeSet};

/// One connected(-up-to-cell-atomicity) uncovered region.
#[derive(Clone, Debug)]
pub struct Hole {
    /// Exact area of the region.
    pub area: f64,
    /// Area-weighted centroid of the region (may fall outside a
    /// non-convex region; use [`Hole::deepest`] for a guaranteed-inside
    /// placement candidate).
    pub centroid: Point,
    /// The farthest-witness point: the point of the region maximizing
    /// distance to its nearest sensor (always a Voronoi/boundary
    /// vertex, hence inside the field). `f64::INFINITY` depth with the
    /// field corner witness when there are no sensors at all.
    pub deepest: Point,
    /// Distance from `deepest` to its nearest sensor (`> rs`).
    pub depth: f64,
    /// Input sensor indices whose Voronoi remainders compose the hole,
    /// ascending. Empty only for the no-sensors whole-field hole.
    pub cells: Vec<usize>,
}

/// The result of [`detect_holes`]: every hole plus the exact total
/// uncovered area.
#[derive(Clone, Debug, Default)]
pub struct HoleReport {
    holes: Vec<Hole>,
    total_area: f64,
    /// Original sensor index → index into `holes`, for point location.
    cell_hole: BTreeMap<usize, usize>,
}

impl HoleReport {
    /// Holes sorted by area descending (ties: lowest member sensor
    /// index first). Float-noise slivers below `1e-12 ×` the field area
    /// are dropped from this list but still counted in
    /// [`HoleReport::total_area`].
    pub fn holes(&self) -> &[Hole] {
        &self.holes
    }

    /// Exact total uncovered area, including sub-sliver noise.
    pub fn total_area(&self) -> f64 {
        self.total_area
    }

    /// True when the field is fully 1-covered (no holes).
    pub fn is_clear(&self) -> bool {
        self.holes.is_empty()
    }

    /// The hole that sensor `i`'s Voronoi cell contributes to, if any.
    /// An uncovered point's hole is `hole_of_cell(nearest sensor)`.
    pub fn hole_of_cell(&self, i: usize) -> Option<usize> {
        self.cell_hole.get(&i).copied()
    }
}

/// Circumcenter of triangle `(a, b, c)` (callers must not pass a
/// degenerate triangle; the triangulation filters slivers).
fn circumcenter(a: Point, b: Point, c: Point) -> Point {
    let ab = b - a;
    let ac = c - a;
    let d = 2.0 * ab.cross(ac);
    let ux = (ac.y * ab.norm_sq() - ab.y * ac.norm_sq()) / d;
    let uy = (ab.x * ac.norm_sq() - ac.x * ab.norm_sq()) / d;
    a + Point::new(ux, uy)
}

/// Exact area and first moment (`∫x dA`, `∫y dA`) of `poly ∩ disk(c, r)`
/// by circular-segment decomposition: each polygon edge contributes the
/// signed triangle-or-sector piece of the fan around `c`, split at its
/// circle crossings. Exact for any convex CCW polygon (the fan signs
/// cancel outside the intersection).
pub fn disk_polygon_overlap(poly: &ConvexPolygon, c: Point, r: f64) -> (f64, Point) {
    let verts = poly.vertices();
    let n = verts.len();
    if n < 3 || r <= 0.0 {
        return (0.0, Point::ORIGIN);
    }
    let rr = r * r;
    let mut area = 0.0;
    let mut mx = 0.0;
    let mut my = 0.0;
    for i in 0..n {
        let a = verts[i] - c;
        let b = verts[(i + 1) % n] - c;
        let d = b - a;
        // Circle crossings of the edge, as parameters in (0, 1).
        let qa = d.norm_sq();
        let mut ts = [0.0f64, 1.0, 1.0, 1.0];
        let mut nt = 1;
        if qa > 0.0 {
            let qb = 2.0 * a.dot(d);
            let qc = a.norm_sq() - rr;
            let disc = qb * qb - 4.0 * qa * qc;
            if disc > 0.0 {
                let sq = disc.sqrt();
                for t in [(-qb - sq) / (2.0 * qa), (-qb + sq) / (2.0 * qa)] {
                    if t > 0.0 && t < 1.0 {
                        ts[nt] = t;
                        nt += 1;
                    }
                }
            }
        }
        ts[nt] = 1.0;
        nt += 1;
        for w in 0..nt - 1 {
            let (t0, t1) = (ts[w], ts[w + 1]);
            if t1 <= t0 {
                continue;
            }
            let p = a + d * t0;
            let q = a + d * t1;
            let mid = a + d * (0.5 * (t0 + t1));
            if mid.norm_sq() <= rr {
                // Sub-segment inside the disk: signed triangle (c, p, q).
                let s = 0.5 * p.cross(q);
                area += s;
                mx += s * (p.x + q.x) / 3.0;
                my += s * (p.y + q.y) / 3.0;
            } else {
                // Sub-segment outside: signed circular sector between
                // the directions of p and q (each ray from c meets the
                // sub-segment beyond radius r).
                let ang = p.cross(q).atan2(p.dot(q));
                if ang != 0.0 {
                    let s = 0.5 * rr * ang;
                    area += s;
                    // Sector centroid: (4 r sin(θ/2)) / (3 θ) along the
                    // angle bisector; sign-safe since sin(θ/2)/θ > 0.
                    let dist = 4.0 * r * (0.5 * ang).sin() / (3.0 * ang);
                    let bis = p / p.norm() + q / q.norm();
                    let bl = bis.norm();
                    if bl > 0.0 {
                        mx += s * dist * bis.x / bl;
                        my += s * dist * bis.y / bl;
                    }
                }
            }
        }
    }
    let area = area.max(0.0);
    (area, Point::new(mx + c.x * area, my + c.y * area))
}

/// Per-cell uncovered remainder, before aggregation.
struct Remainder {
    area: f64,
    /// First moment of the remainder.
    moment: Point,
    deepest: Point,
    depth_sq: f64,
}

/// Detects every 1-coverage hole of `sensors` (uniform sensing radius
/// `rs`) within `field`, exactly. See the module docs for the method
/// and the one caveat on component identity.
pub fn detect_holes(sensors: &[Point], rs: f64, field: &Aabb) -> HoleReport {
    assert!(rs > 0.0, "sensing radius must be positive");
    // Collapse coincident sensors; twins share the first twin's cell.
    let mut seen: BTreeSet<(u64, u64)> = BTreeSet::new();
    let mut distinct: Vec<Point> = Vec::new();
    let mut orig_idx: Vec<usize> = Vec::new();
    for (i, &p) in sensors.iter().enumerate() {
        if seen.insert((p.x.to_bits(), p.y.to_bits())) {
            distinct.push(p);
            orig_idx.push(i);
        }
    }
    if distinct.is_empty() {
        let poly = ConvexPolygon::from_aabb(field);
        let hole = Hole {
            area: poly.area(),
            centroid: field.center(),
            deepest: field.corners()[0],
            depth: f64::INFINITY,
            cells: Vec::new(),
        };
        return HoleReport {
            total_area: hole.area,
            holes: vec![hole],
            cell_hole: BTreeMap::new(),
        };
    }
    let n = distinct.len();
    let d = Delaunay::build(&distinct);
    let rs_sq = rs * rs;

    // Suspect prefilter: only cells that can possibly have an uncovered
    // remainder get the exact polygon treatment. An interior cell's
    // vertices are exactly the circumcenters of its incident triangles,
    // so if every incident circumcenter lies in-field and is covered by
    // the corner disks (or any nearby sensor — the frozen index answers
    // both at once), the cell is fully covered. Hull and boundary-
    // clipped cells are always suspect.
    let mut suspect = vec![false; n];
    if d.is_degenerate() {
        suspect.fill(true);
    } else {
        let idx = FrozenGridIndex::from_points(
            field.min,
            (field.width(), field.height()),
            crate::grid_index::query_bucket_edge(rs, field.width().min(field.height()), n),
            distinct.iter().copied().enumerate(),
        );
        let mut edge_count: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for t in d.triangles() {
            let cc = circumcenter(distinct[t[0]], distinct[t[1]], distinct[t[2]]);
            if !field.contains(cc) || !idx.covers_at_least(cc, rs, 1) {
                for &v in t {
                    suspect[v] = true;
                }
            }
            for e in [(t[0], t[1]), (t[1], t[2]), (t[2], t[0])] {
                *edge_count.entry((e.0.min(e.1), e.0.max(e.1))).or_insert(0) += 1;
            }
        }
        // Hull edges bound exactly one triangle; their cells reach the
        // field boundary, where vertices are not circumcenters.
        for (&(u, v), &cnt) in &edge_count {
            if cnt == 1 {
                suspect[u] = true;
                suspect[v] = true;
            }
        }
    }

    // Exact per-cell remainders on the suspect set.
    let mut remainders: Vec<Option<Remainder>> = Vec::with_capacity(n);
    for i in 0..n {
        if !suspect[i] {
            remainders.push(None);
            continue;
        }
        let cell = d.voronoi_cell(i, field);
        if cell.is_empty() {
            remainders.push(None);
            continue;
        }
        let site = distinct[i];
        let (mut deepest, mut depth_sq) = (site, 0.0f64);
        for &v in cell.vertices() {
            let ds = v.dist_sq(site);
            if ds > depth_sq {
                depth_sq = ds;
                deepest = v;
            }
        }
        if depth_sq <= rs_sq {
            remainders.push(None); // farthest vertex covered ⇒ cell covered
            continue;
        }
        let cell_area = cell.area();
        let cell_moment = cell.centroid().map_or(Point::ORIGIN, |c| c * cell_area);
        let (cov_area, cov_moment) = disk_polygon_overlap(&cell, site, rs);
        remainders.push(Some(Remainder {
            area: (cell_area - cov_area).max(0.0),
            moment: cell_moment - cov_moment,
            deepest,
            depth_sq,
        }));
    }

    // Union-find over cells joined by an uncovered shared Voronoi edge.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let pairs: Vec<(usize, usize)> = if d.is_degenerate() {
        (0..n)
            .flat_map(|i| (i + 1..n).map(move |j| (i, j)))
            .collect()
    } else {
        d.edges().into_iter().collect()
    };
    for (i, j) in pairs {
        if remainders[i].is_none() || remainders[j].is_none() {
            continue;
        }
        if shared_edge_uncovered(&d, &distinct, i, j, field, rs_sq) {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri.max(rj)] = ri.min(rj);
            }
        }
    }

    // Aggregate components into holes.
    let mut comps: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut total_area = 0.0;
    for (i, r) in remainders.iter().enumerate() {
        if let Some(r) = r {
            total_area += r.area;
            comps.entry(find(&mut parent, i)).or_default().push(i);
        }
    }
    let min_area = 1e-12 * field.area();
    let mut holes: Vec<Hole> = Vec::with_capacity(comps.len());
    for members in comps.into_values() {
        let mut area = 0.0;
        let mut moment = Point::ORIGIN;
        let (mut deepest, mut depth_sq) = (Point::ORIGIN, 0.0f64);
        for &i in &members {
            let r = remainders[i].as_ref().unwrap();
            area += r.area;
            moment = moment + r.moment;
            if r.depth_sq > depth_sq {
                depth_sq = r.depth_sq;
                deepest = r.deepest;
            }
        }
        if area <= min_area {
            continue; // float-noise sliver
        }
        holes.push(Hole {
            area,
            centroid: moment / area,
            deepest,
            depth: depth_sq.sqrt(),
            cells: members.iter().map(|&i| orig_idx[i]).collect(),
        });
    }
    holes.sort_by(|a, b| {
        b.area
            .total_cmp(&a.area)
            .then_with(|| a.cells[0].cmp(&b.cells[0]))
    });
    let mut cell_hole = BTreeMap::new();
    for (h, hole) in holes.iter().enumerate() {
        for &c in &hole.cells {
            cell_hole.insert(c, h);
        }
    }
    HoleReport {
        holes,
        total_area,
        cell_hole,
    }
}

/// Does the shared Voronoi edge of cells `i` and `j` carry an uncovered
/// point? The edge is the bisector line of the two sites clipped to
/// cell `i` (parametrically, against the field and the bisectors of
/// `i`'s other neighbors); distance-to-site is convex along it, so only
/// the two endpoints need testing.
fn shared_edge_uncovered(
    d: &Delaunay,
    pts: &[Point],
    i: usize,
    j: usize,
    field: &Aabb,
    rs_sq: f64,
) -> bool {
    let a = pts[i];
    let b = pts[j];
    let m = a.midpoint(b);
    let dir = (b - a).perp();
    let mut t0 = f64::NEG_INFINITY;
    let mut t1 = f64::INFINITY;
    let mut clip = |h: HalfPlane| -> bool {
        let num = h.eval(m);
        let den = h.normal.dot(dir);
        if den == 0.0 {
            return num <= 0.0; // parallel: edge survives iff inside
        }
        let t = -num / den;
        if den > 0.0 {
            t1 = t1.min(t);
        } else {
            t0 = t0.max(t);
        }
        true
    };
    let field_planes = [
        HalfPlane {
            normal: Point::new(1.0, 0.0),
            offset: field.max.x,
        },
        HalfPlane {
            normal: Point::new(-1.0, 0.0),
            offset: -field.min.x,
        },
        HalfPlane {
            normal: Point::new(0.0, 1.0),
            offset: field.max.y,
        },
        HalfPlane {
            normal: Point::new(0.0, -1.0),
            offset: -field.min.y,
        },
    ];
    for h in field_planes {
        if !clip(h) {
            return false;
        }
    }
    for l in d.neighbors(i) {
        if l == j || pts[l] == a {
            continue;
        }
        if !clip(HalfPlane::bisector(a, pts[l])) {
            return false;
        }
    }
    if t0 > t1 {
        return false; // cells are not actually adjacent
    }
    let e0 = m + dir * t0;
    let e1 = m + dir * t1;
    e0.dist_sq(a) > rs_sq || e1.dist_sq(a) > rs_sq
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Aabb {
        Aabb::square(100.0)
    }

    /// Brute-force uncovered area by dense grid sampling.
    fn sampled_uncovered_area(sensors: &[Point], rs: f64, field: &Aabb, grid: usize) -> f64 {
        let mut uncovered = 0usize;
        let dx = field.width() / grid as f64;
        let dy = field.height() / grid as f64;
        for gy in 0..grid {
            for gx in 0..grid {
                let q = Point::new(
                    field.min.x + (gx as f64 + 0.5) * dx,
                    field.min.y + (gy as f64 + 0.5) * dy,
                );
                if !sensors.iter().any(|s| q.in_disk(*s, rs)) {
                    uncovered += 1;
                }
            }
        }
        uncovered as f64 * dx * dy
    }

    #[test]
    fn no_sensors_is_one_whole_field_hole() {
        let r = detect_holes(&[], 5.0, &field());
        assert_eq!(r.holes().len(), 1);
        assert!((r.holes()[0].area - 10_000.0).abs() < 1e-9);
        assert!((r.total_area() - 10_000.0).abs() < 1e-9);
        assert_eq!(r.holes()[0].depth, f64::INFINITY);
        assert!(!r.is_clear());
    }

    #[test]
    fn fully_covered_lattice_is_clear() {
        // 5-spacing lattice with rs = 4 > 5/sqrt(2): full 1-coverage.
        let mut sensors = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                sensors.push(Point::new(2.5 + 5.0 * i as f64, 2.5 + 5.0 * j as f64));
            }
        }
        let r = detect_holes(&sensors, 4.0, &field());
        assert!(r.is_clear(), "holes: {:?}", r.holes().len());
        assert!(r.total_area() < 1e-9 * 10_000.0);
    }

    #[test]
    fn single_missing_lattice_site_is_one_hole() {
        let mut sensors = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                if (i, j) == (10, 10) {
                    continue;
                }
                sensors.push(Point::new(2.5 + 5.0 * i as f64, 2.5 + 5.0 * j as f64));
            }
        }
        let rs = 3.6; // lattice covers at 5/sqrt(2) ≈ 3.54; gap at the void
        let r = detect_holes(&sensors, rs, &field());
        assert_eq!(r.holes().len(), 1, "exactly one hole at the void");
        let h = &r.holes()[0];
        let void = Point::new(52.5, 52.5);
        assert!(h.centroid.dist(void) < 1.0, "centroid {:?}", h.centroid);
        assert!(h.deepest.dist(void) < 1.0, "deepest {:?}", h.deepest);
        assert!(h.depth > rs);
        let sampled = sampled_uncovered_area(&sensors, rs, &field(), 1000);
        assert!(
            (r.total_area() - sampled).abs() < 0.05 * sampled.max(1.0),
            "exact {} vs sampled {}",
            r.total_area(),
            sampled
        );
    }

    #[test]
    fn two_far_voids_are_two_holes() {
        let mut sensors = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                if (i, j) == (4, 4) || (i, j) == (15, 15) {
                    continue;
                }
                sensors.push(Point::new(2.5 + 5.0 * i as f64, 2.5 + 5.0 * j as f64));
            }
        }
        let r = detect_holes(&sensors, 3.6, &field());
        assert_eq!(r.holes().len(), 2);
        // Equal-size voids: both holes have (near) the same area.
        let (a0, a1) = (r.holes()[0].area, r.holes()[1].area);
        assert!((a0 - a1).abs() < 1e-6 * a0, "{a0} vs {a1}");
        // hole_of_cell maps a lattice neighbor of each void to its hole.
        for h in r.holes() {
            for &c in &h.cells {
                assert_eq!(
                    r.hole_of_cell(c),
                    Some(r.holes().iter().position(|x| std::ptr::eq(x, h)).unwrap())
                );
            }
        }
    }

    #[test]
    fn exact_area_matches_dense_sampling_on_scatter() {
        // Deterministic LCG scatter, deliberately sparse so real holes
        // of many cells exist; exact total area must agree with a dense
        // sampling estimate within the sampling resolution.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let sensors: Vec<Point> = (0..40)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        for rs in [6.0, 10.0, 16.0] {
            let r = detect_holes(&sensors, rs, &field());
            let sampled = sampled_uncovered_area(&sensors, rs, &field(), 1200);
            let tol = 0.02 * 10_000.0f64.max(sampled); // perimeter × spacing slack
            assert!(
                (r.total_area() - sampled).abs() < tol,
                "rs={rs}: exact {} vs sampled {}",
                r.total_area(),
                sampled
            );
            // Every hole's deepest witness really is uncovered, by
            // brute force, and depth matches its nearest-sensor gap.
            for h in r.holes() {
                let nd = sensors
                    .iter()
                    .map(|s| s.dist(h.deepest))
                    .fold(f64::INFINITY, f64::min);
                assert!(nd > rs, "witness covered: gap {nd} <= rs {rs}");
                assert!((nd - h.depth).abs() < 1e-6, "depth {} vs {}", h.depth, nd);
            }
        }
    }

    #[test]
    fn duplicate_and_collinear_sensors_are_handled() {
        // Duplicates collapse to one cell; collinear sites take the
        // degenerate all-pairs path and stay exact.
        let sensors = vec![
            Point::new(20.0, 50.0),
            Point::new(20.0, 50.0),
            Point::new(50.0, 50.0),
            Point::new(80.0, 50.0),
        ];
        let rs = 12.0;
        let r = detect_holes(&sensors, rs, &field());
        let sampled = sampled_uncovered_area(&sensors, rs, &field(), 1000);
        assert!(
            (r.total_area() - sampled).abs() < 0.02 * sampled,
            "exact {} vs sampled {}",
            r.total_area(),
            sampled
        );
        // The uncovered region wraps around all three disks: one hole.
        assert_eq!(r.holes().len(), 1);
    }

    #[test]
    fn detection_is_scale_invariant() {
        let sensors = vec![
            Point::new(25.0, 25.0),
            Point::new(75.0, 25.0),
            Point::new(50.0, 75.0),
        ];
        let base = detect_holes(&sensors, 20.0, &field());
        for s in [100.0, 10_000.0, 1e-4] {
            let scaled: Vec<Point> = sensors.iter().map(|p| *p * s).collect();
            let f = Aabb::new(Point::ORIGIN, Point::new(100.0 * s, 100.0 * s));
            let r = detect_holes(&scaled, 20.0 * s, &f);
            assert_eq!(r.holes().len(), base.holes().len(), "scale {s}");
            for (h, hb) in r.holes().iter().zip(base.holes()) {
                assert!(
                    (h.area / (s * s) - hb.area).abs() < 1e-6 * hb.area,
                    "scale {s}: area {} vs base {}",
                    h.area / (s * s),
                    hb.area
                );
                assert_eq!(h.cells, hb.cells, "scale {s}");
            }
        }
    }

    #[test]
    fn disk_polygon_overlap_exact_cases() {
        let sq = ConvexPolygon::from_aabb(&Aabb::square(10.0));
        // Disk fully inside the polygon: π r².
        let (a, m) = disk_polygon_overlap(&sq, Point::new(5.0, 5.0), 2.0);
        assert!((a - std::f64::consts::PI * 4.0).abs() < 1e-9, "{a}");
        let c = m / a;
        assert!(c.dist(Point::new(5.0, 5.0)) < 1e-9, "{c:?}");
        // Polygon fully inside the disk: polygon area and centroid.
        let (a, m) = disk_polygon_overlap(&sq, Point::new(5.0, 5.0), 50.0);
        assert!((a - 100.0).abs() < 1e-9, "{a}");
        assert!((m / a).dist(Point::new(5.0, 5.0)) < 1e-9);
        // Disk centered on an edge midpoint: half disk.
        let (a, m) = disk_polygon_overlap(&sq, Point::new(0.0, 5.0), 3.0);
        assert!((a - std::f64::consts::PI * 4.5).abs() < 1e-9, "{a}");
        // Half-disk centroid: 4r/(3π) into the polygon.
        let cx = 4.0 * 3.0 / (3.0 * std::f64::consts::PI);
        assert!((m / a).dist(Point::new(cx, 5.0)) < 1e-9);
        // Disk entirely outside: zero.
        let (a, _) = disk_polygon_overlap(&sq, Point::new(20.0, 5.0), 3.0);
        assert!(a.abs() < 1e-12);
    }

    #[test]
    fn disk_polygon_overlap_matches_sampling_on_offset_disks() {
        // General-position overlaps validated against dense sampling.
        let tri = ConvexPolygon::from_ccw(vec![
            Point::new(1.0, 1.0),
            Point::new(9.0, 2.0),
            Point::new(4.0, 8.0),
        ]);
        for (c, r) in [
            (Point::new(3.0, 3.0), 2.5),
            (Point::new(0.0, 0.0), 4.0),
            (Point::new(9.0, 8.0), 3.0),
            (Point::new(5.0, 4.0), 1.0),
        ] {
            let (a, m) = disk_polygon_overlap(&tri, c, r);
            // Sample the bounding box of the disk.
            let grid = 2000;
            let (mut hits, mut sx, mut sy) = (0u64, 0.0, 0.0);
            let step = 2.0 * r / grid as f64;
            for gy in 0..grid {
                for gx in 0..grid {
                    let q = Point::new(
                        c.x - r + (gx as f64 + 0.5) * step,
                        c.y - r + (gy as f64 + 0.5) * step,
                    );
                    if q.dist_sq(c) <= r * r && tri.contains(q) {
                        hits += 1;
                        sx += q.x;
                        sy += q.y;
                    }
                }
            }
            let sa = hits as f64 * step * step;
            assert!((a - sa).abs() < 0.01 * sa.max(0.5), "area {a} vs {sa}");
            if hits > 0 && a > 0.1 {
                let sc = Point::new(sx / hits as f64, sy / hits as f64);
                assert!(
                    (m / a).dist(sc) < 0.02 * r,
                    "centroid {:?} vs {sc:?}",
                    m / a
                );
            }
        }
    }
}
