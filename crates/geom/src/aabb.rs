//! Axis-aligned bounding boxes: the monitored field and grid cells.

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// An axis-aligned rectangle `[min.x, max.x] x [min.y, max.y]`.
///
/// Used for the monitored field (the paper's `100 x 100` area) and for the
/// fixed cells of the grid-based DECOR scheme (`5 x 5` and `10 x 10`).
/// Containment is inclusive on all edges, so adjacent grid cells share their
/// boundary; cell *ownership* of boundary points is disambiguated by the
/// partitioning code in `decor-core`, not here.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Aabb {
    /// Corner with the smallest coordinates.
    pub min: Point,
    /// Corner with the largest coordinates.
    pub max: Point,
}

impl Aabb {
    /// Creates a box from two opposite corners (in any order).
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// The square `[0, side] x [0, side]` — the paper's field with
    /// `side = 100`.
    pub fn square(side: f64) -> Self {
        Aabb::new(Point::ORIGIN, Point::new(side, side))
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Inclusive containment test.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when the two boxes overlap (shared edges count as overlap).
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        if !self.intersects(other) {
            return None;
        }
        Some(Aabb {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// The point of the box closest to `p` (i.e. `p` clamped to the box).
    #[inline]
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Distance from `p` to the box (zero when inside).
    #[inline]
    pub fn dist_to(&self, p: Point) -> f64 {
        self.clamp(p).dist(p)
    }

    /// Expands every side outward by `margin` (inward if negative).
    pub fn inflate(&self, margin: f64) -> Aabb {
        Aabb::new(
            Point::new(self.min.x - margin, self.min.y - margin),
            Point::new(self.max.x + margin, self.max.y + margin),
        )
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Maps a unit-square point `(u, v) ∈ [0,1]²` into this box.
    ///
    /// This is how low-discrepancy sequences (generated on the unit square)
    /// are stretched over the monitored field.
    #[inline]
    pub fn from_unit(&self, u: f64, v: f64) -> Point {
        Point::new(
            self.min.x + u * self.width(),
            self.min.y + v * self.height(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corner_order() {
        let b = Aabb::new(Point::new(5.0, -1.0), Point::new(1.0, 3.0));
        assert_eq!(b.min, Point::new(1.0, -1.0));
        assert_eq!(b.max, Point::new(5.0, 3.0));
    }

    #[test]
    fn square_dimensions() {
        let f = Aabb::square(100.0);
        assert_eq!(f.width(), 100.0);
        assert_eq!(f.height(), 100.0);
        assert_eq!(f.area(), 10_000.0);
        assert_eq!(f.center(), Point::new(50.0, 50.0));
    }

    #[test]
    fn containment_is_inclusive() {
        let b = Aabb::square(10.0);
        assert!(b.contains(Point::new(0.0, 0.0)));
        assert!(b.contains(Point::new(10.0, 10.0)));
        assert!(b.contains(Point::new(5.0, 5.0)));
        assert!(!b.contains(Point::new(10.0001, 5.0)));
        assert!(!b.contains(Point::new(-0.0001, 5.0)));
    }

    #[test]
    fn intersection_of_overlapping_boxes() {
        let a = Aabb::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let b = Aabb::new(Point::new(2.0, 1.0), Point::new(6.0, 3.0));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i, Aabb::new(Point::new(2.0, 1.0), Point::new(4.0, 3.0)));
        assert!(a.intersects(&b) && b.intersects(&a));
    }

    #[test]
    fn disjoint_boxes_do_not_intersect() {
        let a = Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Aabb::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn edge_sharing_boxes_intersect() {
        let a = Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Aabb::new(Point::new(1.0, 0.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.width(), 0.0);
    }

    #[test]
    fn clamp_and_distance() {
        let b = Aabb::square(10.0);
        assert_eq!(b.clamp(Point::new(5.0, 5.0)), Point::new(5.0, 5.0));
        assert_eq!(b.clamp(Point::new(-3.0, 4.0)), Point::new(0.0, 4.0));
        assert_eq!(b.dist_to(Point::new(13.0, 14.0)), 5.0);
        assert_eq!(b.dist_to(Point::new(2.0, 2.0)), 0.0);
    }

    #[test]
    fn inflate_grows_every_side() {
        let b = Aabb::square(10.0).inflate(2.0);
        assert_eq!(b.min, Point::new(-2.0, -2.0));
        assert_eq!(b.max, Point::new(12.0, 12.0));
    }

    #[test]
    fn corners_are_ccw() {
        let c = Aabb::square(1.0).corners();
        // Shoelace area of CCW polygon is positive.
        let mut area = 0.0;
        for i in 0..4 {
            let a = c[i];
            let b = c[(i + 1) % 4];
            area += a.cross(b);
        }
        assert!(area > 0.0);
    }

    #[test]
    fn from_unit_maps_corners() {
        let b = Aabb::new(Point::new(10.0, 20.0), Point::new(30.0, 60.0));
        assert_eq!(b.from_unit(0.0, 0.0), b.min);
        assert_eq!(b.from_unit(1.0, 1.0), b.max);
        assert_eq!(b.from_unit(0.5, 0.5), b.center());
    }
}
