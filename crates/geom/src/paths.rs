//! Coverage-path analysis: maximal breach and best support paths.
//!
//! The paper's related work (Meguerdichian et al., INFOCOM 2001 — its
//! ref. \[13\]) defines two classic worst/best-case coverage measures for a
//! sensor field, both used here to evaluate DECOR deployments from an
//! intruder's perspective:
//!
//! - the **maximal breach path** crosses the field (left edge to right
//!   edge) while staying as far from all sensors as possible; its
//!   *breach distance* is the closest it ever gets to a sensor — large
//!   breach = surveillance holes;
//! - the **best support path** crosses while staying as close to sensors
//!   as possible; its *support distance* is the farthest it ever strays —
//!   small support = good in-field guidance.
//!
//! The original computes these on the Voronoi diagram / Delaunay
//! triangulation; we compute them on a fine lattice graph instead — a
//! simplification that converges to the same values as the lattice
//! refines and needs no global Voronoi construction (consistent with this
//! reproduction's local-Voronoi-only geometry). Both reduce to a
//! binary search over a threshold plus BFS connectivity, giving exact
//! lattice answers in `O(res² · log res)`.

use crate::aabb::Aabb;
use crate::grid_index::GridIndex;
use crate::point::Point;
use std::collections::VecDeque;

/// A computed crossing path and its defining distance.
#[derive(Clone, Debug, PartialEq)]
pub struct CrossingPath {
    /// The threshold distance: minimum sensor distance along the path
    /// (breach) or maximum sensor distance along the path (support).
    pub distance: f64,
    /// Lattice waypoints from the left edge to the right edge.
    pub waypoints: Vec<Point>,
}

/// Distance from every lattice cell center to its nearest sensor.
fn distance_field(sensors: &[Point], field: &Aabb, res: usize) -> (Vec<f64>, Vec<Point>) {
    let mut idx = GridIndex::new(
        field.min,
        (field.width().max(1e-9), field.height().max(1e-9)),
        (field.width().min(field.height()) / 16.0).max(1e-9),
    );
    for (i, &s) in sensors.iter().enumerate() {
        idx.insert(i, s);
    }
    let mut dist = Vec::with_capacity(res * res);
    let mut centers = Vec::with_capacity(res * res);
    for row in 0..res {
        for col in 0..res {
            let p = Point::new(
                field.min.x + field.width() * (col as f64 + 0.5) / res as f64,
                field.min.y + field.height() * (row as f64 + 0.5) / res as f64,
            );
            centers.push(p);
            let d = idx.nearest(p).map(|(_, _, d)| d).unwrap_or(f64::INFINITY);
            dist.push(d);
        }
    }
    (dist, centers)
}

/// BFS: is there a left-to-right crossing using only cells whose value
/// passes `ok`? Returns the path (cell indices) if so.
fn crossing<F: Fn(usize) -> bool>(res: usize, ok: F) -> Option<Vec<usize>> {
    let cell = |row: usize, col: usize| row * res + col;
    let mut prev = vec![usize::MAX; res * res];
    let mut seen = vec![false; res * res];
    let mut queue = VecDeque::new();
    for row in 0..res {
        let c = cell(row, 0);
        if ok(c) {
            seen[c] = true;
            queue.push_back(c);
        }
    }
    let mut goal = None;
    'bfs: while let Some(c) = queue.pop_front() {
        let row = c / res;
        let col = c % res;
        if col == res - 1 {
            goal = Some(c);
            break 'bfs;
        }
        let push = |r: isize,
                    co: isize,
                    from: usize,
                    seen: &mut Vec<bool>,
                    queue: &mut VecDeque<usize>,
                    prev: &mut Vec<usize>| {
            if r < 0 || co < 0 || r as usize >= res || co as usize >= res {
                return;
            }
            let n = cell(r as usize, co as usize);
            if !seen[n] && ok(n) {
                seen[n] = true;
                prev[n] = from;
                queue.push_back(n);
            }
        };
        push(
            row as isize - 1,
            col as isize,
            c,
            &mut seen,
            &mut queue,
            &mut prev,
        );
        push(
            row as isize + 1,
            col as isize,
            c,
            &mut seen,
            &mut queue,
            &mut prev,
        );
        push(
            row as isize,
            col as isize - 1,
            c,
            &mut seen,
            &mut queue,
            &mut prev,
        );
        push(
            row as isize,
            col as isize + 1,
            c,
            &mut seen,
            &mut queue,
            &mut prev,
        );
    }
    let mut g = goal?;
    let mut path = vec![g];
    while prev[g] != usize::MAX {
        g = prev[g];
        path.push(g);
    }
    path.reverse();
    Some(path)
}

/// Computes the maximal breach path: the left-to-right crossing that
/// maximizes the minimum distance to any sensor. `res` is the lattice
/// resolution per axis (trade accuracy for time; 64–256 is typical).
///
/// With no sensors the breach distance is infinite (represented as
/// `f64::INFINITY`, path along the middle row).
///
/// ```
/// use decor_geom::{maximal_breach_path, Aabb, Point};
///
/// // A sensor wall with a 20-unit gap lets an intruder stay ~10 away.
/// let wall: Vec<Point> = (0..6).map(|i| Point::new(50.0, i as f64 * 20.0)).collect();
/// let breach = maximal_breach_path(&wall, &Aabb::square(100.0), 64);
/// assert!(breach.distance > 7.0 && breach.distance < 13.0);
/// ```
pub fn maximal_breach_path(sensors: &[Point], field: &Aabb, res: usize) -> CrossingPath {
    assert!(res >= 2, "lattice resolution must be at least 2");
    let (dist, centers) = distance_field(sensors, field, res);
    if sensors.is_empty() {
        let row = res / 2;
        return CrossingPath {
            distance: f64::INFINITY,
            waypoints: (0..res).map(|c| centers[row * res + c]).collect(),
        };
    }
    // Binary search the threshold t: crossing exists using cells with
    // dist >= t. Candidates are the distinct cell distances.
    let mut cand: Vec<f64> = dist.clone();
    cand.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cand.dedup();
    let (mut lo, mut hi) = (0usize, cand.len() - 1);
    // Invariant: crossing exists at cand[lo] (t=min always works if any
    // crossing exists at all — the full lattice is connected).
    if crossing(res, |c| dist[c] >= cand[hi]).is_some() {
        lo = hi;
    }
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if crossing(res, |c| dist[c] >= cand[mid]).is_some() {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let t = cand[lo];
    let path = crossing(res, |c| dist[c] >= t).expect("invariant");
    CrossingPath {
        distance: t,
        waypoints: path.into_iter().map(|c| centers[c]).collect(),
    }
}

/// Computes the best support path: the left-to-right crossing that
/// minimizes the maximum distance to the nearest sensor.
///
/// With no sensors the support distance is infinite.
pub fn best_support_path(sensors: &[Point], field: &Aabb, res: usize) -> CrossingPath {
    assert!(res >= 2, "lattice resolution must be at least 2");
    let (dist, centers) = distance_field(sensors, field, res);
    if sensors.is_empty() {
        let row = res / 2;
        return CrossingPath {
            distance: f64::INFINITY,
            waypoints: (0..res).map(|c| centers[row * res + c]).collect(),
        };
    }
    let mut cand: Vec<f64> = dist.clone();
    cand.sort_by(|a, b| a.partial_cmp(b).unwrap());
    cand.dedup();
    let (mut lo, mut hi) = (0usize, cand.len() - 1);
    // Find the smallest t such that a crossing exists with dist <= t.
    if crossing(res, |c| dist[c] <= cand[lo]).is_none() {
        while lo < hi {
            let mid = (lo + hi) / 2;
            if crossing(res, |c| dist[c] <= cand[mid]).is_some() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
    } else {
        hi = lo;
    }
    let t = cand[hi];
    let path = crossing(res, |c| dist[c] <= t).expect("max threshold always crosses");
    CrossingPath {
        distance: t,
        waypoints: path.into_iter().map(|c| centers[c]).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field() -> Aabb {
        Aabb::square(100.0)
    }

    #[test]
    fn empty_field_has_infinite_breach() {
        let b = maximal_breach_path(&[], &field(), 16);
        assert_eq!(b.distance, f64::INFINITY);
        assert_eq!(b.waypoints.len(), 16);
    }

    #[test]
    fn single_center_sensor_breach_hugs_an_edge() {
        let sensors = vec![Point::new(50.0, 50.0)];
        let b = maximal_breach_path(&sensors, &field(), 64);
        // Best evasion: cross along the top or bottom edge, staying
        // ~50 away from the center sensor.
        assert!(b.distance > 45.0, "breach {:.1}", b.distance);
        assert!(b.waypoints.first().unwrap().x < b.waypoints.last().unwrap().x);
    }

    #[test]
    fn sensor_wall_reduces_breach_to_half_gap() {
        // A vertical wall of sensors at x=50, spaced 10 apart: any
        // crossing must pass within ~5 of some sensor.
        let sensors: Vec<Point> = (0..11).map(|i| Point::new(50.0, i as f64 * 10.0)).collect();
        let b = maximal_breach_path(&sensors, &field(), 128);
        assert!(
            (3.0..=7.5).contains(&b.distance),
            "breach through a 10-gap wall should be ~5, got {:.2}",
            b.distance
        );
    }

    #[test]
    fn support_path_follows_sensor_line() {
        // A horizontal line of sensors across the middle: an escort can
        // stay within ~half the spacing of a sensor the whole way.
        let sensors: Vec<Point> = (0..11).map(|i| Point::new(i as f64 * 10.0, 50.0)).collect();
        let s = best_support_path(&sensors, &field(), 128);
        assert!(
            s.distance < 6.0,
            "support along a 10-spaced line should be ~5, got {:.2}",
            s.distance
        );
    }

    #[test]
    fn support_is_bad_on_sparse_fields() {
        let sensors = vec![Point::new(10.0, 10.0)];
        let s = best_support_path(&sensors, &field(), 64);
        // Crossing the whole field must stray far from the lone sensor.
        assert!(s.distance > 40.0, "support {:.1}", s.distance);
    }

    #[test]
    fn breach_monotone_in_sensor_count() {
        // More sensors can only reduce (or keep) the breach distance.
        let some: Vec<Point> = (0..5)
            .map(|i| Point::new(20.0 * i as f64 + 10.0, 50.0))
            .collect();
        let more: Vec<Point> = (0..5)
            .map(|i| Point::new(20.0 * i as f64 + 10.0, 25.0))
            .chain(some.iter().copied())
            .collect();
        let b1 = maximal_breach_path(&some, &field(), 64).distance;
        let b2 = maximal_breach_path(&more, &field(), 64).distance;
        assert!(b2 <= b1 + 1e-9, "b1={b1:.2} b2={b2:.2}");
    }

    #[test]
    fn waypoints_form_a_left_right_connected_chain() {
        let sensors: Vec<Point> = (0..6)
            .map(|i| Point::new(15.0 * i as f64 + 5.0, 40.0))
            .collect();
        for path in [
            maximal_breach_path(&sensors, &field(), 32),
            best_support_path(&sensors, &field(), 32),
        ] {
            let first = path.waypoints.first().unwrap();
            let last = path.waypoints.last().unwrap();
            let cell = 100.0 / 32.0;
            assert!(first.x < cell, "starts at the left edge");
            assert!(last.x > 100.0 - cell, "ends at the right edge");
            for w in path.waypoints.windows(2) {
                assert!(
                    w[0].dist(w[1]) <= cell * 1.5,
                    "waypoints must be lattice-adjacent"
                );
            }
        }
    }

    #[test]
    fn breach_distance_is_attained_on_the_path() {
        let sensors: Vec<Point> = (0..8).map(|i| Point::new(13.0 * i as f64, 60.0)).collect();
        let b = maximal_breach_path(&sensors, &field(), 64);
        let min_on_path = b
            .waypoints
            .iter()
            .map(|w| {
                sensors
                    .iter()
                    .map(|s| w.dist(*s))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(f64::INFINITY, f64::min);
        assert!((min_on_path - b.distance).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "resolution must be at least 2")]
    fn tiny_resolution_panics() {
        let _ = maximal_breach_path(&[], &field(), 1);
    }
}
