//! Disks: sensing and communication ranges, and disaster areas.

use crate::aabb::Aabb;
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A closed disk: all points within `radius` of `center`.
///
/// Three roles in the reproduction:
/// - a sensor's *sensing disk* (radius `rs`) — the area it covers;
/// - a sensor's *communication disk* (radius `rc`) — its 1-hop neighborhood;
/// - a *disaster disk* (the paper uses radius 24) — the region whose nodes
///   all fail in the area-failure experiments (Figs. 6, 13, 14).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Disk {
    /// Center of the disk.
    pub center: Point,
    /// Radius (must be non-negative; a zero radius is the single point).
    pub radius: f64,
}

impl Disk {
    /// Creates a disk. Panics if `radius` is negative or not finite.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "disk radius must be finite and non-negative, got {radius}"
        );
        Disk { center, radius }
    }

    /// Closed containment: is `p` within the disk (boundary included)?
    ///
    /// The paper's coverage predicate: point `p` is covered by sensor `s`
    /// iff `d(p, s) <= rs`.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// Area `π r²`.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Do two disks overlap (boundary touch counts)?
    #[inline]
    pub fn intersects(&self, other: &Disk) -> bool {
        let r = self.radius + other.radius;
        self.center.dist_sq(other.center) <= r * r
    }

    /// Is `other` entirely inside `self` (boundary allowed)?
    pub fn contains_disk(&self, other: &Disk) -> bool {
        if other.radius > self.radius {
            return false;
        }
        let slack = self.radius - other.radius;
        self.center.dist_sq(other.center) <= slack * slack
    }

    /// Does the disk intersect an axis-aligned box (boundary touch counts)?
    #[inline]
    pub fn intersects_aabb(&self, b: &Aabb) -> bool {
        b.dist_to(self.center) <= self.radius
    }

    /// Is the whole box inside the disk?
    pub fn contains_aabb(&self, b: &Aabb) -> bool {
        b.corners().iter().all(|&c| self.contains(c))
    }

    /// Tight axis-aligned bounding box of the disk.
    pub fn bounding_box(&self) -> Aabb {
        Aabb::new(
            Point::new(self.center.x - self.radius, self.center.y - self.radius),
            Point::new(self.center.x + self.radius, self.center.y + self.radius),
        )
    }

    /// Area of the intersection of two disks (exact, via circular segments).
    ///
    /// Used by the analytical redundancy estimates in `decor-core` tests.
    pub fn intersection_area(&self, other: &Disk) -> f64 {
        let d = self.center.dist(other.center);
        let (r1, r2) = (self.radius, other.radius);
        if d >= r1 + r2 {
            return 0.0;
        }
        if d <= (r1 - r2).abs() {
            // One disk inside the other.
            let r = r1.min(r2);
            return std::f64::consts::PI * r * r;
        }
        // Standard lens formula.
        let a1 = ((d * d + r1 * r1 - r2 * r2) / (2.0 * d * r1)).clamp(-1.0, 1.0);
        let a2 = ((d * d + r2 * r2 - r1 * r1) / (2.0 * d * r2)).clamp(-1.0, 1.0);
        let t1 = a1.acos();
        let t2 = a2.acos();
        lens_half(r1, t1) + lens_half(r2, t2)
    }
}

/// Area of a circular segment with half-angle `theta` on a circle of
/// radius `r`: `r² (θ − sin θ cos θ)`.
fn lens_half(r: f64, theta: f64) -> f64 {
    r * r * (theta - theta.sin() * theta.cos())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn containment_boundary_inclusive() {
        let d = Disk::new(Point::new(0.0, 0.0), 4.0);
        assert!(d.contains(Point::new(4.0, 0.0)));
        assert!(d.contains(Point::new(0.0, 0.0)));
        assert!(!d.contains(Point::new(4.0001, 0.0)));
    }

    #[test]
    #[should_panic(expected = "radius must be finite")]
    fn negative_radius_panics() {
        let _ = Disk::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn disk_disk_intersection_predicate() {
        let a = Disk::new(Point::new(0.0, 0.0), 2.0);
        let b = Disk::new(Point::new(3.9, 0.0), 2.0);
        let c = Disk::new(Point::new(4.1, 0.0), 2.0);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Touching exactly.
        let t = Disk::new(Point::new(4.0, 0.0), 2.0);
        assert!(a.intersects(&t));
    }

    #[test]
    fn disk_contains_disk() {
        let big = Disk::new(Point::new(0.0, 0.0), 5.0);
        let small = Disk::new(Point::new(1.0, 1.0), 2.0);
        let out = Disk::new(Point::new(4.0, 0.0), 2.0);
        assert!(big.contains_disk(&small));
        assert!(!big.contains_disk(&out));
        assert!(!small.contains_disk(&big));
    }

    #[test]
    fn disk_aabb_intersection() {
        let d = Disk::new(Point::new(5.0, 5.0), 1.0);
        let inside = Aabb::square(10.0);
        assert!(d.intersects_aabb(&inside));
        let corner = Aabb::new(Point::new(6.0, 6.0), Point::new(8.0, 8.0));
        // Closest corner (6,6) is at distance sqrt(2) > 1 from (5,5).
        assert!(!d.intersects_aabb(&corner));
        let near = Aabb::new(Point::new(5.5, 5.5), Point::new(8.0, 8.0));
        assert!(d.intersects_aabb(&near));
    }

    #[test]
    fn disk_contains_aabb() {
        let d = Disk::new(Point::new(5.0, 5.0), 3.0);
        let small = Aabb::new(Point::new(4.0, 4.0), Point::new(6.0, 6.0));
        let big = Aabb::square(10.0);
        assert!(d.contains_aabb(&small));
        assert!(!d.contains_aabb(&big));
    }

    #[test]
    fn bounding_box_is_tight() {
        let d = Disk::new(Point::new(2.0, 3.0), 1.5);
        let b = d.bounding_box();
        assert_eq!(b.min, Point::new(0.5, 1.5));
        assert_eq!(b.max, Point::new(3.5, 4.5));
    }

    #[test]
    fn intersection_area_disjoint_is_zero() {
        let a = Disk::new(Point::new(0.0, 0.0), 1.0);
        let b = Disk::new(Point::new(3.0, 0.0), 1.0);
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn intersection_area_nested_is_small_disk() {
        let a = Disk::new(Point::new(0.0, 0.0), 3.0);
        let b = Disk::new(Point::new(0.5, 0.0), 1.0);
        assert!((a.intersection_area(&b) - PI).abs() < 1e-12);
    }

    #[test]
    fn intersection_area_identical_disks() {
        let a = Disk::new(Point::new(0.0, 0.0), 2.0);
        let b = a;
        assert!((a.intersection_area(&b) - a.area()).abs() < 1e-9);
    }

    #[test]
    fn intersection_area_half_overlap_monte_carlo() {
        // Validate the lens formula against Monte Carlo on a fixed grid.
        let a = Disk::new(Point::new(0.0, 0.0), 2.0);
        let b = Disk::new(Point::new(2.0, 0.0), 2.0);
        let exact = a.intersection_area(&b);
        let mut hits = 0u32;
        let n = 400;
        for i in 0..n {
            for j in 0..n {
                let p = Point::new(
                    -2.0 + 6.0 * (i as f64 + 0.5) / n as f64,
                    -2.0 + 4.0 * (j as f64 + 0.5) / n as f64,
                );
                if a.contains(p) && b.contains(p) {
                    hits += 1;
                }
            }
        }
        let approx = hits as f64 / (n * n) as f64 * 24.0;
        assert!(
            (exact - approx).abs() < 0.05,
            "exact {exact} vs grid {approx}"
        );
    }

    #[test]
    fn area_formula() {
        let d = Disk::new(Point::ORIGIN, 4.0);
        assert!((d.area() - 16.0 * PI).abs() < 1e-12);
    }
}
