//! A frozen, cache-friendly CSR spatial index over immutable points.
//!
//! [`crate::GridIndex`] stores each bucket as its own `Vec<(usize, Point)>`:
//! flexible for insertion/removal (sensors come and go), but every radius
//! query chases one heap pointer per bucket and loads 24-byte tuples it
//! mostly discards. The DECOR hot paths — benefit evaluation, k-coverage
//! counting, candidate-delta propagation — query the *approximation points*,
//! which never move after a deployment is built. [`FrozenGridIndex`] is the
//! matching read-only layout:
//!
//! - all entries live in three contiguous struct-of-arrays slabs
//!   (`xs`, `ys`, `ids`), grouped by bucket, with a CSR `bucket_starts`
//!   offset table — a query touches a handful of cache lines, not a
//!   pointer per bucket;
//! - each bucket precomputes its 3×3-neighborhood row ranges, so the
//!   common `r <= cell` query resolves to three contiguous slab scans with
//!   zero arithmetic beyond one bucket lookup;
//! - each bucket stores the tight AABB of its actual points; large-radius
//!   queries skip buckets the disk cannot touch and batch-accept buckets
//!   the disk fully contains without per-point tests;
//! - every comparison is squared-distance against `r·r`, bit-identical to
//!   [`crate::Point::in_disk`], so results match the mutable index exactly
//!   (boundary points at distance exactly `r` included);
//! - no query allocates: [`FrozenGridIndex::for_each_within`],
//!   [`FrozenGridIndex::count_within`] and the early-exit
//!   [`FrozenGridIndex::covers_at_least`] stream over the slabs directly.
//!
//! Build one from a populated [`crate::GridIndex`] via
//! [`GridIndex::freeze`](crate::GridIndex::freeze) or directly from points
//! with [`FrozenGridIndex::from_points`].

use crate::grid_index::GridIndex;
use crate::point::Point;

/// Tight bounding box of one bucket's points, for disk prefiltering.
/// Empty buckets keep the inverted default and are skipped by length.
#[derive(Clone, Copy, Debug)]
struct BucketBox {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
}

impl BucketBox {
    const EMPTY: BucketBox = BucketBox {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    #[inline]
    fn grow(&mut self, p: Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Squared distance from `q` to the nearest point of the box — a lower
    /// bound on the squared distance to any contained point (monotone
    /// float ops only, so the bound is safe under rounding).
    #[inline]
    fn near_sq(&self, q: Point) -> f64 {
        let dx = (self.min_x - q.x).max(q.x - self.max_x).max(0.0);
        let dy = (self.min_y - q.y).max(q.y - self.max_y).max(0.0);
        dx * dx + dy * dy
    }

    /// Squared distance from `q` to the farthest corner of the box — an
    /// upper bound on the squared distance to any contained point.
    #[inline]
    fn far_sq(&self, q: Point) -> f64 {
        let dx = (q.x - self.min_x).abs().max((q.x - self.max_x).abs());
        let dy = (q.y - self.min_y).abs().max((q.y - self.max_y).abs());
        dx * dx + dy * dy
    }
}

/// Read-only CSR bucket grid over a fixed point set. See the module docs.
///
/// ```
/// use decor_geom::{FrozenGridIndex, Point};
///
/// let idx = FrozenGridIndex::from_points(
///     Point::ORIGIN,
///     (100.0, 100.0),
///     4.0,
///     [(0, Point::new(10.0, 10.0)), (1, Point::new(13.0, 10.0)), (2, Point::new(90.0, 90.0))],
/// );
/// assert_eq!(idx.count_within(Point::new(11.0, 10.0), 4.0), 2);
/// assert!(idx.covers_at_least(Point::new(11.0, 10.0), 4.0, 2));
/// assert!(!idx.covers_at_least(Point::new(11.0, 10.0), 4.0, 3));
/// ```
#[derive(Debug)]
pub struct FrozenGridIndex {
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    /// CSR offsets: bucket `b` owns slab entries
    /// `bucket_starts[b] .. bucket_starts[b + 1]`.
    bucket_starts: Vec<u32>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    ids: Vec<u32>,
    /// Per-bucket tight point AABBs (disk prefilter on wide queries).
    boxes: Vec<BucketBox>,
    /// Per-bucket precomputed 3×3-neighborhood slab ranges, one
    /// `(start, end)` pair per covered row. Rows clipped away at the field
    /// border are stored as empty ranges.
    neigh: Vec<[(u32, u32); 3]>,
    /// Build-time staging for the input entries; emptied after every
    /// build, retained so rebuilds reach a zero-allocation steady state.
    entries_scratch: Vec<(usize, Point)>,
    /// Build-time per-bucket counts, then placement cursors.
    cursor_scratch: Vec<u32>,
}

impl Clone for FrozenGridIndex {
    fn clone(&self) -> Self {
        FrozenGridIndex {
            origin: self.origin,
            cell: self.cell,
            nx: self.nx,
            ny: self.ny,
            bucket_starts: self.bucket_starts.clone(),
            xs: self.xs.clone(),
            ys: self.ys.clone(),
            ids: self.ids.clone(),
            boxes: self.boxes.clone(),
            neigh: self.neigh.clone(),
            entries_scratch: Vec::new(),
            cursor_scratch: Vec::new(),
        }
    }

    fn clone_from(&mut self, src: &Self) {
        // Field-wise `clone_from` so the slabs keep their capacity — the
        // reason `Clone` is hand-written (a derived impl would fall back
        // to `*self = src.clone()` and reallocate every slab).
        self.origin = src.origin;
        self.cell = src.cell;
        self.nx = src.nx;
        self.ny = src.ny;
        self.bucket_starts.clone_from(&src.bucket_starts);
        self.xs.clone_from(&src.xs);
        self.ys.clone_from(&src.ys);
        self.ids.clone_from(&src.ids);
        self.boxes.clone_from(&src.boxes);
        self.neigh.clone_from(&src.neigh);
        // Scratch buffers are build-time only; keep ours.
    }
}

impl FrozenGridIndex {
    /// Builds the frozen index directly from `(id, position)` pairs, for
    /// points expected in the box `[origin, origin + extent]` with bucket
    /// edge `cell` (out-of-range points clamp to the edge buckets, like
    /// [`GridIndex`]).
    ///
    /// Panics if `cell` or either extent is not positive, or an id exceeds
    /// `u32::MAX` (the compact slab stores 32-bit ids).
    pub fn from_points<I>(origin: Point, extent: (f64, f64), cell: f64, points: I) -> Self
    where
        I: IntoIterator<Item = (usize, Point)>,
    {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "bucket edge must be positive"
        );
        assert!(
            extent.0 > 0.0 && extent.1 > 0.0,
            "index extent must be positive"
        );
        let nx = (extent.0 / cell).ceil().max(1.0) as usize;
        let ny = (extent.1 / cell).ceil().max(1.0) as usize;
        Self::from_parts(origin, cell, nx, ny, points)
    }

    /// Builds from an explicit bucket-grid geometry — used by
    /// [`GridIndex::freeze`] to reproduce the source grid exactly rather
    /// than re-deriving `nx`/`ny` from a rounded extent.
    pub(crate) fn from_parts<I>(origin: Point, cell: f64, nx: usize, ny: usize, points: I) -> Self
    where
        I: IntoIterator<Item = (usize, Point)>,
    {
        let mut idx = FrozenGridIndex::empty();
        idx.rebuild_from_parts(origin, cell, nx, ny, points);
        idx
    }

    /// The index over no points on a degenerate 1×1 grid — a valid target
    /// for [`FrozenGridIndex::rebuild_from_points`], or a placeholder in
    /// reusable scratch state.
    pub fn empty() -> Self {
        FrozenGridIndex {
            origin: Point::ORIGIN,
            cell: 1.0,
            nx: 1,
            ny: 1,
            bucket_starts: vec![0, 0],
            xs: Vec::new(),
            ys: Vec::new(),
            ids: Vec::new(),
            boxes: vec![BucketBox::EMPTY],
            neigh: vec![[(0, 0); 3]],
            entries_scratch: Vec::new(),
            cursor_scratch: Vec::new(),
        }
    }

    /// In-place twin of [`FrozenGridIndex::from_points`]: rebuilds `self`
    /// over a new point set (and possibly new geometry), reusing every
    /// slab allocation. The result is indistinguishable from a freshly
    /// built index — `from_points` itself routes through this method, so
    /// there is exactly one build code path.
    pub fn rebuild_from_points<I>(
        &mut self,
        origin: Point,
        extent: (f64, f64),
        cell: f64,
        points: I,
    ) where
        I: IntoIterator<Item = (usize, Point)>,
    {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "bucket edge must be positive"
        );
        assert!(
            extent.0 > 0.0 && extent.1 > 0.0,
            "index extent must be positive"
        );
        let nx = (extent.0 / cell).ceil().max(1.0) as usize;
        let ny = (extent.1 / cell).ceil().max(1.0) as usize;
        self.rebuild_from_parts(origin, cell, nx, ny, points);
    }

    /// The single build path: counting sort into the CSR slabs, reusing
    /// `self`'s allocations.
    pub(crate) fn rebuild_from_parts<I>(
        &mut self,
        origin: Point,
        cell: f64,
        nx: usize,
        ny: usize,
        points: I,
    ) where
        I: IntoIterator<Item = (usize, Point)>,
    {
        self.origin = origin;
        self.cell = cell;
        self.nx = nx;
        self.ny = ny;
        self.entries_scratch.clear();
        self.entries_scratch.extend(points);
        let entries = &self.entries_scratch;

        // Counting sort into CSR: one pass to size buckets, one to place.
        let bucket_of = |p: Point| -> usize {
            let bx = ((p.x - origin.x) / cell).floor();
            let by = ((p.y - origin.y) / cell).floor();
            let bx = (bx.max(0.0) as usize).min(nx - 1);
            let by = (by.max(0.0) as usize).min(ny - 1);
            by * nx + bx
        };
        let counts = &mut self.cursor_scratch;
        counts.clear();
        counts.resize(nx * ny, 0);
        for &(id, p) in entries {
            debug_assert!(p.is_finite(), "cannot index a non-finite point");
            assert!(u32::try_from(id).is_ok(), "id {id} exceeds u32 range");
            counts[bucket_of(p)] += 1;
        }
        self.bucket_starts.clear();
        self.bucket_starts.reserve(nx * ny + 1);
        let mut acc = 0u32;
        for &c in counts.iter() {
            self.bucket_starts.push(acc);
            acc += c;
        }
        self.bucket_starts.push(acc);
        let n = entries.len();
        self.xs.clear();
        self.xs.resize(n, 0.0);
        self.ys.clear();
        self.ys.resize(n, 0.0);
        self.ids.clear();
        self.ids.resize(n, 0);
        self.boxes.clear();
        self.boxes.resize(nx * ny, BucketBox::EMPTY);
        // Reuse the counts buffer as the placement cursors.
        counts.copy_from_slice(&self.bucket_starts[..nx * ny]);
        for &(id, p) in entries {
            let b = bucket_of(p);
            let at = counts[b] as usize;
            counts[b] += 1;
            self.xs[at] = p.x;
            self.ys[at] = p.y;
            self.ids[at] = id as u32;
            self.boxes[b].grow(p);
        }

        // Precompute each bucket's 3×3-neighborhood slab ranges: buckets of
        // one row are consecutive in the CSR slab, so the three-bucket span
        // `[bx-1, bx+1]` of a row is one contiguous range.
        self.neigh.clear();
        self.neigh.reserve(nx * ny);
        for by in 0..ny {
            for bx in 0..nx {
                let bx0 = bx.saturating_sub(1);
                let bx1 = (bx + 1).min(nx - 1);
                let mut rows = [(0u32, 0u32); 3];
                for (slot, dy) in (-1i64..=1).enumerate() {
                    let ry = by as i64 + dy;
                    if ry < 0 || ry as usize >= ny {
                        continue; // stays (0, 0): empty
                    }
                    let row = ry as usize * nx;
                    rows[slot] = (
                        self.bucket_starts[row + bx0],
                        self.bucket_starts[row + bx1 + 1],
                    );
                }
                self.neigh.push(rows);
            }
        }
        self.entries_scratch.clear();
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    #[inline]
    fn bucket_coords(&self, p: Point) -> (usize, usize) {
        let bx = ((p.x - self.origin.x) / self.cell).floor();
        let by = ((p.y - self.origin.y) / self.cell).floor();
        let bx = (bx.max(0.0) as usize).min(self.nx - 1);
        let by = (by.max(0.0) as usize).min(self.ny - 1);
        (bx, by)
    }

    /// Calls `f(id, position)` for every entry within distance `r` of `q`
    /// (boundary inclusive), in slab (bucket) order.
    #[inline]
    pub fn for_each_within<F: FnMut(usize, Point)>(&self, q: Point, r: f64, mut f: F) {
        self.for_each_within_while(q, r, |id, p| {
            f(id, p);
            true
        });
    }

    /// Like [`FrozenGridIndex::for_each_within`], but stops as soon as `f`
    /// returns `false`. Returns `true` when the scan ran to completion.
    /// This is the early-exit primitive behind
    /// [`FrozenGridIndex::covers_at_least`].
    pub fn for_each_within_while<F: FnMut(usize, Point) -> bool>(
        &self,
        q: Point,
        r: f64,
        mut f: F,
    ) -> bool {
        let rr = r * r;
        if r <= self.cell {
            // Fast path: the disk spans at most the precomputed 3×3
            // neighborhood — three contiguous slab ranges, no bucket math.
            let (bx, by) = self.bucket_coords(q);
            for &(start, end) in &self.neigh[by * self.nx + bx] {
                if !self.scan_range(q, rr, start as usize, end as usize, &mut f) {
                    return false;
                }
            }
            return true;
        }
        // Wide query: walk the covered bucket rectangle with per-bucket
        // AABB prefilters.
        let (bx0, by0) = self.bucket_coords(Point::new(q.x - r, q.y - r));
        let (bx1, by1) = self.bucket_coords(Point::new(q.x + r, q.y + r));
        for by in by0..=by1 {
            let row = by * self.nx;
            for bx in bx0..=bx1 {
                let b = row + bx;
                let start = self.bucket_starts[b] as usize;
                let end = self.bucket_starts[b + 1] as usize;
                if start == end {
                    continue;
                }
                let bb = &self.boxes[b];
                if bb.near_sq(q) > rr {
                    continue; // disk cannot reach any point of the bucket
                }
                if bb.far_sq(q) <= rr {
                    // Disk swallows the bucket: accept without testing.
                    for i in start..end {
                        if !f(self.ids[i] as usize, Point::new(self.xs[i], self.ys[i])) {
                            return false;
                        }
                    }
                    continue;
                }
                if !self.scan_range(q, rr, start, end, &mut f) {
                    return false;
                }
            }
        }
        true
    }

    /// Distance-tests slab entries `[start, end)` against `rr`, feeding
    /// hits to `f`. Returns `false` when `f` stopped the scan.
    #[inline]
    fn scan_range<F: FnMut(usize, Point) -> bool>(
        &self,
        q: Point,
        rr: f64,
        start: usize,
        end: usize,
        f: &mut F,
    ) -> bool {
        for i in start..end {
            let dx = q.x - self.xs[i];
            let dy = q.y - self.ys[i];
            if dx * dx + dy * dy <= rr
                && !f(self.ids[i] as usize, Point::new(self.xs[i], self.ys[i]))
            {
                return false;
            }
        }
        true
    }

    /// Visits the CSR slab *ranges* a disk query would scan, instead of
    /// individual entries: `f(xs, ys, ids, all_inside)` receives parallel
    /// slices of one contiguous range. When `all_inside` is true the
    /// range was batch-accepted by its bucket AABB — every entry is
    /// within `r` of `q` and needs no distance test; otherwise the caller
    /// must test each entry against `r²` itself.
    ///
    /// This is the building block for chunked kernels that accumulate
    /// over a dense per-id payload slab (coverage counts): the inner loop
    /// runs over contiguous arrays with no closure dispatch per entry,
    /// which the compiler can unroll and vectorize.
    pub fn for_each_slab_range_within<F>(&self, q: Point, r: f64, mut f: F)
    where
        F: FnMut(&[f64], &[f64], &[u32], bool),
    {
        let emit = |start: usize, end: usize, all_inside: bool, f: &mut F| {
            if start < end {
                f(
                    &self.xs[start..end],
                    &self.ys[start..end],
                    &self.ids[start..end],
                    all_inside,
                );
            }
        };
        if r <= self.cell {
            let (bx, by) = self.bucket_coords(q);
            for &(start, end) in &self.neigh[by * self.nx + bx] {
                emit(start as usize, end as usize, false, &mut f);
            }
            return;
        }
        let rr = r * r;
        let (bx0, by0) = self.bucket_coords(Point::new(q.x - r, q.y - r));
        let (bx1, by1) = self.bucket_coords(Point::new(q.x + r, q.y + r));
        for by in by0..=by1 {
            let row = by * self.nx;
            for bx in bx0..=bx1 {
                let b = row + bx;
                let start = self.bucket_starts[b] as usize;
                let end = self.bucket_starts[b + 1] as usize;
                if start == end {
                    continue;
                }
                let bb = &self.boxes[b];
                if bb.near_sq(q) > rr {
                    continue;
                }
                emit(start, end, bb.far_sq(q) <= rr, &mut f);
            }
        }
    }

    /// Counts entries within distance `r` of `q` (boundary inclusive).
    pub fn count_within(&self, q: Point, r: f64) -> usize {
        let mut n = 0usize;
        let rr = r * r;
        if r <= self.cell {
            let (bx, by) = self.bucket_coords(q);
            for &(start, end) in &self.neigh[by * self.nx + bx] {
                for i in start as usize..end as usize {
                    let dx = q.x - self.xs[i];
                    let dy = q.y - self.ys[i];
                    n += usize::from(dx * dx + dy * dy <= rr);
                }
            }
            return n;
        }
        let (bx0, by0) = self.bucket_coords(Point::new(q.x - r, q.y - r));
        let (bx1, by1) = self.bucket_coords(Point::new(q.x + r, q.y + r));
        for by in by0..=by1 {
            let row = by * self.nx;
            for bx in bx0..=bx1 {
                let b = row + bx;
                let start = self.bucket_starts[b] as usize;
                let end = self.bucket_starts[b + 1] as usize;
                if start == end {
                    continue;
                }
                let bb = &self.boxes[b];
                if bb.near_sq(q) > rr {
                    continue;
                }
                if bb.far_sq(q) <= rr {
                    n += end - start; // fully inside: count wholesale
                    continue;
                }
                for i in start..end {
                    let dx = q.x - self.xs[i];
                    let dy = q.y - self.ys[i];
                    n += usize::from(dx * dx + dy * dy <= rr);
                }
            }
        }
        n
    }

    /// True when at least `k` entries lie within distance `r` of `q` —
    /// the k-coverage predicate. Stops scanning at the `k`-th hit instead
    /// of counting the whole disk, which is what every coverage check
    /// actually needs (`k` is small; the disk population is not).
    pub fn covers_at_least(&self, q: Point, r: f64, k: usize) -> bool {
        if k == 0 {
            return true;
        }
        let mut remaining = k;
        // `for_each_within_while` returns false iff the closure stopped
        // the scan, i.e. the k-th hit was seen.
        !self.for_each_within_while(q, r, |_, _| {
            remaining -= 1;
            remaining > 0
        })
    }

    /// Collects ids of entries within `r` of `q` into `out` (cleared
    /// first), in slab order. The buffer-reuse twin of
    /// [`FrozenGridIndex::within`].
    pub fn within_into(&self, q: Point, r: f64, out: &mut Vec<usize>) {
        out.clear();
        self.for_each_within(q, r, |id, _| out.push(id));
    }

    /// Collects the ids of all entries within distance `r` of `q`.
    pub fn within(&self, q: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.within_into(q, r, &mut out);
        out
    }

    /// Iterates over all stored entries (slab order).
    pub fn iter(&self) -> impl Iterator<Item = (usize, Point)> + '_ {
        self.ids
            .iter()
            .zip(self.xs.iter().zip(self.ys.iter()))
            .map(|(&id, (&x, &y))| (id as usize, Point::new(x, y)))
    }
}

impl GridIndex {
    /// Freezes the current contents into a [`FrozenGridIndex`] with the
    /// same geometry (origin, extent, bucket edge) and entries. The frozen
    /// copy answers the same queries with identical results but cannot be
    /// mutated — keep the `GridIndex` when entries still come and go.
    pub fn freeze(&self) -> FrozenGridIndex {
        FrozenGridIndex::from_parts(
            self.origin(),
            self.cell(),
            self.nx(),
            self.ny(),
            self.iter(),
        )
    }

    /// In-place twin of [`GridIndex::freeze`]: rebuilds `out` to the
    /// frozen form of `self`, reusing `out`'s slab allocations. Produces
    /// a state identical to `freeze()` (both route through the same
    /// build path).
    pub fn freeze_into(&self, out: &mut FrozenGridIndex) {
        out.rebuild_from_parts(
            self.origin(),
            self.cell(),
            self.nx(),
            self.ny(),
            self.iter(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points(n: usize) -> Vec<(usize, Point)> {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut pts = Vec::new();
        for id in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            pts.push((id, Point::new(x, y)));
        }
        pts
    }

    fn frozen(pts: &[(usize, Point)]) -> FrozenGridIndex {
        FrozenGridIndex::from_points(Point::ORIGIN, (100.0, 100.0), 4.0, pts.iter().copied())
    }

    fn brute_within(pts: &[(usize, Point)], q: Point, r: f64) -> Vec<usize> {
        let mut v: Vec<usize> = pts
            .iter()
            .filter(|&&(_, p)| q.in_disk(p, r))
            .map(|&(id, _)| id)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn matches_brute_force_across_radii() {
        let pts = sample_points(600);
        let idx = frozen(&pts);
        for &(_, q) in pts.iter().step_by(23) {
            // 0.5/4.0 hit the fast path; 12/60 the wide prefiltered path.
            for r in [0.5, 4.0, 12.0, 60.0] {
                let mut got = idx.within(q, r);
                got.sort_unstable();
                assert_eq!(got, brute_within(&pts, q, r), "q={q} r={r}");
                assert_eq!(idx.count_within(q, r), got.len(), "q={q} r={r}");
            }
        }
    }

    #[test]
    fn matches_mutable_grid_index_after_freeze() {
        let pts = sample_points(400);
        let mut grid = GridIndex::for_square_field(100.0, 4.0);
        for &(id, p) in &pts {
            grid.insert(id, p);
        }
        let idx = grid.freeze();
        assert_eq!(idx.len(), grid.len());
        for &(_, q) in pts.iter().step_by(31) {
            for r in [1.0, 4.0, 17.0] {
                let mut a = idx.within(q, r);
                let mut b = grid.within(q, r);
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "q={q} r={r}");
            }
        }
    }

    #[test]
    fn covers_at_least_agrees_with_count() {
        let pts = sample_points(500);
        let idx = frozen(&pts);
        for &(_, q) in pts.iter().step_by(41) {
            for r in [2.0, 4.0, 10.0] {
                let n = idx.count_within(q, r);
                for k in 0..=(n + 2) {
                    assert_eq!(
                        idx.covers_at_least(q, r, k),
                        n >= k,
                        "q={q} r={r} k={k} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_radius_is_inclusive() {
        let idx = FrozenGridIndex::from_points(
            Point::ORIGIN,
            (10.0, 10.0),
            1.0,
            [(0, Point::new(5.0, 5.0))],
        );
        // Exactly at distance r on both paths (r <= cell and r > cell).
        assert_eq!(idx.within(Point::new(5.0, 6.0), 1.0), vec![0]);
        assert_eq!(idx.within(Point::new(5.0, 9.0), 4.0), vec![0]);
        assert!(idx.covers_at_least(Point::new(5.0, 9.0), 4.0, 1));
    }

    #[test]
    fn queries_outside_field_clamp_safely() {
        let pts = vec![(0, Point::new(0.5, 0.5)), (1, Point::new(99.5, 99.5))];
        let idx = frozen(&pts);
        assert_eq!(idx.within(Point::new(-3.0, -3.0), 6.0), vec![0]);
        assert_eq!(idx.within(Point::new(105.0, 105.0), 9.0), vec![1]);
        assert_eq!(idx.count_within(Point::new(-50.0, -50.0), 1.0), 0);
    }

    #[test]
    fn out_of_field_points_clamp_to_edge_buckets() {
        let idx = FrozenGridIndex::from_points(
            Point::ORIGIN,
            (10.0, 10.0),
            2.0,
            [(7, Point::new(-5.0, 15.0))],
        );
        assert_eq!(idx.within(Point::new(-5.0, 15.0), 0.1), vec![7]);
    }

    #[test]
    fn within_into_reuses_buffer() {
        let pts = sample_points(200);
        let idx = frozen(&pts);
        let mut buf = vec![999usize; 50];
        idx.within_into(Point::new(50.0, 50.0), 8.0, &mut buf);
        let mut expect = brute_within(&pts, Point::new(50.0, 50.0), 8.0);
        buf.sort_unstable();
        expect.sort_unstable();
        assert_eq!(buf, expect);
    }

    #[test]
    fn empty_index_answers_empty() {
        let idx = FrozenGridIndex::from_points(Point::ORIGIN, (10.0, 10.0), 1.0, []);
        assert!(idx.is_empty());
        assert_eq!(idx.count_within(Point::new(5.0, 5.0), 100.0), 0);
        assert!(!idx.covers_at_least(Point::new(5.0, 5.0), 100.0, 1));
        assert!(idx.covers_at_least(Point::new(5.0, 5.0), 100.0, 0));
    }

    #[test]
    fn iter_yields_all_entries() {
        let pts = sample_points(64);
        let idx = frozen(&pts);
        let mut ids: Vec<usize> = idx.iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn early_exit_stops_the_scan() {
        let pts = sample_points(500);
        let idx = frozen(&pts);
        let mut visited = 0usize;
        let completed = idx.for_each_within_while(Point::new(50.0, 50.0), 60.0, |_, _| {
            visited += 1;
            visited < 3
        });
        assert!(!completed);
        assert_eq!(visited, 3);
    }

    #[test]
    fn slab_ranges_cover_exactly_the_disk() {
        let pts = sample_points(500);
        let idx = frozen(&pts);
        for &(_, q) in pts.iter().step_by(37) {
            // 3.0 exercises the fast 3-row path, 20.0 the prefiltered
            // wide path with batch-accepted interior buckets.
            for r in [3.0, 20.0] {
                let rr = r * r;
                let mut got = Vec::new();
                let mut batch_accepted = 0usize;
                idx.for_each_slab_range_within(q, r, |xs, ys, ids, all_inside| {
                    assert_eq!(xs.len(), ids.len());
                    assert_eq!(ys.len(), ids.len());
                    for i in 0..ids.len() {
                        let d2 = q.dist_sq(Point::new(xs[i], ys[i]));
                        if all_inside {
                            assert!(d2 <= rr, "batch-accepted entry outside disk");
                            batch_accepted += 1;
                        }
                        if d2 <= rr {
                            got.push(ids[i] as usize);
                        }
                    }
                });
                got.sort_unstable();
                assert_eq!(got, brute_within(&pts, q, r), "q={q} r={r}");
                if r == 20.0 && q.x > 25.0 && q.x < 75.0 && q.y > 25.0 && q.y < 75.0 {
                    assert!(batch_accepted > 0, "interior wide query must batch-accept");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "bucket edge must be positive")]
    fn zero_cell_panics() {
        let _ = FrozenGridIndex::from_points(Point::ORIGIN, (10.0, 10.0), 0.0, []);
    }

    /// Regression for the old `min_dim / 64` bucket floor: with the bucket
    /// edge derived from the query radius (density floor only for sparse
    /// sets), the number of candidate points a radius query *visits* stays
    /// near-constant as the field side grows at fixed point density —
    /// instead of growing with `(side/64)²`.
    #[test]
    fn visited_candidates_stay_flat_as_field_grows_at_fixed_density() {
        let rs = 4.0;
        let density = 0.2; // points per unit²
        let mut per_query: Vec<f64> = Vec::new();
        for side in [100.0f64, 300.0, 900.0] {
            let n = (side * side * density) as usize;
            // Deterministic LCG scatter (geom has no random source).
            let mut state = 0x2545F4914F6CDD1Du64;
            let mut next = || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (state >> 11) as f64 / (1u64 << 53) as f64
            };
            let pts: Vec<Point> = (0..n)
                .map(|_| Point::new(next() * side, next() * side))
                .collect();
            let bucket = crate::query_bucket_edge(rs, side, n);
            let idx = FrozenGridIndex::from_points(
                Point::ORIGIN,
                (side, side),
                bucket,
                pts.iter().copied().enumerate(),
            );
            // Average over a grid of interior query centers.
            let mut visited = 0usize;
            let mut queries = 0usize;
            for qi in 1..=5 {
                for qj in 1..=5 {
                    let q = Point::new(side * qi as f64 / 6.0, side * qj as f64 / 6.0);
                    idx.for_each_slab_range_within(q, rs, |xs, _, _, _| visited += xs.len());
                    queries += 1;
                }
            }
            per_query.push(visited as f64 / queries as f64);
        }
        let max = per_query.iter().cloned().fold(f64::MIN, f64::max);
        let min = per_query.iter().cloned().fold(f64::MAX, f64::min);
        // A 3×3 bucket neighborhood at bucket=rs visits ~(3·rs)²·density
        // ≈ 29 points regardless of field size; allow generous noise but
        // rule out any systematic growth with the field side.
        assert!(
            max < 2.0 * min,
            "visited candidates must stay flat: {per_query:?}"
        );
    }
}
