//! A uniform hash-grid spatial index over points in the plane.
//!
//! Coverage counting and benefit evaluation in DECOR repeatedly ask
//! "which approximation points / sensors lie within radius `r` of `q`?".
//! With 2000 field points and thousands of sensors, brute force is O(n)
//! per query; this bucket grid answers in O(1) expected time because the
//! query radius (`rs = 4`) is fixed and small relative to the field.
//!
//! The index stores opaque `usize` ids alongside positions so callers can
//! index back into their own arrays (points, sensors, ...). Removal is
//! supported (sensors fail), implemented as a swap-remove inside the
//! bucket, so ids must stay unique while inserted.

use crate::point::Point;

/// The bucket edge for a radius-query index over `n` points whose field's
/// smaller side is `min_dim`, given the dominant query radius `r_query`.
///
/// The edge is the query radius — queries then touch at most the 3×3
/// bucket neighborhood — floored by a *point-density* bound: the grid is
/// never finer than `4·√n` buckets per side, so bucket bookkeeping stays
/// O(n) and near-empty buckets don't dominate a scan. The floor replaces
/// the old fixed `min_dim / 64` cap, which silently froze the grid at
/// 64×64 buckets: on a 10,000-unit field with `r_query = 10` each query
/// scanned ~150× more area than the radius needed. With the density
/// floor, the per-query visited-candidate count stays near-constant as
/// the field grows at fixed point density.
pub fn query_bucket_edge(r_query: f64, min_dim: f64, n: usize) -> f64 {
    let density_floor = min_dim / (4.0 * (n.max(1) as f64).sqrt());
    r_query.max(density_floor)
}

/// Uniform bucket grid over a bounded region of the plane.
///
/// The grid covers all of ℝ² (out-of-range coordinates clamp to the edge
/// buckets), but it is sized from an expected bounding region to pick a
/// sensible bucket edge length.
///
/// ```
/// use decor_geom::{GridIndex, Point};
///
/// let mut idx = GridIndex::for_square_field(100.0, 4.0);
/// idx.insert(0, Point::new(10.0, 10.0));
/// idx.insert(1, Point::new(13.0, 10.0));
/// idx.insert(2, Point::new(90.0, 90.0));
/// assert_eq!(idx.within(Point::new(11.0, 10.0), 4.0), vec![0, 1]);
/// assert_eq!(idx.count_within(Point::new(90.0, 90.0), 1.0), 1);
/// ```
#[derive(Debug)]
pub struct GridIndex {
    origin: Point,
    cell: f64,
    nx: usize,
    ny: usize,
    buckets: Vec<Vec<(usize, Point)>>,
    len: usize,
}

impl Clone for GridIndex {
    fn clone(&self) -> Self {
        GridIndex {
            origin: self.origin,
            cell: self.cell,
            nx: self.nx,
            ny: self.ny,
            buckets: self.buckets.clone(),
            len: self.len,
        }
    }

    fn clone_from(&mut self, src: &Self) {
        self.origin = src.origin;
        self.cell = src.cell;
        self.nx = src.nx;
        self.ny = src.ny;
        // `Vec<Vec<_>>::clone_from` truncates and element-wise
        // `clone_from`s, so the bucket table and every surviving bucket
        // keep their capacity — the point of not deriving `Clone`.
        self.buckets.clone_from(&src.buckets);
        self.len = src.len;
    }
}

impl GridIndex {
    /// Creates an index for points expected to fall in the box
    /// `[origin, origin + extent]`, with bucket edge `cell`.
    ///
    /// Pick `cell` close to the typical query radius: queries then touch at
    /// most ~9 buckets. Panics if `cell` or either extent is not positive.
    pub fn new(origin: Point, extent: (f64, f64), cell: f64) -> Self {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "bucket edge must be positive"
        );
        assert!(
            extent.0 > 0.0 && extent.1 > 0.0,
            "index extent must be positive"
        );
        let nx = (extent.0 / cell).ceil().max(1.0) as usize;
        let ny = (extent.1 / cell).ceil().max(1.0) as usize;
        GridIndex {
            origin,
            cell,
            nx,
            ny,
            buckets: vec![Vec::new(); nx * ny],
            len: 0,
        }
    }

    /// Reconfigures the index for a (possibly different) region and
    /// bucket edge, emptying it. Equivalent to replacing `self` with
    /// [`GridIndex::new`]`(origin, extent, cell)` except that the bucket
    /// table and surviving buckets keep their allocations, so a reused
    /// index reaches a steady state with no per-reset allocation.
    pub fn reset(&mut self, origin: Point, extent: (f64, f64), cell: f64) {
        assert!(
            cell > 0.0 && cell.is_finite(),
            "bucket edge must be positive"
        );
        assert!(
            extent.0 > 0.0 && extent.1 > 0.0,
            "index extent must be positive"
        );
        let nx = (extent.0 / cell).ceil().max(1.0) as usize;
        let ny = (extent.1 / cell).ceil().max(1.0) as usize;
        self.origin = origin;
        self.cell = cell;
        self.nx = nx;
        self.ny = ny;
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        self.buckets.resize_with(nx * ny, Vec::new);
        self.len = 0;
    }

    /// Convenience constructor for the DECOR field `[0, side]²` with bucket
    /// edge equal to the sensing radius.
    ///
    /// Panics if `query_radius` is not positive, like [`GridIndex::new`].
    /// (It used to clamp non-positive radii to `1e-9`, silently building a
    /// degenerate grid with millions of buckets.)
    pub fn for_square_field(side: f64, query_radius: f64) -> Self {
        GridIndex::new(Point::ORIGIN, (side, side), query_radius)
    }

    /// Grid origin (lower-left corner of the expected bounding box).
    #[inline]
    pub(crate) fn origin(&self) -> Point {
        self.origin
    }

    /// Bucket edge length.
    #[inline]
    pub(crate) fn cell(&self) -> f64 {
        self.cell
    }

    /// Bucket-grid column count.
    #[inline]
    pub(crate) fn nx(&self) -> usize {
        self.nx
    }

    /// Bucket-grid row count.
    #[inline]
    pub(crate) fn ny(&self) -> usize {
        self.ny
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn bucket_coords(&self, p: Point) -> (usize, usize) {
        let bx = ((p.x - self.origin.x) / self.cell).floor();
        let by = ((p.y - self.origin.y) / self.cell).floor();
        let bx = (bx.max(0.0) as usize).min(self.nx - 1);
        let by = (by.max(0.0) as usize).min(self.ny - 1);
        (bx, by)
    }

    #[inline]
    fn bucket_of(&self, p: Point) -> usize {
        let (bx, by) = self.bucket_coords(p);
        by * self.nx + bx
    }

    /// Inserts `id` at position `p`. Ids are caller-managed; inserting the
    /// same id twice without removing it first leaves two entries.
    pub fn insert(&mut self, id: usize, p: Point) {
        debug_assert!(p.is_finite(), "cannot index a non-finite point");
        let b = self.bucket_of(p);
        self.buckets[b].push((id, p));
        self.len += 1;
    }

    /// Removes the entry for `id` previously inserted at `p`.
    ///
    /// Returns `true` when an entry was found and removed. `p` must be the
    /// exact position used at insertion (it selects the bucket).
    pub fn remove(&mut self, id: usize, p: Point) -> bool {
        let b = self.bucket_of(p);
        let bucket = &mut self.buckets[b];
        if let Some(i) = bucket.iter().position(|&(eid, _)| eid == id) {
            bucket.swap_remove(i);
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Calls `f(id, position)` for every entry within distance `r` of `q`
    /// (boundary inclusive).
    pub fn for_each_within<F: FnMut(usize, Point)>(&self, q: Point, r: f64, mut f: F) {
        let (bx0, by0) = self.bucket_coords(Point::new(q.x - r, q.y - r));
        let (bx1, by1) = self.bucket_coords(Point::new(q.x + r, q.y + r));
        for by in by0..=by1 {
            let row = by * self.nx;
            for bx in bx0..=bx1 {
                for &(id, p) in &self.buckets[row + bx] {
                    if q.in_disk(p, r) {
                        f(id, p);
                    }
                }
            }
        }
    }

    /// Like [`GridIndex::for_each_within`], but stops as soon as `f` returns
    /// `false`. Returns `true` when the scan ran to completion.
    pub fn for_each_within_while<F: FnMut(usize, Point) -> bool>(
        &self,
        q: Point,
        r: f64,
        mut f: F,
    ) -> bool {
        let (bx0, by0) = self.bucket_coords(Point::new(q.x - r, q.y - r));
        let (bx1, by1) = self.bucket_coords(Point::new(q.x + r, q.y + r));
        for by in by0..=by1 {
            let row = by * self.nx;
            for bx in bx0..=bx1 {
                for &(id, p) in &self.buckets[row + bx] {
                    if q.in_disk(p, r) && !f(id, p) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Collects the ids of all entries within distance `r` of `q`.
    pub fn within(&self, q: Point, r: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.for_each_within(q, r, |id, _| out.push(id));
        out
    }

    /// Collects ids of entries within `r` of `q` into `out` (cleared
    /// first) — the buffer-reuse variant of [`GridIndex::within`] for
    /// round loops that query every step.
    pub fn within_into(&self, q: Point, r: f64, out: &mut Vec<usize>) {
        out.clear();
        self.for_each_within(q, r, |id, _| out.push(id));
    }

    /// Counts entries within distance `r` of `q`.
    pub fn count_within(&self, q: Point, r: f64) -> usize {
        let mut n = 0;
        self.for_each_within(q, r, |_, _| n += 1);
        n
    }

    /// True when at least `k` entries lie within distance `r` of `q`;
    /// stops scanning at the `k`-th hit.
    pub fn covers_at_least(&self, q: Point, r: f64, k: usize) -> bool {
        if k == 0 {
            return true;
        }
        let mut remaining = k;
        !self.for_each_within_while(q, r, |_, _| {
            remaining -= 1;
            remaining > 0
        })
    }

    /// Nearest entry to `q`, or `None` when empty.
    ///
    /// Expands the bucket search ring by ring, so it is fast when a nearby
    /// entry exists and degrades to a full scan otherwise.
    pub fn nearest(&self, q: Point) -> Option<(usize, Point, f64)> {
        if self.is_empty() {
            return None;
        }
        let (qbx, qby) = self.bucket_coords(q);
        let max_ring = self.nx.max(self.ny);
        let mut best: Option<(usize, Point, f64)> = None;
        for ring in 0..=max_ring {
            // Scan all buckets at Chebyshev distance `ring` from (qbx, qby).
            let x0 = qbx.saturating_sub(ring);
            let x1 = (qbx + ring).min(self.nx - 1);
            let y0 = qby.saturating_sub(ring);
            let y1 = (qby + ring).min(self.ny - 1);
            for by in y0..=y1 {
                for bx in x0..=x1 {
                    let on_ring = bx == x0 || bx == x1 || by == y0 || by == y1;
                    if ring > 0 && !on_ring {
                        continue;
                    }
                    for &(id, p) in &self.buckets[by * self.nx + bx] {
                        let d = q.dist_sq(p);
                        if best.is_none_or(|(_, _, bd)| d < bd) {
                            best = Some((id, p, d));
                        }
                    }
                }
            }
            if let Some((_, _, bd)) = best {
                // Entries outside ring+1 are at least `ring * cell` away;
                // once the best found beats that bound, stop.
                let safe = ring as f64 * self.cell;
                if bd.sqrt() <= safe {
                    break;
                }
            }
        }
        best.map(|(id, p, d)| (id, p, d.sqrt()))
    }

    /// Iterates over all stored entries (bucket order, not insertion order).
    pub fn iter(&self) -> impl Iterator<Item = (usize, Point)> + '_ {
        self.buckets.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_within(pts: &[(usize, Point)], q: Point, r: f64) -> Vec<usize> {
        let mut v: Vec<usize> = pts
            .iter()
            .filter(|&&(_, p)| q.dist_sq(p) <= r * r)
            .map(|&(id, _)| id)
            .collect();
        v.sort_unstable();
        v
    }

    fn sample_points() -> Vec<(usize, Point)> {
        // Deterministic pseudo-random scatter via a simple LCG.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut pts = Vec::new();
        for id in 0..500 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = (state >> 11) as f64 / (1u64 << 53) as f64 * 100.0;
            pts.push((id, Point::new(x, y)));
        }
        pts
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let pts = sample_points();
        let mut idx = GridIndex::for_square_field(100.0, 4.0);
        for &(id, p) in &pts {
            idx.insert(id, p);
        }
        for &(_, q) in pts.iter().step_by(17) {
            for r in [0.5, 4.0, 12.0, 60.0] {
                let mut got = idx.within(q, r);
                got.sort_unstable();
                assert_eq!(got, brute_within(&pts, q, r), "q={q} r={r}");
            }
        }
    }

    #[test]
    fn count_matches_within_len() {
        let pts = sample_points();
        let mut idx = GridIndex::for_square_field(100.0, 4.0);
        for &(id, p) in &pts {
            idx.insert(id, p);
        }
        let q = Point::new(50.0, 50.0);
        assert_eq!(idx.count_within(q, 10.0), idx.within(q, 10.0).len());
    }

    #[test]
    fn query_outside_field_clamps_safely() {
        let mut idx = GridIndex::for_square_field(100.0, 4.0);
        idx.insert(0, Point::new(0.5, 0.5));
        idx.insert(1, Point::new(99.5, 99.5));
        // Query centered outside the field must still find edge points.
        assert_eq!(idx.within(Point::new(-3.0, -3.0), 6.0), vec![0]);
        assert_eq!(idx.within(Point::new(105.0, 105.0), 9.0), vec![1]);
    }

    #[test]
    fn insert_outside_field_clamps_to_edge_bucket() {
        let mut idx = GridIndex::for_square_field(10.0, 2.0);
        idx.insert(7, Point::new(-5.0, 15.0));
        let got = idx.within(Point::new(-5.0, 15.0), 0.1);
        assert_eq!(got, vec![7]);
    }

    #[test]
    fn remove_then_query() {
        let pts = sample_points();
        let mut idx = GridIndex::for_square_field(100.0, 4.0);
        for &(id, p) in &pts {
            idx.insert(id, p);
        }
        assert_eq!(idx.len(), 500);
        // Remove every third point.
        for &(id, p) in pts.iter().step_by(3) {
            assert!(idx.remove(id, p));
        }
        assert!(!idx.remove(0, pts[0].1), "double remove must fail");
        let remaining: Vec<(usize, Point)> = pts
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, &e)| e)
            .collect();
        assert_eq!(idx.len(), remaining.len());
        let q = Point::new(30.0, 70.0);
        let mut got = idx.within(q, 25.0);
        got.sort_unstable();
        assert_eq!(got, brute_within(&remaining, q, 25.0));
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = sample_points();
        let mut idx = GridIndex::for_square_field(100.0, 4.0);
        for &(id, p) in &pts {
            idx.insert(id, p);
        }
        for q in [
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(99.0, 1.0),
            Point::new(-20.0, 120.0),
        ] {
            let (_, got_p, got_d) = idx.nearest(q).unwrap();
            let best = pts
                .iter()
                .map(|&(_, p)| q.dist(p))
                .fold(f64::INFINITY, f64::min);
            assert!((got_d - best).abs() < 1e-12, "q={q}");
            assert!((q.dist(got_p) - best).abs() < 1e-12);
        }
    }

    #[test]
    fn nearest_on_empty_is_none() {
        let idx = GridIndex::for_square_field(100.0, 4.0);
        assert!(idx.nearest(Point::new(1.0, 1.0)).is_none());
    }

    #[test]
    fn nearest_in_sparse_index_crosses_many_rings() {
        let mut idx = GridIndex::for_square_field(100.0, 1.0);
        idx.insert(42, Point::new(95.0, 95.0));
        let (id, _, d) = idx.nearest(Point::new(2.0, 2.0)).unwrap();
        assert_eq!(id, 42);
        assert!((d - Point::new(2.0, 2.0).dist(Point::new(95.0, 95.0))).abs() < 1e-12);
    }

    #[test]
    fn iter_yields_all_entries() {
        let mut idx = GridIndex::for_square_field(10.0, 1.0);
        idx.insert(1, Point::new(1.0, 1.0));
        idx.insert(2, Point::new(9.0, 9.0));
        let mut ids: Vec<usize> = idx.iter().map(|(id, _)| id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn boundary_radius_is_inclusive() {
        let mut idx = GridIndex::for_square_field(10.0, 1.0);
        idx.insert(0, Point::new(5.0, 5.0));
        assert_eq!(idx.within(Point::new(5.0, 9.0), 4.0), vec![0]);
    }

    #[test]
    #[should_panic(expected = "bucket edge must be positive")]
    fn zero_cell_panics() {
        let _ = GridIndex::new(Point::ORIGIN, (10.0, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket edge must be positive")]
    fn for_square_field_rejects_non_positive_radius() {
        // Used to clamp to 1e-9 and silently build a million-bucket grid.
        let _ = GridIndex::for_square_field(100.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "bucket edge must be positive")]
    fn for_square_field_rejects_negative_radius() {
        let _ = GridIndex::for_square_field(100.0, -1.0);
    }

    #[test]
    fn within_into_reuses_buffer() {
        let pts = sample_points();
        let mut idx = GridIndex::for_square_field(100.0, 4.0);
        for &(id, p) in &pts {
            idx.insert(id, p);
        }
        let q = Point::new(40.0, 60.0);
        let mut buf = vec![123usize; 17];
        idx.within_into(q, 8.0, &mut buf);
        let mut expect = idx.within(q, 8.0);
        buf.sort_unstable();
        expect.sort_unstable();
        assert_eq!(buf, expect);
    }

    #[test]
    fn covers_at_least_agrees_with_count() {
        let pts = sample_points();
        let mut idx = GridIndex::for_square_field(100.0, 4.0);
        for &(id, p) in &pts {
            idx.insert(id, p);
        }
        for &(_, q) in pts.iter().step_by(43) {
            let n = idx.count_within(q, 6.0);
            for k in 0..=(n + 2) {
                assert_eq!(idx.covers_at_least(q, 6.0, k), n >= k, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn for_each_within_while_early_exit() {
        let pts = sample_points();
        let mut idx = GridIndex::for_square_field(100.0, 4.0);
        for &(id, p) in &pts {
            idx.insert(id, p);
        }
        let mut visited = 0usize;
        let completed = idx.for_each_within_while(Point::new(50.0, 50.0), 60.0, |_, _| {
            visited += 1;
            visited < 5
        });
        assert!(!completed);
        assert_eq!(visited, 5);
    }
}
