//! Planar points and the small amount of vector arithmetic DECOR needs.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point (or free vector) in the plane.
///
/// Coordinates are `f64`; the DECOR field is `[0, 100] x [0, 100]` but
/// nothing here assumes that. `Point` is `Copy` and 16 bytes, so it is
/// passed by value everywhere.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Coverage predicates compare against `rs²` to avoid the square root
    /// on the hot path.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Inclusive disk membership: `self` lies within `radius` of `center`,
    /// boundary included (`dist <= radius`).
    ///
    /// Every coverage predicate in the workspace must route through this
    /// one definition so the sharded benefit engine, the naive coverage
    /// scan, and the per-cell benefit paths agree bit-for-bit on points
    /// sitting exactly on a sensing-disk boundary.
    #[inline]
    pub fn in_disk(self, center: Point, radius: f64) -> bool {
        self.dist_sq(center) <= radius * radius
    }

    /// Squared length of `self` viewed as a vector from the origin.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Length of `self` viewed as a vector from the origin.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Dot product with `other` (both viewed as vectors).
    #[inline]
    pub fn dot(self, other: Point) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the cross product `self × other` (both as vectors).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Point) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Midpoint of the segment `self`–`other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) * 0.5, (self.y + other.y) * 0.5)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Unit vector pointing from `self` towards `other`.
    ///
    /// Returns `None` when the two points coincide (no direction exists).
    pub fn direction_to(self, other: Point) -> Option<Point> {
        let d = other - self;
        let n = d.norm();
        if n == 0.0 {
            None
        } else {
            Some(d / n)
        }
    }

    /// The vector rotated 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Point {
        Point::new(-self.y, self.x)
    }

    /// True when both coordinates are finite (no NaN / infinity).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    #[inline]
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Point {
    type Output = Point;
    #[inline]
    fn div(self, rhs: f64) -> Point {
        Point::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Point {
    type Output = Point;
    #[inline]
    fn neg(self) -> Point {
        Point::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.dist(b), b.dist(a));
        assert_eq!(a.dist(a), 0.0);
        assert_eq!(a.dist(b), 5.0);
    }

    #[test]
    fn dist_sq_matches_dist() {
        let a = Point::new(-3.0, 0.5);
        let b = Point::new(2.0, -1.5);
        let d = a.dist(b);
        assert!((a.dist_sq(b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(a - b, Point::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
        assert_eq!(b / 2.0, Point::new(1.5, -0.5));
        assert_eq!(-a, Point::new(-1.0, -2.0));
    }

    #[test]
    fn dot_and_cross() {
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        assert_eq!(a.dot(b), 0.0);
        assert_eq!(a.cross(b), 1.0);
        assert_eq!(b.cross(a), -1.0);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, -4.0);
        assert_eq!(a.midpoint(b), a.lerp(b, 0.5));
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn direction_to_is_unit_or_none() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        let d = a.direction_to(b).unwrap();
        assert!((d.norm() - 1.0).abs() < 1e-12);
        assert!(a.direction_to(a).is_none());
    }

    #[test]
    fn perp_is_orthogonal_and_ccw() {
        let v = Point::new(3.0, 4.0);
        let p = v.perp();
        assert_eq!(v.dot(p), 0.0);
        assert!(v.cross(p) > 0.0);
    }

    #[test]
    fn conversions_roundtrip() {
        let p = Point::from((2.5, -1.25));
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.5, -1.25));
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
