//! Argument parsing and I/O helpers for the `decor-cli` binary.
//!
//! Hand-rolled parsing (no external CLI dependency): flags are
//! `--name value` pairs after a subcommand. The logic lives here, in
//! library code, so it is unit-testable; the binary is a thin shell.

use crate::common::ExpParams;
use decor_core::{CoverageMap, DeploymentConfig, SchemeKind};
use decor_geom::{Disk, Point};
use decor_net::RotationConfig;
use std::collections::BTreeMap;

/// A parsed command line: subcommand plus `--flag value` options.
#[derive(Clone, Debug, PartialEq)]
pub struct CliArgs {
    /// The subcommand (`deploy`, `restore`, `diagnose`, ...).
    pub command: String,
    /// Flag values keyed without the `--` prefix.
    pub flags: BTreeMap<String, String>,
}

/// Parses `args` (without the program name).
///
/// Returns an error string on malformed input (missing subcommand,
/// dangling flag, flag without `--`).
pub fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut it = args.iter();
    let command = it
        .next()
        .ok_or("missing subcommand (deploy | restore | diagnose)")?
        .clone();
    if command.starts_with("--") {
        return Err(format!("expected a subcommand before {command}"));
    }
    let mut flags = BTreeMap::new();
    while let Some(flag) = it.next() {
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {flag}"))?;
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{name} needs a value"))?;
        flags.insert(name.to_owned(), value.clone());
    }
    Ok(CliArgs { command, flags })
}

impl CliArgs {
    /// A string flag with a default.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.flags.get(name).map(String::as_str).unwrap_or(default)
    }

    /// A parsed numeric flag with a default; errors name the flag.
    pub fn num_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse '{v}'")),
        }
    }
}

/// Parses a scheme name (`centralized`, `random`, `grid-small`,
/// `grid-big`, `voronoi-small`, `voronoi-big`, `holes`). The names are
/// the stable [`SchemeKind::spec_name`] vocabulary shared with scenario
/// spec files.
pub fn parse_scheme(name: &str) -> Result<SchemeKind, String> {
    SchemeKind::parse_spec_name(name)
}

/// Parses a disaster spec `x,y,r` into a disk.
pub fn parse_disaster(spec: &str) -> Result<Disk, String> {
    let parts: Vec<&str> = spec.split(',').collect();
    if parts.len() != 3 {
        return Err(format!("disaster spec must be x,y,r — got '{spec}'"));
    }
    let nums: Result<Vec<f64>, _> = parts.iter().map(|p| p.trim().parse::<f64>()).collect();
    let nums = nums.map_err(|_| format!("disaster spec has non-numeric parts: '{spec}'"))?;
    if nums[2] <= 0.0 {
        return Err("disaster radius must be positive".to_owned());
    }
    Ok(Disk::new(Point::new(nums[0], nums[1]), nums[2]))
}

/// Serializes a deployment's active sensors as `x,y,rs` CSV lines.
pub fn sensors_to_csv(map: &CoverageMap) -> String {
    let mut s = String::from("x,y,rs\n");
    for (sid, pos) in map.active_sensors() {
        s.push_str(&format!("{},{},{}\n", pos.x, pos.y, map.sensor_rs(sid)));
    }
    s
}

/// Parses `x,y,rs` CSV (with or without header) into sensor tuples.
pub fn sensors_from_csv(csv: &str) -> Result<Vec<(Point, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with("x,") {
            continue;
        }
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 3 {
            return Err(format!("line {}: expected x,y,rs", lineno + 1));
        }
        let nums: Result<Vec<f64>, _> = parts.iter().map(|p| p.trim().parse::<f64>()).collect();
        let nums = nums.map_err(|_| format!("line {}: non-numeric field", lineno + 1))?;
        out.push((Point::new(nums[0], nums[1]), nums[2]));
    }
    Ok(out)
}

/// Builds the experiment parameters a CLI invocation describes.
/// `--loss` (percent) puts every in-network exchange on a lossy medium;
/// placement notices then ride the reliable transport, tunable with
/// `--max-retries` and `--backoff`. `--trace-out <path>` attaches a
/// JSONL trace sink to the run; the binary writes the collected trace
/// to `<path>` afterwards. `--chaos-seed <n>` generates a bounded random
/// fault plan from the seed (replayable: the same seed and scenario give
/// the same run) and `--chaos-plan <path>` loads one from a replay file
/// written in `decor_net::FaultPlan`'s text format; both attach the
/// invariant checker, and giving both is an error. `--rotate <target>`
/// turns on set-k-cover sleep rotation at that per-shift coverage
/// target, with battery knobs `--battery`, `--awake-cost`,
/// `--sleep-cost` and `--shift-period`; the knobs without `--rotate`
/// are an error (they would silently do nothing).
pub fn params_from(args: &CliArgs) -> Result<(ExpParams, DeploymentConfig), String> {
    let loss_pct: u32 = args.num_or("loss", 0u32)?;
    if loss_pct >= 100 {
        return Err("flag --loss: must be below 100 (percent)".into());
    }
    let params = ExpParams {
        field_side: args.num_or("field", 100.0)?,
        n_points: args.num_or("points", 2000)?,
        initial_nodes: args.num_or("initial", 200)?,
        seeds: 1,
        base_seed: args.num_or("seed", 1u64)?,
        loss_pct,
    };
    let mut link = params.link(params.base_seed);
    link.loss_seed = args.num_or("loss-seed", link.loss_seed)?;
    link.max_retries = args.num_or("max-retries", link.max_retries)?;
    link.backoff_base = args.num_or("backoff", link.backoff_base)?;
    link.validate();
    let chaos = chaos_plan_from(args, &params)?;
    let cfg = DeploymentConfig {
        rs: args.num_or("rs", 4.0)?,
        rc: args.num_or("rc", 8.0)?,
        k: args.num_or("k", 3u32)?,
        max_new_nodes: args.num_or("max-nodes", 100_000usize)?,
        link,
        trace: if args.flags.contains_key("trace-out") {
            decor_trace::TraceHandle::jsonl_writer()
        } else {
            decor_trace::TraceHandle::disabled()
        },
        invariants: if chaos.is_some() {
            decor_core::InvariantChecker::enabled()
        } else {
            decor_core::InvariantChecker::disabled()
        },
        chaos,
        rotation: rotation_from(args)?,
    };
    Ok((params, cfg))
}

/// Resolves the rotation flags into a [`RotationConfig`]. Battery and
/// shift knobs require `--rotate` so a typo cannot silently fall back to
/// an always-on run.
fn rotation_from(args: &CliArgs) -> Result<Option<RotationConfig>, String> {
    const KNOBS: [&str; 4] = ["battery", "awake-cost", "sleep-cost", "shift-period"];
    let base = RotationConfig::default();
    if !args.flags.contains_key("rotate") {
        if let Some(knob) = KNOBS.iter().find(|k| args.flags.contains_key(**k)) {
            return Err(format!("flag --{knob} needs --rotate <target>"));
        }
        return Ok(None);
    }
    let rot = RotationConfig {
        target_coverage: args.num_or("rotate", base.target_coverage)?,
        period: args.num_or("shift-period", base.period)?,
        battery: args.num_or("battery", base.battery)?,
        awake_cost: args.num_or("awake-cost", base.awake_cost)?,
        sleep_cost: args.num_or("sleep-cost", base.sleep_cost)?,
        seed: args.num_or("seed", base.seed)?,
    };
    if rot.target_coverage == 0 {
        return Err("flag --rotate: target coverage must be >= 1".into());
    }
    if rot.period == 0 {
        return Err("flag --shift-period: must be positive".into());
    }
    if !(rot.battery > 0.0 && rot.battery.is_finite()) {
        return Err("flag --battery: must be positive".into());
    }
    if !(rot.awake_cost > 0.0 && rot.awake_cost.is_finite()) {
        return Err("flag --awake-cost: must be positive".into());
    }
    if !(rot.sleep_cost >= 0.0 && rot.sleep_cost < rot.awake_cost) {
        return Err("flag --sleep-cost: sleeping must cost less than waking".into());
    }
    Ok(Some(rot))
}

/// Resolves `--chaos-seed` / `--chaos-plan` into a fault plan. The seeded
/// generator is bounded by the scenario's initial population and a
/// horizon scaled to the transport backoff, so every generated fault can
/// actually land on a live run.
fn chaos_plan_from(
    args: &CliArgs,
    params: &ExpParams,
) -> Result<Option<decor_net::FaultPlan>, String> {
    let seed = args.flags.get("chaos-seed");
    let path = args.flags.get("chaos-plan");
    match (seed, path) {
        (Some(_), Some(_)) => Err("give either --chaos-seed or --chaos-plan, not both".into()),
        (Some(_), None) => {
            let seed: u64 = args.num_or("chaos-seed", 0u64)?;
            Ok(Some(decor_net::FaultPlan::generate(
                seed,
                params.initial_nodes,
                1000,
            )))
        }
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            decor_net::FaultPlan::parse(&text)
                .map(Some)
                .map_err(|e| format!("{path}: {e}"))
        }
        (None, None) => Ok(None),
    }
}

/// Writes the trace collected in `cfg.trace` to the `--trace-out` path,
/// if both the flag and a JSONL sink are present. Returns the path
/// written to, for logging.
pub fn write_trace_out(args: &CliArgs, cfg: &DeploymentConfig) -> Result<Option<String>, String> {
    let Some(path) = args.flags.get("trace-out") else {
        return Ok(None);
    };
    let text = cfg
        .trace
        .jsonl()
        .ok_or("internal: --trace-out set but no JSONL sink attached")?;
    std::fs::write(path, text).map_err(|e| format!("{path}: {e}"))?;
    Ok(Some(path.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse_args(&argv("deploy --scheme grid-small --k 3")).unwrap();
        assert_eq!(a.command, "deploy");
        assert_eq!(a.get_or("scheme", ""), "grid-small");
        assert_eq!(a.num_or("k", 0u32).unwrap(), 3);
        assert_eq!(a.num_or("seed", 42u64).unwrap(), 42, "default applies");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&argv("--k 3")).is_err());
        assert!(parse_args(&argv("deploy k 3")).is_err());
        assert!(parse_args(&argv("deploy --k")).is_err());
        let a = parse_args(&argv("deploy --k x")).unwrap();
        assert!(a.num_or("k", 1u32).is_err());
    }

    #[test]
    fn parses_all_schemes() {
        for (name, kind) in [
            ("centralized", SchemeKind::Centralized),
            ("random", SchemeKind::Random),
            ("grid-small", SchemeKind::GridSmall),
            ("grid-big", SchemeKind::GridBig),
            ("voronoi-small", SchemeKind::VoronoiSmall),
            ("voronoi-big", SchemeKind::VoronoiBig),
            ("holes", SchemeKind::Holes),
        ] {
            assert_eq!(parse_scheme(name).unwrap(), kind);
        }
        assert!(parse_scheme("bogus").is_err());
    }

    #[test]
    fn parses_disaster_spec() {
        let d = parse_disaster("50,60,24").unwrap();
        assert_eq!(d.center, Point::new(50.0, 60.0));
        assert_eq!(d.radius, 24.0);
        assert!(parse_disaster("50,60").is_err());
        assert!(parse_disaster("a,b,c").is_err());
        assert!(parse_disaster("1,2,-3").is_err());
    }

    #[test]
    fn sensor_csv_roundtrip() {
        let params = ExpParams::quick();
        let cfg = DeploymentConfig::with_k(1);
        let map = params.make_map(&cfg, 25, 9);
        let csv = sensors_to_csv(&map);
        let parsed = sensors_from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), 25);
        for ((p, rs), (sid, pos)) in parsed.iter().zip(map.active_sensors()) {
            assert!((p.x - pos.x).abs() < 1e-9);
            assert!((p.y - pos.y).abs() < 1e-9);
            assert_eq!(*rs, map.sensor_rs(sid));
        }
    }

    #[test]
    fn csv_parse_errors_carry_line_numbers() {
        assert!(sensors_from_csv("1,2\n").unwrap_err().contains("line 1"));
        assert!(sensors_from_csv("x,y,rs\n1,2,zzz\n")
            .unwrap_err()
            .contains("line 2"));
    }

    #[test]
    fn params_from_flags() {
        let a = parse_args(&argv(
            "deploy --points 500 --k 2 --rs 3 --rc 9 --seed 7 --initial 50",
        ))
        .unwrap();
        let (p, cfg) = params_from(&a).unwrap();
        assert_eq!(p.n_points, 500);
        assert_eq!(p.initial_nodes, 50);
        assert_eq!(p.base_seed, 7);
        assert_eq!(cfg.k, 2);
        assert_eq!(cfg.rs, 3.0);
        assert_eq!(cfg.rc, 9.0);
        assert!(!cfg.link.is_lossy(), "lossless by default");
    }

    #[test]
    fn trace_out_attaches_a_jsonl_sink() {
        let a = parse_args(&argv("deploy --trace-out /tmp/t.jsonl")).unwrap();
        let (_, cfg) = params_from(&a).unwrap();
        assert!(cfg.trace.is_enabled());
        assert_eq!(cfg.trace.jsonl().as_deref(), Some(""), "empty before a run");
        let plain = parse_args(&argv("deploy")).unwrap();
        let (_, cfg) = params_from(&plain).unwrap();
        assert!(!cfg.trace.is_enabled(), "tracing is opt-in");
    }

    #[test]
    fn chaos_seed_generates_a_replayable_plan() {
        let a = parse_args(&argv("deploy --chaos-seed 7 --initial 40")).unwrap();
        let (_, cfg) = params_from(&a).unwrap();
        let plan = cfg.chaos.expect("--chaos-seed must attach a plan");
        assert!(!plan.is_empty());
        assert!(cfg.invariants.is_enabled(), "chaos runs are checked");
        // Replay: the same flags produce the same plan.
        let (_, cfg2) = params_from(&a).unwrap();
        assert_eq!(cfg2.chaos.unwrap(), plan);
        // No chaos flags: no plan, no checker.
        let plain = parse_args(&argv("deploy")).unwrap();
        let (_, cfg3) = params_from(&plain).unwrap();
        assert!(cfg3.chaos.is_none());
        assert!(!cfg3.invariants.is_enabled());
    }

    #[test]
    fn chaos_plan_file_is_loaded_and_validated() {
        let dir = std::env::temp_dir();
        let path = dir.join("decor_cli_chaos_plan_test.txt");
        std::fs::write(&path, "0 crash 3\n10 partition 0 1\n50 heal\n").unwrap();
        let a = parse_args(&argv(&format!(
            "deploy --chaos-plan {}",
            path.to_str().unwrap()
        )))
        .unwrap();
        let (_, cfg) = params_from(&a).unwrap();
        assert_eq!(cfg.chaos.unwrap().len(), 3);
        std::fs::write(&path, "banana\n").unwrap();
        assert!(params_from(&a).is_err(), "malformed plans are rejected");
        std::fs::remove_file(&path).ok();
        assert!(params_from(&a).is_err(), "missing files are rejected");
    }

    #[test]
    fn chaos_seed_and_plan_are_mutually_exclusive() {
        let a = parse_args(&argv("deploy --chaos-seed 7 --chaos-plan p.txt")).unwrap();
        let err = params_from(&a).unwrap_err();
        assert!(err.contains("not both"), "{err}");
    }

    #[test]
    fn rotate_flags_build_the_rotation_config() {
        let a = parse_args(&argv(
            "endure --rotate 2 --battery 500 --awake-cost 2 --sleep-cost 0.1 --shift-period 750",
        ))
        .unwrap();
        let (_, cfg) = params_from(&a).unwrap();
        let rot = cfg.rotation.expect("--rotate must attach a config");
        assert_eq!(rot.target_coverage, 2);
        assert_eq!(rot.battery, 500.0);
        assert_eq!(rot.awake_cost, 2.0);
        assert_eq!(rot.sleep_cost, 0.1);
        assert_eq!(rot.period, 750);
        // Defaults apply when only the target is given.
        let a = parse_args(&argv("endure --rotate 1")).unwrap();
        let (_, cfg) = params_from(&a).unwrap();
        assert_eq!(cfg.rotation, Some(RotationConfig::default()));
        // Rotation is opt-in.
        let plain = parse_args(&argv("deploy")).unwrap();
        let (_, cfg) = params_from(&plain).unwrap();
        assert_eq!(cfg.rotation, None);
    }

    #[test]
    fn rotation_knobs_without_rotate_are_rejected() {
        for knob in [
            "battery 500",
            "awake-cost 2",
            "sleep-cost 0.1",
            "shift-period 9",
        ] {
            let a = parse_args(&argv(&format!("endure --{knob}"))).unwrap();
            let err = params_from(&a).unwrap_err();
            assert!(err.contains("--rotate"), "{err}");
        }
    }

    #[test]
    fn bad_rotation_values_are_rejected() {
        for bad in [
            "endure --rotate 0",
            "endure --rotate 1 --shift-period 0",
            "endure --rotate 1 --battery -3",
            "endure --rotate 1 --awake-cost 0",
            "endure --rotate 1 --sleep-cost 2",
        ] {
            let a = parse_args(&argv(bad)).unwrap();
            assert!(params_from(&a).is_err(), "{bad} must be rejected");
        }
    }

    #[test]
    fn loss_flags_build_the_link_config() {
        let a = parse_args(&argv(
            "deploy --loss 20 --loss-seed 99 --max-retries 5 --backoff 2",
        ))
        .unwrap();
        let (p, cfg) = params_from(&a).unwrap();
        assert_eq!(p.loss_pct, 20);
        assert!(cfg.link.is_lossy());
        assert_eq!(cfg.link.loss_rate, 0.2);
        assert_eq!(cfg.link.loss_seed, 99);
        assert_eq!(cfg.link.max_retries, 5);
        assert_eq!(cfg.link.backoff_base, 2);
        // Certain loss is rejected up front.
        let bad = parse_args(&argv("deploy --loss 100")).unwrap();
        assert!(params_from(&bad).is_err());
    }
}
