//! Tabular experiment results: the rows/series each paper figure plots.

/// A numeric result table. The first column is the x-axis (e.g. `k` or
/// "number of nodes"); each further column is one plotted series.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Short identifier, e.g. `"fig08"`.
    pub id: &'static str,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    /// Column headers; `columns[0]` names the x-axis.
    pub columns: Vec<String>,
    /// Data rows; every row has `columns.len()` entries. `NaN` renders
    /// as an empty cell (series without a value at that x).
    pub rows: Vec<Vec<f64>>,
}

impl Table {
    /// Creates an empty table and validates nothing yet.
    pub fn new(id: &'static str, title: impl Into<String>, columns: Vec<String>) -> Self {
        Table {
            id,
            title: title.into(),
            columns,
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics unless its width matches the header.
    pub fn push_row(&mut self, row: Vec<f64>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in table {}",
            self.id
        );
        self.rows.push(row);
    }

    /// The table as CSV (header + rows, `NaN` as empty cells).
    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        s.push_str(&self.columns.join(","));
        s.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| {
                    if v.is_nan() {
                        String::new()
                    } else if (v.fract()).abs() < 1e-9 && v.abs() < 1e12 {
                        format!("{}", *v as i64)
                    } else {
                        format!("{v:.4}")
                    }
                })
                .collect();
            s.push_str(&cells.join(","));
            s.push('\n');
        }
        s
    }

    /// The table as an aligned ASCII block with its title.
    pub fn to_ascii(&self) -> String {
        let fmt_cell = |v: &f64| -> String {
            if v.is_nan() {
                "-".to_owned()
            } else if v.fract().abs() < 1e-9 && v.abs() < 1e12 {
                format!("{}", *v as i64)
            } else {
                format!("{v:.2}")
            }
        };
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| row.iter().map(fmt_cell).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut s = format!("== {} — {} ==\n", self.id, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        s.push_str(&header.join("  "));
        s.push('\n');
        s.push_str(&"-".repeat(header.join("  ").len()));
        s.push('\n');
        for row in &rendered {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            s.push_str(&line.join("  "));
            s.push('\n');
        }
        s
    }

    /// Column index by header name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// The series (column) with the given header, without the x column.
    pub fn series(&self, name: &str) -> Option<Vec<f64>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(|r| r[idx]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("figX", "demo", vec!["k".into(), "a".into(), "b".into()]);
        t.push_row(vec![1.0, 10.0, 0.5]);
        t.push_row(vec![2.0, 20.0, f64::NAN]);
        t
    }

    #[test]
    fn csv_renders_integers_and_blanks() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "k,a,b");
        assert_eq!(lines[1], "1,10,0.5000");
        assert_eq!(lines[2], "2,20,");
    }

    #[test]
    fn ascii_contains_all_cells() {
        let a = sample().to_ascii();
        assert!(a.contains("figX"));
        assert!(a.contains("10"));
        assert!(a.contains("0.50"));
        assert!(a.contains('-'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("t", "t", vec!["x".into()]);
        t.push_row(vec![1.0, 2.0]);
    }

    #[test]
    fn series_lookup() {
        let t = sample();
        assert_eq!(t.series("a"), Some(vec![10.0, 20.0]));
        assert!(t.series("zz").is_none());
        assert_eq!(t.column_index("b"), Some(2));
    }
}
