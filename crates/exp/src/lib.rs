//! Experiment harness reproducing the DECOR paper's evaluation (§4).
//!
//! One module per figure. Every experiment:
//! - builds the paper's setup (100×100 field, 2000 Halton points, `rs = 4`,
//!   up to 200 initial random sensors) via [`common::ExpParams`];
//! - runs all relevant algorithm configurations over several seeds,
//!   parallelized with `decor-core::parallel`;
//! - returns a [`table::Table`] whose rows are the series the paper plots,
//!   renderable as an aligned ASCII table or CSV.
//!
//! The binary `decor-figures` drives everything:
//! `cargo run --release -p decor-exp --bin decor-figures -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation_approx;
pub mod arena;
pub mod ascii_plot;
pub mod cli;
pub mod common;
pub mod ext_async;
pub mod ext_clustered;
pub mod ext_delivery;
pub mod ext_endurance;
pub mod ext_hammersley;
pub mod ext_heterogeneous;
pub mod ext_lifetime;
pub mod ext_loss;
pub mod fig04;
pub mod fig05_06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13_14;
pub mod jsonio;
pub mod runner;
pub mod scenario;
pub mod stats;
pub mod svg;
pub mod table;

pub use arena::WorkerArena;
pub use common::ExpParams;
pub use runner::{
    aggregate, CellSummary, CheckpointJournal, MatrixOutcome, MatrixRunner, RunnerHooks,
};
pub use scenario::{
    execute_run, execute_run_in, RunResult, RunSpec, ScenarioMatrix, ScenarioSpec, Workload,
};
pub use table::Table;

/// Runs every figure at the given parameters, returning the tables in
/// figure order. This is what `decor-figures all` executes.
pub fn run_all(params: &ExpParams) -> Vec<Table> {
    let mut tables = vec![
        fig04::run(params),
        fig05_06::run_deployment(params),
        fig05_06::run_disaster(params),
        fig07::run(params),
        fig08::run(params),
        fig09::run(params),
        fig10::run(params),
        fig11::run(params),
        fig12::run(params),
    ];
    let (f13, f14) = fig13_14::run(params);
    tables.push(f13);
    tables.push(f14);
    tables
}

/// Runs the extension experiments (not figures of the paper): the
/// lifetime-vs-k study motivated by §1 and the approximation-backend
/// ablation motivated by §3.2.
pub fn run_extensions(params: &ExpParams) -> Vec<Table> {
    vec![
        ext_lifetime::run(params),
        ablation_approx::run(params),
        ablation_approx::run_budget(params),
        ext_hammersley::run(params),
        ext_delivery::run(params),
        ext_heterogeneous::run(params),
        ext_loss::run(params),
        ext_async::run(params),
        ext_endurance::run(params),
        ext_clustered::run(params),
    ]
}
