//! Extension — the paper's omitted Hammersley variant.
//!
//! §4: "We also experimented using a set of Hammersley points to
//! approximate the field. The results were similar to the ones presented
//! in this section and are omitted due to space limitations." This
//! experiment reproduces that claim: it reruns the Fig. 8 measurement
//! (nodes for 100% k-coverage) with the field approximated by Hammersley
//! instead of Halton points and reports the relative difference, which
//! should be small for every algorithm.

use crate::common::ExpParams;
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::{CoverageMap, DeploymentConfig, SchemeKind};
use decor_lds::{random_points, PointSetKind};

/// The k values compared (a subset of Fig. 8's sweep keeps this cheap).
pub const KS: [u32; 3] = [1, 3, 5];

fn nodes_needed(
    params: &ExpParams,
    kind: PointSetKind,
    scheme: SchemeKind,
    k: u32,
    seed: u64,
) -> f64 {
    let cfg = DeploymentConfig::with_k(k);
    let field = params.field();
    let mut map = CoverageMap::new(kind.points(params.n_points, &field), &field, &cfg);
    for p in random_points(params.initial_nodes, &field, seed) {
        map.add_sensor(p, cfg.rs);
    }
    let out = params.placer(scheme, seed ^ 0x9E37).place(&mut map, &cfg);
    out.total_sensors() as f64
}

/// Runs the comparison for the centralized and one DECOR scheme.
/// Columns: k, Halton nodes, Hammersley nodes, |relative difference| %.
pub fn run(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "ext_hammersley",
        "Halton vs Hammersley approximation (nodes for 100% k-coverage, centralized + grid small)",
        vec![
            "k".into(),
            "halton_centralized".into(),
            "hammersley_centralized".into(),
            "centralized_diff_pct".into(),
            "halton_grid".into(),
            "hammersley_grid".into(),
            "grid_diff_pct".into(),
        ],
    );
    for &k in &KS {
        let mut row = vec![k as f64];
        for scheme in [SchemeKind::Centralized, SchemeKind::GridSmall] {
            let halton = mean(&run_replicas(
                params.seeds,
                params.base_seed ^ 0x4A17,
                |_, seed| nodes_needed(params, PointSetKind::Halton, scheme, k, seed),
            ));
            let hammersley = mean(&run_replicas(
                params.seeds,
                params.base_seed ^ 0x4A17,
                |_, seed| nodes_needed(params, PointSetKind::Hammersley, scheme, k, seed),
            ));
            let diff = (halton - hammersley).abs() / halton * 100.0;
            row.extend([halton, hammersley, diff]);
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hammersley_results_are_similar_to_halton() {
        // The paper's omitted claim, at quick scale, for the centralized
        // algorithm: within 10% of each other.
        let params = ExpParams::quick();
        let k = 2;
        let halton = mean(&run_replicas(params.seeds, 1, |_, seed| {
            nodes_needed(
                &params,
                PointSetKind::Halton,
                SchemeKind::Centralized,
                k,
                seed,
            )
        }));
        let hammersley = mean(&run_replicas(params.seeds, 1, |_, seed| {
            nodes_needed(
                &params,
                PointSetKind::Hammersley,
                SchemeKind::Centralized,
                k,
                seed,
            )
        }));
        let diff = (halton - hammersley).abs() / halton;
        assert!(
            diff < 0.10,
            "halton {halton} vs hammersley {hammersley}: {:.1}% apart",
            diff * 100.0
        );
    }
}
