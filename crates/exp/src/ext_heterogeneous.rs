//! Extension — heterogeneous sensing radii.
//!
//! §2: "In a heterogeneous network deployment, the sensing and coverage
//! radii of the sensors may vary ... Our solution is designed to work
//! under such a setting, since the only assumption we make is that the
//! sensing radius is smaller than or equal to the communication radius."
//! The paper never evaluates this; we do. The initial deployment mixes
//! sensors with radii drawn from {rs/2, rs, 3rs/2}; restoration places
//! homogeneous `rs` sensors. The claim holds if every scheme still
//! reaches 100% k-coverage, with node counts between the all-small and
//! all-large homogeneous references.

use crate::common::ExpParams;
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::{CoverageMap, DeploymentConfig, SchemeKind};
use decor_lds::{halton_points, random_points};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The k values swept.
pub const KS: [u32; 3] = [1, 2, 3];

/// Builds a map with `initial` sensors of mixed radii (uniform over
/// `{0.5, 1.0, 1.5} × rs`), deterministic in `seed`.
pub fn mixed_radius_map(
    params: &ExpParams,
    cfg: &DeploymentConfig,
    initial: usize,
    seed: u64,
) -> CoverageMap {
    let field = params.field();
    let mut map = CoverageMap::new(halton_points(params.n_points, &field), &field, cfg);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x8E7E);
    for p in random_points(initial, &field, seed) {
        let factor = [0.5, 1.0, 1.5][rng.gen_range(0..3usize)];
        map.add_sensor(p, cfg.rs * factor);
    }
    map
}

/// Runs the experiment. Columns: k, then nodes placed per scheme on the
/// mixed-radius field (all runs must fully cover — asserted).
pub fn run(params: &ExpParams) -> Table {
    let schemes = [
        SchemeKind::Centralized,
        SchemeKind::GridSmall,
        SchemeKind::VoronoiBig,
    ];
    let mut columns = vec!["k".to_owned()];
    columns.extend(schemes.iter().map(|s| s.label().to_owned()));
    let mut t = Table::new(
        "ext_heterogeneous",
        "Restoration on heterogeneous initial deployments (nodes placed)",
        columns,
    );
    for &k in &KS {
        let mut row = vec![k as f64];
        for &scheme in &schemes {
            let placed = run_replicas(params.seeds, params.base_seed ^ 0x8E7E, |_, seed| {
                let cfg = DeploymentConfig::with_k(k);
                let mut map = mixed_radius_map(params, &cfg, params.initial_nodes, seed);
                let out = params.placer(scheme, seed).place(&mut map, &cfg);
                assert!(
                    out.fully_covered,
                    "{} failed on heterogeneous field at k={k}",
                    scheme.label()
                );
                out.placed.len() as f64
            });
            row.push(mean(&placed));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use decor_core::Placer;

    #[test]
    fn all_schemes_cover_heterogeneous_fields() {
        let params = ExpParams::quick();
        let cfg = DeploymentConfig::with_k(2);
        for scheme in SchemeKind::ALL {
            let mut map = mixed_radius_map(&params, &cfg, 50, 3);
            let out = params.placer(scheme, 4).place(&mut map, &cfg);
            assert!(out.fully_covered, "{}", scheme.label());
            assert_eq!(map.count_below(2), 0, "{}", scheme.label());
            map.verify_consistency();
        }
    }

    #[test]
    fn mixed_radii_actually_vary() {
        let params = ExpParams::quick();
        let cfg = DeploymentConfig::with_k(1);
        let map = mixed_radius_map(&params, &cfg, 60, 5);
        let radii: std::collections::BTreeSet<u64> = (0..map.n_sensors())
            .map(|sid| (map.sensor_rs(sid) * 10.0) as u64)
            .collect();
        assert!(radii.len() >= 2, "radii must vary: {radii:?}");
    }

    #[test]
    fn larger_initial_sensors_reduce_restoration_cost() {
        // A field seeded with 1.5x-radius sensors needs fewer new nodes
        // than one seeded with 0.5x-radius sensors at the same positions.
        let params = ExpParams::quick();
        let cfg = DeploymentConfig::with_k(1);
        let field = params.field();
        let positions = random_points(60, &field, 8);
        let count_with = |factor: f64| {
            let mut map = CoverageMap::new(halton_points(params.n_points, &field), &field, &cfg);
            for &p in &positions {
                map.add_sensor(p, cfg.rs * factor);
            }
            decor_core::CentralizedGreedy
                .place(&mut map, &cfg)
                .placed
                .len()
        };
        let small = count_with(0.5);
        let large = count_with(1.5);
        assert!(large < small, "large sensors must help: {large} vs {small}");
    }
}
