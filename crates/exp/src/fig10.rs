//! Figure 10 — "Message overhead of DECOR."
//!
//! Protocol messages (placement notices) per cell, for the four DECOR
//! variants, versus k. Expected shape: roughly flat in k (more nodes share
//! the burden as k grows); grid big-cell leaders send more per cell than
//! small-cell leaders; Voronoi traffic grows with `rc`. The table also
//! carries the per-node numbers under leader rotation (the paper quotes
//! ≈4 messages/node for the small cell and ≈2 for the big cell).

use crate::common::{deploy, ExpParams};
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::SchemeKind;

/// The k values swept (paper: 1..=5).
pub const KS: [u32; 5] = [1, 2, 3, 4, 5];

/// The four DECOR variants of the figure.
pub const DECOR_SCHEMES: [SchemeKind; 4] = [
    SchemeKind::GridSmall,
    SchemeKind::GridBig,
    SchemeKind::VoronoiSmall,
    SchemeKind::VoronoiBig,
];

/// Runs the experiment. Columns: k, per-cell messages for the four DECOR
/// variants, then per-node-rotated messages for the two grid variants.
pub fn run(params: &ExpParams) -> Table {
    let mut columns = vec!["k".to_owned()];
    columns.extend(DECOR_SCHEMES.iter().map(|s| s.label().to_owned()));
    columns.push("Grid small (per node, rotated)".to_owned());
    columns.push("Grid big (per node, rotated)".to_owned());
    let mut t = Table::new("fig10", "Protocol messages per cell vs k", columns);
    for &k in &KS {
        let mut row = vec![k as f64];
        let mut rotated = Vec::new();
        for &scheme in &DECOR_SCHEMES {
            let stats = run_replicas(
                params.seeds,
                params.base_seed ^ (k as u64) << 24,
                |_, seed| {
                    let (_, out, _) = deploy(params, scheme, k, seed);
                    (out.messages.per_cell, out.messages.per_node_rotated)
                },
            );
            row.push(mean(&stats.iter().map(|&(pc, _)| pc).collect::<Vec<_>>()));
            if matches!(scheme, SchemeKind::GridSmall | SchemeKind::GridBig) {
                rotated.push(mean(&stats.iter().map(|&(_, pn)| pn).collect::<Vec<_>>()));
            }
        }
        row.extend(rotated);
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_shape_matches_paper() {
        let params = ExpParams::quick();
        let k = 2;
        let per_cell = |scheme: SchemeKind| {
            let stats = run_replicas(params.seeds, params.base_seed, |_, seed| {
                let (_, out, _) = deploy(&params, scheme, k, seed);
                out.messages.per_cell
            });
            mean(&stats)
        };
        let gsmall = per_cell(SchemeKind::GridSmall);
        let gbig = per_cell(SchemeKind::GridBig);
        let vsmall = per_cell(SchemeKind::VoronoiSmall);
        let vbig = per_cell(SchemeKind::VoronoiBig);
        assert!(gsmall > 0.0 && vsmall > 0.0);
        assert!(gbig > gsmall, "big cell {gbig} must exceed small {gsmall}");
        assert!(vbig > vsmall, "big rc {vbig} must exceed small {vsmall}");
    }

    #[test]
    fn rotation_spreads_load_below_per_cell() {
        let params = ExpParams::quick();
        let (_, out, _) = deploy(&params, SchemeKind::GridSmall, 2, 3);
        assert!(out.messages.per_node_rotated <= out.messages.per_cell + 1e-9);
    }
}
