//! Extension — clustered initial deployments.
//!
//! The paper's experiments start from *uniform* random fields, but real
//! deployments cluster (§1: sensors "deployed randomly", e.g. dropped
//! from a vehicle along a path). This experiment seeds the field with
//! Gaussian clusters instead of uniform noise and asks whether the
//! restoration schemes degrade: they should not — a clustered start is
//! just a differently-shaped coverage hole.
//!
//! Reported per scheme: nodes placed from a uniform start vs a clustered
//! start (same sensor budget), and the clustered/uniform ratio. Expected
//! near 1 for the adaptive schemes; the greedy refills whatever shape the
//! hole has.

use crate::common::ExpParams;
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::{CoverageMap, DeploymentConfig, SchemeKind};
use decor_geom::Point;
use decor_lds::halton_points;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of cluster centers the clustered generator uses.
pub const CLUSTERS: usize = 5;

/// Cluster spread (standard deviation in field units).
pub const SPREAD: f64 = 8.0;

/// Generates `n` sensor positions in `CLUSTERS` Gaussian blobs
/// (Box–Muller, clamped to the field), deterministic in `seed`.
pub fn clustered_positions(params: &ExpParams, n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC105);
    let field = params.field();
    let centers: Vec<Point> = (0..CLUSTERS)
        .map(|_| {
            Point::new(
                rng.gen_range(0.15..0.85) * params.field_side,
                rng.gen_range(0.15..0.85) * params.field_side,
            )
        })
        .collect();
    (0..n)
        .map(|i| {
            let c = centers[i % CLUSTERS];
            // Box–Muller.
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen::<f64>();
            let r = (-2.0 * u1.ln()).sqrt() * SPREAD;
            let p = Point::new(
                c.x + r * (std::f64::consts::TAU * u2).cos(),
                c.y + r * (std::f64::consts::TAU * u2).sin(),
            );
            field.clamp(p)
        })
        .collect()
}

fn nodes_needed(params: &ExpParams, scheme: SchemeKind, k: u32, seed: u64, clustered: bool) -> f64 {
    let cfg = DeploymentConfig::with_k(k);
    let field = params.field();
    let mut map = CoverageMap::new(halton_points(params.n_points, &field), &field, &cfg);
    let initial = if clustered {
        clustered_positions(params, params.initial_nodes, seed)
    } else {
        decor_lds::random_points(params.initial_nodes, &field, seed)
    };
    for p in initial {
        map.add_sensor(p, cfg.rs);
    }
    let out = params.placer(scheme, seed ^ 0x9E37).place(&mut map, &cfg);
    assert!(
        out.fully_covered,
        "{} failed (clustered={clustered})",
        scheme.label()
    );
    out.placed.len() as f64
}

/// Runs the comparison at k = 2 for three schemes. Columns: scheme index
/// (0 = centralized, 1 = grid small, 2 = voronoi big), uniform-start
/// nodes, clustered-start nodes, ratio.
pub fn run(params: &ExpParams) -> Table {
    let schemes = [
        SchemeKind::Centralized,
        SchemeKind::GridSmall,
        SchemeKind::VoronoiBig,
    ];
    let mut t = Table::new(
        "ext_clustered",
        "Clustered vs uniform initial deployments (k=2; 0=Centralized, 1=Grid small, 2=Voronoi big)",
        vec![
            "scheme".into(),
            "uniform_start_nodes".into(),
            "clustered_start_nodes".into(),
            "ratio".into(),
        ],
    );
    for (si, &scheme) in schemes.iter().enumerate() {
        let uniform = mean(&run_replicas(
            params.seeds,
            params.base_seed ^ 0xC1,
            |_, seed| nodes_needed(params, scheme, 2, seed, false),
        ));
        let clustered = mean(&run_replicas(
            params.seeds,
            params.base_seed ^ 0xC1,
            |_, seed| nodes_needed(params, scheme, 2, seed, true),
        ));
        t.push_row(vec![si as f64, uniform, clustered, clustered / uniform]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_positions_really_cluster() {
        let params = ExpParams::quick();
        let pts = clustered_positions(&params, 100, 3);
        assert_eq!(pts.len(), 100);
        assert!(pts.iter().all(|p| params.field().contains(*p)));
        // Mean nearest-neighbor distance far below uniform expectation
        // (~0.5/sqrt(n/area) = ~5 for 100 points on 100x100).
        let nn: Vec<f64> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                pts.iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, q)| p.dist(*q))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let mean_nn = nn.iter().sum::<f64>() / nn.len() as f64;
        assert!(mean_nn < 4.0, "clusters expected, mean nn {mean_nn}");
    }

    #[test]
    fn schemes_handle_clustered_starts() {
        let params = ExpParams::quick();
        let t = run(&params);
        for row in &t.rows {
            // The run asserts full coverage internally; here check the
            // cost ratio stays sane (clustered starts waste some initial
            // sensors, so the restorer may need a few more — but not 2x).
            assert!(
                (0.7..=1.8).contains(&row[3]),
                "clustered/uniform ratio out of band: {row:?}"
            );
        }
    }
}
