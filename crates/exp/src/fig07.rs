//! Figure 7 — "Coverage achieved with different number of sensors, for
//! k = 3."
//!
//! For every algorithm we capture the coverage trace (fraction of points
//! 3-covered after each placement) and resample it on a common node-count
//! grid. Expected shape: the centralized greedy rises fastest, the DECOR
//! variants follow closely (Voronoi big-rc nearest), random needs several
//! times more nodes for the same coverage.

use crate::common::{deploy, ExpParams};
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::{SchemeKind, TracePoint};

/// The coverage requirement of the figure.
pub const K: u32 = 3;

/// Coverage value of a trace at `x` total sensors (step lookup: the value
/// after the last placement not exceeding `x`; 0 before the trace starts).
fn trace_at(trace: &[TracePoint], x: usize) -> f64 {
    let mut v = 0.0;
    for t in trace {
        if t.total_sensors <= x {
            v = t.fraction_k_covered;
        } else {
            break;
        }
    }
    v
}

/// X-axis grid: total node counts sampled.
pub fn node_grid(params: &ExpParams) -> Vec<usize> {
    // Paper plots 0..3500 at 2000 points; scale the ceiling with the
    // problem size so quick mode stays meaningful.
    let top = if params.n_points >= 1500 { 3500 } else { 1200 };
    (0..=top).step_by(top / 14).collect()
}

/// Runs the experiment. Columns: number of nodes, then one coverage
/// percentage series per scheme (paper legend order).
pub fn run(params: &ExpParams) -> Table {
    let xs = node_grid(params);
    let mut columns = vec!["nodes".to_owned()];
    columns.extend(SchemeKind::ALL.iter().map(|s| s.label().to_owned()));
    let mut t = Table::new(
        "fig07",
        format!("Percentage of area {K}-covered vs number of nodes"),
        columns,
    );
    // series[scheme][x-index] = mean coverage %.
    let mut series: Vec<Vec<f64>> = Vec::new();
    for &scheme in &SchemeKind::ALL {
        let traces = run_replicas(params.seeds, params.base_seed ^ 0x07, |_, seed| {
            let (_, out, _) = deploy(params, scheme, K, seed);
            out.trace
        });
        let per_x: Vec<f64> = xs
            .iter()
            .map(|&x| {
                mean(
                    &traces
                        .iter()
                        .map(|tr| trace_at(tr, x) * 100.0)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        series.push(per_x);
    }
    for (xi, &x) in xs.iter().enumerate() {
        let mut row = vec![x as f64];
        row.extend(series.iter().map(|s| s[xi]));
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_lookup_steps_correctly() {
        let tr = vec![
            TracePoint {
                total_sensors: 10,
                fraction_k_covered: 0.2,
            },
            TracePoint {
                total_sensors: 20,
                fraction_k_covered: 0.5,
            },
            TracePoint {
                total_sensors: 30,
                fraction_k_covered: 1.0,
            },
        ];
        assert_eq!(trace_at(&tr, 5), 0.0);
        assert_eq!(trace_at(&tr, 10), 0.2);
        assert_eq!(trace_at(&tr, 25), 0.5);
        assert_eq!(trace_at(&tr, 99), 1.0);
    }

    #[test]
    fn curves_are_monotone_and_ordered() {
        let params = ExpParams::quick();
        let t = run(&params);
        // Every series is non-decreasing in the node count.
        for s in SchemeKind::ALL {
            let series = t.series(s.label()).unwrap();
            for w in series.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "{}: {:?}", s.label(), series);
            }
            // Everyone but random (which may need more nodes than the
            // plotted range — exactly what the paper's figure shows) must
            // reach full coverage inside the grid.
            if s != SchemeKind::Random {
                assert_eq!(*series.last().unwrap(), 100.0, "{} must finish", s.label());
            } else {
                assert!(*series.last().unwrap() > 50.0, "random too slow");
            }
        }
        // Centralized dominates random in area under the curve (pointwise
        // dominance can flip at tiny x where both are near zero, because
        // the greedy optimizes total deficit, not the k-covered count).
        let central = t.series("Centralized").unwrap();
        let random = t.series("Random").unwrap();
        let auc = |s: &[f64]| s.iter().sum::<f64>();
        assert!(
            auc(&central) > auc(&random) * 1.2,
            "centralized AUC {} vs random AUC {}",
            auc(&central),
            auc(&random)
        );
    }
}
