//! Small statistics helpers for replica aggregation.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than 2 values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Minimum; +∞ for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum; −∞ for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Mean of a usize sample.
pub fn mean_usize(xs: &[usize]) -> f64 {
    mean(&xs.iter().map(|&x| x as f64).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_known_sample() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std of this classic set is ~2.138.
        assert!((std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[3.0]), 0.0);
        assert_eq!(min(&[]), f64::INFINITY);
        assert_eq!(max(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn min_max() {
        let xs = [3.0, -1.0, 7.5];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.5);
    }

    #[test]
    fn mean_usize_converts() {
        assert!((mean_usize(&[1, 2, 3]) - 2.0).abs() < 1e-12);
    }
}
