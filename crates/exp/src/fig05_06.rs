//! Figures 5 and 6 — example DECOR deployment and an uncovered (disaster)
//! area.
//!
//! Both are qualitative pictures in the paper; we render them as ASCII
//! (used by `examples/deployment_map.rs`) and report summary numbers.

use crate::ascii_plot::scatter2;
use crate::common::{deploy, ExpParams};
use crate::table::Table;
use decor_core::SchemeKind;
use decor_geom::{Disk, Point};
use decor_net::FailurePlan;

/// Figure 5: a grid-DECOR deployment for `k = 1`. Table columns: k,
/// initial sensors, placed sensors, final coverage %.
pub fn run_deployment(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "fig05",
        "Example DECOR deployment (grid, small cell, k=1)",
        vec![
            "k".into(),
            "initial".into(),
            "placed".into(),
            "coverage_pct".into(),
        ],
    );
    let (map, out, cfg) = deploy(params, SchemeKind::GridSmall, 1, params.base_seed);
    t.push_row(vec![
        cfg.k as f64,
        out.initial_sensors as f64,
        out.placed.len() as f64,
        map.fraction_k_covered(cfg.k) * 100.0,
    ]);
    t
}

/// The disaster disc of §4.2: radius 24 at the field center (~17% of the
/// paper's 100×100 area).
pub fn disaster_disk(params: &ExpParams) -> Disk {
    Disk::new(
        Point::new(params.field_side / 2.0, params.field_side / 2.0),
        0.24 * params.field_side,
    )
}

/// Figure 6: coverage state after an area failure. Table columns: k,
/// sensors killed, % of points inside the disc, % of points still covered.
pub fn run_disaster(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "fig06",
        "Uncovered area after a disaster (disc r=0.24·side at center), k=1",
        vec![
            "k".into(),
            "killed".into(),
            "points_in_disc_pct".into(),
            "coverage_after_pct".into(),
        ],
    );
    let (mut map, _, cfg) = deploy(params, SchemeKind::GridSmall, 1, params.base_seed);
    let disk = disaster_disk(params);
    let in_disc = map.points().iter().filter(|&&p| disk.contains(p)).count() as f64
        / map.n_points() as f64
        * 100.0;
    let killed = {
        let sensors = map.active_sensors();
        let victims: Vec<usize> = sensors
            .iter()
            .filter(|&&(_, pos)| disk.contains(pos))
            .map(|&(sid, _)| sid)
            .collect();
        for &sid in &victims {
            map.deactivate_sensor(sid);
        }
        victims.len()
    };
    t.push_row(vec![
        cfg.k as f64,
        killed as f64,
        in_disc,
        map.fraction_k_covered(cfg.k) * 100.0,
    ]);
    t
}

/// Figure 5 picture: approximation points as dots, sensors as `O`.
pub fn render_deployment(params: &ExpParams) -> String {
    let (map, _, _) = deploy(params, SchemeKind::GridSmall, 1, params.base_seed);
    let sensors: Vec<Point> = map.active_sensors().iter().map(|&(_, p)| p).collect();
    scatter2(&params.field(), map.points(), '.', &sensors, 'O', 72, 28)
}

/// Figure 6 picture: surviving sensors after the disaster; the hole is
/// visible at the center.
pub fn render_disaster(params: &ExpParams) -> String {
    let (mut map, _, cfg) = deploy(params, SchemeKind::GridSmall, 1, params.base_seed);
    let disk = disaster_disk(params);
    let sensors = map.active_sensors();
    for &(sid, pos) in &sensors {
        if disk.contains(pos) {
            map.deactivate_sensor(sid);
        }
    }
    let _ = cfg;
    let alive: Vec<Point> = map.active_sensors().iter().map(|&(_, p)| p).collect();
    let covered: Vec<Point> = (0..map.n_points())
        .filter(|&i| map.coverage(i) >= 1)
        .map(|i| map.points()[i])
        .collect();
    scatter2(&params.field(), &covered, '.', &alive, 'O', 72, 28)
}

/// Applies the Fig. 6 disaster to an arbitrary map, returning victims.
pub fn apply_disaster(
    map: &mut decor_core::CoverageMap,
    params: &ExpParams,
) -> Vec<decor_core::SensorId> {
    let disk = disaster_disk(params);
    let _plan = FailurePlan::Area { disk }; // documented linkage to decor-net
    let sensors = map.active_sensors();
    let victims: Vec<usize> = sensors
        .iter()
        .filter(|&&(_, pos)| disk.contains(pos))
        .map(|&(sid, _)| sid)
        .collect();
    for &sid in &victims {
        map.deactivate_sensor(sid);
    }
    victims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deployment_reaches_full_coverage() {
        let t = run_deployment(&ExpParams::quick());
        assert_eq!(t.rows[0][3], 100.0);
        assert!(t.rows[0][2] > 0.0, "some sensors must be placed");
    }

    #[test]
    fn disaster_uncovers_roughly_the_disc() {
        let t = run_disaster(&ExpParams::quick());
        let in_disc = t.rows[0][2];
        let after = t.rows[0][3];
        assert!((12.0..=25.0).contains(&in_disc), "disc share {in_disc}");
        assert!(after < 100.0);
        // The hole cannot be larger than the disc plus a sensing-radius rim.
        assert!(after > 100.0 - in_disc - 15.0, "coverage after {after}");
    }

    #[test]
    fn renders_contain_sensors_and_points() {
        let p = ExpParams::quick();
        let dep = render_deployment(&p);
        assert!(dep.contains('O') && dep.contains('.'));
        let dis = render_disaster(&p);
        assert!(dis.contains('O'));
    }
}
