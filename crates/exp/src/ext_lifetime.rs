//! Extension experiment — network lifetime vs k (the paper's motivation
//! #3, not evaluated in its §4).
//!
//! "When k nodes are covering a point, we have the option of putting some
//! of them to sleep ... k-coverage leads to significant energy savings
//! and increases the lifetime for the network." We quantify that: deploy
//! for k, split the deployment into disjoint 1-covering sleep shifts,
//! duty-cycle them, and measure how much longer 1-coverage survives
//! compared to leaving every node awake. Expectation: the extension
//! factor tracks k (each extra layer of coverage becomes another shift).

use crate::common::{deploy, ExpParams};
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::SchemeKind;
use decor_geom::Point;
use decor_net::{Network, SleepScheduler};

/// The k values swept.
pub const KS: [u32; 5] = [1, 2, 3, 4, 5];

/// Battery model of the lifetime simulation (abstract units).
pub const BATTERY: f64 = 60.0;
/// Energy drained per awake period.
pub const AWAKE_COST: f64 = 1.0;
/// Energy drained per sleeping period.
pub const SLEEP_COST: f64 = 0.02;

/// Runs the experiment with the centralized deployment (the scheduler is
/// scheme-agnostic; centralized gives the tightest deployments, making
/// the lifetime gain a conservative estimate). Columns: k, shifts
/// extracted, duty-cycled periods, all-awake periods, extension factor.
pub fn run(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "ext_lifetime",
        "Network lifetime extension from k-coverage sleep scheduling",
        vec![
            "k".into(),
            "shifts".into(),
            "periods_duty_cycled".into(),
            "periods_all_awake".into(),
            "extension_factor".into(),
        ],
    );
    for &k in &KS {
        let results = run_replicas(params.seeds, params.base_seed ^ 0x51EE9, |_, seed| {
            let (map, _, cfg) = deploy(params, SchemeKind::Centralized, k, seed);
            // Mirror the deployment into a network for the scheduler.
            let mut net = Network::new(*map.field());
            for (_, pos) in map.active_sensors() {
                net.add_node(pos, cfg.rs, cfg.rc);
            }
            let pts: Vec<Point> = map.points().to_vec();
            let report = SleepScheduler::new(1)
                .simulate_lifetime(&net, &pts, BATTERY, AWAKE_COST, SLEEP_COST);
            (
                report.shifts as f64,
                report.periods_covered as f64,
                report.baseline_periods as f64,
                report.extension_factor,
            )
        });
        t.push_row(vec![
            k as f64,
            mean(&results.iter().map(|r| r.0).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.2).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.3).collect::<Vec<_>>()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_extension_grows_with_k() {
        let params = ExpParams::quick();
        let factor = |k: u32| {
            let results = run_replicas(params.seeds, params.base_seed, |_, seed| {
                let (map, _, cfg) = deploy(&params, SchemeKind::Centralized, k, seed);
                let mut net = Network::new(*map.field());
                for (_, pos) in map.active_sensors() {
                    net.add_node(pos, cfg.rs, cfg.rc);
                }
                let pts: Vec<Point> = map.points().to_vec();
                SleepScheduler::new(1)
                    .simulate_lifetime(&net, &pts, 30.0, 1.0, 0.02)
                    .extension_factor
            });
            mean(&results)
        };
        let f1 = factor(1);
        let f3 = factor(3);
        assert!(
            f3 > f1 + 0.5,
            "k=3 extension ({f3:.2}x) must clearly beat k=1 ({f1:.2}x)"
        );
        assert!(
            f3 >= 1.8,
            "k=3 should at least ~double lifetime, got {f3:.2}x"
        );
    }
}
