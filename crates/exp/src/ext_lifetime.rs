//! Extension experiment — network lifetime vs k (the paper's motivation
//! #3, not evaluated in its §4).
//!
//! "When k nodes are covering a point, we have the option of putting some
//! of them to sleep ... k-coverage leads to significant energy savings
//! and increases the lifetime for the network." We quantify that with the
//! full endurance loop ([`decor_core::run_endurance`]): deploy for k,
//! agree on disjoint 1-covering shifts in-network, duty-cycle them on the
//! transport clock with real heartbeat traffic and per-message energy
//! accounting, and measure *lifetime to first unrecoverable coverage
//! loss* against the always-on baseline. Expectation: the extension
//! factor tracks k (each extra layer of coverage becomes another shift).

use crate::common::{deploy_with, ExpParams};
use crate::stats::mean;
use crate::table::Table;
use decor_core::parallel::run_replicas;
use decor_core::{run_endurance, EnduranceConfig, SchemeKind};
use decor_net::RotationConfig;

/// The k values swept.
pub const KS: [u32; 5] = [1, 2, 3, 4, 5];

/// Horizon cap: a healthy rotation at the largest k dies well before
/// this many periods under the default battery.
pub const MAX_PERIODS: u64 = 5_000;

/// One replica of the lifetime study at coverage requirement `k`:
/// returns (shifts, rotating lifetime, always-on lifetime, extension).
pub fn lifetime_sample(params: &ExpParams, k: u32, seed: u64) -> (f64, f64, f64, f64) {
    let arm = |rotate: bool| {
        let (mut map, _, cfg) = deploy_with(params, SchemeKind::Centralized, k, seed, |cfg| {
            cfg.rotation = Some(RotationConfig::default());
        });
        let e = EnduranceConfig {
            rotate,
            max_periods: MAX_PERIODS,
            ..EnduranceConfig::default()
        };
        run_endurance(&mut map, &decor_core::CentralizedGreedy, &cfg, &e)
    };
    let on = arm(false);
    let rotated = arm(true);
    (
        rotated.shifts as f64,
        rotated.lifetime_periods as f64,
        on.lifetime_periods as f64,
        rotated.extension_over(&on),
    )
}

/// Runs the experiment with the centralized deployment (the endurance
/// loop is scheme-agnostic; centralized gives the tightest deployments,
/// making the lifetime gain a conservative estimate). Columns: k, shifts
/// agreed, rotating lifetime, always-on lifetime, extension factor.
pub fn run(params: &ExpParams) -> Table {
    let mut t = Table::new(
        "ext_lifetime",
        "Lifetime to first unrecoverable coverage loss: rotation vs always-on",
        vec![
            "k".into(),
            "shifts".into(),
            "periods_rotating".into(),
            "periods_always_on".into(),
            "extension_factor".into(),
        ],
    );
    for &k in &KS {
        let results = run_replicas(params.seeds, params.base_seed ^ 0x51EE9, |_, seed| {
            lifetime_sample(params, k, seed)
        });
        t.push_row(vec![
            k as f64,
            mean(&results.iter().map(|r| r.0).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.1).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.2).collect::<Vec<_>>()),
            mean(&results.iter().map(|r| r.3).collect::<Vec<_>>()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_extension_grows_with_k() {
        let params = ExpParams::quick();
        let factor = |k: u32| {
            let results = run_replicas(params.seeds, params.base_seed, |_, seed| {
                lifetime_sample(&params, k, seed).3
            });
            mean(&results)
        };
        let f1 = factor(1);
        let f3 = factor(3);
        assert!(
            f3 > f1 + 0.5,
            "k=3 extension ({f3:.2}x) must clearly beat k=1 ({f1:.2}x)"
        );
        assert!(
            f3 >= 2.0,
            "k=3 should at least double lifetime, got {f3:.2}x"
        );
    }

    #[test]
    fn both_arms_die_inside_the_horizon() {
        let params = ExpParams::quick();
        let (shifts, rot, on, ext) = lifetime_sample(&params, 3, params.base_seed);
        assert!(shifts > 1.0, "k=3 must split into shifts, got {shifts}");
        assert!(on < MAX_PERIODS as f64, "baseline must actually die");
        assert!(rot < MAX_PERIODS as f64, "rotation must actually die");
        assert!(ext > 1.0, "rotation must outlive always-on");
    }
}
