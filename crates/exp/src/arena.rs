//! Per-worker simulation arenas: the memory-reuse layer behind the
//! scenario fleet's zero-allocation steady state.
//!
//! A [`WorkerArena`] is owned by one fleet worker and threaded through
//! back-to-back runs. It pools the three allocation-heavy pieces of a
//! run:
//!
//! - the **coverage map** — the empty map (Halton approximation, grid
//!   indexes, tile CSR, zero sensors) is a pure function of
//!   `(n_points, field, rs, k)`, so the arena caches one *template* per
//!   distinct key and refills the working map from it with the
//!   capacity-preserving [`CoverageMap::reset_from`];
//! - the **initial-deployment points** — refilled in place through
//!   [`decor_lds::random_points_into`], which draws the identical RNG
//!   stream as the cold [`decor_lds::random_points`];
//! - the **placer scratch** ([`SimScratch`]) — benefit engine, candidate
//!   buffers, simulated radio network and transport, rebuilt per run
//!   through the same `reset_*` paths the cold constructors use.
//!
//! Reuse is strictly *allocation* reuse: every pooled structure is fully
//! re-initialized along the cold constructor's own code path, so a warm
//! run is bit-identical to a cold one. The `pool_reuse` proptest at the
//! workspace root interleaves runs of different field sizes, schemes and
//! loss settings through a single arena and asserts exactly that.

use crate::common::ExpParams;
use decor_core::{CoverageMap, DeploymentConfig, PlacementOutcome, SchemeKind, SimScratch};
use decor_geom::Point;
use decor_lds::{halton_points, random_points_into};

/// Everything the empty coverage map depends on. Two runs with equal
/// keys may share a template; float fields are compared bit-wise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct TemplateKey {
    n_points: usize,
    min_x: u64,
    min_y: u64,
    width: u64,
    height: u64,
    rs: u64,
    k: u32,
}

impl TemplateKey {
    fn new(params: &ExpParams, cfg: &DeploymentConfig) -> Self {
        let field = params.field();
        TemplateKey {
            n_points: params.n_points,
            min_x: field.min.x.to_bits(),
            min_y: field.min.y.to_bits(),
            width: field.width().to_bits(),
            height: field.height().to_bits(),
            rs: cfg.rs.to_bits(),
            k: cfg.k,
        }
    }
}

/// Pooled per-worker simulation state. Create one per fleet worker and
/// thread it through [`crate::scenario::execute_run_in`]; the first run
/// per scenario shape sizes every buffer and later runs reuse the
/// capacity.
pub struct WorkerArena {
    /// Empty-map templates, one per distinct scenario shape. A fleet
    /// worker sees a handful of shapes at most, so a linear scan beats
    /// hashing.
    templates: Vec<(TemplateKey, CoverageMap)>,
    /// The recycled working map, refilled from a template per run.
    working: Option<CoverageMap>,
    /// Initial-deployment position buffer.
    initial: Vec<Point>,
    /// Placer scratch threaded into [`decor_core::Placer::place_in`].
    pub scratch: SimScratch,
}

impl WorkerArena {
    /// An empty arena; everything is built lazily on first use.
    pub fn new() -> Self {
        WorkerArena {
            templates: Vec::new(),
            working: None,
            initial: Vec::new(),
            scratch: SimScratch::new(),
        }
    }

    /// Number of distinct empty-map templates cached so far.
    pub fn n_templates(&self) -> usize {
        self.templates.len()
    }

    fn template_index(&mut self, params: &ExpParams, cfg: &DeploymentConfig) -> usize {
        let key = TemplateKey::new(params, cfg);
        if let Some(i) = self.templates.iter().position(|(k, _)| *k == key) {
            return i;
        }
        let field = params.field();
        let map = CoverageMap::new(halton_points(params.n_points, &field), &field, cfg);
        self.templates.push((key, map));
        self.templates.len() - 1
    }

    /// Pooled equivalent of [`ExpParams::make_map`]: a coverage map with
    /// the Halton approximation and `initial` random sensors, bit-equal
    /// to the cold constructor's output but built into recycled storage.
    /// Return the map with [`WorkerArena::recycle`] when the run ends.
    pub fn make_map(
        &mut self,
        params: &ExpParams,
        cfg: &DeploymentConfig,
        initial: usize,
        seed: u64,
    ) -> CoverageMap {
        let ti = self.template_index(params, cfg);
        let template = &self.templates[ti].1;
        let mut map = match self.working.take() {
            Some(mut m) => {
                m.reset_from(template);
                m
            }
            None => template.clone(),
        };
        let field = params.field();
        random_points_into(initial, &field, seed, &mut self.initial);
        for &p in &self.initial {
            map.add_sensor(p, cfg.rs);
        }
        map
    }

    /// Returns a finished run's map to the pool so the next
    /// [`WorkerArena::make_map`] reuses its allocations.
    pub fn recycle(&mut self, map: CoverageMap) {
        self.working = Some(map);
    }
}

impl Default for WorkerArena {
    fn default() -> Self {
        Self::new()
    }
}

/// Pooled equivalent of [`crate::common::deploy_with`]: same config
/// construction, same seed mixing, same placer — but the map comes from
/// the arena and the placer runs through [`decor_core::Placer::place_in`]
/// with the arena's scratch. The caller must
/// [`WorkerArena::recycle`] the returned map once done with it.
pub fn deploy_with_in(
    params: &ExpParams,
    scheme: SchemeKind,
    k: u32,
    seed: u64,
    customize: impl FnOnce(&mut DeploymentConfig),
    arena: &mut WorkerArena,
) -> (CoverageMap, PlacementOutcome, DeploymentConfig) {
    let mut cfg = DeploymentConfig::with_k(k);
    cfg.link = params.link(seed);
    customize(&mut cfg);
    let mut map = arena.make_map(params, &cfg, params.initial_nodes, seed);
    let placer = params.placer(scheme, seed ^ 0x9E37);
    let outcome = placer.place_in(&mut map, &cfg, &mut arena.scratch);
    (map, outcome, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::deploy_with;

    #[test]
    fn pooled_deploy_matches_cold_deploy() {
        let params = ExpParams {
            n_points: 300,
            initial_nodes: 30,
            ..ExpParams::quick()
        };
        let mut arena = WorkerArena::new();
        for scheme in [SchemeKind::Centralized, SchemeKind::GridSmall] {
            for seed in [1u64, 2, 3] {
                let (cold_map, cold_out, cold_cfg) = deploy_with(&params, scheme, 1, seed, |_| {});
                let (warm_map, warm_out, warm_cfg) =
                    deploy_with_in(&params, scheme, 1, seed, |_| {}, &mut arena);
                assert_eq!(warm_out.placed, cold_out.placed, "{scheme:?}/{seed}");
                assert_eq!(warm_out.rounds, cold_out.rounds);
                assert_eq!(warm_out.messages, cold_out.messages);
                assert_eq!(
                    warm_map.fraction_k_covered(warm_cfg.k),
                    cold_map.fraction_k_covered(cold_cfg.k)
                );
                arena.recycle(warm_map);
            }
        }
        assert_eq!(arena.n_templates(), 1, "one shape, one template");
    }

    #[test]
    fn templates_are_deduplicated_per_shape() {
        let mut arena = WorkerArena::new();
        let small = ExpParams {
            n_points: 200,
            initial_nodes: 10,
            ..ExpParams::quick()
        };
        let big = ExpParams {
            n_points: 400,
            initial_nodes: 10,
            ..ExpParams::quick()
        };
        for params in [&small, &big, &small, &big] {
            let (map, _, _) =
                deploy_with_in(params, SchemeKind::Centralized, 1, 9, |_| {}, &mut arena);
            arena.recycle(map);
        }
        assert_eq!(arena.n_templates(), 2);
    }
}
